"""Unit tests for model assembly: encoder, heads, pooling, contexts."""

import numpy as np
import pytest

from repro.gnn import (
    ALL_MODEL_NAMES,
    GNNEncoder,
    GraphContext,
    GraphRegressor,
    NodeClassifier,
    get_pooling,
)
from repro.graph import Batch, GraphData
from repro.tensor import Tensor

F = 7
TYPES = 4


def make_graphs(count=3, seed=0):
    rng = np.random.default_rng(seed)
    graphs = []
    for k in range(count):
        n = int(rng.integers(4, 9))
        edges = np.array([(i, i + 1) for i in range(n - 1)]).T
        graphs.append(
            GraphData(
                node_features=rng.normal(size=(n, F)),
                edge_index=edges,
                edge_type=rng.integers(0, TYPES, edges.shape[1]),
                edge_back=np.zeros(edges.shape[1], dtype=int),
                y=rng.uniform(1, 50, 4),
                node_labels=rng.integers(0, 2, (n, 3)).astype(float),
            )
        )
    return graphs


class TestPooling:
    def test_sum_pool_matches_manual(self, rng):
        batch = Batch(make_graphs(2))
        ctx = GraphContext.from_batch(batch, TYPES)
        x = Tensor(rng.normal(size=(batch.num_nodes, 3)))
        pooled = get_pooling("sum")(x, ctx).data
        manual = np.array([
            x.data[batch.batch == 0].sum(axis=0),
            x.data[batch.batch == 1].sum(axis=0),
        ])
        np.testing.assert_allclose(pooled, manual)

    def test_mean_pool_matches_manual(self, rng):
        batch = Batch(make_graphs(2))
        ctx = GraphContext.from_batch(batch, TYPES)
        x = Tensor(rng.normal(size=(batch.num_nodes, 3)))
        pooled = get_pooling("mean")(x, ctx).data
        np.testing.assert_allclose(
            pooled[0], x.data[batch.batch == 0].mean(axis=0)
        )

    def test_unknown_pooling_rejected(self):
        with pytest.raises(KeyError):
            get_pooling("median")


class TestEncoder:
    @pytest.mark.parametrize("name", ALL_MODEL_NAMES)
    def test_every_architecture_produces_embeddings(self, name):
        graphs = make_graphs(3, seed=1)
        batch = Batch(graphs)
        encoder = GNNEncoder(
            name, in_dim=F, hidden_dim=12, num_layers=2, num_edge_types=TYPES,
            rng=np.random.default_rng(0),
        )
        ctx = encoder.context_for(batch)
        out = encoder(Tensor(batch.node_features), ctx)
        assert out.shape == (batch.num_nodes, 12)

    def test_invalid_layer_count(self):
        with pytest.raises(ValueError):
            GNNEncoder("gcn", F, 8, 0, TYPES)

    def test_sgc_collapses_to_single_layer(self):
        encoder = GNNEncoder("sgc", F, 8, 3, TYPES)
        assert len(encoder.layers) == 1
        assert encoder.layers[0].hops == 3

    def test_virtual_node_variants_have_exchanges(self):
        encoder = GNNEncoder("gin-v", F, 8, 3, TYPES)
        assert len(encoder.exchanges) == 3

    def test_unet_uses_whole_architecture(self):
        encoder = GNNEncoder("unet", F, 8, 3, TYPES)
        assert encoder.unet is not None
        assert len(encoder.layers) == 0


class TestHeads:
    def test_regressor_shape_and_grads(self):
        batch = Batch(make_graphs(4, seed=2))
        model = GraphRegressor(
            "rgcn", in_dim=F, hidden_dim=12, num_layers=2,
            num_edge_types=TYPES, out_dim=4, rng=np.random.default_rng(0),
        )
        out = model(batch)
        assert out.shape == (4, 4)
        out.sum().backward()
        assert all(p.grad is not None for p in model.parameters())

    def test_regressor_head_is_paper_shape(self):
        model = GraphRegressor(
            "gcn", in_dim=F, hidden_dim=300, num_layers=1,
            num_edge_types=TYPES, out_dim=1,
        )
        assert model.head.sizes == (300, 600, 300, 1)

    def test_classifier_shape(self):
        batch = Batch(make_graphs(2, seed=3))
        model = NodeClassifier(
            "sage", in_dim=F, hidden_dim=12, num_layers=2,
            num_edge_types=TYPES, rng=np.random.default_rng(0),
        )
        assert model(batch).shape == (batch.num_nodes, 3)

    def test_batch_equals_individual_forward(self):
        """Disjoint-union batching must not mix information across graphs."""
        graphs = make_graphs(2, seed=4)
        model = GraphRegressor(
            "gin", in_dim=F, hidden_dim=10, num_layers=2,
            num_edge_types=TYPES, rng=np.random.default_rng(1),
        )
        model.eval()
        batched = model(Batch(graphs)).data
        singles = np.concatenate([model(Batch([g])).data for g in graphs])
        np.testing.assert_allclose(batched, singles, atol=1e-6)

    def test_node_permutation_equivariance_of_pooling(self):
        """Graph-level output is invariant to node relabelling."""
        graph = make_graphs(1, seed=5)[0]
        perm = np.random.default_rng(0).permutation(graph.num_nodes)
        inverse = np.argsort(perm)
        permuted = GraphData(
            node_features=graph.node_features[perm],
            edge_index=inverse[graph.edge_index],
            edge_type=graph.edge_type,
            edge_back=graph.edge_back,
            y=graph.y,
        )
        model = GraphRegressor(
            "gcn", in_dim=F, hidden_dim=10, num_layers=2,
            num_edge_types=TYPES, rng=np.random.default_rng(2),
        )
        model.eval()
        a = model(Batch([graph])).data
        b = model(Batch([permuted])).data
        # Equivariance is exact up to summation order; float32 (the
        # default policy) leaves ~1e-7 reordering noise.
        np.testing.assert_allclose(a, b, atol=1e-6)
