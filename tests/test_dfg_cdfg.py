"""Unit tests for DFG/CDFG extraction invariants (paper Section 3.1)."""

import numpy as np
import pytest

from repro.frontend import lower_program
from repro.ir import EdgeType, NodeType, Opcode, extract_cdfg, extract_dfg
from tests.conftest import make_loop_program, make_straightline_program


@pytest.fixture(scope="module")
def dfg():
    return extract_dfg(lower_program(make_straightline_program()))


@pytest.fixture(scope="module")
def cdfg():
    return extract_cdfg(lower_program(make_loop_program()))


class TestDFG:
    def test_is_acyclic(self, dfg):
        assert not dfg.has_cycle()

    def test_rejects_multiblock_functions(self):
        fn = lower_program(make_loop_program())
        with pytest.raises(ValueError):
            extract_dfg(fn)

    def test_has_port_nodes_for_scalar_args(self, dfg):
        ports = [n for n in dfg.nodes if n.kind == NodeType.PORT]
        assert len(ports) == 3  # a, b, c

    def test_constants_are_misc_and_deduplicated(self):
        program = make_straightline_program()
        graph = extract_dfg(lower_program(program))
        consts = [n for n in graph.nodes if n.opcode == Opcode.CONST]
        labels = [n.label for n in consts]
        assert len(labels) == len(set(labels))

    def test_no_control_edges(self, dfg):
        assert all(e[2] != EdgeType.CONTROL for e in dfg.edges)

    def test_no_block_nodes(self, dfg):
        assert all(n.kind != NodeType.BLOCK for n in dfg.nodes)

    def test_cluster_is_asap_depth(self, dfg):
        # Sources (ports/constants) sit at depth 0; the ret is deepest.
        by_label = {n.label: n for n in dfg.nodes}
        port_clusters = [n.cluster for n in dfg.nodes if n.kind == NodeType.PORT]
        assert all(c == 0 for c in port_clusters)
        op_clusters = [n.cluster for n in dfg.nodes if n.kind == NodeType.OPERATION]
        assert max(op_clusters) >= 2

    def test_data_edges_respect_ssa_order(self, dfg):
        """Data edges between operations go from earlier to later ids."""
        ops = {n.index: n for n in dfg.nodes if n.kind == NodeType.OPERATION}
        for src, dst, etype, _ in dfg.edges:
            if etype == EdgeType.DATA and src in ops and dst in ops:
                assert ops[src].instruction_id < ops[dst].instruction_id


class TestCDFG:
    def test_has_cycle_through_loop(self, cdfg):
        assert cdfg.has_cycle()

    def test_exactly_one_back_edge_for_single_loop(self, cdfg):
        assert sum(1 for e in cdfg.edges if e[3]) == 1

    def test_back_edges_are_control(self, cdfg):
        for src, dst, etype, back in cdfg.edges:
            if back:
                assert etype == EdgeType.CONTROL

    def test_block_nodes_match_ir_blocks(self, cdfg):
        fn = lower_program(make_loop_program())
        blocks = [n for n in cdfg.nodes if n.kind == NodeType.BLOCK]
        assert len(blocks) == len(fn.blocks)

    def test_every_instruction_gets_control_edge_from_its_block(self, cdfg):
        block_nodes = {n.index for n in cdfg.nodes if n.kind == NodeType.BLOCK}
        op_nodes = {n.index for n in cdfg.nodes if n.kind == NodeType.OPERATION}
        covered = {
            dst
            for src, dst, etype, _ in cdfg.edges
            if etype == EdgeType.CONTROL and src in block_nodes and dst in op_nodes
        }
        assert covered == op_nodes

    def test_phi_gets_control_edges_from_pred_blocks(self, cdfg):
        phi_nodes = [n for n in cdfg.nodes if n.opcode == Opcode.PHI]
        assert phi_nodes
        block_nodes = {n.index for n in cdfg.nodes if n.kind == NodeType.BLOCK}
        for phi in phi_nodes:
            control_preds = [
                src
                for src, dst, etype, _ in cdfg.edges
                if dst == phi.index and etype == EdgeType.CONTROL and src in block_nodes
            ]
            # owning block + one per incoming edge (>= 2 incoming for loops)
            assert len(control_preds) >= 3

    def test_memory_edges_present_for_array_traffic(self, cdfg):
        assert any(e[2] == EdgeType.MEMORY for e in cdfg.edges)

    def test_cluster_is_block_index(self, cdfg):
        fn = lower_program(make_loop_program())
        n_blocks = len(fn.blocks)
        for node in cdfg.nodes:
            if node.kind in (NodeType.OPERATION, NodeType.BLOCK):
                assert 0 <= node.cluster < n_blocks

    def test_single_block_function_allowed(self):
        graph = extract_cdfg(lower_program(make_straightline_program()))
        assert not graph.has_cycle()
        blocks = [n for n in graph.nodes if n.kind == NodeType.BLOCK]
        assert len(blocks) == 1


class TestScaleStatistics:
    def test_cdfg_larger_than_dfg_for_same_scale(self, dfg, cdfg):
        # Control nodes/edges make CDFGs denser — the paper's stated
        # reason CDFG prediction is harder.
        dfg_density = dfg.num_edges / dfg.num_nodes
        cdfg_density = cdfg.num_edges / cdfg.num_nodes
        assert cdfg_density > dfg_density
