"""Unit tests for the resource characterisation library."""

import pytest

from repro.hls import characterize, fu_family, width_bucket
from repro.hls.resource_library import DEFAULT_DEVICE, DeviceModel
from repro.ir import Opcode
from repro.ir.values import Constant, Instruction
from repro.typesys import CInt


def inst(opcode, width=32, operands=None):
    return Instruction(opcode, operands or [], CInt(width))


class TestCharacterisation:
    def test_wide_multiply_uses_dsp(self):
        c = characterize(inst(Opcode.MUL, 32))
        assert c.dsp >= 2
        assert c.latency >= 1

    def test_narrow_multiply_is_lut_only(self):
        c = characterize(inst(Opcode.MUL, 8))
        assert c.dsp == 0
        assert c.lut > 0

    def test_dsp_count_scales_with_width(self):
        narrow = characterize(inst(Opcode.MUL, 16)).dsp
        wide = characterize(inst(Opcode.MUL, 64)).dsp
        assert wide > narrow

    def test_divider_is_multicycle_and_register_heavy(self):
        c = characterize(inst(Opcode.SDIV, 32))
        assert c.latency >= 2
        assert c.ff > 0
        assert c.lut > characterize(inst(Opcode.ADD, 32)).lut

    def test_adder_lut_scales_linearly(self):
        assert characterize(inst(Opcode.ADD, 64)).lut == 2 * characterize(
            inst(Opcode.ADD, 32)
        ).lut

    def test_bitwise_cheaper_than_add(self):
        assert (
            characterize(inst(Opcode.XOR, 32)).lut
            < characterize(inst(Opcode.ADD, 32)).lut
        )

    def test_constant_shift_is_free(self):
        shift = inst(Opcode.SHL, 32, [inst(Opcode.ADD, 32), Constant(3, CInt(32))])
        c = characterize(shift)
        assert c.lut == 0 and c.delay_ns == 0.0

    def test_variable_shift_costs_barrel_shifter(self):
        shift = inst(Opcode.SHL, 32, [inst(Opcode.ADD, 32), inst(Opcode.ADD, 32)])
        assert characterize(shift).lut > 0

    def test_phi_uses_ff(self):
        phi = inst(Opcode.PHI, 32, [Constant(0, CInt(32)), Constant(1, CInt(32))])
        c = characterize(phi)
        assert c.ff == 32
        assert c.lut > 0  # input mux

    def test_load_is_registered(self):
        c = characterize(inst(Opcode.LOAD, 16))
        assert c.latency == 2
        assert c.ff == 16

    def test_casts_are_free(self):
        for op in (Opcode.TRUNC, Opcode.ZEXT, Opcode.SEXT):
            c = characterize(inst(op))
            assert c.lut == c.ff == c.dsp == 0

    def test_control_opcodes_have_no_datapath_cost(self):
        for op in (Opcode.BR, Opcode.RET, Opcode.CONST, Opcode.PORT, Opcode.BLOCK):
            c = characterize(inst(op))
            assert c.lut == c.ff == c.dsp == 0

    def test_all_characters_nonnegative(self):
        for op in Opcode:
            c = characterize(inst(op, 64))
            assert c.dsp >= 0 and c.lut >= 0 and c.ff >= 0
            assert c.delay_ns >= 0 and c.latency >= 0


class TestFUClassification:
    def test_families(self):
        assert fu_family(Opcode.MUL) == "mul"
        assert fu_family(Opcode.UDIV) == "div"
        assert fu_family(Opcode.BR) is None

    def test_width_buckets(self):
        assert width_bucket(1) == 8
        assert width_bucket(17) == 32
        assert width_bucket(33) == 64
        assert width_bucket(1000) == 256


class TestDeviceModel:
    def test_default_device_sane(self):
        assert DEFAULT_DEVICE.clock_period_ns > DEFAULT_DEVICE.clock_uncertainty_ns
        assert DEFAULT_DEVICE.lut_capacity > 0

    def test_custom_device(self):
        device = DeviceModel(name="big", clock_period_ns=5.0, lut_capacity=10**6)
        assert device.clock_period_ns == 5.0
