"""Unit tests for debugging/reporting tooling: IR printer, HLS reports,
dataset statistics."""

import numpy as np
import pytest

from repro.dataset.stats import compute_stats, render_stats
from repro.frontend import lower_program
from repro.hls import run_hls
from repro.hls.debug import binding_report, full_report, resource_breakdown, schedule_report
from repro.ir.printer import function_to_text, instruction_to_text
from tests.conftest import make_loop_program, make_straightline_program


class TestIRPrinter:
    def test_straightline_dump(self):
        text = function_to_text(lower_program(make_straightline_program()))
        assert text.startswith("define i32 @straight(")
        assert "= mul i32" in text
        assert "ret" in text
        assert text.rstrip().endswith("}")

    def test_loop_dump_has_phi_and_branches(self):
        text = function_to_text(lower_program(make_loop_program()))
        assert "phi i32 [" in text
        assert "br " in text and "label %for.head" in text
        assert "; memory %x" in text

    def test_every_instruction_printable(self):
        fn = lower_program(make_loop_program())
        for inst in fn.instructions():
            line = instruction_to_text(inst)
            assert isinstance(line, str) and line

    def test_block_labels_present(self):
        fn = lower_program(make_loop_program())
        text = function_to_text(fn)
        for block in fn.blocks:
            assert f"{block.name}:" in text


class TestHLSDebugReports:
    @pytest.fixture(scope="class")
    def result(self):
        return run_hls(lower_program(make_loop_program()))

    def test_schedule_report_lists_all_ops(self, result):
        text = schedule_report(result)
        assert "Schedule of loopy" in text
        assert text.count("\n") >= result.function.num_instructions

    def test_binding_report_shows_units(self, result):
        text = binding_report(result)
        assert "Binding of loopy" in text
        assert "FU0" in text

    def test_resource_breakdown_totals_header(self, result):
        text = resource_breakdown(result)
        assert "Datapath attribution" in text
        assert "load" in text or "phi" in text

    def test_full_report_concatenates(self, result):
        text = full_report(result)
        assert "Schedule of" in text
        assert "Binding of" in text
        assert "Datapath attribution" in text


class TestDatasetStats:
    def test_stats_shapes(self, dfg_samples):
        stats = compute_stats(dfg_samples)
        assert stats.num_graphs == len(dfg_samples)
        assert stats.num_nodes == sum(s.num_nodes for s in dfg_samples)
        assert stats.nodes_per_graph[0] <= stats.nodes_per_graph[1]
        assert stats.nodes_per_graph[1] <= stats.nodes_per_graph[2]
        assert abs(sum(stats.edge_type_fractions.values()) - 1.0) < 1e-9
        assert set(stats.label_ranges) == {"DSP", "LUT", "FF", "CP"}

    def test_dfg_has_no_back_edges(self, dfg_samples):
        assert compute_stats(dfg_samples).back_edge_fraction == 0.0

    def test_cdfg_has_back_edges(self, cdfg_samples):
        assert compute_stats(cdfg_samples).back_edge_fraction > 0.0

    def test_positive_rates_in_unit_interval(self, dfg_samples):
        rates = compute_stats(dfg_samples).node_label_positive_rates
        assert all(0.0 < r < 1.0 for r in rates)

    def test_render(self, dfg_samples):
        text = render_stats(compute_stats(dfg_samples), title="DFG set")
        assert "DFG set" in text
        assert "label LUT min/med/max" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compute_stats([])
