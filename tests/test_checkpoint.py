"""Crash-safe checkpointed training: bitwise resume parity, atomic
writes, corruption recovery, retention, signal flush.

The acceptance bar throughout is *bitwise* equality between a clean
uninterrupted run and any checkpointed / killed / resumed variant —
checkpointing must be pure observation, and resume must reconstruct the
exact trainer state (weights, optimiser moments, every RNG, loop
position, partial loss sums)."""

from __future__ import annotations

import json
import signal

import numpy as np
import pytest

from repro.faults import FaultPlan, FaultSpec, WorkerKilled, use_faults
from repro.gnn import GraphRegressor
from repro.integrity import IntegrityError
from repro.models import HierarchicalPredictor, OffTheShelfPredictor
from repro.models.base import PredictorConfig
from repro.obs import get_registry
from repro.optim import SGD, Adam
from repro.tensor import Tensor
from repro.training import (
    CheckpointConfig,
    CheckpointManager,
    TrainConfig,
    TrainingInterrupted,
    load_checkpoint,
    train_graph_regressor,
)
from repro.training.checkpoint import (
    checkpoint_name,
    module_rng_states,
    restore_module_rngs,
)
from repro.utils.rng import seed_all

TYPES = 8


def make_model(in_dim: int, dropout: float = 0.0) -> GraphRegressor:
    return GraphRegressor(
        "gcn",
        in_dim=in_dim,
        hidden_dim=12,
        num_layers=2,
        num_edge_types=TYPES,
        dropout=dropout,
        rng=np.random.default_rng(0),
    )


@pytest.fixture(scope="module")
def split(dfg_samples):
    return dfg_samples[:16], dfg_samples[16:20]


#: 16 train samples / batch 8 = 2 optimiser steps per epoch.
CONFIG = TrainConfig(epochs=4, batch_size=8, seed=0)
STEPS_PER_EPOCH = 2


def fit(split, dropout=0.0, config=CONFIG, **kwargs):
    train, val = split
    # Models built without an explicit per-module rng fork dropout
    # generators from the process-global one; reseed so every run in
    # this suite constructs from the same point (the repo's documented
    # one-seed_all-per-run convention).
    seed_all(0)
    model = make_model(train[0].feature_dim, dropout=dropout)
    return train_graph_regressor(model, train, val, config, **kwargs)


def kill_plan(step: int) -> FaultPlan:
    return FaultPlan(
        specs=(FaultSpec(seam="train.step", fail_on_calls=(step,), kill=True),)
    )


class TestBitwiseParity:
    def test_checkpointing_is_observation_only(self, split, tmp_path):
        clean = fit(split)
        ckpt = CheckpointConfig(dir=tmp_path, every_epochs=2)
        observed = fit(split, checkpoint=ckpt)
        assert observed.history == clean.history
        assert observed.best_val_metric == clean.best_val_metric
        manager = CheckpointManager(ckpt)
        names = [p.name for p in manager.checkpoints()]
        # Boundary snapshots after epochs 2 and 4 (global steps 4, 8).
        assert names == [checkpoint_name(4), checkpoint_name(8)]

    def test_kill_mid_epoch_resume_is_bitwise(self, split, tmp_path):
        clean = fit(split, dropout=0.1)
        ckpt = CheckpointConfig(dir=tmp_path, every_epochs=1)
        # Step 5 = first step of epoch 3: the snapshot that matters is
        # the epoch-2 boundary one, resume re-enters mid-schedule state.
        with pytest.raises(WorkerKilled), use_faults(kill_plan(5)):
            fit(split, dropout=0.1, checkpoint=ckpt)
        resumed = fit(split, dropout=0.1, checkpoint=ckpt, resume=True)
        assert resumed.history == clean.history
        assert resumed.best_val_metric == clean.best_val_metric
        assert resumed.best_epoch == clean.best_epoch

    def test_resume_from_explicit_checkpoint_path(self, split, tmp_path):
        clean = fit(split)
        ckpt = CheckpointConfig(dir=tmp_path, every_epochs=2, keep_last=3)
        fit(split, checkpoint=ckpt)
        middle = CheckpointManager(ckpt).checkpoints()[0]  # after epoch 2
        resumed = fit(split, resume=middle)
        assert resumed.history == clean.history

    def test_resume_true_with_empty_dir_is_a_fresh_run(self, split, tmp_path):
        clean = fit(split)
        ckpt = CheckpointConfig(dir=tmp_path / "empty")
        fresh = fit(split, checkpoint=ckpt, resume=True)
        assert fresh.history == clean.history

    def test_resume_true_without_config_is_an_error(self, split):
        with pytest.raises(ValueError, match="CheckpointConfig"):
            fit(split, resume=True)


class TestSignalFlush:
    def test_sigterm_flushes_checkpoint_and_resume_matches(
        self, split, tmp_path, monkeypatch
    ):
        clean = fit(split)
        ckpt = CheckpointConfig(dir=tmp_path, every_epochs=10)  # boundary off
        calls = {"n": 0}
        import repro.training.trainer as trainer_module

        original = trainer_module.clip_grad_norm

        def interrupting(parameters, max_norm):
            calls["n"] += 1
            if calls["n"] == 3:  # mid-epoch 2
                signal.raise_signal(signal.SIGTERM)
            return original(parameters, max_norm)

        monkeypatch.setattr(trainer_module, "clip_grad_norm", interrupting)
        with pytest.raises(TrainingInterrupted) as excinfo:
            fit(split, checkpoint=ckpt)
        monkeypatch.setattr(trainer_module, "clip_grad_norm", original)
        flushed = excinfo.value.checkpoint
        assert flushed is not None and flushed.is_dir()
        state = load_checkpoint(flushed)
        assert (state.epoch, state.batch_index) == (2, 1)  # next position
        resumed = fit(split, checkpoint=ckpt, resume=True)
        assert resumed.history == clean.history
        # Handlers were restored on exit from the fit.
        assert signal.getsignal(signal.SIGTERM) == signal.SIG_DFL

    def test_on_signal_false_does_not_install_handlers(self, split, tmp_path):
        before = signal.getsignal(signal.SIGTERM)
        ckpt = CheckpointConfig(dir=tmp_path, on_signal=False)
        fit(split, checkpoint=ckpt)
        assert signal.getsignal(signal.SIGTERM) == before


class TestCorruptionRecovery:
    def test_truncated_state_raises_integrity_error(self, split, tmp_path):
        ckpt = CheckpointConfig(dir=tmp_path)
        fit(split, checkpoint=ckpt)
        newest = CheckpointManager(ckpt).checkpoints()[-1]
        state_path = newest / "state.npz"
        state_path.write_bytes(state_path.read_bytes()[:-20])
        with pytest.raises(IntegrityError, match="digest mismatch"):
            load_checkpoint(newest)

    def test_bit_flip_raises_integrity_error(self, split, tmp_path):
        ckpt = CheckpointConfig(dir=tmp_path)
        fit(split, checkpoint=ckpt)
        newest = CheckpointManager(ckpt).checkpoints()[-1]
        state_path = newest / "state.npz"
        raw = bytearray(state_path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        state_path.write_bytes(bytes(raw))
        with pytest.raises(IntegrityError):
            load_checkpoint(newest)

    def test_torn_meta_raises_integrity_error(self, split, tmp_path):
        ckpt = CheckpointConfig(dir=tmp_path)
        fit(split, checkpoint=ckpt)
        newest = CheckpointManager(ckpt).checkpoints()[-1]
        (newest / "meta.json").write_text('{"schema_version": 1, "trunc')
        with pytest.raises(IntegrityError, match="unreadable"):
            load_checkpoint(newest)

    def test_corrupt_newest_skips_to_older_and_warns(
        self, split, tmp_path, caplog
    ):
        clean = fit(split)
        ckpt = CheckpointConfig(dir=tmp_path, every_epochs=1, keep_last=4)
        fit(split, checkpoint=ckpt)
        paths = CheckpointManager(ckpt).checkpoints()
        state_path = paths[-1] / "state.npz"
        state_path.write_bytes(state_path.read_bytes()[:-8])
        skipped = get_registry().counter("train.checkpoints_skipped")
        before = skipped.value
        with caplog.at_level("WARNING", logger="repro.training.checkpoint"):
            resumed = fit(split, checkpoint=ckpt, resume=True)
        assert skipped.value == before + 1
        assert any("skipping corrupt" in r.message for r in caplog.records)
        # Older snapshot = end of epoch 3; replaying epoch 4 lands on the
        # same curve.
        assert resumed.history == clean.history

    def test_all_corrupt_raises(self, split, tmp_path):
        ckpt = CheckpointConfig(dir=tmp_path, every_epochs=4)
        fit(split, checkpoint=ckpt)
        for path in CheckpointManager(ckpt).checkpoints():
            (path / "meta.json").write_text("not json")
        with pytest.raises(IntegrityError, match="corrupt"):
            fit(split, checkpoint=ckpt, resume=True)

    def test_kill_mid_checkpoint_leaves_torn_tmp_only(self, split, tmp_path):
        clean = fit(split)
        ckpt = CheckpointConfig(dir=tmp_path, every_epochs=1)
        # The train.checkpoint seam is keyed by global step; the save
        # after epoch 2 happens at step 4. Kill between write and rename.
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    seam="train.checkpoint",
                    on_keys=("4",),
                    fail_on_calls=(1,),
                    kill=True,
                ),
            )
        )
        with pytest.raises(WorkerKilled), use_faults(plan):
            fit(split, checkpoint=ckpt)
        manager = CheckpointManager(ckpt)
        names = [p.name for p in manager.checkpoints()]
        assert names == [checkpoint_name(2)]  # epoch-1 snapshot survives
        assert (tmp_path / f".tmp-{checkpoint_name(4)}").is_dir()
        resumed = fit(split, checkpoint=ckpt, resume=True)
        assert resumed.history == clean.history


class TestGuards:
    def test_config_mismatch_is_refused(self, split, tmp_path):
        ckpt = CheckpointConfig(dir=tmp_path)
        fit(split, checkpoint=ckpt)
        changed = TrainConfig(epochs=4, batch_size=8, seed=0, lr=1e-4)
        with pytest.raises(ValueError, match="different training config"):
            fit(split, config=changed, checkpoint=ckpt, resume=True)

    def test_dataset_size_mismatch_is_refused(self, split, tmp_path, dfg_samples):
        ckpt = CheckpointConfig(dir=tmp_path)
        fit(split, checkpoint=ckpt)
        smaller = (dfg_samples[:8], dfg_samples[16:20])
        with pytest.raises(ValueError, match="training samples"):
            fit(smaller, checkpoint=ckpt, resume=True)

    def test_wrong_task_is_refused(self, split, tmp_path, dfg_samples):
        from repro.gnn import NodeClassifier
        from repro.training import train_node_classifier

        ckpt = CheckpointConfig(dir=tmp_path)
        fit(split, checkpoint=ckpt)
        model = NodeClassifier(
            "gcn",
            in_dim=dfg_samples[0].feature_dim,
            hidden_dim=12,
            num_layers=2,
            num_edge_types=TYPES,
            rng=np.random.default_rng(0),
        )
        with pytest.raises(ValueError, match="different task"):
            train_node_classifier(
                model, split[0], split[1], CONFIG, checkpoint=ckpt, resume=True
            )

    def test_checkpoint_config_validation(self, tmp_path):
        with pytest.raises(ValueError, match="every_epochs"):
            CheckpointConfig(dir=tmp_path, every_epochs=0)
        with pytest.raises(ValueError, match="keep_last"):
            CheckpointConfig(dir=tmp_path, keep_last=0)


class TestRetention:
    def _scripted_fit(self, split, tmp_path, monkeypatch, keep_best: bool):
        """6 epochs whose val metric dips at epoch 2 then worsens, so the
        best checkpoint is never among the newest ``keep_last``."""
        import repro.training.trainer as trainer_module

        scripted = iter([1.0, 0.1, 0.5, 0.6, 0.7, 0.8])
        monkeypatch.setattr(
            trainer_module,
            "evaluate_regressor",
            lambda *args, **kwargs: np.array([next(scripted)]),
        )
        ckpt = CheckpointConfig(
            dir=tmp_path, every_epochs=1, keep_last=2, keep_best=keep_best
        )
        config = TrainConfig(epochs=6, batch_size=8, seed=0)
        fit(split, config=config, checkpoint=ckpt)
        return CheckpointManager(ckpt)

    def test_keep_last_plus_best(self, split, tmp_path, monkeypatch):
        manager = self._scripted_fit(split, tmp_path, monkeypatch, True)
        names = [p.name for p in manager.checkpoints()]
        # Epoch-2 snapshot (step 4) retained for its metric; epochs 5-6
        # (steps 10, 12) retained as the newest two.
        assert names == [checkpoint_name(4), checkpoint_name(10), checkpoint_name(12)]

    def test_keep_last_only(self, split, tmp_path, monkeypatch):
        manager = self._scripted_fit(split, tmp_path, monkeypatch, False)
        names = [p.name for p in manager.checkpoints()]
        assert names == [checkpoint_name(10), checkpoint_name(12)]

    def test_meta_records_val_metric(self, split, tmp_path):
        ckpt = CheckpointConfig(dir=tmp_path, every_epochs=4)
        result = fit(split, checkpoint=ckpt)
        newest = CheckpointManager(ckpt).checkpoints()[-1]
        meta = json.loads((newest / "meta.json").read_text())
        assert meta["val_metric"] == result.history[-1]["val_mape"]


class TestStateRoundTrips:
    def _params(self):
        rng = np.random.default_rng(3)
        return [
            Tensor(rng.normal(size=(4, 3)), requires_grad=True),
            Tensor(rng.normal(size=(3,)), requires_grad=True),
        ]

    def _step(self, optimizer, params):
        for p in params:
            p.grad = np.ones_like(p.data)
        optimizer.step()

    @pytest.mark.parametrize("cls", [Adam, SGD])
    def test_optimizer_state_dict_round_trip(self, cls):
        params = self._params()
        kwargs = {"momentum": 0.9} if cls is SGD else {}
        optimizer = cls(params, lr=0.01, **kwargs)
        self._step(optimizer, params)
        self._step(optimizer, params)
        exported = optimizer.state_dict()

        twin_params = self._params()
        for twin, p in zip(twin_params, params):
            twin.data[...] = p.data
        twin = cls(twin_params, lr=0.01, **kwargs)
        twin.load_state_dict(exported)
        self._step(optimizer, params)
        self._step(twin, twin_params)
        for a, b in zip(params, twin_params):
            np.testing.assert_array_equal(a.data, b.data)

    def test_optimizer_load_rejects_mismatched_keys(self):
        params = self._params()
        optimizer = Adam(params, lr=0.01)
        state = optimizer.state_dict()
        state.pop("step")
        with pytest.raises(KeyError):
            optimizer.load_state_dict(state)

    def test_module_rng_states_round_trip(self, dfg_samples):
        model = make_model(dfg_samples[0].feature_dim, dropout=0.2)
        states = module_rng_states(model)
        assert states  # dropout modules own generators
        # Advance every generator, restore, and check the streams rewind.
        drawn = {
            name: module.rng.random()
            for name, module in model.named_modules()
            if name in states
        }
        restore_module_rngs(model, states)
        redrawn = {
            name: module.rng.random()
            for name, module in model.named_modules()
            if name in states
        }
        assert drawn == redrawn

    def test_restore_module_rngs_is_strict(self, dfg_samples):
        model = make_model(dfg_samples[0].feature_dim, dropout=0.2)
        states = module_rng_states(model)
        no_dropout = make_model(dfg_samples[0].feature_dim, dropout=0.0)
        with pytest.raises(ValueError, match="module RNG mismatch"):
            restore_module_rngs(no_dropout, states)


class TestPredictorIntegration:
    def test_off_the_shelf_fit_checkpoints(self, dfg_samples, tmp_path):
        from tests.test_serve import tiny_config

        predictor = OffTheShelfPredictor(tiny_config())
        ckpt = CheckpointConfig(dir=tmp_path)
        predictor.fit(
            dfg_samples[:16], dfg_samples[16:20], checkpoint=ckpt
        )
        assert CheckpointManager(ckpt).checkpoints()

    def test_hierarchical_fit_checkpoints_per_stage(self, dfg_samples, tmp_path):
        config = PredictorConfig(
            model_name="gcn",
            hidden_dim=12,
            num_layers=2,
            train=TrainConfig(epochs=2, batch_size=8, seed=0),
        )
        predictor = HierarchicalPredictor(config)
        ckpt = CheckpointConfig(dir=tmp_path)
        predictor.fit(
            dfg_samples[:16], dfg_samples[16:20], checkpoint=ckpt
        )
        assert (tmp_path / "node").is_dir()
        assert (tmp_path / "graph").is_dir()
        node_state = load_checkpoint(
            CheckpointManager(
                CheckpointConfig(dir=tmp_path / "node")
            ).checkpoints()[-1]
        )
        assert node_state.metric_name == "val_acc"
