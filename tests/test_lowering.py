"""Unit tests for AST -> SSA IR lowering."""

import pytest

from repro.frontend import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Cond,
    Decl,
    For,
    Function,
    If,
    IntConst,
    LoweringError,
    Return,
    UnOp,
    Var,
    lower_function,
    lower_program,
)
from repro.frontend.lower import assigned_scalar_names
from repro.ir import Opcode, verify_function
from repro.typesys import CArray, CInt

I16, I32 = CInt(16), CInt(32)


def lower_body(body, params=(("a", I32), ("b", I32))):
    return lower_function(Function("t", list(params), I32, body))


def opcodes_of(fn):
    return [i.opcode for i in fn.instructions()]


class TestStraightLine:
    def test_single_block(self, straightline_program):
        fn = lower_program(straightline_program)
        assert fn.is_single_block
        verify_function(fn)

    def test_expected_opcodes(self, straightline_program):
        ops = opcodes_of(lower_program(straightline_program))
        assert Opcode.MUL in ops
        assert Opcode.ADD in ops
        assert Opcode.XOR in ops
        assert ops[-1] == Opcode.RET

    def test_missing_return_synthesised(self):
        fn = lower_body([Decl("x", I32, IntConst(1))])
        assert fn.entry.terminator.opcode == Opcode.RET

    def test_comparison_produces_i1_icmp(self):
        fn = lower_body([Return(BinOp("<", Var("a"), Var("b")))])
        icmps = [i for i in fn.instructions() if i.opcode == Opcode.ICMP]
        assert len(icmps) == 1
        assert icmps[0].bitwidth == 1

    def test_width_promotion_inserts_cast(self):
        fn = lower_body(
            [Return(BinOp("+", Var("a"), Var("b")))],
            params=(("a", I16), ("b", I32)),
        )
        assert Opcode.SEXT in opcodes_of(fn)

    def test_narrowing_assignment_truncates(self):
        fn = lower_body([
            Decl("x", I16, BinOp("*", Var("a"), Var("b"))),
            Return(Var("x")),
        ])
        assert Opcode.TRUNC in opcodes_of(fn)

    def test_unary_ops(self):
        fn = lower_body([Return(UnOp("-", UnOp("~", Var("a"))))])
        ops = opcodes_of(fn)
        assert Opcode.SUB in ops  # -x => 0 - x
        assert Opcode.XOR in ops  # ~x => x ^ -1

    def test_ternary_lowers_to_select(self):
        fn = lower_body([
            Return(Cond(BinOp(">", Var("a"), Var("b")), Var("a"), Var("b"))),
        ])
        assert Opcode.SELECT in opcodes_of(fn)

    def test_min_max_abs_intrinsics(self):
        fn = lower_body([
            Decl("m", I32, Call("min", (Var("a"), Var("b")))),
            Decl("M", I32, Call("max", (Var("a"), Var("b")))),
            Return(Call("abs", (BinOp("-", Var("m"), Var("M")),))),
        ])
        ops = opcodes_of(fn)
        assert ops.count(Opcode.SELECT) == 3

    def test_unknown_intrinsic_rejected(self):
        with pytest.raises(LoweringError):
            lower_body([Return(Call("sqrt", (Var("a"),)))])


class TestErrors:
    def test_undefined_variable(self):
        with pytest.raises(LoweringError):
            lower_body([Return(Var("zzz"))])

    def test_assignment_to_undeclared(self):
        with pytest.raises(LoweringError):
            lower_body([Assign(Var("zzz"), IntConst(1))])

    def test_array_used_as_scalar(self):
        with pytest.raises(LoweringError):
            lower_body(
                [Return(Var("arr"))], params=(("arr", CArray(I32, 4)),)
            )

    def test_undefined_array(self):
        with pytest.raises(LoweringError):
            lower_body([Return(ArrayRef("none", IntConst(0)))])

    def test_statement_after_return_rejected(self):
        with pytest.raises(LoweringError):
            lower_body([Return(Var("a")), Decl("x", I32, IntConst(1))])

    def test_return_inside_loop_rejected(self):
        with pytest.raises(LoweringError):
            lower_body([For("i", 0, 4, 1, [Return(Var("a"))])])


class TestControlFlow:
    def test_if_creates_phi_for_modified_var(self):
        fn = lower_body([
            Decl("x", I32, IntConst(0)),
            If(BinOp(">", Var("a"), IntConst(0)),
               [Assign(Var("x"), IntConst(1))],
               [Assign(Var("x"), IntConst(2))]),
            Return(Var("x")),
        ])
        verify_function(fn)
        phis = [i for i in fn.instructions() if i.opcode == Opcode.PHI]
        assert len(phis) == 1
        assert len(phis[0].operands) == 2

    def test_if_without_else_phi_uses_cond_block(self):
        fn = lower_body([
            Decl("x", I32, IntConst(0)),
            If(BinOp(">", Var("a"), IntConst(0)), [Assign(Var("x"), IntConst(1))]),
            Return(Var("x")),
        ])
        verify_function(fn)
        phis = [i for i in fn.instructions() if i.opcode == Opcode.PHI]
        assert len(phis) == 1
        assert "entry" in phis[0].incoming_blocks

    def test_unmodified_vars_get_no_phi(self):
        fn = lower_body([
            Decl("x", I32, IntConst(0)),
            Decl("y", I32, IntConst(5)),
            If(BinOp(">", Var("a"), IntConst(0)), [Assign(Var("x"), IntConst(1))]),
            Return(BinOp("+", Var("x"), Var("y"))),
        ])
        phis = [i for i in fn.instructions() if i.opcode == Opcode.PHI]
        assert len(phis) == 1  # only x

    def test_loop_structure(self):
        fn = lower_body([
            Decl("s", I32, IntConst(0)),
            For("i", 0, 4, 1, [Assign(Var("s"), BinOp("+", Var("s"), Var("i")))]),
            Return(Var("s")),
        ])
        verify_function(fn)
        names = [b.name for b in fn.blocks]
        assert any(n.startswith("for.head") for n in names)
        assert any(n.startswith("for.latch") for n in names)
        phis = [i for i in fn.instructions() if i.opcode == Opcode.PHI]
        assert len(phis) == 2  # loop index + carried accumulator

    def test_loop_variable_out_of_scope_after_loop(self):
        with pytest.raises(LoweringError):
            lower_body([
                For("i", 0, 4, 1, []),
                Return(Var("i")),
            ])

    def test_loop_variable_shadowing_restored(self):
        fn = lower_body([
            Decl("i", I32, IntConst(42)),
            For("i", 0, 4, 1, []),
            Return(Var("i")),
        ])
        verify_function(fn)
        # the returned value is the outer i (the constant 42)
        ret = fn.blocks[-1].terminator
        assert ret.opcode == Opcode.RET

    def test_nested_loops_verify(self):
        fn = lower_body([
            Decl("s", I32, IntConst(0)),
            For("i", 0, 4, 1, [
                For("j", 0, 4, 1, [
                    Assign(Var("s"), BinOp("+", Var("s"), BinOp("*", Var("i"), Var("j")))),
                ]),
            ]),
            Return(Var("s")),
        ])
        verify_function(fn)
        assert len(fn.blocks) == 9  # entry + 2 x (head/body/latch/end)

    def test_if_inside_loop_verifies(self, loop_program):
        fn = lower_program(loop_program)
        verify_function(fn)
        assert not fn.is_single_block


class TestMemory:
    def test_load_has_gep_and_memory_link(self):
        fn = lower_body(
            [Return(ArrayRef("arr", IntConst(2)))],
            params=(("arr", CArray(I16, 8)),),
        )
        loads = [i for i in fn.instructions() if i.opcode == Opcode.LOAD]
        geps = [i for i in fn.instructions() if i.opcode == Opcode.GEP]
        assert len(loads) == 1 and len(geps) == 1
        assert loads[0].memory is not None
        assert loads[0].bitwidth == 16

    def test_store_coerces_value_to_element_width(self):
        fn = lower_body(
            [
                Assign(ArrayRef("arr", IntConst(0)), Var("a")),
                Return(IntConst(0)),
            ],
            params=(("arr", CArray(I16, 8)), ("a", I32)),
        )
        assert Opcode.TRUNC in opcodes_of(fn)
        stores = [i for i in fn.instructions() if i.opcode == Opcode.STORE]
        assert len(stores) == 1

    def test_local_array_allocates(self):
        fn = lower_body([
            Decl("buf", CArray(I32, 4)),
            Assign(ArrayRef("buf", IntConst(0)), Var("a")),
            Return(ArrayRef("buf", IntConst(0))),
        ])
        assert Opcode.ALLOCA in opcodes_of(fn)


class TestAssignedScan:
    def test_collects_nested_assignments(self):
        stmts = [
            Assign(Var("x"), IntConst(1)),
            If(BinOp(">", Var("x"), IntConst(0)), [Assign(Var("y"), IntConst(2))]),
            For("i", 0, 2, 1, [Assign(Var("z"), IntConst(3))]),
        ]
        assert assigned_scalar_names(stmts) == {"x", "y", "z"}

    def test_array_stores_not_collected(self):
        stmts = [Assign(ArrayRef("a", IntConst(0)), IntConst(1))]
        assert assigned_scalar_names(stmts) == set()
