"""Unit + property tests for scatter/gather — the message-passing substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import (
    Tensor,
    gather_rows,
    gradcheck,
    scatter_max,
    scatter_mean,
    scatter_min,
    scatter_softmax,
    scatter_std,
    scatter_sum,
    segment_counts,
)


class TestGather:
    def test_gather_selects_rows(self):
        x = Tensor(np.arange(6.0).reshape(3, 2))
        out = gather_rows(x, np.array([2, 0]))
        np.testing.assert_allclose(out.data, [[4.0, 5.0], [0.0, 1.0]])

    def test_gather_grad_accumulates_duplicates(self):
        x = Tensor(np.zeros((3, 2)), requires_grad=True)
        gather_rows(x, np.array([1, 1, 1])).sum().backward()
        np.testing.assert_allclose(x.grad, [[0, 0], [3, 3], [0, 0]])

    def test_gather_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        idx = np.array([0, 3, 3, 1])
        assert gradcheck(lambda: gather_rows(x, idx) * 2.0, [x])


class TestScatterSum:
    def test_values(self):
        src = Tensor(np.array([[1.0], [2.0], [4.0]]))
        out = scatter_sum(src, np.array([0, 0, 1]), 3)
        np.testing.assert_allclose(out.data, [[3.0], [4.0], [0.0]])

    def test_empty_segment_is_zero(self):
        src = Tensor(np.ones((2, 2)))
        out = scatter_sum(src, np.array([0, 0]), 4)
        np.testing.assert_allclose(out.data[1:], 0.0)

    def test_gradcheck(self, rng):
        src = Tensor(rng.normal(size=(5, 2)), requires_grad=True)
        idx = np.array([0, 1, 1, 2, 0])
        assert gradcheck(lambda: scatter_sum(src, idx, 3), [src])

    def test_index_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            scatter_sum(Tensor(np.ones((2, 1))), np.array([0, 5]), 3)

    def test_index_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            scatter_sum(Tensor(np.ones((2, 1))), np.array([0]), 3)


class TestScatterMean:
    def test_values(self):
        src = Tensor(np.array([[2.0], [4.0], [10.0]]))
        out = scatter_mean(src, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[3.0], [10.0]])

    def test_empty_segment_zero_not_nan(self):
        out = scatter_mean(Tensor(np.ones((1, 1))), np.array([0]), 3)
        assert np.isfinite(out.data).all()

    def test_gradcheck(self, rng):
        src = Tensor(rng.normal(size=(6, 2)), requires_grad=True)
        idx = np.array([0, 0, 0, 1, 2, 2])
        assert gradcheck(lambda: scatter_mean(src, idx, 4), [src])


class TestScatterExtremes:
    def test_max_values(self):
        src = Tensor(np.array([[1.0], [5.0], [-2.0]]))
        out = scatter_max(src, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[5.0], [-2.0]])

    def test_min_values(self):
        src = Tensor(np.array([[1.0], [5.0], [-2.0]]))
        out = scatter_min(src, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[1.0], [-2.0]])

    def test_empty_segments_are_zero(self):
        out = scatter_max(Tensor(np.full((1, 1), 7.0)), np.array([2]), 4)
        np.testing.assert_allclose(out.data[[0, 1, 3]], 0.0)

    def test_max_gradcheck(self, rng):
        src = Tensor(rng.normal(size=(6, 2)), requires_grad=True)
        idx = np.array([0, 0, 1, 1, 2, 2])
        assert gradcheck(lambda: scatter_max(src, idx, 3), [src])

    def test_min_gradcheck(self, rng):
        src = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        idx = np.array([1, 1, 0, 0, 1])
        assert gradcheck(lambda: scatter_min(src, idx, 2), [src])

    def test_max_tie_gradient_splits(self):
        src = Tensor(np.array([[3.0], [3.0]]), requires_grad=True)
        scatter_max(src, np.array([0, 0]), 1).backward(np.ones((1, 1)))
        np.testing.assert_allclose(src.grad, [[0.5], [0.5]])


class TestScatterStdSoftmax:
    def test_std_of_constant_segment_is_near_zero(self):
        src = Tensor(np.full((4, 1), 2.5))
        out = scatter_std(src, np.zeros(4, dtype=int), 1)
        assert float(out.data.reshape(())) < 1e-2

    def test_std_matches_numpy_population_std(self, rng):
        values = rng.normal(size=(8, 1))
        out = scatter_std(Tensor(values), np.zeros(8, dtype=int), 1, eps=0.0)
        np.testing.assert_allclose(
            float(out.data.reshape(())), values.std(), atol=1e-8
        )

    def test_std_gradcheck(self, rng):
        src = Tensor(rng.normal(size=(6, 2)), requires_grad=True)
        idx = np.array([0, 0, 0, 1, 1, 1])
        assert gradcheck(lambda: scatter_std(src, idx, 2), [src], atol=1e-3, rtol=1e-3)

    def test_softmax_segments_sum_to_one(self, rng):
        src = Tensor(rng.normal(size=(6, 1)))
        idx = np.array([0, 0, 1, 1, 1, 2])
        out = scatter_softmax(src, idx, 3)
        sums = scatter_sum(out, idx, 3)
        np.testing.assert_allclose(sums.data, 1.0, atol=1e-9)

    def test_softmax_gradcheck(self, rng):
        src = Tensor(rng.normal(size=(5, 2)), requires_grad=True)
        idx = np.array([0, 0, 1, 1, 1])
        assert gradcheck(lambda: scatter_softmax(src, idx, 2), [src])

    def test_softmax_stable_for_large_inputs(self):
        src = Tensor(np.array([[500.0], [502.0]]))
        out = scatter_softmax(src, np.array([0, 0]), 1)
        assert np.isfinite(out.data).all()


class TestSegmentCounts:
    def test_counts(self):
        counts = segment_counts(np.array([0, 0, 2]), 4)
        np.testing.assert_allclose(counts, [2, 0, 1, 0])


@st.composite
def _scatter_case(draw):
    n_src = draw(st.integers(1, 12))
    dim = draw(st.integers(1, 6))
    width = draw(st.integers(1, 3))
    idx = draw(
        st.lists(st.integers(0, dim - 1), min_size=n_src, max_size=n_src)
    )
    values = draw(
        st.lists(
            st.floats(-10, 10, allow_nan=False),
            min_size=n_src * width,
            max_size=n_src * width,
        )
    )
    src = np.array(values).reshape(n_src, width)
    return src, np.array(idx), dim


class TestScatterProperties:
    @given(_scatter_case())
    @settings(max_examples=60, deadline=None)
    def test_sum_preserves_total_mass(self, case):
        src, idx, dim = case
        out = scatter_sum(Tensor(src), idx, dim)
        np.testing.assert_allclose(out.data.sum(), src.sum(), atol=1e-8)

    @given(_scatter_case())
    @settings(max_examples=60, deadline=None)
    def test_max_ge_mean_per_nonempty_segment(self, case):
        src, idx, dim = case
        mx = scatter_max(Tensor(src), idx, dim).data
        mn = scatter_mean(Tensor(src), idx, dim).data
        nonempty = segment_counts(idx, dim) > 0
        assert (mx[nonempty] >= mn[nonempty] - 1e-9).all()

    @given(_scatter_case())
    @settings(max_examples=60, deadline=None)
    def test_permutation_invariance(self, case):
        src, idx, dim = case
        perm = np.random.default_rng(0).permutation(len(idx))
        a = scatter_sum(Tensor(src), idx, dim).data
        b = scatter_sum(Tensor(src[perm]), idx[perm], dim).data
        np.testing.assert_allclose(a, b, atol=1e-8)
