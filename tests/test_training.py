"""Unit tests for losses, metrics and the training loops."""

import numpy as np
import pytest

from repro.gnn import GraphRegressor, NodeClassifier
from repro.tensor import Tensor, gradcheck
from repro.training import (
    TrainConfig,
    bce_with_logits,
    binary_accuracy,
    huber_loss,
    mape,
    mse_loss,
)
from repro.training.trainer import (
    evaluate_node_classifier,
    evaluate_regressor,
    train_graph_regressor,
    train_node_classifier,
)

TYPES = 8


class TestLosses:
    def test_mse_value(self):
        loss = mse_loss(Tensor([[1.0], [3.0]]), Tensor([[0.0], [0.0]]))
        np.testing.assert_allclose(loss.data, 5.0)

    def test_mse_gradcheck(self, rng):
        pred = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        target = Tensor(rng.normal(size=(4, 2)))
        assert gradcheck(lambda: mse_loss(pred, target), [pred])

    def test_huber_quadratic_region_matches_mse_half(self):
        pred = Tensor([[0.5]])
        target = Tensor([[0.0]])
        np.testing.assert_allclose(huber_loss(pred, target, 1.0).data, 0.125)

    def test_huber_linear_region(self):
        loss = huber_loss(Tensor([[10.0]]), Tensor([[0.0]]), delta=1.0)
        np.testing.assert_allclose(loss.data, 9.5)

    def test_huber_gradcheck(self, rng):
        pred = Tensor(rng.normal(size=(5,)) * 3, requires_grad=True)
        target = Tensor(rng.normal(size=(5,)))
        assert gradcheck(lambda: huber_loss(pred, target), [pred])

    def test_bce_matches_reference(self, rng):
        logits = rng.normal(size=(6, 3))
        target = (rng.random((6, 3)) > 0.5).astype(float)
        ours = bce_with_logits(Tensor(logits), Tensor(target)).data
        p = 1 / (1 + np.exp(-logits))
        reference = -(target * np.log(p) + (1 - target) * np.log(1 - p)).mean()
        np.testing.assert_allclose(ours, reference, atol=1e-9)

    def test_bce_stable_for_extreme_logits(self):
        loss = bce_with_logits(Tensor([[1000.0, -1000.0]]), Tensor([[1.0, 0.0]]))
        assert np.isfinite(loss.data)
        np.testing.assert_allclose(loss.data, 0.0, atol=1e-9)

    def test_bce_gradcheck(self, rng):
        logits = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        target = Tensor((rng.random((4, 3)) > 0.5).astype(float))
        assert gradcheck(lambda: bce_with_logits(logits, target), [logits])


class TestMetrics:
    def test_mape_simple(self):
        result = mape(np.array([[110.0]]), np.array([[100.0]]))
        np.testing.assert_allclose(result, [0.1])

    def test_mape_floor_guards_zero_targets(self):
        result = mape(np.array([[1.0]]), np.array([[0.0]]), floor=1.0)
        np.testing.assert_allclose(result, [1.0])

    def test_mape_per_column(self):
        pred = np.array([[110.0, 90.0], [110.0, 90.0]])
        target = np.array([[100.0, 100.0], [100.0, 100.0]])
        np.testing.assert_allclose(mape(pred, target), [0.1, 0.1])

    def test_mape_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mape(np.zeros((2, 2)), np.zeros((3, 2)))

    def test_binary_accuracy(self):
        logits = np.array([[2.0, -1.0], [-2.0, 3.0]])
        labels = np.array([[1.0, 0.0], [1.0, 1.0]])
        np.testing.assert_allclose(binary_accuracy(logits, labels), [0.5, 1.0])


class TestTrainerRegression:
    def test_training_reduces_loss_and_restores_best(self, dfg_samples):
        train, val = dfg_samples[:16], dfg_samples[16:20]
        model = GraphRegressor(
            "gcn", in_dim=train[0].feature_dim, hidden_dim=16, num_layers=2,
            num_edge_types=TYPES, rng=np.random.default_rng(0),
        )
        result = train_graph_regressor(
            model, train, val, TrainConfig(epochs=8, batch_size=8, lr=3e-3)
        )
        losses = [h["loss"] for h in result.history]
        assert losses[-1] < losses[0]
        assert 1 <= result.best_epoch <= 8
        # restored weights reproduce the recorded best val MAPE
        val_mape = float(np.mean(evaluate_regressor(model, val)))
        np.testing.assert_allclose(val_mape, result.best_val_metric, atol=1e-9)

    def test_early_stopping_respects_patience(self, dfg_samples, monkeypatch):
        train, val = dfg_samples[:12], dfg_samples[12:16]
        model = GraphRegressor(
            "gcn", in_dim=train[0].feature_dim, hidden_dim=8, num_layers=1,
            num_edge_types=TYPES, rng=np.random.default_rng(0),
        )
        # Freeze the validation metric so "no improvement" is guaranteed:
        # patience must cut training off after exactly 1 + patience epochs.
        import repro.training.trainer as trainer_module

        monkeypatch.setattr(
            trainer_module,
            "evaluate_regressor",
            lambda *_args, **_kwargs: np.array([0.5, 0.5, 0.5, 0.5]),
        )
        result = train_graph_regressor(
            model, train, val,
            TrainConfig(epochs=50, batch_size=8, lr=1e-3, patience=2),
        )
        assert len(result.history) == 3
        assert result.best_epoch == 1

    def test_prediction_shape_and_positivity(self, dfg_samples):
        model = GraphRegressor(
            "gcn", in_dim=dfg_samples[0].feature_dim, hidden_dim=8, num_layers=1,
            num_edge_types=TYPES, rng=np.random.default_rng(0),
        )
        from repro.training.trainer import predict_regressor

        pred = predict_regressor(model, dfg_samples[:5])
        assert pred.shape == (5, 4)
        assert (pred > -1.0).all()  # expm1 lower bound


class TestTrainerNodeClassifier:
    def test_training_improves_accuracy(self, dfg_samples):
        train, val = dfg_samples[:16], dfg_samples[16:20]
        model = NodeClassifier(
            "sage", in_dim=train[0].feature_dim, hidden_dim=16, num_layers=2,
            num_edge_types=TYPES, rng=np.random.default_rng(0),
        )
        before = float(np.mean(evaluate_node_classifier(model, val)))
        result = train_node_classifier(
            model, train, val, TrainConfig(epochs=10, batch_size=8, lr=3e-3)
        )
        after = float(np.mean(evaluate_node_classifier(model, val)))
        assert after >= before
        assert after > 0.6  # opcode features make this task very learnable

    def test_history_records_epochs(self, dfg_samples):
        model = NodeClassifier(
            "gcn", in_dim=dfg_samples[0].feature_dim, hidden_dim=8, num_layers=1,
            num_edge_types=TYPES, rng=np.random.default_rng(0),
        )
        result = train_node_classifier(
            model, dfg_samples[:8], dfg_samples[8:12],
            TrainConfig(epochs=3, batch_size=8),
        )
        assert [h["epoch"] for h in result.history] == [1, 2, 3]
