"""Smoke tests for the experiment harness at micro scale.

These verify mechanics (finite results, correct shapes, well-formed
tables) — the scientific orderings are exercised by the benchmark
harness at the CI scale preset.
"""

import numpy as np
import pytest

from repro.experiments.common import (
    PRESETS,
    ExperimentScale,
    get_scale,
    load_real_dataset,
    predictor_config,
)
from repro.experiments.table2 import render_table2, run_table2
from repro.experiments.table3 import render_table3, run_table3
from repro.experiments.table4 import make_predictor, render_table4, run_table4
from repro.experiments.table5 import hls_report_mape, render_table5, run_table5
from repro.experiments.ablations import run_ablations

MICRO = ExperimentScale(
    name="micro",
    num_dfg=28,
    num_cdfg=20,
    hidden_dim=12,
    num_layers=2,
    epochs=3,
    batch_size=8,
    lr=3e-3,
    runs=1,
)


class TestScalePresets:
    def test_three_presets_exist(self):
        assert set(PRESETS) == {"ci", "small", "paper"}

    def test_paper_preset_matches_section_5(self):
        paper = PRESETS["paper"]
        assert paper.num_dfg == 19120
        assert paper.num_cdfg == 18570
        assert paper.hidden_dim == 300
        assert paper.num_layers == 5
        assert paper.epochs == 100
        assert paper.runs == 5

    def test_unknown_scale_rejected(self):
        with pytest.raises(KeyError):
            get_scale("huge")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_EPOCHS", "7")
        assert get_scale("ci").epochs == 7

    def test_predictor_config_propagates(self):
        config = predictor_config(MICRO, "rgcn", seed=3)
        assert config.hidden_dim == 12
        assert config.train.epochs == 3
        assert config.train.seed == 3


class TestTable2:
    def test_micro_run(self):
        results = run_table2(
            MICRO, models=("gcn",), datasets=("dfg",), verbose=False
        )
        row = results["gcn"]["dfg"]
        assert row.shape == (4,)
        assert np.isfinite(row).all()
        text = render_table2(results, datasets=("dfg",))
        assert "GCN" in text and "DFG LUT" in text


class TestTable3:
    def test_micro_run(self):
        results = run_table3(MICRO, models=("gcn",), verbose=False)
        for dataset in ("dfg", "cdfg", "real"):
            accs = results["gcn"][dataset]
            assert accs.shape == (3,)
            assert (accs >= 0).all() and (accs <= 1).all()
        assert "REAL FF" in render_table3(results)


class TestTable4:
    def test_micro_run(self):
        results = run_table4(
            MICRO, backbones=("gcn",), approaches=("base", "rich"),
            datasets=("dfg",), verbose=False,
        )
        assert np.isfinite(results["gcn"]["base"]["dfg"]).all()
        assert np.isfinite(results["gcn"]["rich"]["dfg"]).all()
        text = render_table4(results, datasets=("dfg",))
        assert "GCN-R" in text

    def test_unknown_approach_rejected(self):
        with pytest.raises(KeyError):
            make_predictor("oracle", predictor_config(MICRO, "gcn"))


class TestTable5:
    def test_hls_report_mape_shape(self):
        real = load_real_dataset()
        row = hls_report_mape(real)
        assert row.shape == (4,)
        # the signature bias: LUT error is the catastrophic one
        assert row[1] > row[0]
        assert row[1] > row[3]

    def test_micro_run(self):
        results = run_table5(
            MICRO, backbones=("gcn",), approaches=("base",), verbose=False
        )
        assert "HLS" in results and "GCN" in results
        assert np.isfinite(results["GCN"]).all()
        assert "Metric" in render_table5(results)


class TestAblations:
    def test_pooling_ablation_micro(self):
        results = run_ablations(MICRO, which=("pooling",), verbose=False)
        assert set(results["pooling"]) == {"sum", "mean", "max"}
        assert all(np.isfinite(v) for v in results["pooling"].values())

    def test_feature_ablation_micro(self):
        results = run_ablations(MICRO, which=("features",), verbose=False)
        assert set(results["features"]) == {"full_table1", "node_type_only"}
