"""Unit + property tests for graph containers and batching."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Batch, GraphData, validate_graph
from repro.graph.batch import iter_batches
from repro.graph.validation import GraphValidationError


def make_graph(n_nodes=4, n_edges=3, feature_dim=5, seed=0, with_labels=True):
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, n_nodes, size=(2, n_edges))
    return GraphData(
        node_features=rng.normal(size=(n_nodes, feature_dim)),
        edge_index=edges,
        edge_type=rng.integers(0, 4, n_edges),
        edge_back=np.zeros(n_edges, dtype=int),
        y=rng.uniform(1, 10, 4) if with_labels else None,
        node_labels=rng.integers(0, 2, (n_nodes, 3)).astype(float)
        if with_labels
        else None,
        node_resources=rng.uniform(0, 5, (n_nodes, 3)) if with_labels else None,
        meta={"kind": "dfg", "name": f"g{seed}"},
    )


class TestGraphData:
    def test_shapes_normalised(self):
        g = make_graph()
        assert g.edge_index.shape == (2, 3)
        assert g.edge_type.shape == (3,)
        assert g.num_nodes == 4
        assert g.num_edges == 3

    def test_with_features_preserves_topology(self):
        g = make_graph()
        g2 = g.with_features(np.zeros((4, 9)))
        assert g2.feature_dim == 9
        np.testing.assert_array_equal(g2.edge_index, g.edge_index)
        assert g2.meta == g.meta
        assert g2.meta is not g.meta  # copied, not shared

    def test_repr_contains_counts(self):
        assert "nodes=4" in repr(make_graph())


class TestValidation:
    def test_valid_graph_passes(self):
        validate_graph(make_graph())

    def test_empty_graph_rejected(self):
        g = make_graph()
        g.node_features = np.zeros((0, 5))
        with pytest.raises(GraphValidationError):
            validate_graph(g)

    def test_edge_out_of_range_rejected(self):
        g = make_graph()
        g.edge_index = np.array([[0], [99]])
        g.edge_type = np.array([0])
        g.edge_back = np.array([0])
        with pytest.raises(GraphValidationError):
            validate_graph(g)

    def test_nonfinite_features_rejected(self):
        g = make_graph()
        g.node_features[0, 0] = np.nan
        with pytest.raises(GraphValidationError):
            validate_graph(g)

    def test_bad_edge_back_rejected(self):
        g = make_graph()
        g.edge_back = g.edge_back + 2
        with pytest.raises(GraphValidationError):
            validate_graph(g)

    def test_bad_target_shape_rejected(self):
        g = make_graph()
        g.y = np.array([1.0, 2.0])
        with pytest.raises(GraphValidationError):
            validate_graph(g)

    def test_nonbinary_node_labels_rejected(self):
        g = make_graph()
        g.node_labels = g.node_labels + 0.5
        with pytest.raises(GraphValidationError):
            validate_graph(g)


class TestBatch:
    def test_offsets_applied(self):
        a = make_graph(n_nodes=3, seed=1)
        b = make_graph(n_nodes=5, seed=2)
        batch = Batch([a, b])
        assert batch.num_nodes == 8
        assert batch.edge_index[:, a.num_edges :].min() >= 3

    def test_batch_vector(self):
        a = make_graph(n_nodes=2, seed=1)
        b = make_graph(n_nodes=3, seed=2)
        batch = Batch([a, b])
        np.testing.assert_array_equal(batch.batch, [0, 0, 1, 1, 1])
        np.testing.assert_array_equal(batch.ptr, [0, 2, 5])

    def test_targets_stacked(self):
        batch = Batch([make_graph(seed=1), make_graph(seed=2)])
        assert batch.y.shape == (2, 4)
        assert batch.node_labels.shape == (8, 3)
        assert batch.node_resources.shape == (8, 3)

    def test_missing_targets_give_none(self):
        batch = Batch([make_graph(with_labels=False)])
        assert batch.y is None
        assert batch.node_labels is None

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            Batch([])

    def test_mixed_feature_dims_rejected(self):
        with pytest.raises(ValueError):
            Batch([make_graph(feature_dim=5), make_graph(feature_dim=6)])

    def test_single_graph_batch(self):
        g = make_graph()
        batch = Batch([g])
        np.testing.assert_array_equal(batch.edge_index, g.edge_index)


class TestIterBatches:
    def test_covers_all_graphs(self):
        graphs = [make_graph(seed=i) for i in range(7)]
        batches = list(iter_batches(graphs, batch_size=3))
        assert sum(b.num_graphs for b in batches) == 7
        assert len(batches) == 3

    def test_shuffle_changes_order(self):
        graphs = [make_graph(seed=i) for i in range(20)]
        fixed = [b.graphs[0].meta["name"] for b in iter_batches(graphs, 1)]
        shuffled = [
            b.graphs[0].meta["name"]
            for b in iter_batches(graphs, 1, rng=np.random.default_rng(3))
        ]
        assert fixed != shuffled
        assert sorted(fixed) == sorted(shuffled)

    def test_bad_batch_size(self):
        with pytest.raises(ValueError):
            list(iter_batches([make_graph()], 0))


class TestBatchProperties:
    @given(
        sizes=st.lists(st.integers(1, 6), min_size=1, max_size=5),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_batch_preserves_node_and_edge_counts(self, sizes, seed):
        graphs = [
            make_graph(n_nodes=n, n_edges=n, seed=seed + i)
            for i, n in enumerate(sizes)
        ]
        batch = Batch(graphs)
        assert batch.num_nodes == sum(g.num_nodes for g in graphs)
        assert batch.num_edges == sum(g.num_edges for g in graphs)
        # Every edge stays within its graph's node range.
        for k, graph in enumerate(graphs):
            lo, hi = batch.ptr[k], batch.ptr[k + 1]
            mask = slice(
                sum(g.num_edges for g in graphs[:k]),
                sum(g.num_edges for g in graphs[: k + 1]),
            )
            segment = batch.edge_index[:, mask]
            assert (segment >= lo).all() and (segment < hi).all()
