"""Unit tests for binding and functional-unit sharing."""

import pytest

from repro.frontend import BinOp, Decl, Function, IntConst, Program, Return, Var, lower_program
from repro.hls import bind_function, characterize, schedule_function
from repro.hls.binding import SHAREABLE_FAMILIES, FunctionalUnit
from repro.ir import Opcode
from repro.typesys import CInt

I32 = CInt(32)


def make_mul_chain(n):
    """n dependent multiplies — different cycles, so fully shareable."""
    body = [Decl("m0", I32, BinOp("*", Var("a"), Var("b")))]
    for k in range(1, n):
        body.append(Decl(f"m{k}", I32, BinOp("*", Var(f"m{k-1}"), Var("b"))))
    body.append(Return(Var(f"m{n-1}")))
    return lower_program(
        Program("chain", [Function("chain", [("a", I32), ("b", I32)], I32, body)])
    )


def make_mul_parallel(n):
    """n independent multiplies — same cycle, so not shareable."""
    body = [Decl(f"m{k}", I32, BinOp("*", Var("a"), Var("b"))) for k in range(n)]
    ret = Var("m0")
    for k in range(1, n):
        ret = BinOp("^", ret, Var(f"m{k}"))
    body.append(Return(ret))
    return lower_program(
        Program("par", [Function("par", [("a", I32), ("b", I32)], I32, body)])
    )


class TestSharing:
    def test_dependent_multiplies_share_one_unit(self):
        fn = make_mul_chain(4)
        binding = bind_function(fn, schedule_function(fn))
        mul_units = [u for u in binding.units if u.family == "mul"]
        assert len(mul_units) == 1
        assert mul_units[0].num_sharers == 4

    def test_parallel_multiplies_get_separate_units(self):
        fn = make_mul_parallel(3)
        binding = bind_function(fn, schedule_function(fn))
        mul_units = [u for u in binding.units if u.family == "mul"]
        assert len(mul_units) == 3

    def test_sharing_reduces_dsp_total(self):
        chain = make_mul_chain(4)
        chain_binding = bind_function(chain, schedule_function(chain))
        naive_dsp = sum(
            characterize(i).dsp for i in chain.instructions()
        )
        assert chain_binding.datapath_dsp < naive_dsp

    def test_shared_unit_has_mux_overhead(self):
        fn = make_mul_chain(3)
        binding = bind_function(fn, schedule_function(fn))
        unit = [u for u in binding.units if u.family == "mul"][0]
        assert unit.mux_lut > 0

    def test_unshared_unit_has_no_mux(self):
        unit = FunctionalUnit("mul", 32, characterize_dummy(), members=[1])
        assert unit.mux_lut == 0

    def test_cheap_ops_not_shared(self):
        fn = make_mul_chain(3)
        binding = bind_function(fn, schedule_function(fn))
        add_units = [u for u in binding.units if u.family == "addsub"]
        for unit in add_units:
            assert unit.num_sharers == 1

    def test_shareable_families_constant(self):
        assert "mul" in SHAREABLE_FAMILIES
        assert "div" in SHAREABLE_FAMILIES
        assert "logic" not in SHAREABLE_FAMILIES


def characterize_dummy():
    from repro.hls.resource_library import OpCharacter

    return OpCharacter(dsp=4, lut=8, ff=0, delay_ns=2.0, latency=1)


class TestAttribution:
    def test_every_instruction_attributed(self):
        fn = make_mul_chain(3)
        binding = bind_function(fn, schedule_function(fn))
        for inst in fn.instructions():
            assert inst.id in binding.node_resources

    def test_shared_attribution_sums_to_unit_cost(self):
        fn = make_mul_chain(4)
        binding = bind_function(fn, schedule_function(fn))
        unit = [u for u in binding.units if u.family == "mul"][0]
        total_dsp = sum(
            binding.node_resources[m][0] for m in unit.members
        )
        assert abs(total_dsp - unit.character.dsp) < 1e-9

    def test_control_instructions_zero_attribution(self):
        fn = make_mul_chain(2)
        binding = bind_function(fn, schedule_function(fn))
        for inst in fn.instructions():
            if inst.opcode in (Opcode.BR, Opcode.RET):
                assert binding.node_resources[inst.id] == (0.0, 0.0, 0.0)

    def test_datapath_totals_consistent(self):
        fn = make_mul_parallel(3)
        binding = bind_function(fn, schedule_function(fn))
        assert binding.datapath_dsp == sum(u.character.dsp for u in binding.units)
        assert binding.datapath_lut >= sum(u.character.lut for u in binding.units)
