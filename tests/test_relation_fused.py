"""Fused dense kernels, the precision policy, and the batched relation path.

Four contracts:

1. the fused kernels (``addmm``, ``linear_act``, ``relation_matmul``,
   ``relation_gather_matmul``) match their unfused compositions in
   forward values and gradients, and pass float64 gradcheck;
2. the batched :class:`~repro.nn.RelationLinear` path through
   RGCN/GGNN/FiLM reproduces the per-relation ``Linear`` loop
   (``use_fused_relations(False)``) — forward and all gradients;
3. the dtype policy: float32 end-to-end by default, explicit float64
   respected, ``default_dtype``/``set_default_dtype`` scoping, and
   dtype-preserving artifact round-trips;
4. allocation-lean autograd accumulation stays correct when gradient
   buffers are shared (first-gradient ownership + copy-on-write).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

import repro.tensor.fused as fused
from repro.gnn import GraphContext, build_layer
from repro.models import OffTheShelfPredictor, PredictorConfig
from repro.nn import MLP, Linear, RelationLinear
from repro.optim import clip_grad_norm
from repro.serve import load_predictor, save_predictor
from repro.tensor import (
    Tensor,
    addmm,
    default_dtype,
    fused_relations_enabled,
    get_default_dtype,
    gradcheck,
    linear_act,
    relation_gather_matmul,
    relation_matmul,
    set_default_dtype,
    use_fused_relations,
)

DIM = 6
RELATIONS = 8  # 4 edge types x 2 directions


def make_context(num_nodes=7, num_edges=12, num_edge_types=4, seed=0):
    rng = np.random.default_rng(seed)
    return GraphContext(
        edge_index=np.stack(
            [rng.integers(0, num_nodes, num_edges), rng.integers(0, num_nodes, num_edges)]
        ),
        edge_type=rng.integers(0, num_edge_types, num_edges),
        num_nodes=num_nodes,
        batch=np.zeros(num_nodes, dtype=np.int64),
        num_graphs=1,
        num_edge_types=num_edge_types,
    )


# ---------------------------------------------------------------------------
# 1. Fused kernels
# ---------------------------------------------------------------------------


class TestAddmm:
    def test_matches_unfused_forward_and_grads(self, rng):
        x = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=4), requires_grad=True)
        fused_out = addmm(x, w, b)
        fused_out.backward(np.ones_like(fused_out.data))
        got = (x.grad.copy(), w.grad.copy(), b.grad.copy())
        for t in (x, w, b):
            t.zero_grad()
        ref = x @ w + b
        ref.backward(np.ones_like(ref.data))
        np.testing.assert_allclose(fused_out.data, ref.data, atol=1e-12)
        for actual, tensor in zip(got, (x, w, b)):
            np.testing.assert_allclose(actual, tensor.grad, atol=1e-12)

    def test_gradcheck_float64(self, rng):
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        b = Tensor(rng.normal(size=2), requires_grad=True)
        assert gradcheck(lambda: addmm(x, w, b), [x, w, b])

    def test_gradcheck_float32_with_dtype_aware_tolerances(self, rng):
        """float32 inputs auto-select the coarser probe and band."""
        x = Tensor(rng.normal(size=(4, 3)).astype(np.float32), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 2)).astype(np.float32), requires_grad=True)
        assert gradcheck(lambda: addmm(x, w), [x, w])

    def test_single_autograd_node(self, rng):
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        layer = Linear(3, 4, rng=rng)
        out = layer(x)
        assert set(out._parents) == {x, layer.weight, layer.bias}


class TestLinearAct:
    @pytest.mark.parametrize("activation", ["relu", "tanh", "sigmoid"])
    def test_matches_unfused(self, activation, rng):
        x = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=4), requires_grad=True)
        out = linear_act(x, w, b, activation)
        out.backward(np.ones_like(out.data))
        got = (x.grad.copy(), w.grad.copy(), b.grad.copy())
        for t in (x, w, b):
            t.zero_grad()
        ref = getattr(x @ w + b, activation)()
        ref.backward(np.ones_like(ref.data))
        np.testing.assert_allclose(out.data, ref.data, atol=1e-12)
        for actual, tensor in zip(got, (x, w, b)):
            np.testing.assert_allclose(actual, tensor.grad, atol=1e-12)

    @pytest.mark.parametrize("activation", ["relu", "tanh", "sigmoid"])
    def test_gradcheck(self, activation, rng):
        x = Tensor(rng.normal(size=(4, 3)) + 0.1, requires_grad=True)
        w = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        assert gradcheck(lambda: linear_act(x, w, None, activation), [x, w])

    def test_unknown_activation_rejected(self, rng):
        with pytest.raises(ValueError):
            linear_act(Tensor(np.ones((2, 2))), Tensor(np.ones((2, 2))), None, "gelu")

    def test_mlp_hidden_layers_fuse(self, rng):
        mlp = MLP([3, 5, 2], rng=rng)
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        out = mlp(x)
        # hidden layer fused: its output's parents are x + hidden params;
        # the final (unfused) layer contributes one addmm node on top.
        hidden = out._parents[0]
        assert set(hidden._parents) == {x, mlp.layers[0].weight, mlp.layers[0].bias}

    def test_mlp_matches_unfused_stack(self, rng):
        mlp = MLP([3, 5, 2], rng=np.random.default_rng(1))
        x = Tensor(rng.normal(size=(4, 3)))
        manual = x
        for i, layer in enumerate(mlp.layers):
            manual = layer(manual)
            if i != len(mlp.layers) - 1:
                manual = manual.relu()
        np.testing.assert_allclose(mlp(x).data, manual.data, atol=1e-12)


class TestRelationMatmul:
    def test_matches_per_relation_loop(self, rng):
        x = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        w = Tensor(rng.normal(size=(4, 3, 2)), requires_grad=True)
        out = relation_matmul(x, w)
        assert out.shape == (4, 5, 2)
        for r in range(4):
            np.testing.assert_allclose(out.data[r], x.data @ w.data[r], atol=1e-12)

    def test_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        w = Tensor(rng.normal(size=(2, 3, 2)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        assert gradcheck(lambda: relation_matmul(x, w, b), [x, w, b])

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            relation_matmul(Tensor(np.ones((2, 3, 1))), Tensor(np.ones((2, 3, 2))))


class TestRelationGatherMatmul:
    def _partition(self, rng, num_rows, num_relations, num_edges):
        rel = np.sort(rng.integers(0, num_relations, num_edges))
        index = rng.integers(0, num_rows, num_edges)
        counts = np.bincount(rel, minlength=num_relations)
        ends = np.cumsum(counts)
        return index, ends - counts, ends, rel

    def test_matches_gather_of_stacked(self, rng):
        index, starts, ends, rel = self._partition(rng, 5, 3, 11)
        x = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 3, 2)), requires_grad=True)
        out = relation_gather_matmul(x, w, index, starts, ends)
        expected = np.stack([x.data @ w.data[r] for r in range(3)])[rel, index]
        np.testing.assert_allclose(out.data, expected, atol=1e-12)

    def test_gradcheck(self, rng):
        index, starts, ends, _ = self._partition(rng, 4, 3, 9)
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 3, 2)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        assert gradcheck(
            lambda: relation_gather_matmul(x, w, index, starts, ends, bias=b),
            [x, w, b],
        )

    def test_empty_relation_skipped(self, rng):
        index = np.array([0, 1, 2])
        starts, ends = np.array([0, 3, 3]), np.array([3, 3, 3])
        x = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 2, 2)), requires_grad=True)
        out = relation_gather_matmul(x, w, index, starts, ends)
        out.sum().backward()
        # relations 1 and 2 have no edges: their weight grads stay zero.
        np.testing.assert_allclose(w.grad[1:], 0.0)
        assert np.abs(w.grad[0]).sum() > 0


# ---------------------------------------------------------------------------
# 2. RelationLinear and the fused relational layers
# ---------------------------------------------------------------------------


class TestRelationLinear:
    def test_batched_matches_per_relation_linear_loop(self, rng):
        """The stacked weight reproduces R independent Linear layers."""
        rel = RelationLinear(DIM, DIM, 3, rng=np.random.default_rng(7))
        x = Tensor(rng.normal(size=(5, DIM)), requires_grad=True)
        stacked = rel(x)
        stacked.backward(np.ones_like(stacked.data))
        batched_wgrad = rel.weight.grad.copy()
        batched_xgrad = x.grad.copy()

        x.zero_grad()
        loops = []
        for r in range(3):
            linear = Linear(DIM, DIM, bias=False, rng=rng)
            linear.weight.data[...] = rel.weight.data[r]
            loops.append(linear)
        outs = [linear(x) for linear in loops]
        for out in outs:
            out.backward(np.ones_like(out.data))
        for r, (linear, out) in enumerate(zip(loops, outs)):
            np.testing.assert_allclose(stacked.data[r], out.data, atol=1e-12)
            np.testing.assert_allclose(batched_wgrad[r], linear.weight.grad, atol=1e-12)
        np.testing.assert_allclose(batched_xgrad, x.grad, atol=1e-12)

    def test_single_matches_stacked_slice(self, rng):
        rel = RelationLinear(DIM, 4, 3, bias=True, rng=np.random.default_rng(2))
        x = Tensor(rng.normal(size=(5, DIM)))
        stacked = rel(x)
        for r in range(3):
            np.testing.assert_allclose(
                rel.single(x, r).data, stacked.data[r], atol=1e-12
            )

    def test_edge_messages_block_equals_stacked(self, rng):
        ctx = make_context()
        fusion = ctx.relation_fusion(RELATIONS)
        rel = RelationLinear(DIM, 4, RELATIONS, rng=np.random.default_rng(3))
        x = Tensor(rng.normal(size=(ctx.num_nodes, DIM)), requires_grad=True)
        results = {}
        for path in ("block", "stacked"):
            x.zero_grad()
            rel.weight.zero_grad()
            out = rel.edge_messages(x, fusion, path=path)
            out.backward(np.ones_like(out.data))
            results[path] = (out.data, x.grad.copy(), rel.weight.grad.copy())
        for a, b in zip(results["block"], results["stacked"]):
            np.testing.assert_allclose(a, b, atol=1e-9)

    def test_edge_messages_dst_endpoint(self, rng):
        ctx = make_context()
        fusion = ctx.relation_fusion(RELATIONS)
        rel = RelationLinear(DIM, 4, RELATIONS, rng=np.random.default_rng(3))
        x = Tensor(rng.normal(size=(ctx.num_nodes, DIM)))
        out = rel.edge_messages(x, fusion, endpoint="dst", path="block")
        stacked = rel(x).data
        rel_ids = np.repeat(
            np.arange(len(fusion.starts)), fusion.ends - fusion.starts
        )
        np.testing.assert_allclose(
            out.data, stacked[rel_ids, fusion.dst], atol=1e-12
        )

    def test_relation_count_mismatch_rejected(self, rng):
        ctx = make_context()
        rel = RelationLinear(DIM, 4, RELATIONS + 2, rng=rng)
        with pytest.raises(ValueError):
            rel.edge_messages(Tensor(np.ones((ctx.num_nodes, DIM))), ctx.relation_fusion(RELATIONS))


class TestBlockPathTransformsOnlyGatheredRows:
    def test_op_count_and_shapes_pinned(self, rng, monkeypatch):
        """Regression: the block path must never transform all N nodes.

        The old RGCN forward ran ``linear(x)`` — an ``[N, D]`` GEMM — per
        relation. Here we pin, per non-empty relation, exactly one GEMM
        whose row count is that relation's *edge* count.
        """
        ctx = make_context(num_nodes=50, num_edges=12)
        fusion = ctx.relation_fusion(RELATIONS)
        rel = RelationLinear(DIM, DIM, RELATIONS, rng=rng)
        x = Tensor(rng.normal(size=(50, DIM)), requires_grad=True)

        calls = []
        real_gemm = fused._block_gemm
        monkeypatch.setattr(
            fused, "_block_gemm", lambda a, b: calls.append(a.shape) or real_gemm(a, b)
        )
        out = rel.edge_messages(x, fusion, path="block")
        assert out.shape == (fusion.num_edges, DIM)
        edge_counts = [
            int(e - s) for s, e in zip(fusion.starts, fusion.ends) if e > s
        ]
        assert [shape[0] for shape in calls] == edge_counts
        assert all(shape == (count, DIM) for shape, count in zip(calls, edge_counts))
        # Never a full [N, D] transform for a sparse relation.
        assert all(shape[0] < 50 for shape in calls)

    def test_rgcn_forward_uses_block_path_on_sparse_relations(self, rng, monkeypatch):
        """E << R*N drives RGCNLayer itself onto the block kernel."""
        ctx = make_context(num_nodes=50, num_edges=12)
        layer = build_layer("rgcn", DIM, DIM, RELATIONS, rng)
        calls = []
        real_gemm = fused._block_gemm
        monkeypatch.setattr(
            fused, "_block_gemm", lambda a, b: calls.append(a.shape) or real_gemm(a, b)
        )
        layer(Tensor(rng.normal(size=(50, DIM))), ctx)
        assert calls, "fused RGCN should route through the block kernel"
        assert all(shape[0] < 50 for shape in calls)


@pytest.mark.parametrize("name", ["rgcn", "ggnn", "film"])
@pytest.mark.parametrize("dtype", [np.float64, np.float32])
def test_layer_fused_matches_relation_loop(name, dtype, rng):
    """Batched relation path == per-relation Linear loop, fwd + grads.

    float64 pins near-exact agreement; float32 (the production policy)
    agrees within summation-order noise.
    """
    tol = {"atol": 1e-10, "rtol": 1e-8} if dtype == np.float64 else {
        "atol": 1e-4, "rtol": 1e-3
    }
    with default_dtype(dtype):
        ctx = make_context(num_nodes=9, num_edges=20)
        layer = build_layer(name, DIM, DIM, RELATIONS, np.random.default_rng(1))
        x_data = rng.normal(size=(9, DIM)).astype(dtype)
        results = {}
        for mode in ("fused", "loop"):
            x = Tensor(x_data.copy(), requires_grad=True)
            layer.zero_grad()
            with use_fused_relations(mode == "fused"):
                assert fused_relations_enabled() == (mode == "fused")
                out = layer(x, ctx)
                out.sum().backward()
            results[mode] = (
                out.data,
                x.grad,
                {k: None if p.grad is None else p.grad.copy()
                 for k, p in layer.named_parameters()},
            )
    np.testing.assert_allclose(results["fused"][0], results["loop"][0], **tol)
    np.testing.assert_allclose(results["fused"][1], results["loop"][1], **tol)
    fused_grads, loop_grads = results["fused"][2], results["loop"][2]
    assert fused_grads.keys() == loop_grads.keys()
    for key in fused_grads:
        a, b = fused_grads[key], loop_grads[key]
        if a is None or b is None:
            # the batched kernel emits a (zero) grad for edge-less
            # relations where the loop skips them entirely
            assert b is None or not np.abs(b).sum(), key
            continue
        np.testing.assert_allclose(a, b, err_msg=key, **tol)


@pytest.mark.parametrize("name", ["ggnn", "film"])
def test_layer_with_more_relations_than_context(name, rng):
    """Layers built for more relations than the batch carries still agree."""
    ctx = make_context(num_edge_types=2)  # 4 direction-aware relations
    layer = build_layer(name, DIM, DIM, RELATIONS, np.random.default_rng(4))
    x = Tensor(rng.normal(size=(ctx.num_nodes, DIM)))
    with use_fused_relations(True):
        fused_out = layer(x, ctx)
    with use_fused_relations(False):
        loop_out = layer(x, ctx)
    np.testing.assert_allclose(fused_out.data, loop_out.data, atol=1e-5, rtol=1e-5)


def test_fusion_cached_per_context_depth():
    ctx = make_context()
    assert ctx.relation_fusion(RELATIONS) is ctx.relation_fusion(RELATIONS)
    assert ctx.relation_fusion(RELATIONS) is not ctx.relation_fusion(RELATIONS + 2)


def test_fusion_norm_matches_relation_counts():
    ctx = make_context(num_nodes=5, num_edges=14)
    fusion = ctx.relation_fusion(RELATIONS)
    norm = fusion.norm_for(np.float64)
    assert norm.shape == (fusion.num_edges, 1)
    for r, (s, e) in enumerate(zip(fusion.starts, fusion.ends)):
        src, dst = ctx.relation_edges(r)
        if not len(dst):
            continue
        counts = np.bincount(dst, minlength=ctx.num_nodes)
        np.testing.assert_allclose(
            norm[s:e, 0], 1.0 / counts[dst], atol=1e-12
        )


# ---------------------------------------------------------------------------
# 3. Precision policy
# ---------------------------------------------------------------------------


#: The CI float64 matrix job overrides the ambient policy via
#: ``REPRO_DTYPE`` (see tests/conftest.py); tests asserting the shipped
#: *factory* default are skipped there, tests about float32 *behaviour*
#: pin the policy explicitly with ``default_dtype``.
_POLICY_OVERRIDDEN = os.environ.get("REPRO_DTYPE", "float32") != "float32"


class TestDtypePolicy:
    @pytest.mark.skipif(
        _POLICY_OVERRIDDEN, reason="REPRO_DTYPE overrides the factory default"
    )
    def test_default_is_float32(self):
        assert get_default_dtype() == np.float32
        assert Tensor([1.0, 2.0]).dtype == np.float32
        assert Tensor(1.0).dtype == np.float32
        assert Tensor([1, 2, 3]).dtype == np.float32

    def test_explicit_float64_arrays_respected(self):
        assert Tensor(np.array([1.5, 2.5])).dtype == np.float64

    def test_default_dtype_context_scopes_policy(self):
        previous = get_default_dtype()
        with default_dtype(np.float64):
            assert get_default_dtype() == np.float64
            assert Tensor([1.0]).dtype == np.float64
            assert Linear(2, 2).weight.dtype == np.float64
        assert get_default_dtype() == previous

    def test_non_floating_default_rejected(self):
        with pytest.raises(ValueError):
            set_default_dtype(np.int32)

    def test_scalar_coercion_does_not_promote_float32(self):
        with default_dtype(np.float32):
            x = Tensor(np.ones(3, dtype=np.float32))
            assert (x + 1.0).dtype == np.float32
            assert (x * 2).dtype == np.float32
            assert (1.0 / x).dtype == np.float32

    def test_model_computes_float32_end_to_end(self, rng):
        with default_dtype(np.float32):
            ctx = make_context()
            layer = build_layer("rgcn", DIM, DIM, RELATIONS, rng)
            x = Tensor(rng.normal(size=(ctx.num_nodes, DIM)).astype(np.float32),
                       requires_grad=True)
            out = layer(x, ctx)
            out.sum().backward()
            assert out.dtype == np.float32
            assert x.grad.dtype == np.float32
            assert all(p.grad is None or p.grad.dtype == np.float32
                       for p in layer.parameters())

    def test_scatter_mean_preserves_float32(self, rng):
        from repro.tensor import scatter_mean

        src = Tensor(rng.normal(size=(6, 3)).astype(np.float32))
        out = scatter_mean(src, np.array([0, 0, 1, 1, 2, 2]), 3)
        assert out.dtype == np.float32


class TestItemAndDetach:
    def test_item_single_element(self):
        assert Tensor([[2.5]]).item() == 2.5

    def test_item_multi_element_raises_value_error(self):
        with pytest.raises(ValueError, match="exactly one element"):
            Tensor([1.0, 2.0]).item()

    def test_detach_preserves_name(self):
        t = Tensor([1.0], requires_grad=True, name="weights")
        d = t.detach()
        assert d.name == "weights"
        assert not d.requires_grad
        assert d.data is t.data


class TestArtifactDtypeRoundTrip:
    def _build(self, seed=0):
        config = PredictorConfig(model_name="rgcn", hidden_dim=8, num_layers=2, seed=seed)
        return OffTheShelfPredictor(config).build({"graph": DIM})

    def test_float32_weights_survive_npz_bitwise(self, tmp_path):
        with default_dtype(np.float32):
            predictor = self._build()
            save_predictor(predictor, tmp_path / "art")
            with np.load(tmp_path / "art" / "weights.npz") as archive:
                assert all(archive[k].dtype == np.float32 for k in archive.files)
            restored = load_predictor(tmp_path / "art")
            for key, value in predictor.state_dict().items():
                reloaded = restored.state_dict()[key]
                assert reloaded.dtype == np.float32
                np.testing.assert_array_equal(reloaded, value)

    def test_float64_policy_round_trip(self, tmp_path):
        with default_dtype(np.float64):
            predictor = self._build(seed=1)
            save_predictor(predictor, tmp_path / "art64")
            with np.load(tmp_path / "art64" / "weights.npz") as archive:
                assert all(archive[k].dtype == np.float64 for k in archive.files)
            restored = load_predictor(tmp_path / "art64")
            for key, value in predictor.state_dict().items():
                np.testing.assert_array_equal(restored.state_dict()[key], value)


# ---------------------------------------------------------------------------
# 4. Allocation-lean gradient accumulation
# ---------------------------------------------------------------------------


class TestGradAccumulationOwnership:
    def test_multiple_consumers_accumulate_correctly(self, rng):
        x = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        (x * 2.0 + x * 3.0).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((3, 2), 5.0))

    def test_shared_grad_buffer_not_corrupted(self, rng):
        """``a + b`` hands both parents the SAME buffer; adding more into
        one of them must not leak into the other."""
        a = Tensor(rng.normal(size=3), requires_grad=True)
        b = Tensor(rng.normal(size=3), requires_grad=True)
        ((a + b) + a * 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, 2.0)
        np.testing.assert_allclose(b.grad, 1.0)

    def test_clip_after_aliased_grads_scales_each_once(self):
        a = Tensor(np.ones(4), requires_grad=True)
        b = Tensor(np.ones(4), requires_grad=True)
        (a + b).sum().backward()
        # both grads may adopt the same ones-buffer
        total = clip_grad_norm([a, b], 1.0)
        np.testing.assert_allclose(total, np.sqrt(8.0))
        np.testing.assert_allclose(a.grad, b.grad)
        np.testing.assert_allclose(a.grad, 1.0 / np.sqrt(8.0), rtol=1e-6)

    def test_same_tensor_twice_in_binary_op(self, rng):
        x = Tensor(rng.normal(size=3), requires_grad=True)
        (x + x).sum().backward()
        np.testing.assert_allclose(x.grad, 2.0)

    def test_repeated_backward_accumulates_without_corruption(self, rng):
        """Ownership is relinquished once a buffer escapes into closures:
        backward() twice without zero_grad must exactly double every
        gradient, including through shared intermediate buffers."""
        x = Tensor(rng.normal(size=3), requires_grad=True)

        def run():
            n = x + 0.0  # pass-through: x adopts n's grad buffer
            return (n * 2.0 + n * 3.0).sum()

        run().backward()
        np.testing.assert_allclose(x.grad, 5.0)
        run().backward()
        np.testing.assert_allclose(x.grad, 10.0)

    def test_adopted_grad_buffers_are_frozen(self, rng):
        """In-place writes to an adopted .grad fail loudly (the buffer may
        be shared with a sibling) instead of corrupting training."""
        a = Tensor(rng.normal(size=3), requires_grad=True)
        b = Tensor(rng.normal(size=3), requires_grad=True)
        (a + b).sum().backward()
        with pytest.raises(ValueError):
            a.grad *= 2.0

    def test_caller_seed_array_is_not_adopted(self, rng):
        """Mutating the seed array after backward() must not change grads."""
        x = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        y = x + 0.0
        seed = np.ones_like(y.data)
        y.backward(seed)
        seed *= 7.0
        np.testing.assert_allclose(x.grad, 1.0)
