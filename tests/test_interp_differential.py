"""Differential testing of the lowering: AST vs IR interpretation.

The strongest correctness evidence for the compiler substrate — both
interpreters must compute identical results for every program the
generator can produce, on random inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import lower_program
from repro.frontend.interp import run_ast, wrap
from repro.ir.interp import run_ir
from repro.ldrgen import GeneratorConfig, generate_program
from repro.typesys import CArray, CInt
from tests.conftest import make_loop_program, make_straightline_program


def random_arguments(program, rng):
    """Concrete inputs: small ints for scalars, filled lists for arrays.

    Two independent copies are returned because both interpreters mutate
    array arguments in place.
    """
    args_a, args_b = {}, {}
    for name, ctype in program.top.params:
        if isinstance(ctype, CArray):
            width = min(ctype.element.width - 1, 15) or 1
            values = rng.integers(0, 2**width, ctype.length).tolist()
            args_a[name] = list(values)
            args_b[name] = list(values)
        else:
            value = int(rng.integers(-100, 100))
            args_a[name] = value
            args_b[name] = value
    return args_a, args_b


def assert_agreement(program, seed=0):
    rng = np.random.default_rng(seed)
    function = lower_program(program)
    for _ in range(3):
        args_ast, args_ir = random_arguments(program, rng)
        expected = run_ast(program, args_ast)
        actual = run_ir(function, args_ir)
        assert actual == expected, (
            f"{program.name}: AST={expected} IR={actual} args={args_ir}"
        )
        # Side effects on arrays must agree too (stores round-trip).
        for name, ctype in program.top.params:
            if isinstance(ctype, CArray):
                assert args_ast[name] == args_ir[name], (
                    f"{program.name}: array {name} diverged"
                )


class TestWrap:
    def test_wrap_signed(self):
        assert wrap(128, CInt(8)) == -128
        assert wrap(255, CInt(8)) == -1
        assert wrap(-129, CInt(8)) == 127

    def test_wrap_unsigned(self):
        assert wrap(256, CInt(8, signed=False)) == 0
        assert wrap(-1, CInt(8, signed=False)) == 255


class TestFixedPrograms:
    def test_straightline_agrees(self):
        assert_agreement(make_straightline_program())

    def test_loop_with_branch_agrees(self):
        assert_agreement(make_loop_program())

    def test_known_value(self):
        program = make_straightline_program()
        # t0 = a*b; t1 = t0+c; t2 = t1^255; return t2-a
        result = run_ast(program, {"a": 3, "b": 4, "c": 5})
        assert result == ((3 * 4 + 5) ^ 255) - 3
        assert run_ir(lower_program(program), {"a": 3, "b": 4, "c": 5}) == result


class TestDifferentialDFG:
    @given(seed=st.integers(0, 400))
    @settings(max_examples=25, deadline=None)
    def test_generated_dfg_programs_agree(self, seed):
        program = generate_program(GeneratorConfig(mode="dfg"), seed)
        assert_agreement(program, seed=seed)


class TestDifferentialCDFG:
    @given(seed=st.integers(0, 400))
    @settings(max_examples=15, deadline=None)
    def test_generated_cdfg_programs_agree(self, seed):
        config = GeneratorConfig(
            mode="cdfg",
            trip_count_choices=(2, 4, 8),  # keep execution fast
            max_loops=2,
        )
        program = generate_program(config, seed)
        assert_agreement(program, seed=seed)


class TestSuiteKernelsExecute:
    @pytest.mark.parametrize("suite", ["machsuite", "chstone", "polybench"])
    def test_sample_kernels_agree(self, suite):
        from repro.suites import suite_programs

        rng = np.random.default_rng(1)
        for program in suite_programs(suite)[:3]:
            function = lower_program(program)
            args_ast, args_ir = random_arguments(program, rng)
            assert run_ast(program, args_ast) == run_ir(function, args_ir)
