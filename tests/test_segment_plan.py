"""Planned (SegmentPlan/CSR) kernels vs the ``np.add.at`` reference.

Every scatter op must produce the same forward values and the same
gradients whether it runs the planned sorted-segment kernels or the
unbuffered fallback — across unsorted, duplicated and empty segments,
single- and multi-graph batches, and under EVERY registered scatter
backend (csr, numpy-reduceat, bucketed, and whatever plugs in later).
Also pins the context-reuse contract: one :class:`GraphContext` per
:class:`Batch` per ``num_edge_types``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gnn.message_passing import GraphContext
from repro.gnn.network import GraphRegressor
from repro.graph.batch import Batch
from repro.tensor import (
    SegmentPlan,
    Tensor,
    available_backends,
    build_plan,
    default_dtype,
    gather_rows,
    gradcheck,
    plans_enabled,
    scatter_max,
    scatter_mean,
    scatter_min,
    scatter_softmax,
    scatter_std,
    scatter_sum,
    use_backend,
    use_plans,
)

TYPES = 7

OPS = {
    "sum": scatter_sum,
    "mean": scatter_mean,
    "max": scatter_max,
    "min": scatter_min,
    "std": scatter_std,
    "softmax": scatter_softmax,
}


def _run(op, src_data, idx, dim, plan):
    src = Tensor(src_data.copy(), requires_grad=True)
    out = op(src, idx, dim, plan=plan)
    out.backward(np.ones_like(out.data))
    return out.data, src.grad


@st.composite
def _segment_case(draw):
    n_src = draw(st.integers(1, 14))
    # dim may exceed every index (empty tail segments) and indices repeat.
    dim = draw(st.integers(1, 8))
    width = draw(st.integers(1, 3))
    idx = np.array(
        draw(st.lists(st.integers(0, dim - 1), min_size=n_src, max_size=n_src))
    )
    values = draw(
        st.lists(
            st.floats(-10, 10, allow_nan=False),
            min_size=n_src * width,
            max_size=n_src * width,
        )
    )
    return np.array(values).reshape(n_src, width), idx, dim


class TestPlannedMatchesFallback:
    @pytest.mark.parametrize("name", sorted(OPS))
    @given(case=_segment_case())
    @settings(max_examples=40, deadline=None)
    def test_forward_and_grad_parity(self, name, case):
        src, idx, dim = case
        op = OPS[name]
        plan = SegmentPlan(idx, dim)
        planned_out, planned_grad = _run(op, src, idx, dim, plan)
        reference_out, reference_grad = _run(op, src, idx, dim, None)
        np.testing.assert_allclose(planned_out, reference_out, atol=1e-9)
        np.testing.assert_allclose(planned_grad, reference_grad, atol=1e-9)

    @pytest.mark.parametrize("name", sorted(OPS))
    def test_empty_source(self, name):
        src = np.empty((0, 2))
        idx = np.empty(0, dtype=np.int64)
        plan = SegmentPlan(idx, 3)
        planned_out, _ = _run(OPS[name], src, idx, 3, plan)
        reference_out, _ = _run(OPS[name], src, idx, 3, None)
        np.testing.assert_allclose(planned_out, reference_out)
        if name != "std":  # std of an empty segment is sqrt(eps), not 0
            np.testing.assert_allclose(planned_out, 0.0)

    def test_gather_backward_parity(self, rng):
        x_data = rng.normal(size=(5, 3))
        idx = np.array([4, 0, 0, 2, 4, 4])
        plan = SegmentPlan(idx, 5)
        grads = {}
        for key, p in {"planned": plan, "fallback": None}.items():
            x = Tensor(x_data.copy(), requires_grad=True)
            gather_rows(x, idx, plan=p).sum().backward()
            grads[key] = x.grad
        np.testing.assert_allclose(grads["planned"], grads["fallback"], atol=1e-12)

    def test_use_plans_flag_forces_fallback(self, rng):
        src = Tensor(rng.normal(size=(6, 2)))
        idx = np.array([0, 2, 2, 1, 0, 2])
        plan = SegmentPlan(idx, 4)
        with use_plans(False):
            assert not plans_enabled()
            flagged = scatter_sum(src, idx, 4, plan=plan).data
        reference = scatter_sum(src, idx, 4).data
        np.testing.assert_array_equal(flagged, reference)
        assert plans_enabled()


class TestPlannedGradcheck:
    @pytest.mark.parametrize("name", sorted(OPS))
    def test_against_finite_differences(self, name, rng):
        src = Tensor(rng.normal(size=(6, 2)), requires_grad=True)
        idx = np.array([3, 0, 0, 2, 3, 3])  # unsorted, duplicated, seg 1 empty
        plan = SegmentPlan(idx, 4)
        tol = {"atol": 1e-3, "rtol": 1e-3} if name == "std" else {}
        assert gradcheck(lambda: OPS[name](src, idx, 4, plan=plan), [src], **tol)


class TestSegmentPlanContract:
    def test_counts_cached_on_plan(self):
        idx = np.array([1, 1, 3, 0])
        plan = SegmentPlan(idx, 5)
        np.testing.assert_allclose(plan.counts, [1, 2, 0, 1, 0])
        assert plan.counts is plan.counts  # one array, not recomputed

    def test_plan_validates_at_construction(self):
        with pytest.raises(ValueError):
            SegmentPlan(np.array([0, 7]), 3)

    def test_plan_shape_mismatch_rejected(self):
        plan = SegmentPlan(np.array([0, 1]), 2)
        with pytest.raises(ValueError):
            scatter_sum(Tensor(np.ones((3, 1))), None, 2, plan=plan)
        with pytest.raises(ValueError):
            scatter_sum(Tensor(np.ones((2, 1))), None, 5, plan=plan)
        with pytest.raises(ValueError):
            gather_rows(Tensor(np.ones((4, 1))), np.array([0, 1]), plan=plan)

    def test_wrong_index_for_plan_rejected(self):
        plan = SegmentPlan(np.array([2, 0, 1]), 3)
        src = Tensor(np.ones((3, 1)))
        with pytest.raises(ValueError):
            scatter_sum(src, np.array([0, 0, 2]), 3, plan=plan)
        with pytest.raises(ValueError):
            gather_rows(Tensor(np.ones((3, 1))), np.array([0, 0, 2]), plan=plan)

    def test_assume_sorted_skips_argsort(self):
        idx = np.array([0, 0, 2, 2, 2])
        sorted_plan = SegmentPlan(idx, 4, assume_sorted=True)
        assert sorted_plan.order is None
        values = np.arange(10.0).reshape(5, 2)
        np.testing.assert_allclose(
            sorted_plan.segment_sum(values),
            SegmentPlan(idx, 4).segment_sum(values),
        )


def _skewed_case(dtype, rng):
    """A hub-heavy index: one segment holds ~60% of rows, a block of
    segments is empty — the degree distribution the bucketed backend's
    nonzero-balanced sharding exists for."""
    n_src, dim = 220, 40
    idx = rng.integers(20, dim, n_src)
    idx[: int(n_src * 0.6)] = 3  # hub segment; segments [0, 20) stay empty
    rng.shuffle(idx)
    values = rng.normal(size=(n_src, 5)).astype(dtype)
    return values, idx, dim


class TestBackendParity:
    """Differential parity of every registered backend vs the fallback.

    The ``np.add.at`` composition (``use_plans(False)``) is the single
    source of truth; each backend's planned kernels must reproduce its
    forward values and gradients for all six ops, both float dtypes,
    and the degree distributions that stress bucketing.
    """

    @pytest.mark.parametrize("backend_name", available_backends())
    @pytest.mark.parametrize("name", sorted(OPS))
    @given(case=_segment_case())
    @settings(max_examples=15, deadline=None)
    def test_forward_and_grad_parity(self, backend_name, name, case):
        src, idx, dim = case
        op = OPS[name]
        with use_backend(backend_name):
            plan = build_plan(idx, dim)
            planned_out, planned_grad = _run(op, src, idx, dim, plan)
        reference_out, reference_grad = _run(op, src, idx, dim, None)
        np.testing.assert_allclose(planned_out, reference_out, atol=1e-9)
        np.testing.assert_allclose(planned_grad, reference_grad, atol=1e-9)

    @pytest.mark.parametrize("backend_name", available_backends())
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("name", sorted(OPS))
    def test_skewed_degree_graph(self, backend_name, dtype, name, rng):
        src, idx, dim = _skewed_case(dtype, rng)
        # float32 reductions reorder across kernels; the parity band is
        # the same one the planned-vs-fallback model tests rely on.
        tol = dict(atol=1e-4, rtol=1e-4) if dtype == np.float32 else dict(atol=1e-9)
        with use_backend(backend_name):
            plan = build_plan(idx, dim)
            planned_out, planned_grad = _run(OPS[name], src, idx, dim, plan)
        reference_out, reference_grad = _run(OPS[name], src, idx, dim, None)
        np.testing.assert_allclose(planned_out, reference_out, **tol)
        np.testing.assert_allclose(planned_grad, reference_grad, **tol)

    @pytest.mark.parametrize("backend_name", available_backends())
    @pytest.mark.parametrize("name", sorted(OPS))
    def test_empty_segment_graph(self, backend_name, name):
        src = np.empty((0, 2))
        idx = np.empty(0, dtype=np.int64)
        with use_backend(backend_name):
            plan = build_plan(idx, 4)
            planned_out, _ = _run(OPS[name], src, idx, 4, plan)
        reference_out, _ = _run(OPS[name], src, idx, 4, None)
        np.testing.assert_allclose(planned_out, reference_out)

    @pytest.mark.parametrize("backend_name", available_backends())
    @pytest.mark.parametrize("name", sorted(OPS))
    def test_against_finite_differences(self, backend_name, name, rng):
        src = Tensor(rng.normal(size=(6, 2)), requires_grad=True)
        idx = np.array([3, 0, 0, 2, 3, 3])  # unsorted, duplicated, seg 1 empty
        tol = {"atol": 1e-3, "rtol": 1e-3} if name == "std" else {}
        with use_backend(backend_name):
            plan = build_plan(idx, 4)
            assert gradcheck(lambda: OPS[name](src, idx, 4, plan=plan), [src], **tol)

    @pytest.mark.parametrize("backend_name", available_backends())
    def test_gather_backward_parity(self, backend_name, rng):
        x_data = rng.normal(size=(5, 3))
        idx = np.array([4, 0, 0, 2, 4, 4])
        with use_backend(backend_name):
            plan = build_plan(idx, 5)
            x = Tensor(x_data.copy(), requires_grad=True)
            gather_rows(x, idx, plan=plan).sum().backward()
            planned_grad = x.grad
        x = Tensor(x_data.copy(), requires_grad=True)
        gather_rows(x, idx).sum().backward()
        np.testing.assert_allclose(planned_grad, x.grad, atol=1e-12)


@pytest.mark.parametrize("backend_name", available_backends())
@pytest.mark.parametrize("model_name", ["gcn", "rgcn"])
def test_model_parity_per_backend(dfg_samples, backend_name, model_name):
    """Whole-network forward/backward parity under each backend (f64)."""
    with default_dtype(np.float64):
        batch = Batch(dfg_samples[:6])
        model = GraphRegressor(
            model_name,
            in_dim=batch.feature_dim,
            hidden_dim=8,
            num_layers=2,
            num_edge_types=TYPES,
            rng=np.random.default_rng(3),
        )
        with use_backend(backend_name), use_plans(True):
            planned_out, planned_grads = _model_step(model, batch)
        with use_plans(False):
            fallback_out, fallback_grads = _model_step(model, batch)
    np.testing.assert_allclose(planned_out, fallback_out, atol=1e-8)
    for name in planned_grads:
        planned, fallback = planned_grads[name], fallback_grads[name]
        if planned is None or fallback is None:
            assert planned is None and fallback is None, name
            continue
        np.testing.assert_allclose(planned, fallback, atol=1e-7, err_msg=name)


def _model_step(model, batch):
    out = model(batch)
    out.sum().backward()
    grads = {
        name: (None if p.grad is None else p.grad.copy())
        for name, p in model.named_parameters()
    }
    for p in model.parameters():
        p.grad = None
    return out.data.copy(), grads


@pytest.mark.parametrize("model_name", ["gcn", "rgcn", "gat", "pna"])
@pytest.mark.parametrize("batch_slice", [slice(0, 1), slice(0, 6)])
def test_model_forward_backward_parity(dfg_samples, model_name, batch_slice):
    """Whole-network parity, single- and multi-graph batches.

    Pinned to float64: the comparison probes *kernel* equivalence
    (planned vs fallback scatter), so float32 summation-order noise must
    not drown the 1e-7 band.
    """
    with default_dtype(np.float64):
        batch = Batch(dfg_samples[batch_slice])
        model = GraphRegressor(
            model_name,
            in_dim=batch.feature_dim,
            hidden_dim=8,
            num_layers=2,
            num_edge_types=TYPES,
            rng=np.random.default_rng(3),
        )
        with use_plans(True):
            planned_out, planned_grads = _model_step(model, batch)
        with use_plans(False):
            fallback_out, fallback_grads = _model_step(model, batch)
    np.testing.assert_allclose(planned_out, fallback_out, atol=1e-8)
    assert planned_grads.keys() == fallback_grads.keys()
    for name in planned_grads:
        planned, fallback = planned_grads[name], fallback_grads[name]
        if planned is None or fallback is None:
            # e.g. relation weights for relations absent from the batch
            assert planned is None and fallback is None, name
            continue
        np.testing.assert_allclose(planned, fallback, atol=1e-7, err_msg=name)


class TestContextReuse:
    def test_context_identity_per_batch_and_edge_types(self, dfg_samples):
        batch = Batch(dfg_samples[:4])
        first = GraphContext.from_batch(batch, TYPES)
        assert GraphContext.from_batch(batch, TYPES) is first
        other = GraphContext.from_batch(batch, TYPES + 1)
        assert other is not first
        assert GraphContext.from_batch(Batch(dfg_samples[:4]), TYPES) is not first

    def test_one_context_per_batch_across_training(self, dfg_samples, monkeypatch):
        from repro.training.trainer import TrainConfig, train_graph_regressor

        constructed = []
        original = GraphContext.__init__

        def counting(self, *args, **kwargs):
            constructed.append(self)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(GraphContext, "__init__", counting)
        train, val = dfg_samples[:12], dfg_samples[12:16]
        model = GraphRegressor(
            "gcn",
            in_dim=train[0].feature_dim,
            hidden_dim=8,
            num_layers=2,
            num_edge_types=TYPES,
            rng=np.random.default_rng(0),
        )
        train_graph_regressor(
            model, train, val, TrainConfig(epochs=4, batch_size=8, lr=1e-3)
        )
        # 2 train batches + 1 val batch, regardless of epoch count.
        assert len(constructed) == 3

    def test_relation_edges_match_mask_reference_and_are_dst_sorted(
        self, dfg_samples
    ):
        batch = Batch(dfg_samples[:5])
        ctx = GraphContext.from_batch(batch, TYPES)
        for relation in range(ctx.num_relations):
            src, dst = ctx.relation_edges(relation)
            mask = ctx.sym_rel == relation
            assert sorted(zip(src, dst)) == sorted(
                zip(ctx.sym_src[mask], ctx.sym_dst[mask])
            )
            assert (np.diff(dst) >= 0).all()  # plan-ready without argsort
            src_plan, dst_plan = ctx.relation_plans(relation)
            assert dst_plan.order is None
            assert src_plan.size == len(src)

    def test_context_validates_indices_once(self):
        with pytest.raises(ValueError):
            GraphContext(
                edge_index=np.array([[0], [5]]),
                edge_type=np.array([0]),
                num_nodes=3,
                batch=np.zeros(3, dtype=np.int64),
                num_graphs=1,
                num_edge_types=2,
            )
