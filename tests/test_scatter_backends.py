"""The scatter backend registry and the bucketed kernel's contracts.

Registry semantics (selection, scoping, fail-fast), the
``REPRO_SCATTER_BACKEND`` / ``REPRO_SCATTER_WORKERS`` environment knobs,
bitwise determinism of the sharded kernel in the worker count, the
power-of-two bucket structure, nonzero-balanced shard cuts, and the
per-backend isolation of plan/operator caches on
:class:`~repro.gnn.message_passing.GraphContext` and
:class:`~repro.gnn.message_passing.RelationFusion`.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.gnn.message_passing import GraphContext
from repro.tensor import (
    Tensor,
    active_backend,
    available_backends,
    get_backend,
    register_backend,
    scatter_workers,
    set_backend,
    use_backend,
)
from repro.tensor.backends import (
    BucketedBackend,
    BucketedPlan,
    BucketedSpMM,
    CsrBackend,
    ReduceatPlan,
    ScatterBackend,
    _sorted_csr_from_coo,
)
from repro.tensor.scatter import SegmentPlan


def _context(rng, num_nodes=40, num_edges=160, num_edge_types=3):
    edge_index = rng.integers(0, num_nodes, (2, num_edges))
    edge_type = rng.integers(0, num_edge_types, num_edges)
    batch = np.sort(rng.integers(0, 4, num_nodes))
    return GraphContext(
        edge_index, edge_type, num_nodes, batch, 4, num_edge_types
    )


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = available_backends()
        assert {"csr", "numpy-reduceat", "bucketed"} <= set(names)

    def test_default_backend_is_csr_unless_env_overrides(self):
        expected = os.environ.get("REPRO_SCATTER_BACKEND") or "csr"
        assert active_backend().name == expected

    def test_get_backend_unknown_name_lists_valid_set(self):
        with pytest.raises(ValueError, match="bucketed, csr, numpy-reduceat"):
            get_backend("gpu")

    def test_duplicate_registration_rejected_unless_replace(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(CsrBackend())
        register_backend(CsrBackend(), replace=True)  # idempotent with flag

    def test_use_backend_scopes_and_restores(self):
        before = active_backend()
        with use_backend("numpy-reduceat") as backend:
            assert backend.name == "numpy-reduceat"
            assert active_backend() is backend
        assert active_backend() is before

    def test_use_backend_restores_on_error(self):
        before = active_backend()
        with pytest.raises(RuntimeError):
            with use_backend("bucketed"):
                raise RuntimeError("boom")
        assert active_backend() is before

    def test_set_backend_round_trip(self):
        before = active_backend().name
        try:
            assert set_backend("bucketed").name == "bucketed"
            assert active_backend().name == "bucketed"
        finally:
            set_backend(before)

    def test_backends_build_their_plan_types(self):
        idx = np.array([2, 0, 1, 1])
        assert type(get_backend("csr").build_plan(idx, 3)) is SegmentPlan
        assert isinstance(
            get_backend("numpy-reduceat").build_plan(idx, 3), ReduceatPlan
        )
        assert isinstance(get_backend("bucketed").build_plan(idx, 3), BucketedPlan)

    def test_custom_backend_plugs_in(self):
        class Custom(ScatterBackend):
            name = "test-custom"

            def build_plan(self, index, dim_size, *, validate=True, assume_sorted=False):
                return SegmentPlan(
                    index, dim_size, validate=validate, assume_sorted=assume_sorted
                )

        register_backend(Custom(), replace=True)
        try:
            with use_backend("test-custom") as backend:
                assert backend.name == "test-custom"
                plan = backend.build_plan(np.array([0, 1]), 2)
                np.testing.assert_allclose(
                    plan.segment_sum(np.ones((2, 1))), [[1.0], [1.0]]
                )
        finally:
            from repro.tensor.backends import _REGISTRY

            _REGISTRY.pop("test-custom", None)


class TestEnvironmentSelection:
    def test_env_var_selects_backend_at_import(self):
        code = (
            "from repro.tensor import active_backend; "
            "print(active_backend().name)"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            env={**os.environ, "REPRO_SCATTER_BACKEND": "bucketed"},
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.strip() == "bucketed"

    def test_env_var_unknown_backend_fails_fast_with_valid_set(self):
        out = subprocess.run(
            [sys.executable, "-c", "import repro.tensor"],
            env={**os.environ, "REPRO_SCATTER_BACKEND": "cuda"},
            capture_output=True,
            text=True,
        )
        assert out.returncode != 0
        assert "unknown scatter backend 'cuda'" in out.stderr
        assert "bucketed, csr, numpy-reduceat" in out.stderr

    def test_bad_worker_count_fails_fast(self):
        for bad in ("zero", "0", "-2"):
            out = subprocess.run(
                [sys.executable, "-c", "import repro.tensor"],
                env={**os.environ, "REPRO_SCATTER_WORKERS": bad},
                capture_output=True,
                text=True,
            )
            assert out.returncode != 0, bad
            assert "REPRO_SCATTER_WORKERS" in out.stderr

    def test_scatter_workers_is_positive(self):
        assert scatter_workers() >= 1


class TestBucketedSpMM:
    def _random_coo(self, rng, num_rows=50, num_cols=30, nnz=400, skew=True):
        rows = rng.integers(0, num_rows, nnz)
        if skew:
            rows[: nnz // 2] = 7  # hub row holds half the nonzeros
        cols = rng.integers(0, num_cols, nnz)
        weights = rng.normal(size=nnz)
        return rows, cols, weights

    def test_matches_dense_reference(self, rng):
        rows, cols, weights = self._random_coo(rng)
        dense = np.zeros((50, 30))
        np.add.at(dense, (rows, cols), weights)
        values = rng.normal(size=(30, 6))
        spmm = BucketedSpMM(*_sorted_csr_from_coo(rows, cols, weights, 50), (50, 30))
        np.testing.assert_allclose(spmm.apply(values), dense @ values, atol=1e-10)

    def test_bitwise_deterministic_across_worker_counts(self, rng):
        rows, cols, weights = self._random_coo(rng, nnz=1000)
        triplet = _sorted_csr_from_coo(rows, cols, weights, 50)
        values = rng.normal(size=(30, 8)).astype(np.float32)
        reference = BucketedSpMM(*triplet, (50, 30), workers=1).apply(values)
        for workers in (2, 3, 4, 7):
            out = BucketedSpMM(*triplet, (50, 30), workers=workers).apply(values)
            np.testing.assert_array_equal(out, reference)

    def test_buckets_are_power_of_two_and_ordered(self, rng):
        rows, cols, weights = self._random_coo(rng)
        spmm = BucketedSpMM(*_sorted_csr_from_coo(rows, cols, weights, 50), (50, 30))
        widths = spmm.bucket_widths
        assert (widths & (widths - 1) == 0).all()  # powers of two
        assert (np.diff(widths) >= 0).all()  # bucket-sorted rows
        degrees = np.diff(spmm.indptr)
        assert (degrees <= widths).all()
        assert (widths < np.maximum(2 * degrees, 2)).all()  # ceil-pow2 tight

    def test_shards_balance_nonzeros_and_isolate_hub(self, rng):
        rows, cols, weights = self._random_coo(rng, nnz=1200, skew=True)
        spmm = BucketedSpMM(
            *_sorted_csr_from_coo(rows, cols, weights, 50), (50, 30), workers=4
        )
        shard_nnz = [
            int(spmm.indptr[hi] - spmm.indptr[lo]) for lo, hi, _ in spmm.shards
        ]
        assert sum(shard_nnz) == 1200
        assert len(spmm.shards) > 1
        # The hub row (~half the nonzero stream) must sit alone in its
        # shard — row-boundary snapping puts the cuts right at it.
        hub_degree = int(np.bincount(rows).max())
        assert hub_degree >= 600
        hub_shards = [
            hi - lo for lo, hi, _ in spmm.shards
            if hub_degree in np.diff(spmm.indptr[lo : hi + 1])
        ]
        assert hub_shards == [1]

    def test_empty_matrix(self):
        spmm = BucketedSpMM(
            np.zeros(6, dtype=np.int64), np.empty(0, dtype=np.int64), None, (5, 4)
        )
        np.testing.assert_array_equal(spmm.apply(np.ones((4, 3))), np.zeros((5, 3)))

    def test_dense_fallback_matches_sparse_path(self, rng, monkeypatch):
        rows, cols, weights = self._random_coo(rng)
        triplet = _sorted_csr_from_coo(rows, cols, weights, 50)
        values = rng.normal(size=(30, 6))
        expected = BucketedSpMM(*triplet, (50, 30)).apply(values)
        import repro.tensor.backends as backends

        monkeypatch.setattr(backends, "_sparse", None)
        dense = BucketedSpMM(*triplet, (50, 30)).apply(values)
        np.testing.assert_allclose(dense, expected, atol=1e-10)

    def test_plan_segment_sum_deterministic_in_workers(self, rng):
        idx = rng.integers(0, 20, 300)
        idx[:150] = 11
        values = rng.normal(size=(300, 4)).astype(np.float32)
        outs = [
            BucketedBackend(workers=w).build_plan(idx, 20).segment_sum(values)
            for w in (1, 2, 5)
        ]
        np.testing.assert_array_equal(outs[0], outs[1])
        np.testing.assert_array_equal(outs[0], outs[2])


class TestPerBackendCaches:
    """Mixed-backend sessions must never execute another backend's kernels."""

    def test_context_plans_keyed_by_backend(self, rng):
        ctx = _context(rng)
        with use_backend("bucketed"):
            bucketed_plan = ctx.sym_dst_plan
        with use_backend("csr"):
            csr_plan = ctx.sym_dst_plan
        with use_backend("numpy-reduceat"):
            reduceat_plan = ctx.sym_dst_plan
        assert isinstance(bucketed_plan, BucketedPlan)
        assert type(csr_plan) is SegmentPlan
        assert isinstance(reduceat_plan, ReduceatPlan)
        # Re-entering a backend returns the identical cached plan.
        with use_backend("bucketed"):
            assert ctx.sym_dst_plan is bucketed_plan
        with use_backend("csr"):
            assert ctx.sym_dst_plan is csr_plan

    def test_relation_plans_keyed_by_backend(self, rng):
        ctx = _context(rng)
        with use_backend("bucketed"):
            src_plan, dst_plan = ctx.relation_plans(0)
            assert isinstance(src_plan, BucketedPlan)
            assert dst_plan.order is None  # assume_sorted preserved
        with use_backend("csr"):
            csr_src, _ = ctx.relation_plans(0)
            assert type(csr_src) is SegmentPlan
            assert csr_src is not src_plan

    def test_gcn_operator_keyed_by_backend(self, rng):
        ctx = _context(rng)
        x = Tensor(rng.normal(size=(ctx.num_nodes, 6)))
        with use_backend("bucketed"):
            bucketed_out = ctx.propagate_gcn(x).data
            assert isinstance(ctx._gcn_operators["bucketed"]._forward.__self__,
                              BucketedSpMM)
        with use_backend("csr"):
            csr_out = ctx.propagate_gcn(x).data
        assert ctx._gcn_operators.keys() == {"bucketed", "csr"}
        np.testing.assert_allclose(bucketed_out, csr_out, atol=1e-10)

    def test_fusion_operators_keyed_by_backend(self, rng):
        ctx = _context(rng)
        fusion = ctx.relation_fusion(ctx.num_relations)
        stacked = Tensor(
            rng.normal(size=(fusion.num_relations, ctx.num_nodes, 4))
        )
        with use_backend("bucketed"):
            bucketed_out = fusion.collect(stacked, weighted=True).data
        with use_backend("csr"):
            csr_out = fusion.collect(stacked, weighted=True).data
        keys = {key[0] for key in fusion._collect_ops}
        assert keys == {"bucketed", "csr"}
        np.testing.assert_allclose(bucketed_out, csr_out, atol=1e-10)

    def test_reduceat_backend_has_no_fused_operator(self, rng):
        ctx = _context(rng)
        x = Tensor(rng.normal(size=(ctx.num_nodes, 3)))
        with use_backend("numpy-reduceat"):
            assert ctx._gcn_operator() is None
            # propagate_gcn still works through the plan composition.
            out = ctx.propagate_gcn(x).data
        with use_backend("csr"):
            expected = ctx.propagate_gcn(x).data
        np.testing.assert_allclose(out, expected, atol=1e-10)
