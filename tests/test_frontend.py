"""Unit tests for the mini-C AST, types and the C-source printer."""

import pytest

from repro.frontend import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Cond,
    Decl,
    For,
    Function,
    If,
    IntConst,
    Program,
    Return,
    UnOp,
    Var,
    ParseError,
    parse_c_source,
    to_c_source,
)
from repro.frontend.printer import expr_to_c, function_to_c
from repro.typesys import CArray, CInt


class TestTypes:
    def test_standard_widths_use_stdint_names(self):
        assert CInt(32).c_name == "int32_t"
        assert CInt(8, signed=False).c_name == "uint8_t"

    def test_odd_widths_use_ap_int(self):
        assert CInt(12).c_name == "ap_int<12>"
        assert CInt(7, signed=False).c_name == "ap_uint<7>"

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            CInt(0)
        with pytest.raises(ValueError):
            CInt(300)

    def test_array_type(self):
        arr = CArray(CInt(16), 32)
        assert arr.c_name == "int16_t[32]"

    def test_array_bad_length(self):
        with pytest.raises(ValueError):
            CArray(CInt(8), 0)


class TestASTValidation:
    def test_unknown_binop_rejected(self):
        with pytest.raises(ValueError):
            BinOp("**", Var("a"), Var("b"))

    def test_unknown_unop_rejected(self):
        with pytest.raises(ValueError):
            UnOp("+", Var("a"))

    def test_zero_step_loop_rejected(self):
        with pytest.raises(ValueError):
            For("i", 0, 10, 0)

    def test_nonterminating_loop_rejected(self):
        with pytest.raises(ValueError):
            For("i", 10, 0, 1)

    def test_trip_count(self):
        assert For("i", 0, 10, 1).trip_count == 10
        assert For("i", 0, 10, 3).trip_count == 4

    def test_program_top(self):
        fn = Function("f", [], CInt(32), [Return(IntConst(0))])
        assert Program("p", [fn]).top is fn

    def test_empty_program_top_rejected(self):
        with pytest.raises(ValueError):
            Program("p", []).top


class TestPrinter:
    def test_expression_rendering(self):
        expr = BinOp("+", Var("a"), BinOp("*", IntConst(2), Var("b")))
        assert expr_to_c(expr) == "(a + (2 * b))"

    def test_ternary_rendering(self):
        expr = Cond(BinOp("<", Var("a"), Var("b")), Var("a"), Var("b"))
        assert expr_to_c(expr) == "((a < b) ? a : b)"

    def test_call_rendering(self):
        assert expr_to_c(Call("max", (Var("a"), IntConst(3)))) == "max(a, 3)"

    def test_array_ref_rendering(self):
        assert expr_to_c(ArrayRef("buf", BinOp("&", Var("i"), IntConst(7)))) == (
            "buf[(i & 7)]"
        )

    def test_function_rendering_contains_signature_and_loop(self):
        fn = Function(
            "k",
            [("x", CArray(CInt(16), 8)), ("n", CInt(32))],
            CInt(32),
            [
                Decl("acc", CInt(32), IntConst(0)),
                For("i", 0, 8, 1, [
                    Assign(Var("acc"), BinOp("+", Var("acc"), ArrayRef("x", Var("i")))),
                ]),
                Return(Var("acc")),
            ],
        )
        text = function_to_c(fn)
        assert "int32_t k(int16_t x[8], int32_t n)" in text
        assert "for (int i = 0; i < 8; i++)" in text
        assert "return acc;" in text

    def test_if_else_rendering(self):
        fn = Function(
            "f",
            [("a", CInt(32))],
            CInt(32),
            [
                Decl("r", CInt(32), IntConst(0)),
                If(BinOp(">", Var("a"), IntConst(0)),
                   [Assign(Var("r"), IntConst(1))],
                   [Assign(Var("r"), IntConst(2))]),
                Return(Var("r")),
            ],
        )
        text = function_to_c(fn)
        assert "if ((a > 0)) {" in text
        assert "} else {" in text

    def test_program_has_include(self):
        fn = Function("f", [], CInt(32), [Return(IntConst(0))])
        assert to_c_source(Program("p", [fn])).startswith("#include <stdint.h>")

    def test_source_compiles_roundtrip_shape(self, loop_program):
        text = to_c_source(loop_program)
        # Paranoid brace balance: generated C must be well-formed.
        assert text.count("{") == text.count("}")


class TestParser:
    def test_printed_source_roundtrips_exactly(self, straightline_program, loop_program):
        for program in (straightline_program, loop_program):
            source = to_c_source(program)
            reparsed = parse_c_source(source)
            assert to_c_source(reparsed) == source
            assert reparsed.name == program.name

    def test_generated_programs_roundtrip(self):
        from repro.ldrgen.config import GeneratorConfig
        from repro.ldrgen.generator import ProgramGenerator

        for mode in ("dfg", "cdfg"):
            generator = ProgramGenerator(GeneratorConfig(mode=mode), seed=5)
            for _ in range(10):
                source = to_c_source(generator.generate())
                assert to_c_source(parse_c_source(source)) == source

    def test_suite_kernels_roundtrip(self):
        from repro.suites.registry import SUITE_NAMES, suite_programs

        for suite in SUITE_NAMES:
            for program in suite_programs(suite):
                source = to_c_source(program)
                assert to_c_source(parse_c_source(source)) == source

    def test_handwritten_conveniences(self):
        program = parse_c_source(
            """
            // comment lines and plain int are accepted
            int top(int16_t a[4]) {
                int acc = 0; /* block comment */
                for (int i = 0; i <= 3; i++) {
                    acc += a[i];
                }
                return acc;
            }
            """
        )
        fn = program.top
        assert fn.ret_type == CInt(32)
        loop = fn.body[1]
        assert isinstance(loop, For)
        assert (loop.start, loop.bound, loop.step) == (0, 4, 1)
        assign = loop.body[0]
        assert isinstance(assign, Assign)
        assert isinstance(assign.expr, BinOp) and assign.expr.op == "+"

    def test_ap_int_types(self):
        program = parse_c_source(
            "ap_int<12> f(ap_uint<3> x) { return x; }"
        )
        assert program.top.ret_type == CInt(12)
        assert program.top.params[0][1] == CInt(3, signed=False)

    def test_negative_literal_disambiguation(self):
        fn = parse_c_source(
            "int32_t f(int32_t a) {\n"
            "    int32_t x = (a + -1);\n"
            "    int32_t y = (a + (-1));\n"
            "    return (x + y);\n"
            "}"
        ).top
        assert fn.body[0].init.rhs == IntConst(-1)
        assert fn.body[1].init.rhs == UnOp("-", IntConst(1))

    def test_parse_errors_have_location(self):
        with pytest.raises(ParseError, match="line"):
            parse_c_source("int32_t f( { return 0; }")
        with pytest.raises(ParseError, match="no functions"):
            parse_c_source("// nothing here")
        with pytest.raises(ParseError, match="unexpected character"):
            parse_c_source("int32_t f() { return 0 @ 1; }")

    def test_parsed_program_lowers_and_runs(self):
        from repro.frontend import lower_program

        program = parse_c_source(
            "int32_t top(int32_t a, int32_t b) { return a * b + 3; }"
        )
        function = lower_program(program)
        assert function.is_single_block

    def test_call_argument_negative_literal(self):
        fn = parse_c_source(
            "int32_t f(int32_t a) { return (a + max(a, -1)); }"
        ).top
        call = fn.body[0].expr.rhs
        assert call.args[1] == IntConst(-1)
        source = "#include <stdint.h>\n\nint32_t f(int32_t a) {\n    return (a + max(a, -1));\n}\n"
        assert to_c_source(parse_c_source(source)) == source

    def test_return_grouping_paren_is_unop(self):
        fn = parse_c_source("int32_t f() { return (-1); }").top
        assert fn.body[0].expr == UnOp("-", IntConst(1))
        source = "#include <stdint.h>\n\nint32_t f() {\n    return (-1);\n}\n"
        assert to_c_source(parse_c_source(source)) == source
        bare = parse_c_source("int32_t f() { return -1; }").top
        assert bare.body[0].expr == IntConst(-1)
