"""Unit tests for the EXPERIMENTS.md report writer (no training runs)."""

import numpy as np
import pytest

from repro.experiments.common import ExperimentScale
from repro.experiments.report import (
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE5,
    write_report,
)
from repro.experiments.table3 import TABLE3_MODELS
from repro.gnn.registry import ALL_MODEL_NAMES

SCALE = ExperimentScale(
    name="unit", num_dfg=1, num_cdfg=1, hidden_dim=1, num_layers=1,
    epochs=1, batch_size=1, lr=1e-3, runs=1,
)


def fake_results():
    row = np.array([0.1, 0.2, 0.3, 0.05])
    t2 = {m: {"dfg": row, "cdfg": row * 1.5} for m in ALL_MODEL_NAMES}
    acc = np.array([0.9, 0.8, 0.7])
    t3 = {m: {"dfg": acc, "cdfg": acc - 0.05, "real": acc - 0.1}
          for m in TABLE3_MODELS}
    t4 = {
        b: {a: {"dfg": row * k, "cdfg": row * (k + 0.2)}
            for a, k in (("base", 1.0), ("infused", 0.8), ("rich", 0.6))}
        for b in ("rgcn", "pna")
    }
    t5 = {
        "HLS": np.array([0.2, 5.8, 2.4, 0.3]),
        "RGCN": row, "RGCN-I": row * 0.8, "RGCN-R": row * 0.6,
        "PNA": row, "PNA-I": row * 0.8, "PNA-R": row * 0.6,
    }
    return t2, t3, t4, t5


class TestPaperConstants:
    def test_table2_covers_zoo(self):
        assert set(PAPER_TABLE2) == set(ALL_MODEL_NAMES)
        for rows in PAPER_TABLE2.values():
            assert set(rows) == {"dfg", "cdfg"}
            assert all(len(v) == 4 for v in rows.values())

    def test_table3_covers_models(self):
        assert set(PAPER_TABLE3) == set(TABLE3_MODELS)

    def test_table4_structure(self):
        for backbone in ("rgcn", "pna"):
            assert set(PAPER_TABLE4[backbone]) == {"base", "infused", "rich"}

    def test_table5_headline_values(self):
        assert PAPER_TABLE5["HLS"][1] == 871.56
        assert PAPER_TABLE5["PNA-R"][3] == 3.97


class TestWriteReport:
    def test_writes_wellformed_markdown(self, tmp_path):
        path = tmp_path / "EXPERIMENTS.md"
        write_report(SCALE, *fake_results(), path)
        text = path.read_text()
        assert text.startswith("# EXPERIMENTS")
        for heading in ("Table 2", "Table 3", "Table 4", "Table 5"):
            assert heading in text
        # measured (paper) cell format
        assert "10.00 (16.31)" in text
        # markdown tables are balanced
        for line in text.splitlines():
            if line.startswith("|"):
                assert line.endswith("|")

    def test_mentions_shape_conclusions(self, tmp_path):
        path = tmp_path / "EXPERIMENTS.md"
        write_report(SCALE, *fake_results(), path)
        text = path.read_text()
        assert "CDFG harder than DFG" in text
        assert "HLS report error profile" in text
