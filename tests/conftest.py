"""Shared fixtures: tiny cached datasets and sample programs.

Dataset construction (compile + HLS) is deterministic, so session-scoped
fixtures keep the suite fast while every test sees identical data.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.dataset import build_synthetic_dataset
from repro.frontend import (
    ArrayRef,
    Assign,
    BinOp,
    Decl,
    For,
    Function,
    If,
    IntConst,
    Program,
    Return,
    Var,
)
from repro.typesys import CArray, CInt

INT16, INT32 = CInt(16), CInt(32)


#: Dtype policies the CI matrix may request; anything else is a typo we
#: want to stop the run over, not silently fall through to float32.
_VALID_DTYPES = ("float32", "float64")


def pytest_configure(config):
    """Honour ``REPRO_DTYPE`` and ``REPRO_SCATTER_BACKEND`` (CI matrix).

    The suite normally runs under the production float32 policy and the
    default ``csr`` scatter backend; the CI matrix re-runs it with
    ``REPRO_DTYPE=float64`` (the opt-out path of
    :func:`repro.tensor.set_default_dtype`) and with
    ``REPRO_SCATTER_BACKEND=bucketed`` so every backend keeps the whole
    suite green. Unknown values for either variable abort collection
    with the valid set — a misspelled matrix entry must not silently
    test the defaults twice.
    """
    dtype = os.environ.get("REPRO_DTYPE")
    if dtype:
        if dtype not in _VALID_DTYPES:
            raise pytest.UsageError(
                f"REPRO_DTYPE={dtype!r} is not a supported dtype policy; "
                f"valid values: {', '.join(_VALID_DTYPES)}"
            )
        from repro.tensor import set_default_dtype

        set_default_dtype(np.dtype(dtype))

    backend = os.environ.get("REPRO_SCATTER_BACKEND")
    if backend:
        # repro.tensor.backends applies the variable at import, so an
        # unknown name raises as soon as the package loads; surface it
        # as a clean usage error either way.
        try:
            from repro.tensor import get_backend

            get_backend(backend)
        except ValueError as exc:
            raise pytest.UsageError(str(exc)) from None


@pytest.fixture(scope="session")
def dfg_samples():
    return build_synthetic_dataset("dfg", 24, seed=11)


@pytest.fixture(scope="session")
def cdfg_samples():
    return build_synthetic_dataset("cdfg", 16, seed=12)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


def make_straightline_program(name: str = "straight") -> Program:
    """A small fixed DFG program used across compiler tests."""
    body = [
        Decl("t0", INT32, BinOp("*", Var("a"), Var("b"))),
        Decl("t1", INT32, BinOp("+", Var("t0"), Var("c"))),
        Decl("t2", INT32, BinOp("^", Var("t1"), IntConst(255))),
        Return(BinOp("-", Var("t2"), Var("a"))),
    ]
    fn = Function(name, [("a", INT32), ("b", INT32), ("c", INT32)], INT32, body)
    return Program(name, [fn])


def make_loop_program(name: str = "loopy") -> Program:
    """A fixed CDFG program: loop + branch + array traffic."""
    body = [
        Decl("acc", INT32, IntConst(0)),
        For("i", 0, 8, 1, body=[
            Decl("v", INT32, ArrayRef("x", Var("i"))),
            If(BinOp(">", Var("v"), IntConst(0)),
               then_body=[Assign(Var("acc"), BinOp("+", Var("acc"), Var("v")))],
               else_body=[Assign(Var("acc"), BinOp("-", Var("acc"), IntConst(1)))]),
        ]),
        Return(Var("acc")),
    ]
    fn = Function(name, [("x", CArray(INT16, 8))], INT32, body)
    return Program(name, [fn])


@pytest.fixture()
def straightline_program() -> Program:
    return make_straightline_program()


@pytest.fixture()
def loop_program() -> Program:
    return make_loop_program()
