"""Shared fixtures: tiny cached datasets and sample programs.

Dataset construction (compile + HLS) is deterministic, so session-scoped
fixtures keep the suite fast while every test sees identical data.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.dataset import build_synthetic_dataset
from repro.frontend import (
    ArrayRef,
    Assign,
    BinOp,
    Decl,
    For,
    Function,
    If,
    IntConst,
    Program,
    Return,
    Var,
)
from repro.typesys import CArray, CInt

INT16, INT32 = CInt(16), CInt(32)


def pytest_configure(config):
    """Honour ``REPRO_DTYPE`` (CI's float64 matrix job).

    The suite normally runs under the production float32 policy; setting
    ``REPRO_DTYPE=float64`` re-runs every test under the opt-out path of
    :func:`repro.tensor.set_default_dtype`, so both sides of the dtype
    policy are exercised on every PR.
    """
    dtype = os.environ.get("REPRO_DTYPE")
    if dtype:
        from repro.tensor import set_default_dtype

        set_default_dtype(np.dtype(dtype))


@pytest.fixture(scope="session")
def dfg_samples():
    return build_synthetic_dataset("dfg", 24, seed=11)


@pytest.fixture(scope="session")
def cdfg_samples():
    return build_synthetic_dataset("cdfg", 16, seed=12)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


def make_straightline_program(name: str = "straight") -> Program:
    """A small fixed DFG program used across compiler tests."""
    body = [
        Decl("t0", INT32, BinOp("*", Var("a"), Var("b"))),
        Decl("t1", INT32, BinOp("+", Var("t0"), Var("c"))),
        Decl("t2", INT32, BinOp("^", Var("t1"), IntConst(255))),
        Return(BinOp("-", Var("t2"), Var("a"))),
    ]
    fn = Function(name, [("a", INT32), ("b", INT32), ("c", INT32)], INT32, body)
    return Program(name, [fn])


def make_loop_program(name: str = "loopy") -> Program:
    """A fixed CDFG program: loop + branch + array traffic."""
    body = [
        Decl("acc", INT32, IntConst(0)),
        For("i", 0, 8, 1, body=[
            Decl("v", INT32, ArrayRef("x", Var("i"))),
            If(BinOp(">", Var("v"), IntConst(0)),
               then_body=[Assign(Var("acc"), BinOp("+", Var("acc"), Var("v")))],
               else_body=[Assign(Var("acc"), BinOp("-", Var("acc"), IntConst(1)))]),
        ]),
        Return(Var("acc")),
    ]
    fn = Function(name, [("x", CArray(INT16, 8))], INT32, body)
    return Program(name, [fn])


@pytest.fixture()
def straightline_program() -> Program:
    return make_straightline_program()


@pytest.fixture()
def loop_program() -> Program:
    return make_loop_program()
