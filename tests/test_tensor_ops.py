"""Unit tests for functional tensor ops (softmax family, concat, where...)."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    concat,
    dropout,
    elu,
    gradcheck,
    leaky_relu,
    log_softmax,
    logsumexp,
    maximum,
    minimum,
    softmax,
    stack,
    where,
)


class TestActivations:
    def test_leaky_relu_values(self):
        out = leaky_relu(Tensor([-2.0, 3.0]), 0.1)
        np.testing.assert_allclose(out.data, [-0.2, 3.0])

    def test_leaky_relu_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(3, 3)) + 2.0, requires_grad=True)
        assert gradcheck(lambda: leaky_relu(x, 0.2), [x])

    def test_elu_values(self):
        out = elu(Tensor([-1.0, 1.0]))
        np.testing.assert_allclose(out.data, [np.expm1(-1.0), 1.0])

    def test_elu_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(3, 3)) - 2.0, requires_grad=True)
        assert gradcheck(lambda: elu(x, 0.7), [x])

    def test_sigmoid_extreme_values_stable(self):
        out = Tensor([-1000.0, 1000.0]).sigmoid()
        assert np.isfinite(out.data).all()
        np.testing.assert_allclose(out.data, [0.0, 1.0], atol=1e-12)


class TestMinMaxWhere:
    def test_maximum_values(self):
        out = maximum(Tensor([1.0, 5.0]), Tensor([3.0, 2.0]))
        np.testing.assert_allclose(out.data, [3.0, 5.0])

    def test_maximum_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(4,)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        assert gradcheck(lambda: maximum(a, b), [a, b])

    def test_minimum_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(4,)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        assert gradcheck(lambda: minimum(a, b), [a, b])

    def test_where_selects(self):
        out = where(np.array([True, False]), Tensor([1.0, 1.0]), Tensor([2.0, 2.0]))
        np.testing.assert_allclose(out.data, [1.0, 2.0])

    def test_where_gradcheck(self, rng):
        cond = rng.random(5) > 0.5
        a = Tensor(rng.normal(size=(5,)), requires_grad=True)
        b = Tensor(rng.normal(size=(5,)), requires_grad=True)
        assert gradcheck(lambda: where(cond, a, b), [a, b])


class TestConcatStack:
    def test_concat_axis0(self):
        out = concat([Tensor(np.ones((2, 3))), Tensor(np.zeros((1, 3)))], axis=0)
        assert out.shape == (3, 3)

    def test_concat_axis1_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        assert gradcheck(lambda: concat([a, b], axis=1) * 2.0, [a, b])

    def test_stack_new_axis(self):
        out = stack([Tensor(np.ones(3)), Tensor(np.zeros(3))], axis=0)
        assert out.shape == (2, 3)

    def test_stack_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        assert gradcheck(lambda: stack([a, b], axis=1).sum(axis=0), [a, b])


class TestSoftmaxFamily:
    def test_softmax_rows_sum_to_one(self, rng):
        out = softmax(Tensor(rng.normal(size=(4, 6))), axis=1)
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(4))

    def test_softmax_shift_invariance(self, rng):
        x = rng.normal(size=(3, 4))
        a = softmax(Tensor(x), axis=1).data
        b = softmax(Tensor(x + 100.0), axis=1).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_softmax_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        assert gradcheck(lambda: softmax(x, axis=1), [x])

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = Tensor(rng.normal(size=(3, 4)))
        np.testing.assert_allclose(
            log_softmax(x, axis=1).data,
            np.log(softmax(x, axis=1).data),
            atol=1e-10,
        )

    def test_log_softmax_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(2, 5)), requires_grad=True)
        assert gradcheck(lambda: log_softmax(x, axis=1), [x])

    def test_logsumexp_matches_scipy_convention(self, rng):
        x = rng.normal(size=(3, 4))
        expected = np.log(np.exp(x).sum(axis=1))
        np.testing.assert_allclose(logsumexp(Tensor(x), axis=1).data, expected)

    def test_logsumexp_large_values_stable(self):
        out = logsumexp(Tensor([[1000.0, 1000.0]]), axis=1)
        np.testing.assert_allclose(out.data, [1000.0 + np.log(2.0)])


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        x = Tensor(rng.normal(size=(10, 10)))
        out = dropout(x, 0.5, training=False, rng=rng)
        assert out is x

    def test_zero_probability_is_identity(self, rng):
        x = Tensor(rng.normal(size=(4, 4)))
        assert dropout(x, 0.0, training=True, rng=rng) is x

    def test_training_mode_scales_survivors(self, rng):
        x = Tensor(np.ones((2000,)))
        out = dropout(x, 0.5, training=True, rng=rng)
        survivors = out.data[out.data > 0]
        np.testing.assert_allclose(survivors, 2.0)
        assert 0.4 < (out.data > 0).mean() < 0.6

    def test_invalid_probability_rejected(self, rng):
        with pytest.raises(ValueError):
            dropout(Tensor([1.0]), 1.0, training=True, rng=rng)
