"""Fault-injection layer: schedules, determinism, scoping, round-trips."""

from __future__ import annotations

import time

import pytest

from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    WorkerKilled,
    fault_point,
    get_injector,
    load_fault_plan,
    use_faults,
)


class TestSpecsAndPlans:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="seam"):
            FaultSpec(seam="")
        with pytest.raises(ValueError, match="fail_rate"):
            FaultSpec(seam="s", fail_rate=1.5)
        with pytest.raises(ValueError, match="delay_s"):
            FaultSpec(seam="s", delay_s=-1.0)

    def test_json_round_trip_normalises_lists(self):
        plan = FaultPlan(
            seed=7,
            specs=(
                FaultSpec(seam="serve.predict", fail_on_calls=(2, 3)),
                FaultSpec(
                    seam="pipeline.build", on_keys=("4",), kill=True,
                    fail_on_calls=(1,),
                ),
            ),
        )
        # JSON decodes tuples as lists; __post_init__ re-normalises so
        # the round-tripped plan compares equal to the original.
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_plan_accepts_spec_dicts(self):
        plan = FaultPlan(specs=({"seam": "s", "fail_on_calls": [1]},))
        assert plan.specs[0] == FaultSpec(seam="s", fail_on_calls=(1,))

    def test_for_seam_filters(self):
        plan = FaultPlan(
            specs=(FaultSpec(seam="a"), FaultSpec(seam="b"), FaultSpec(seam="a"))
        )
        assert len(plan.for_seam("a")) == 2
        assert plan.for_seam("c") == ()

    def test_load_fault_plan_file(self, tmp_path):
        path = tmp_path / "faults.json"
        plan = FaultPlan(seed=3, specs=(FaultSpec(seam="s", fail_rate=0.5),))
        path.write_text(plan.to_json())
        assert load_fault_plan(path) == plan


class TestInjector:
    def test_raise_on_nth_call(self):
        injector = FaultInjector(
            FaultPlan(specs=(FaultSpec(seam="s", fail_on_calls=(1, 3)),))
        )
        with pytest.raises(InjectedFault, match=r"call 1"):
            injector.check("s")
        injector.check("s")  # call 2 passes
        with pytest.raises(InjectedFault, match=r"call 3"):
            injector.check("s")
        injector.check("s")  # call 4 passes
        assert injector.calls("s") == 4

    def test_counters_are_per_seam_and_key(self):
        spec = FaultSpec(seam="s", fail_on_calls=(1,))
        injector = FaultInjector(FaultPlan(specs=(spec,)))
        with pytest.raises(InjectedFault):
            injector.check("s", "a")
        # Key "b" has its own schedule: its first call also fails.
        with pytest.raises(InjectedFault):
            injector.check("s", "b")
        injector.check("s", "a")
        assert injector.calls("s", "a") == 2
        assert injector.calls("s", "b") == 1

    def test_on_keys_restricts_eligibility(self):
        spec = FaultSpec(seam="s", on_keys=("5",), fail_on_calls=(1,))
        injector = FaultInjector(FaultPlan(specs=(spec,)))
        injector.check("s", "4")  # not eligible, not even counted
        assert injector.calls("s", "4") == 0
        with pytest.raises(InjectedFault):
            injector.check("s", "5")

    def test_fail_rate_is_a_pure_function_of_the_plan(self):
        plan = FaultPlan(seed=11, specs=(FaultSpec(seam="s", fail_rate=0.4),))

        def verdicts():
            injector = FaultInjector(plan)
            out = []
            for _ in range(40):
                try:
                    injector.check("s")
                    out.append(False)
                except InjectedFault:
                    out.append(True)
            return out

        first = verdicts()
        assert first == verdicts()  # same plan -> same schedule
        assert any(first) and not all(first)
        other = FaultPlan(seed=12, specs=plan.specs)
        # seed participates in the draw
        assert first != list(_verdict_stream(other, 40))

    def test_delay_on_scheduled_calls_only(self):
        spec = FaultSpec(seam="s", delay_s=0.02, delay_on_calls=(2,))
        injector = FaultInjector(FaultPlan(specs=(spec,)))
        start = time.perf_counter()
        injector.check("s")  # call 1: no delay
        fast = time.perf_counter() - start
        start = time.perf_counter()
        injector.check("s")  # call 2: sleeps
        slow = time.perf_counter() - start
        assert fast < 0.01
        assert slow >= 0.02

    def test_kill_raises_worker_killed_in_process(self):
        spec = FaultSpec(seam="s", kill=True, fail_on_calls=(1,))
        injector = FaultInjector(FaultPlan(specs=(spec,)), in_worker=False)
        with pytest.raises(WorkerKilled):
            injector.check("s")

    def test_custom_message(self):
        spec = FaultSpec(seam="s", fail_on_calls=(1,), message="boom")
        with pytest.raises(InjectedFault, match="boom"):
            FaultInjector(FaultPlan(specs=(spec,))).check("s")

    def test_check_skips_corrupt_specs(self):
        # corrupt specs only make sense on data-carrying calls; a plain
        # check() at the same seam must pass through untouched.
        spec = FaultSpec(seam="s", corrupt=True, fail_on_calls=(1, 2))
        injector = FaultInjector(FaultPlan(specs=(spec,)))
        injector.check("s")  # call 1: no raise
        assert injector.filter("s", "", b"data") != b"data"  # call 2 corrupts

    def test_filter_is_deterministic_per_call(self):
        spec = FaultSpec(seam="s", corrupt=True, fail_on_calls=(1, 2))
        data = bytes(range(32))
        first = FaultInjector(FaultPlan(seed=3, specs=(spec,)))
        second = FaultInjector(FaultPlan(seed=3, specs=(spec,)))
        assert first.filter("s", "k", data) == second.filter("s", "k", data)
        # empty buffers pass through rather than corrupting nothing
        assert first.filter("s", "k", b"") == b""

    def test_filter_raises_for_non_corrupt_specs(self):
        spec = FaultSpec(seam="s", fail_on_calls=(1,))
        injector = FaultInjector(FaultPlan(specs=(spec,)))
        with pytest.raises(InjectedFault):
            injector.filter("s", "", b"data")


def _verdict_stream(plan, n):
    injector = FaultInjector(plan)
    for _ in range(n):
        try:
            injector.check("s")
            yield False
        except InjectedFault:
            yield True


class TestScoping:
    def test_fault_point_is_a_no_op_outside_use_faults(self):
        assert get_injector() is None
        fault_point("s")  # nothing active, nothing raised

    def test_use_faults_scopes_and_restores(self):
        plan = FaultPlan(specs=(FaultSpec(seam="s", fail_on_calls=(1,)),))
        with use_faults(plan) as injector:
            assert get_injector() is injector
            with pytest.raises(InjectedFault):
                fault_point("s")
            fault_point("s")
        assert get_injector() is None
        fault_point("s")  # scope ended: seam is free again

    def test_use_faults_nesting_restores_previous(self):
        outer = FaultPlan(specs=(FaultSpec(seam="a", fail_on_calls=(1,)),))
        inner = FaultPlan(specs=(FaultSpec(seam="b", fail_on_calls=(1,)),))
        with use_faults(outer) as outer_injector:
            with use_faults(inner):
                fault_point("a")  # inner plan does not know seam "a"
                with pytest.raises(InjectedFault):
                    fault_point("b")
            assert get_injector() is outer_injector
            with pytest.raises(InjectedFault):
                fault_point("a")

    def test_use_faults_none_disables(self):
        plan = FaultPlan(specs=(FaultSpec(seam="s", fail_on_calls=(1,)),))
        with use_faults(plan):
            with use_faults(None):
                fault_point("s")  # explicitly disabled inside the scope
            with pytest.raises(InjectedFault):
                fault_point("s")
