"""Tests for the observability layer (repro.obs + tensor profiling).

Covers the three obs layers — metrics/tracing/ledger core, the
instrumentation hooks (trainer epochs, DSE campaigns, tensor-op
profiling), and the Markdown reporting — plus the PR's acceptance
bars: disabled profiling adds no tape nodes and stays within 5% of
baseline GCN-step cost (wall-clock gate applied only on multi-core
hosts, like the dataset-pipeline speedup bar).
"""

from __future__ import annotations

import json
import logging
import math
import os
import time

import numpy as np
import pytest

from repro.dse.evaluate import GroundTruthEvaluator
from repro.dse.space import DesignSpace
from repro.dse.strategies import explore
from repro.gnn import GraphRegressor
from repro.graph import Batch
from repro.obs import (
    MetricsRegistry,
    P2Quantile,
    RunLedger,
    Stopwatch,
    Tracer,
    active_ledger,
    best_of,
    config_digest,
    latest_run,
    list_runs,
    load_run,
    rate,
    throughput_summary,
    trace,
    use_registry,
    use_tracer,
)
from repro.obs.report import merge_metrics, merge_spans, render_diff, render_report
from repro.serve.service import ServiceStats
from repro.tensor import Tensor, use_profiling
from repro.tensor.profiling import OpProfile, profiling_enabled
from repro.tensor.scatter import scatter_sum
from repro.training import TrainConfig
from repro.training.trainer import train_graph_regressor
from tests.conftest import make_loop_program

TYPES = 8


# ---------------------------------------------------------------------------
# Metrics core
# ---------------------------------------------------------------------------
class TestP2Quantile:
    def test_exact_below_five_samples(self):
        est = P2Quantile(0.5)
        for v in (3.0, 1.0, 2.0):
            est.observe(v)
        assert est.value == 2.0

    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.9).value)

    @pytest.mark.parametrize("q", [0.5, 0.95, 0.99])
    def test_tracks_numpy_quantile(self, q, rng):
        samples = rng.lognormal(mean=0.0, sigma=0.6, size=8000)
        est = P2Quantile(q)
        for v in samples:
            est.observe(float(v))
        exact = float(np.quantile(samples, q))
        assert abs(est.value - exact) / exact < 0.03

    def test_rejects_degenerate_quantile(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)


class TestMetricsRegistry:
    def test_counter_gauge_timer_snapshot(self):
        registry = MetricsRegistry()
        registry.inc("requests", 3)
        registry.set_gauge("loss", 0.25)
        for ms in (1, 2, 3, 4):
            registry.observe("latency", ms / 1000)
        snap = registry.snapshot()
        assert snap["counters"]["requests"] == 3
        assert snap["gauges"]["loss"] == 0.25
        timer = snap["timers"]["latency"]
        assert timer["count"] == 4
        assert timer["min_s"] == pytest.approx(0.001)
        assert timer["max_s"] == pytest.approx(0.004)
        assert timer["p50"] == pytest.approx(0.0025)

    def test_instruments_are_created_once(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.timer("t") is registry.timer("t")

    def test_time_context_manager(self):
        registry = MetricsRegistry()
        with registry.time("step"):
            pass
        assert registry.timer("step").count == 1

    def test_use_registry_scopes_the_global(self):
        from repro.obs import get_registry

        outer = get_registry()
        with use_registry() as scoped:
            assert get_registry() is scoped
            get_registry().inc("x")
        assert get_registry() is outer
        assert scoped.counter("x").value == 1


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------
class TestTracer:
    def test_nested_spans_split_self_and_child_time(self):
        tracer = Tracer()
        with tracer.span("outer"):
            time.sleep(0.002)
            with tracer.span("inner"):
                time.sleep(0.002)
        spans = tracer.snapshot()
        assert set(spans) == {"outer", "outer/inner"}
        outer = spans["outer"]
        inner = spans["outer/inner"]
        assert outer["total_s"] >= inner["total_s"]
        # outer's self time excludes the inner span entirely.
        assert outer["self_s"] == pytest.approx(
            outer["total_s"] - inner["total_s"]
        )

    def test_trace_decorator_and_context_manager(self):
        with use_tracer() as tracer:

            @trace("work")
            def work():
                with trace("sub"):
                    return 7

            assert work() == 7
        spans = tracer.snapshot()
        assert spans["work"]["count"] == 1
        assert spans["work/sub"]["count"] == 1

    def test_merge_and_drain(self):
        a, b = Tracer(), Tracer()
        with a.span("s"):
            pass
        with b.span("s"):
            pass
        shipped = b.drain()
        assert b.snapshot() == {}
        a.merge(shipped)
        assert a.snapshot()["s"]["count"] == 2

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.snapshot()["boom"]["count"] == 1


# ---------------------------------------------------------------------------
# Timing primitives (moved out of benchmarks/conftest.py)
# ---------------------------------------------------------------------------
class TestTiming:
    def test_throughput_summary_shape(self):
        summary = throughput_summary({"naive": 2.0, "batched": 0.5}, 100)
        assert summary["requests"] == 100
        assert summary["naive_rps"] == 50.0
        assert summary["naive_latency_ms"] == 20.0
        assert summary["batched_rps"] == 200.0

    def test_rate_guards_zero(self):
        assert rate(10, 0.0) == float("inf")
        assert rate(10, 2.0) == 5.0

    def test_best_of_returns_minimum(self):
        calls = []
        seconds = best_of(lambda: calls.append(1), repeats=3)
        assert len(calls) == 3
        assert 0.0 <= seconds < 1.0

    def test_stopwatch_segments(self):
        watch = Stopwatch()
        with watch("a"):
            pass
        with watch("b"):
            pass
        summary = watch.summary(requests=4)
        assert "a_rps" in summary and "b_latency_ms" in summary
        assert set(watch.summary()) == {"a_s", "b_s"}


# ---------------------------------------------------------------------------
# Run ledger + reporting
# ---------------------------------------------------------------------------
class TestRunLedger:
    def test_round_trip(self, tmp_path):
        with use_registry(), use_tracer():
            with RunLedger(
                "unit", meta={"who": "test"}, config={"a": 1}, directory=tmp_path
            ) as ledger:
                assert active_ledger() is ledger
                ledger.record("custom", value=3)
                with trace("phase"):
                    pass
                from repro.obs import get_registry

                get_registry().inc("unit.counter")
            assert active_ledger() is None
        run = load_run(ledger.run_id, directory=tmp_path)
        assert run["header"]["kind"] == "unit"
        assert run["header"]["meta"] == {"who": "test"}
        assert run["header"]["config_digest"] == config_digest({"a": 1})
        types = [r["type"] for r in run["records"]]
        assert types[0] == "custom" and types[-1] == "end"
        assert "metrics" in types and "spans" in types
        metrics = merge_metrics(run["records"])
        assert metrics["counters"]["unit.counter"] == 1
        spans = merge_spans(run["records"])
        assert spans["phase"]["count"] == 1

    def test_jsonify_handles_numpy_and_paths(self, tmp_path):
        with RunLedger("unit", directory=tmp_path) as ledger:
            ledger.record(
                "custom",
                scalar=np.float32(1.5),
                array=np.arange(3),
                where=tmp_path / "x",
            )
        record = load_run(ledger.path)["records"][0]
        assert record["scalar"] == 1.5
        assert record["array"] == [0, 1, 2]
        assert isinstance(record["where"], str)
        json.dumps(record)  # fully JSON-able

    def test_list_and_latest(self, tmp_path):
        with RunLedger("one", directory=tmp_path):
            pass
        time.sleep(0.01)
        with RunLedger("two", directory=tmp_path) as second:
            pass
        runs = list_runs(tmp_path)
        assert len(runs) == 2
        assert latest_run(tmp_path) == second.path

    def test_error_status_on_exception(self, tmp_path):
        with pytest.raises(RuntimeError):
            with RunLedger("unit", directory=tmp_path) as ledger:
                raise RuntimeError("boom")
        end = load_run(ledger.path)["records"][-1]
        assert end["type"] == "end" and end["status"] == "error"

    def test_obs_dir_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path / "here"))
        with RunLedger("unit") as ledger:
            pass
        assert ledger.path.parent == tmp_path / "here"


class TestReport:
    def _run(self, tmp_path) -> dict:
        with use_registry(), use_tracer():
            with RunLedger("unit", directory=tmp_path) as ledger:
                from repro.obs import get_registry

                with trace("hot"):
                    with trace("sub"):
                        pass
                get_registry().inc("serve.requests", 5)
                get_registry().observe("serve.request_latency_s", 0.003)
                get_registry().set_gauge("train.loss", 0.5)
        return load_run(ledger.path)

    def test_report_renders_span_and_metric_tables(self, tmp_path):
        report = render_report(self._run(tmp_path))
        assert "## Hottest spans" in report
        assert "`hot/sub`" in report
        assert "## Counters" in report and "`serve.requests`" in report
        assert "## Timers" in report and "serve.request_latency_s" in report
        assert "## Gauges" in report and "`train.loss`" in report

    def test_diff_renders_both_runs(self, tmp_path):
        run_a = self._run(tmp_path / "a")
        run_b = self._run(tmp_path / "b")
        diff = render_diff(run_a, run_b)
        assert "serve.requests" in diff

    def test_cli_report_latest(self, tmp_path, monkeypatch, capsys):
        from repro.obs.cli import main as obs_main

        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        self._run(tmp_path)
        assert obs_main(["report", "--latest"]) == 0
        out = capsys.readouterr().out
        assert "## Hottest spans" in out
        assert obs_main(["list"]) == 0


# ---------------------------------------------------------------------------
# ServiceStats as a metrics view
# ---------------------------------------------------------------------------
class TestServiceStats:
    def test_view_reads_serve_counters(self):
        stats = ServiceStats()
        assert stats.requests == 0
        stats._metrics.inc("serve.requests", 4)
        stats._metrics.inc("serve.cache_hits", 2)
        assert stats.requests == 4 and stats.cache_hits == 2

    def test_to_dict_shares_one_serialization_path(self):
        stats = ServiceStats()
        stats._metrics.inc("serve.batches", 3)
        payload = stats.to_dict()
        assert payload["batches"] == 3
        assert payload == stats.as_dict()
        assert set(payload) == {
            "requests", "cache_hits", "cache_misses", "coalesced",
            "rejected", "evictions", "batches", "flushes",
            "model_graphs", "bulk_calls", "streamed",
        }
        json.dumps(payload)

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            ServiceStats().nonsense


# ---------------------------------------------------------------------------
# Trainer instrumentation
# ---------------------------------------------------------------------------
class TestTrainerInstrumentation:
    def _train(self, samples, tmp_path, **config):
        model = GraphRegressor(
            "gcn", in_dim=samples[0].feature_dim, hidden_dim=8, num_layers=2,
            num_edge_types=TYPES, rng=np.random.default_rng(0),
        )
        cfg = TrainConfig(epochs=3, batch_size=8, **config)
        with use_registry() as registry:
            with RunLedger("train", directory=tmp_path) as ledger:
                result = train_graph_regressor(
                    model, samples[:12], samples[12:16], cfg
                )
        return result, registry, load_run(ledger.path)

    def test_epoch_metrics_and_ledger_records(self, dfg_samples, tmp_path):
        result, registry, run = self._train(dfg_samples, tmp_path)
        assert registry.counter("train.epochs").value == 3
        assert registry.timer("train.epoch_s").count == 3
        epochs = [r for r in run["records"] if r["type"] == "epoch"]
        assert [e["epoch"] for e in epochs] == [1, 2, 3]
        for entry in epochs:
            assert entry["loss"] > 0
            assert {"val_mape", "samples_per_s", "batch_build_s",
                    "forward_s", "backward_s"} <= set(entry)
        # The ledger does not perturb training itself.
        assert result.best_epoch in (1, 2, 3)

    def test_epoch_logging_honours_verbose(self, dfg_samples, tmp_path, caplog):
        with caplog.at_level(logging.INFO, logger="repro.training"):
            self._train(dfg_samples, tmp_path, log_every=1, verbose=True)
        assert sum("epoch" in r.message for r in caplog.records) == 3
        caplog.clear()
        with caplog.at_level(logging.INFO, logger="repro.training"):
            self._train(dfg_samples, tmp_path, log_every=1, verbose=False)
        assert not caplog.records


# ---------------------------------------------------------------------------
# DSE instrumentation
# ---------------------------------------------------------------------------
class TestDseInstrumentation:
    def test_generation_curve_and_ledger_record(self, tmp_path):
        program = make_loop_program()
        space = DesignSpace.from_program(program, unroll_options=(1, 2, 4))
        evaluator = GroundTruthEvaluator(program, space)
        with use_registry() as registry:
            with RunLedger("dse", directory=tmp_path) as ledger:
                result = explore(
                    space, evaluator, strategy="random", budget=space.size,
                    batch_size=2,
                )
        generations = result.stats["generations"]
        assert generations, "campaign must report at least one generation"
        assert generations[-1]["evaluated"] == result.evaluated
        # Convergence: ADRS to the final frontier ends at zero and the
        # evaluated counter is strictly increasing.
        assert generations[-1]["adrs_to_final"] == 0.0
        evaluated = [g["evaluated"] for g in generations]
        assert evaluated == sorted(evaluated) and len(set(evaluated)) == len(evaluated)
        assert registry.counter("dse.campaigns").value == 1
        assert registry.counter("dse.points_evaluated").value == result.evaluated
        record = [
            r for r in load_run(ledger.path)["records"] if r["type"] == "dse_explore"
        ]
        assert len(record) == 1
        assert record[0]["evaluated"] == result.evaluated
        assert record[0]["generations"] == generations
        assert record[0]["flow_runs"] == evaluator.flow_runs


# ---------------------------------------------------------------------------
# Tensor-op profiling
# ---------------------------------------------------------------------------
def _tape_nodes(root: Tensor) -> int:
    seen, stack = set(), [root]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.extend(node._parents)
    return len(seen)


def _gcn_step(model, batch, target):
    model.zero_grad()
    out = model(batch)
    loss = ((out - target) ** 2).mean()
    loss.backward()
    return loss


class TestProfiling:
    def test_counts_ops_and_kernels(self):
        with use_profiling() as prof:
            a = Tensor(np.ones((4, 3)), requires_grad=True)
            b = (a + a) * a
            scatter_sum(b, np.array([0, 0, 1, 1]), 2)
        assert profiling_enabled() is False
        snap = prof.snapshot()
        assert snap["ops"].get("Tensor.__add__", 0) >= 1
        assert snap["ops"].get("Tensor.__mul__", 0) >= 1
        kernel = snap["kernels"]["scatter_sum"]
        assert kernel["count"] == 1 and kernel["total_s"] >= 0.0

    def test_profile_merge(self):
        a, b = OpProfile(), OpProfile()
        a.count("Tensor.__add__.<locals>.backward")
        b.count("Tensor.__add__.<locals>.backward")
        b.record("scatter_sum", 0.5)
        a.merge(b.snapshot())
        assert a.op_count("Tensor.__add__") == 2
        assert a.snapshot()["kernels"]["scatter_sum"]["count"] == 1

    def test_disabled_records_nothing(self):
        prof = OpProfile()
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        _ = a + a
        assert prof.total_ops == 0 and not profiling_enabled()

    def test_profiling_adds_no_tape_nodes(self, dfg_samples):
        batch = Batch(dfg_samples[:4])
        model = GraphRegressor(
            "gcn", in_dim=batch.feature_dim, hidden_dim=8, num_layers=2,
            num_edge_types=TYPES, rng=np.random.default_rng(0),
        )
        target = Tensor(np.log1p(batch.y))
        baseline = _tape_nodes(_gcn_step(model, batch, target))
        with use_profiling():
            profiled = _tape_nodes(_gcn_step(model, batch, target))
        assert profiled == baseline

    def test_disabled_overhead_below_five_percent(self, dfg_samples):
        """Toggling profiling on and back off must leave the step cost
        unchanged: the disabled path is one attribute load per op."""
        batch = Batch(dfg_samples[:8])
        model = GraphRegressor(
            "gcn", in_dim=batch.feature_dim, hidden_dim=16, num_layers=2,
            num_edge_types=TYPES, rng=np.random.default_rng(0),
        )
        target = Tensor(np.log1p(batch.y))

        def step_time(repeats=5):
            times = []
            for _ in range(repeats):
                start = time.perf_counter()
                _gcn_step(model, batch, target)
                times.append(time.perf_counter() - start)
            return min(times)

        step_time(2)  # warm caches (contexts, scatter plans)
        before = step_time()
        with use_profiling() as prof:
            _gcn_step(model, batch, target)
        after = step_time()
        assert prof.total_ops > 0
        ratio = after / before
        # Same bar as the dataset-pipeline speedup gate: loaded or
        # single-core hosts record the ratio without gating on it.
        if (os.cpu_count() or 1) >= 4:
            assert ratio < 1.05, f"disabled profiling overhead {ratio:.3f}x"
