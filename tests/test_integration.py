"""End-to-end integration tests across all subsystems."""

import numpy as np
import pytest

from repro.dataset import build_graph, split_dataset
from repro.frontend import lower_program, to_c_source
from repro.hls import run_hls
from repro.ir import extract_cdfg, verify_function
from repro.models import (
    HierarchicalPredictor,
    KnowledgeRichPredictor,
    OffTheShelfPredictor,
    PredictorConfig,
)
from repro.suites import suite_programs
from repro.training import TrainConfig


class TestFullPipelineSingleProgram:
    def test_source_to_labels(self, loop_program):
        """program -> C source -> IR -> CDFG -> HLS -> encoded sample."""
        source = to_c_source(loop_program)
        assert "for (" in source
        fn = lower_program(loop_program)
        verify_function(fn)
        graph = extract_cdfg(fn)
        result = run_hls(fn)
        sample = build_graph(loop_program)
        np.testing.assert_allclose(sample.y, result.impl.as_array())
        assert sample.num_nodes == graph.num_nodes

    def test_real_kernel_roundtrip(self):
        program = suite_programs("machsuite")[4]  # gemm
        sample = build_graph(program, kind="cdfg")
        assert sample.y[0] > 0  # gemm uses DSPs
        assert sample.node_labels[:, 0].sum() > 0  # some DSP-typed nodes


class TestLearningPipeline:
    def test_three_approaches_on_shared_data(self, dfg_samples):
        """All approaches train on the same prebuilt dataset and produce
        finite, comparable MAPEs."""
        train, val, test = split_dataset(dfg_samples, seed=0)
        config = PredictorConfig(
            model_name="gcn",
            hidden_dim=16,
            num_layers=2,
            train=TrainConfig(epochs=6, batch_size=8, lr=3e-3),
        )
        scores = {}
        for name, cls in (
            ("base", OffTheShelfPredictor),
            ("rich", KnowledgeRichPredictor),
            ("infused", HierarchicalPredictor),
        ):
            predictor = cls(config)
            predictor.fit(train, val)
            scores[name] = float(np.mean(predictor.evaluate(test)))
        assert all(np.isfinite(v) for v in scores.values())

    def test_generalisation_path(self, dfg_samples, cdfg_samples):
        """Train on synthetic, predict a real kernel — the Table 5 path."""
        train, val, _ = split_dataset(
            dfg_samples + cdfg_samples, fractions=(0.85, 0.15, 0.0), seed=0
        )
        predictor = OffTheShelfPredictor(
            PredictorConfig(
                model_name="gcn", hidden_dim=16, num_layers=2,
                train=TrainConfig(epochs=5, batch_size=8),
            )
        )
        predictor.fit(train, val)
        kernel = build_graph(suite_programs("polybench")[13], kind="cdfg")  # gemm
        pred = predictor.predict([kernel])
        assert pred.shape == (1, 4)
        assert np.isfinite(pred).all()


class TestDeterminismEndToEnd:
    def test_identical_seeds_identical_predictions(self, dfg_samples):
        train, val, test = split_dataset(dfg_samples, seed=0)
        preds = []
        for _ in range(2):
            predictor = OffTheShelfPredictor(
                PredictorConfig(
                    model_name="gcn", hidden_dim=12, num_layers=2, seed=7,
                    train=TrainConfig(epochs=4, batch_size=8, seed=7),
                )
            )
            predictor.fit(train, val)
            preds.append(predictor.predict(test))
        np.testing.assert_allclose(preds[0], preds[1])

    def test_dataset_labels_stable_across_processes(self, dfg_samples):
        """Labels derive from a structural hash, not Python's randomised
        object hashes — re-building must give identical targets."""
        from repro.dataset import build_synthetic_dataset

        rebuilt = build_synthetic_dataset("dfg", 24, seed=11)
        for a, b in zip(dfg_samples, rebuilt):
            np.testing.assert_allclose(a.y, b.y)
