"""End-to-end artifact integrity: digests, corrupt-read detection across
serve artifacts, dataset shards and the server's hot-reload path."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.dataset.shards import (
    Manifest,
    ShardedDataset,
    read_shard,
    write_shard,
)
from repro.faults import FaultPlan, FaultSpec, fault_data, use_faults
from repro.integrity import (
    DigestMismatch,
    IntegrityError,
    digest_bytes,
    digest_file,
    load_npz_verified,
    read_bytes,
    verify_bytes,
)
from repro.models import OffTheShelfPredictor
from repro.serve import ModelRegistry
from repro.serve.artifacts import (
    SCHEMA_VERSION,
    load_predictor,
    save_predictor,
)
from repro.serve.server import PredictionServer, ServerConfig


class TestDigests:
    def test_digest_bytes_is_self_describing_and_stable(self):
        first = digest_bytes(b"payload")
        assert first.startswith("sha256:")
        assert first == digest_bytes(b"payload")
        assert first != digest_bytes(b"payloae")

    def test_digest_file_matches_digest_bytes(self, tmp_path):
        path = tmp_path / "blob"
        path.write_bytes(b"\x00\x01\x02")
        assert digest_file(path) == digest_bytes(b"\x00\x01\x02")

    def test_verify_bytes_raises_on_mismatch(self):
        verify_bytes(b"ok", digest_bytes(b"ok"), "blob")
        with pytest.raises(DigestMismatch, match="blob"):
            verify_bytes(b"ok", digest_bytes(b"other"), "blob")

    def test_load_npz_verified_round_trip(self, tmp_path):
        path = tmp_path / "arrays.npz"
        np.savez(path, a=np.arange(4), b=np.eye(2))
        arrays = load_npz_verified(path, expected=digest_file(path))
        np.testing.assert_array_equal(arrays["a"], np.arange(4))

    def test_load_npz_verified_truncated_without_digest(self, tmp_path):
        path = tmp_path / "arrays.npz"
        np.savez(path, a=np.arange(4))
        path.write_bytes(path.read_bytes()[:10])
        # No recorded digest (legacy): the parse failure still surfaces
        # as a typed IntegrityError, not a cryptic zipfile error.
        with pytest.raises(IntegrityError, match="unreadable"):
            load_npz_verified(path)


class TestReadSeam:
    def test_fault_data_is_passthrough_without_injector(self):
        assert fault_data("io.read", "k", b"bytes") == b"bytes"

    def test_corrupt_spec_flips_one_deterministic_byte(self):
        plan = FaultPlan(
            seed=5,
            specs=(
                FaultSpec(seam="io.read", corrupt=True, fail_on_calls=(1,)),
            ),
        )
        data = bytes(range(64))
        with use_faults(plan):
            first = fault_data("io.read", "k", data)
        with use_faults(plan):
            second = fault_data("io.read", "k", data)
        assert first == second  # pure function of the plan
        flipped = [i for i, (a, b) in enumerate(zip(first, data)) if a != b]
        assert len(flipped) == 1

    def test_corrupt_and_kill_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            FaultSpec(seam="io.read", corrupt=True, kill=True)

    def test_read_bytes_routes_through_seam(self, tmp_path):
        path = tmp_path / "blob"
        path.write_bytes(b"abcdef")
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    seam="io.read",
                    on_keys=("blob",),
                    corrupt=True,
                    fail_on_calls=(1,),
                ),
            )
        )
        with use_faults(plan):
            corrupted = read_bytes(path)
        assert corrupted != b"abcdef"
        assert path.read_bytes() == b"abcdef"  # disk untouched
        with pytest.raises(DigestMismatch), use_faults(plan):
            verify_bytes(
                read_bytes(path), digest_bytes(b"abcdef"), "blob"
            )


@pytest.fixture(scope="module")
def fitted_tiny(dfg_samples):
    from tests.test_serve import tiny_config

    predictor = OffTheShelfPredictor(tiny_config())
    predictor.fit(dfg_samples[:16], dfg_samples[16:20])
    return predictor


class TestArtifactIntegrity:
    def test_manifest_records_weights_digest(self, fitted_tiny, tmp_path):
        path = save_predictor(fitted_tiny, tmp_path / "art")
        manifest = json.loads((path / "manifest.json").read_text())
        assert manifest["schema_version"] == SCHEMA_VERSION
        assert manifest["weights_digest"] == digest_file(path / "weights.npz")

    def test_tampered_weights_refuse_to_load(self, fitted_tiny, tmp_path):
        path = save_predictor(fitted_tiny, tmp_path / "art")
        weights = path / "weights.npz"
        raw = bytearray(weights.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        weights.write_bytes(bytes(raw))
        with pytest.raises(DigestMismatch, match="artifact"):
            load_predictor(path)

    def test_registry_load_verifies(self, fitted_tiny, tmp_path, dfg_samples):
        registry = ModelRegistry(tmp_path / "reg")
        record = registry.register("demo", fitted_tiny)
        weights = record.path / "weights.npz"
        weights.write_bytes(weights.read_bytes()[:-16])
        with pytest.raises(DigestMismatch):
            registry.load("demo")

    def test_legacy_v3_artifact_loads_with_warning(
        self, fitted_tiny, tmp_path, dfg_samples
    ):
        path = save_predictor(fitted_tiny, tmp_path / "art")
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["schema_version"] = 3
        del manifest["weights_digest"]
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.warns(UserWarning, match="unverified"):
            loaded = load_predictor(path)
        np.testing.assert_array_equal(
            loaded.predict(dfg_samples[:2]), fitted_tiny.predict(dfg_samples[:2])
        )

    def test_injected_corruption_caught_at_load(self, fitted_tiny, tmp_path):
        path = save_predictor(fitted_tiny, tmp_path / "art")
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    seam="io.read",
                    on_keys=("weights.npz",),
                    corrupt=True,
                    fail_on_calls=(1,),
                ),
            )
        )
        with pytest.raises(DigestMismatch), use_faults(plan):
            load_predictor(path)
        load_predictor(path)  # disk was never touched


class TestShardIntegrity:
    def test_write_shard_records_digest(self, dfg_samples, tmp_path):
        info = write_shard(tmp_path, 0, 0, dfg_samples[:4])
        assert info.digest == digest_file(tmp_path / info.file)
        assert len(read_shard(tmp_path, info)) == 4

    def test_corrupt_shard_raises(self, dfg_samples, tmp_path):
        info = write_shard(tmp_path, 0, 0, dfg_samples[:4])
        shard = tmp_path / info.file
        raw = bytearray(shard.read_bytes())
        raw[len(raw) // 3] ^= 0x01
        shard.write_bytes(bytes(raw))
        with pytest.raises(DigestMismatch, match="shard"):
            read_shard(tmp_path, info)

    def test_legacy_manifest_without_digest_loads(self, dfg_samples, tmp_path):
        info = write_shard(tmp_path, 0, 0, dfg_samples[:4])
        manifest = Manifest(
            complete=True, num_samples=4, shard_size=4, shards=[info]
        )
        raw = json.loads(manifest.to_json())
        for entry in raw["shards"]:
            del entry["digest"]  # pre-digest manifest layout
        (tmp_path / "manifest.json").write_text(json.dumps(raw))
        dataset = ShardedDataset(tmp_path)
        assert dataset.manifest.shards[0].digest == ""
        assert len(dataset[0:4]) == 4

    def test_sharded_dataset_surfaces_corruption(self, dfg_samples, tmp_path):
        info = write_shard(tmp_path, 0, 0, dfg_samples[:4])
        Manifest(
            complete=True, num_samples=4, shard_size=4, shards=[info]
        ).save(tmp_path)
        dataset = ShardedDataset(tmp_path)
        shard = tmp_path / info.file
        shard.write_bytes(shard.read_bytes()[:-4])
        with pytest.raises(DigestMismatch):
            dataset[0]


class TestHotReloadSkip:
    def test_corrupt_candidate_keeps_old_model(
        self, fitted_tiny, dfg_samples, tmp_path
    ):
        registry = ModelRegistry(tmp_path / "reg")
        registry.register("demo", fitted_tiny)
        config = ServerConfig(
            workers=1, max_wait_ms=0.5, queue_depth=32, validate=False
        )
        with PredictionServer(registry, "demo", config=config) as server:
            before = server.submit(dfg_samples[0]).outcome(timeout=10.0)
            assert before.status == "ok" and before.model_version == 1
            # Publish a corrupt v2, then ask workers to roll onto it.
            record = registry.register("demo", fitted_tiny)
            weights = record.path / "weights.npz"
            weights.write_bytes(weights.read_bytes()[:-16])
            server.reload()
            after = [
                server.submit(g).outcome(timeout=10.0)
                for g in dfg_samples[1:4]
            ]
            for outcome in after:
                assert outcome.status == "ok"
                assert outcome.model_version == 1  # old model kept
        assert server.stats.reload_skipped >= 1
        assert server.stats.failed == 0
