"""Serving tier chaos suite: breaker state machine, deadlines, shedding,
degradation, retries, hot reload and the stress harness.

All scenarios are driven through :mod:`repro.faults` schedules and, where
the state machine allows it, an injected fake clock — no test sleeps
beyond the injected latency spikes (<= 50 ms total per test)."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.faults import FaultPlan, FaultSpec, InjectedFault, use_faults
from repro.models import OffTheShelfPredictor
from repro.serve import ModelRegistry
from repro.serve.fallback import AnalyticalFallback
from repro.serve.server import (
    CircuitBreaker,
    DeadlineExceeded,
    Overloaded,
    PredictionServer,
    RequestFailed,
    ServerClosed,
    ServerConfig,
    ServerStats,
)
from repro.serve.stress import DEFAULT_CHAOS_PLAN, build_traffic, run_stress
from tests.conftest import make_loop_program

pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")


class StubPredictor:
    """Deterministic 4-column predictor with no model underneath."""

    requires_hls = False

    def __init__(self):
        self.calls = 0

    def predict(self, graphs, batch_size=32):
        self.calls += 1
        return np.tile(np.arange(4.0), (len(graphs), 1))


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


def fast_config(**overrides) -> ServerConfig:
    """Small, prompt server: per-request batches, instant flush."""
    defaults = dict(
        workers=1,
        queue_depth=8,
        max_batch_size=4,
        max_wait_ms=0.0,
        backoff_base_ms=1.0,
        backoff_cap_ms=5.0,
        breaker_reset_s=0.05,
        validate=False,
    )
    defaults.update(overrides)
    return ServerConfig(**defaults)


def fail_plan(*calls, **spec_kwargs) -> FaultPlan:
    return FaultPlan(
        specs=(FaultSpec(seam="serve.predict", fail_on_calls=calls, **spec_kwargs),)
    )


# ---------------------------------------------------------------------------
# Circuit breaker (fake clock: no sleeps)
# ---------------------------------------------------------------------------
class TestCircuitBreaker:
    def test_full_state_machine(self):
        clock = FakeClock()
        opens = []
        breaker = CircuitBreaker(
            threshold=3, reset_s=1.0, probes=1, clock=clock,
            on_open=lambda: opens.append(clock.now),
        )
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED  # below threshold
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert opens == [0.0]
        assert not breaker.allow()

        clock.advance(0.5)
        assert not breaker.allow()  # reset period not elapsed
        clock.advance(0.5)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()  # the one half-open probe
        assert not breaker.allow()  # probes exhausted
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_half_open_failure_reopens_immediately(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=2, reset_s=1.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()  # half-open probe
        breaker.record_failure()  # one failure is enough while half-open
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED  # never 2 in a row

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)


# ---------------------------------------------------------------------------
# Server behaviour (stub predictor; real model not needed)
# ---------------------------------------------------------------------------
class TestPredictionServer:
    def test_happy_path_and_stats(self, dfg_samples):
        stub = StubPredictor()
        with PredictionServer.from_predictor(stub, config=fast_config()) as server:
            tickets = [server.submit(g) for g in dfg_samples[:4]]
            for ticket in tickets:
                outcome = ticket.outcome(timeout=5.0)
                assert outcome.status == "ok"
                assert not outcome.degraded
                assert outcome.retries == 0
                np.testing.assert_array_equal(
                    ticket.result(timeout=5.0), np.arange(4.0)
                )
            values = server.predict(dfg_samples[4:6], timeout=5.0)
            assert values.shape == (2, 4)
        stats = server.stats
        assert isinstance(stats, ServerStats)
        assert stats.submitted == 6
        assert stats.completed == 6
        assert stats.shed == stats.degraded == stats.failed == 0
        # The service-layer counters ride along in the same view.
        assert stats.requests >= 6

    def test_submit_argument_contract(self, dfg_samples):
        with PredictionServer.from_predictor(
            StubPredictor(), config=fast_config()
        ) as server:
            with pytest.raises(ValueError, match="exactly one"):
                server.submit()
            with pytest.raises(ValueError, match="exactly one"):
                server.submit(dfg_samples[0], program=make_loop_program())

    def test_deadline_expired_while_queued(self, dfg_samples):
        with PredictionServer.from_predictor(
            StubPredictor(), config=fast_config()
        ) as server:
            ticket = server.submit(dfg_samples[0], deadline_ms=0.0)
            outcome = ticket.outcome(timeout=5.0)
            assert outcome.status == "deadline"
            with pytest.raises(DeadlineExceeded):
                ticket.result()
        assert server.stats.deadline_expired == 1
        assert server.stats.completed == 0  # no model time spent

    def test_sheds_with_overloaded_when_queue_full(self, dfg_samples):
        plan = FaultPlan(
            specs=(FaultSpec(seam="serve.predict", delay_s=0.01),)
        )
        config = fast_config(queue_depth=2, max_batch_size=1)
        with use_faults(plan):
            with PredictionServer.from_predictor(
                StubPredictor(), config=config
            ) as server:
                tickets, shed = [], 0
                # Burst 12 distinct graphs; the single worker is stuck in a
                # 10 ms latency spike, so the 2-deep queue must overflow.
                for graph in dfg_samples[:12]:
                    try:
                        tickets.append(server.submit(graph))
                    except Overloaded:
                        shed += 1
                assert shed > 0
                assert server.stats.shed == shed
                # Backpressure is shedding, not hanging: every admitted
                # request still resolves.
                for ticket in tickets:
                    assert ticket.outcome(timeout=10.0).status == "ok"

    def test_retry_with_backoff_then_success(self, dfg_samples):
        stub = StubPredictor()
        config = fast_config(max_retries=2)
        with use_faults(fail_plan(1)):
            with PredictionServer.from_predictor(stub, config=config) as server:
                outcome = server.submit(dfg_samples[0]).outcome(timeout=5.0)
        assert outcome.status == "ok"
        assert outcome.retries == 1
        assert server.stats.retries == 1
        assert server.stats.model_failures == 1
        assert stub.calls == 1  # the failed attempt never reached the model

    def test_degrades_then_recovers_through_breaker(self, dfg_samples):
        clock = FakeClock()
        stub = StubPredictor()
        config = fast_config(
            max_retries=0, breaker_threshold=3, breaker_reset_s=1.0
        )
        server = PredictionServer.from_predictor(
            stub, config=config, clock=clock
        )
        try:
            with use_faults(fail_plan(1, 2, 3)):
                # Three consecutive model failures: each degrades (retries
                # are off) and the third opens the breaker.
                for graph in dfg_samples[:3]:
                    outcome = server.submit(graph).outcome(timeout=5.0)
                    assert outcome.status == "degraded"
                    assert outcome.degraded
                    assert outcome.values is not None
                    assert np.all(np.isfinite(outcome.values))
                assert server.breaker.state == CircuitBreaker.OPEN
                assert server.stats.breaker_opens == 1

                # Breaker open: evaluation is skipped entirely — the seam
                # never fires and the stub never runs.
                outcome = server.submit(dfg_samples[3]).outcome(timeout=5.0)
                assert outcome.status == "degraded"
                assert stub.calls == 0

                # March the fake clock past the reset: the half-open probe
                # (seam call 4 — unscheduled, so it passes) closes it.
                clock.advance(1.0)
                outcome = server.submit(dfg_samples[4]).outcome(timeout=5.0)
                assert outcome.status == "ok"
                assert server.breaker.state == CircuitBreaker.CLOSED
                assert stub.calls == 1
        finally:
            server.close()
        assert server.stats.degraded == 4
        assert server.stats.completed == 1

    def test_degraded_program_request_matches_analytical_flow(self):
        program = make_loop_program()
        config = fast_config(max_retries=0)
        with use_faults(fail_plan(1)):
            with PredictionServer.from_predictor(
                StubPredictor(), config=config
            ) as server:
                outcome = server.submit(program=program, kind="cdfg").outcome(
                    timeout=5.0
                )
        assert outcome.status == "degraded"
        expected, cycles = AnalyticalFallback().predict_program(program)
        np.testing.assert_array_equal(outcome.values, expected)
        assert outcome.latency_cycles == cycles

    def test_failed_when_degradation_disabled(self, dfg_samples):
        config = fast_config(max_retries=0, degrade=False)
        with use_faults(fail_plan(1)):
            with PredictionServer.from_predictor(
                StubPredictor(), config=config
            ) as server:
                ticket = server.submit(dfg_samples[0])
                outcome = ticket.outcome(timeout=5.0)
                assert outcome.status == "failed"
                with pytest.raises(RequestFailed) as excinfo:
                    ticket.result()
        assert isinstance(excinfo.value.__cause__, InjectedFault)
        assert server.stats.failed == 1

    def test_close_without_drain_resolves_queued_as_closed(self, dfg_samples):
        plan = FaultPlan(
            specs=(FaultSpec(seam="serve.predict", delay_s=0.03,
                             delay_on_calls=(1,)),)
        )
        config = fast_config(max_batch_size=1)
        with use_faults(plan):
            server = PredictionServer.from_predictor(
                StubPredictor(), config=config
            )
            first = server.submit(dfg_samples[0])
            time.sleep(0.005)  # let the worker take it into the spike
            queued = [server.submit(g) for g in dfg_samples[1:3]]
            server.close(drain=False)
        assert first.outcome(timeout=5.0).status == "ok"
        for ticket in queued:
            assert ticket.outcome(timeout=5.0).status == "closed"
            with pytest.raises(ServerClosed):
                ticket.result()
        with pytest.raises(ServerClosed):
            server.submit(dfg_samples[3])

    def test_constructor_contract(self):
        with pytest.raises(ValueError, match="exactly one"):
            PredictionServer(None)


# ---------------------------------------------------------------------------
# Hot reload (real registry + tiny fitted model)
# ---------------------------------------------------------------------------
def test_hot_reload_rolls_to_new_version_mid_traffic(
    fitted_tiny, dfg_samples, tmp_path
):
    registry = ModelRegistry(tmp_path / "reg")
    registry.register("demo", fitted_tiny)
    config = ServerConfig(workers=2, max_wait_ms=0.5, queue_depth=32)
    with PredictionServer(registry, "demo", config=config) as server:
        before = [server.submit(g) for g in dfg_samples[:4]]
        for ticket in before:
            outcome = ticket.outcome(timeout=10.0)
            assert outcome.status == "ok"
            assert outcome.model_version == 1

        registry.register("demo", fitted_tiny)  # v2 lands on disk
        assert server.reload() == 1
        after = [server.submit(g) for g in dfg_samples[4:8]]
        for ticket in after:
            outcome = ticket.outcome(timeout=10.0)
            assert outcome.status == "ok"
            assert outcome.model_version == 2
    assert server.stats.hot_reloads == 1
    assert server.stats.failed == 0


@pytest.fixture(scope="module")
def fitted_tiny(dfg_samples):
    from tests.test_serve import tiny_config

    predictor = OffTheShelfPredictor(tiny_config())
    predictor.fit(dfg_samples[:16], dfg_samples[16:20])
    return predictor


# ---------------------------------------------------------------------------
# Stress harness
# ---------------------------------------------------------------------------
class TestStressHarness:
    def test_traffic_is_deterministic_and_burst_ordered(self):
        first = build_traffic(False, 24, seed=3)
        second = build_traffic(False, 24, seed=3)
        assert [flavor for flavor, _ in first] == [f for f, _ in second]
        flavors = [flavor for flavor, _ in first]
        # Pre-encoded graphs flood first (the worst-case burst), then the
        # encode-at-admission traffic trickles in.
        assert flavors.index("graph") == 0
        tail = flavors[flavors.count("graph"):]
        assert "graph" not in tail

    def test_chaos_run_never_hangs(self):
        stub = StubPredictor()
        config = fast_config(
            workers=2, queue_depth=8, max_batch_size=4, max_wait_ms=1.0
        )
        with use_faults(DEFAULT_CHAOS_PLAN):
            with PredictionServer.from_predictor(stub, config=config) as server:
                summary = run_stress(
                    server, requests=32, seed=0, deadline_ms=500.0
                )
        assert summary["hung"] == 0
        assert summary["admitted"] + summary["shed"] + summary["rejected"] == 32
        resolved = (
            summary["ok"]
            + summary["degraded"]
            + summary["deadline_expired"]
            + summary["failed"]
        )
        assert resolved == summary["admitted"]
        assert summary["stats"]["submitted"] == 32
        assert summary["p99_ms"] is None or summary["p99_ms"] >= summary["p50_ms"]


# ---------------------------------------------------------------------------
# Analytical fallback
# ---------------------------------------------------------------------------
class TestAnalyticalFallback:
    def test_graph_only_estimate_is_finite(self, dfg_samples):
        fallback = AnalyticalFallback()
        values, cycles = fallback.predict(dfg_samples[0])
        assert values.shape == (4,)
        assert np.all(np.isfinite(values))
        assert cycles is None

    def test_resource_channel_beats_node_rates(self, dfg_samples):
        graph = dfg_samples[0]
        fallback = AnalyticalFallback()
        with_channel = fallback.predict_graph(graph)
        resources = graph.node_resources
        try:
            graph.node_resources = None
            without = fallback.predict_graph(graph)
        finally:
            graph.node_resources = resources
        np.testing.assert_array_equal(
            with_channel[:3],
            np.asarray(resources, dtype=np.float64).sum(axis=0),
        )
        assert with_channel[3] == without[3]  # CP is the timing budget
