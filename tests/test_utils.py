"""Unit tests for shared utilities (rng, tables) and package metadata."""

import numpy as np
import pytest

import repro
from repro.utils import default_rng, fork_rng, format_table, seed_all


class TestRng:
    def test_seed_all_reproducible(self):
        seed_all(123)
        a = default_rng().integers(0, 1000, 5)
        seed_all(123)
        b = default_rng().integers(0, 1000, 5)
        np.testing.assert_array_equal(a, b)

    def test_fork_rng_independent_streams(self):
        seed_all(0)
        child_a = fork_rng()
        child_b = fork_rng()
        assert child_a.integers(0, 10**9) != child_b.integers(0, 10**9)

    def test_fork_from_explicit_parent(self):
        parent = np.random.default_rng(7)
        child = fork_rng(parent)
        assert isinstance(child, np.random.Generator)


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["name", "value"],
            [["a", 1.5], ["long-name", 22.25]],
            title="My table",
        )
        lines = text.splitlines()
        assert lines[0] == "My table"
        assert "long-name" in lines[4]
        # all rows same width
        assert len({len(line) for line in lines[1:]}) <= 2

    def test_floats_formatted_to_two_decimals(self):
        text = format_table(["x"], [[1.23456]])
        assert "1.23" in text

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])


class TestPackage:
    def test_version_exposed(self):
        assert repro.__version__.count(".") == 2

    def test_typesys_reexport_compatible(self):
        from repro.frontend.ctypes_ import CInt as A
        from repro.typesys import CInt as B

        assert A is B


class TestCLIs:
    def test_dataset_cli(self, tmp_path, capsys):
        from repro.dataset.__main__ import main

        out = tmp_path / "tiny.npz"
        assert main(["--mode", "dfg", "--count", "3", "--out", str(out)]) == 0
        assert out.exists()
        captured = capsys.readouterr().out
        assert "wrote 3 graphs" in captured

    def test_dataset_cli_roundtrip(self, tmp_path):
        from repro.dataset import load_dataset
        from repro.dataset.__main__ import main

        out = tmp_path / "tiny.npz"
        main(["--mode", "cdfg", "--count", "2", "--out", str(out)])
        assert len(load_dataset(out)) == 2

    def test_experiments_cli_rejects_unknown(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["table99"])
