"""Serving subsystem: artifacts, registry, service, encoding, CLI."""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.frontend import parse_c_source, to_c_source
from repro.graph.data import GraphData
from repro.graph.validation import GraphValidationError
from repro.models import (
    HierarchicalPredictor,
    KnowledgeRichPredictor,
    OffTheShelfPredictor,
    PredictorConfig,
)
from repro.serve import (
    ArtifactError,
    ModelRegistry,
    PredictionService,
    RegistryError,
    ServiceConfig,
    encode_source,
    graph_from_payload,
    load_predictor,
    read_manifest,
    save_predictor,
)
from repro.serve.cli import main as serve_main
from repro.training import TrainConfig

pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")

KERNEL = """
#include <stdint.h>

int32_t top(int16_t a[8], int16_t b[8]) {
    int32_t acc = 0;
    for (int i = 0; i < 8; i++) {
        acc = acc + a[i] * b[i];
    }
    return acc;
}
"""


def tiny_config(seed: int = 0) -> PredictorConfig:
    return PredictorConfig(
        model_name="rgcn",
        hidden_dim=12,
        num_layers=2,
        seed=seed,
        train=TrainConfig(epochs=2, batch_size=8, seed=seed),
    )


@pytest.fixture(scope="module")
def split(dfg_samples):
    return dfg_samples[:16], dfg_samples[16:20], dfg_samples[20:]


@pytest.fixture(scope="module")
def fitted(split):
    """One fitted predictor per approach (shared; treat as read-only)."""
    train, val, _ = split
    predictors = {}
    for name, cls in (
        ("off_the_shelf", OffTheShelfPredictor),
        ("knowledge_rich", KnowledgeRichPredictor),
        ("hierarchical", HierarchicalPredictor),
    ):
        predictor = cls(tiny_config())
        predictor.fit(train, val)
        predictors[name] = predictor
    return predictors


# ---------------------------------------------------------------------------
# Artifacts
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "name", ["off_the_shelf", "knowledge_rich", "hierarchical"]
)
def test_save_load_roundtrip_bitwise(name, fitted, split, tmp_path):
    _, _, test = split
    predictor = fitted[name]
    reference = predictor.predict(test)
    path = save_predictor(predictor, tmp_path / name)
    clone = load_predictor(path)
    assert type(clone) is type(predictor)
    assert np.array_equal(clone.predict(test), reference)


def test_state_dicts_identical_after_load(fitted, tmp_path):
    predictor = fitted["hierarchical"]
    path = save_predictor(predictor, tmp_path / "h")
    clone = load_predictor(path)
    state, clone_state = predictor.state_dict(), clone.state_dict()
    assert sorted(state) == sorted(clone_state)
    for key in state:
        assert np.array_equal(state[key], clone_state[key]), key


def test_manifest_contents(fitted, tmp_path):
    path = save_predictor(
        fitted["off_the_shelf"], tmp_path / "m", extras={"note": "hi"}
    )
    manifest = read_manifest(path)
    assert manifest["kind"] == "off_the_shelf"
    assert manifest["feature_view"] == "base"
    assert manifest["config"]["model_name"] == "rgcn"
    assert manifest["target_names"] == ["DSP", "LUT", "FF", "CP"]
    assert manifest["extras"] == {"note": "hi"}


def test_bad_schema_version_rejected(fitted, tmp_path):
    path = save_predictor(fitted["off_the_shelf"], tmp_path / "m")
    manifest = json.loads((path / "manifest.json").read_text())
    manifest["schema_version"] = 999
    (path / "manifest.json").write_text(json.dumps(manifest))
    with pytest.raises(ArtifactError, match="schema"):
        load_predictor(path)


def test_unfitted_predictor_cannot_save(tmp_path):
    with pytest.raises(RuntimeError, match="not fitted"):
        save_predictor(OffTheShelfPredictor(tiny_config()), tmp_path / "x")


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
def test_registry_versions_and_latest(fitted, tmp_path):
    registry = ModelRegistry(tmp_path / "reg")
    predictor = fitted["off_the_shelf"]
    first = registry.register("zoo-rgcn", predictor)
    second = registry.register("zoo-rgcn", predictor, extras={"mape": 0.1})
    assert (first.version, second.version) == (1, 2)
    assert registry.versions("zoo-rgcn") == [1, 2]
    assert registry.resolve("zoo-rgcn").name == "v2"
    assert registry.resolve("zoo-rgcn", 1).name == "v1"
    assert registry.resolve("zoo-rgcn", "v1").name == "v1"
    records = registry.list_models()
    assert [(r.name, r.version) for r in records] == [("zoo-rgcn", 1), ("zoo-rgcn", 2)]
    assert records[1].extras == {"mape": 0.1}


def test_registry_load_matches_direct(fitted, split, tmp_path):
    _, _, test = split
    registry = ModelRegistry(tmp_path / "reg")
    registry.register("m", fitted["hierarchical"])
    clone = registry.load("m")
    assert np.array_equal(clone.predict(test), fitted["hierarchical"].predict(test))


def test_registry_errors(tmp_path):
    registry = ModelRegistry(tmp_path / "reg")
    with pytest.raises(RegistryError, match="no versions"):
        registry.resolve("ghost")
    with pytest.raises(RegistryError, match="bad model name"):
        registry.resolve("../escape")
    assert registry.list_models() == []
    assert registry.latest_version("ghost") == 0


# ---------------------------------------------------------------------------
# Service: batching, caching, validation
# ---------------------------------------------------------------------------
def test_service_matches_predictor(fitted, split):
    _, _, test = split
    predictor = fitted["off_the_shelf"]
    service = PredictionService(predictor)
    assert np.array_equal(service.predict(test), predictor.predict(test))
    assert service.predict([]).shape == (0, 4)


def test_cache_hit_miss_and_eviction(fitted, split):
    _, _, test = split
    service = PredictionService(
        fitted["off_the_shelf"], ServiceConfig(max_batch_size=8, cache_size=2)
    )
    a, b, c = test[0], test[1], test[2]
    service.predict_one(a)
    assert (service.stats.cache_misses, service.stats.cache_hits) == (1, 0)
    service.predict_one(a)
    assert service.stats.cache_hits == 1
    service.predict_one(b)
    service.predict_one(c)  # evicts a (LRU, capacity 2)
    assert service.stats.evictions == 1
    service.predict_one(a)
    assert service.stats.cache_misses == 4  # a was evicted -> miss again


def test_cache_disabled(fitted, split):
    _, _, test = split
    service = PredictionService(fitted["off_the_shelf"], ServiceConfig(cache_size=0))
    service.predict_one(test[0])
    service.predict_one(test[0])
    assert service.stats.cache_hits == 0
    assert service.stats.model_graphs == 2


def test_microbatch_auto_flush(fitted, split):
    _, _, test = split
    service = PredictionService(
        fitted["off_the_shelf"], ServiceConfig(max_batch_size=2)
    )
    t0 = service.submit(test[0])
    assert not t0.done  # still queued
    t1 = service.submit(test[1])
    assert t0.done and t1.done  # batch filled -> auto flush
    assert service.stats.batches == 1
    t2 = service.submit(test[2])
    assert not t2.done
    value = t2.result()  # lazy flush on read
    assert value.shape == (4,)
    assert service.stats.batches == 2


def test_inflight_coalescing(fitted, split):
    _, _, test = split
    service = PredictionService(
        fitted["off_the_shelf"], ServiceConfig(max_batch_size=32)
    )
    t0 = service.submit(test[0])
    t1 = service.submit(test[0])  # identical graph while in flight
    service.flush()
    assert service.stats.coalesced == 1
    assert service.stats.model_graphs == 1
    assert np.array_equal(t0.result(), t1.result())


def test_bulk_dedupes_duplicates_across_flush_boundary(fitted, split):
    """Regression: a duplicate fingerprint straddling an auto-flush inside
    one bulk call must not be re-evaluated (or re-counted as a miss).

    Before the bulk path deduped up front, ``predict([a, b, a])`` with
    ``max_batch_size=2`` and the cache disabled evaluated ``a`` twice:
    the first flush dropped ``a`` from the in-flight table, nothing was
    cached, and the trailing duplicate looked brand new.
    """
    _, _, test = split
    a, b = test[0], test[1]
    service = PredictionService(
        fitted["off_the_shelf"], ServiceConfig(max_batch_size=2, cache_size=0)
    )
    out = service.predict([a, b, a])
    stats = service.stats
    assert np.array_equal(out[0], out[2])
    assert stats.model_graphs == 2  # a evaluated exactly once
    assert (stats.requests, stats.cache_misses, stats.coalesced) == (3, 2, 1)
    assert stats.requests == (
        stats.cache_hits + stats.cache_misses + stats.coalesced + stats.rejected
    )


def test_bulk_dedupes_under_intra_flush_eviction(fitted, split):
    """Same regression through the eviction corner: a cache smaller than
    one bulk call's unique set cannot carry results across the intra-call
    flush boundary, so dedupe must happen before queueing."""
    _, _, test = split
    a, b, c = test[0], test[1], test[2]
    service = PredictionService(
        fitted["off_the_shelf"], ServiceConfig(max_batch_size=3, cache_size=1)
    )
    service.predict([a, b, c, a])
    stats = service.stats
    assert stats.model_graphs == 3
    assert (stats.requests, stats.cache_misses, stats.coalesced) == (4, 3, 1)
    assert stats.model_graphs <= stats.cache_misses


def test_stats_invariants_with_duplicates_and_rejections(fitted, split):
    """requests == hits + misses + coalesced + rejected across mixed
    traffic: bulk duplicates, cache hits and a validation rejection."""
    _, _, test = split
    a, b = test[0], test[1]
    service = PredictionService(
        fitted["off_the_shelf"], ServiceConfig(max_batch_size=8, cache_size=8)
    )
    service.predict([a, a, b])
    service.predict_one(a)  # cache hit
    bad = GraphData(
        node_features=np.zeros((3, 2)),  # wrong feature width
        edge_index=np.array([[0, 1], [1, 2]]),
        edge_type=np.zeros(2),
        edge_back=np.zeros(2),
    )
    with pytest.raises(ValueError):
        service.submit(bad)
    stats = service.stats
    assert stats.rejected == 1
    assert stats.bulk_calls == 1
    assert stats.requests == (
        stats.cache_hits + stats.cache_misses + stats.coalesced + stats.rejected
    )


def test_boundary_validation_rejects_bad_graphs(fitted, split):
    _, _, test = split
    service = PredictionService(fitted["off_the_shelf"])
    good = test[0]
    bad_edges = good.with_features(good.node_features)
    bad_edges.edge_index = np.array([[0, good.num_nodes + 5], [1, 0]])
    bad_edges.edge_type = np.array([0, 0])
    bad_edges.edge_back = np.array([0, 0])
    with pytest.raises(GraphValidationError, match="out of range"):
        service.submit(bad_edges)
    bad_dim = good.with_features(good.node_features[:, :-1])
    with pytest.raises(GraphValidationError, match="feature dim"):
        service.submit(bad_dim)
    bad_type = good.with_features(good.node_features)
    bad_type.edge_type = np.full_like(bad_type.edge_type, 10**6)
    with pytest.raises(GraphValidationError, match="edge_type id"):
        service.submit(bad_type)


def test_rich_predictor_requires_resources(fitted, split):
    _, _, test = split
    service = PredictionService(fitted["knowledge_rich"])
    stripped = test[0].with_features(test[0].node_features)
    stripped.node_resources = None
    with pytest.raises(ValueError, match="intermediate HLS results"):
        service.submit(stripped)


# ---------------------------------------------------------------------------
# End-to-end: raw C source -> prediction
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "name", ["off_the_shelf", "knowledge_rich", "hierarchical"]
)
def test_source_to_prediction(name, fitted):
    service = PredictionService(fitted[name])
    values = service.predict_source(KERNEL)
    assert values.shape == (4,)
    assert np.isfinite(values).all()
    # Identical source -> identical fingerprint -> cache hit.
    again = service.predict_source(KERNEL)
    assert np.array_equal(values, again)
    assert service.stats.cache_hits == 1


def test_encode_source_matches_dataset_convention():
    graph = encode_source(KERNEL)
    assert graph.meta["kind"] == "cdfg"  # has a loop -> multi-block
    assert graph.y is None  # inference graphs carry no targets
    single = encode_source(
        "int32_t top(int32_t a, int32_t b) { return a + b; }"
    )
    assert single.meta["kind"] == "dfg"


def test_graph_from_payload_roundtrip(split):
    _, _, test = split
    graph = test[0]
    payload = {
        "node_features": graph.node_features.tolist(),
        "edge_index": graph.edge_index.tolist(),
        "edge_type": graph.edge_type.tolist(),
        "edge_back": graph.edge_back.tolist(),
        "node_resources": graph.node_resources.tolist(),
    }
    rebuilt = graph_from_payload(payload)
    assert rebuilt.fingerprint() == graph.fingerprint()
    with pytest.raises(ValueError, match="missing key"):
        graph_from_payload({"edge_index": [[0], [1]]})
    # Row-pair layout must be rejected, not silently reshaped.
    with pytest.raises(ValueError, match=r"\[2, E\]"):
        graph_from_payload(
            {
                "node_features": [[0.0]] * 4,
                "edge_index": [[0, 1], [1, 2], [2, 3]],
                "edge_type": [0, 0, 0],
            }
        )


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------
def test_fingerprint_stability_and_sensitivity(split):
    _, _, test = split
    graph = test[0]
    copy = graph.with_features(graph.node_features.copy())
    assert graph.fingerprint() == copy.fingerprint()
    perturbed = graph.with_features(graph.node_features + 1e-9)
    assert graph.fingerprint() != perturbed.fingerprint()
    assert graph.fingerprint() != test[1].fingerprint()


def test_fingerprint_covers_node_resources(split):
    """Knowledge-rich inputs differing only in HLS resources must not
    collide in the service cache."""
    _, _, test = split
    graph = test[0]
    assert graph.node_resources is not None
    tweaked = graph.with_features(graph.node_features)
    tweaked.node_resources = graph.node_resources + 1.0
    assert graph.fingerprint() != tweaked.fingerprint()


def test_flush_failure_does_not_poison_inflight(fitted, split):
    _, _, test = split
    service = PredictionService(
        fitted["off_the_shelf"], ServiceConfig(max_batch_size=32)
    )
    ticket = service.submit(test[0])
    broken, service.predictor = service.predictor, None  # force flush failure
    with pytest.raises(AttributeError):
        service.flush()
    service.predictor = broken
    with pytest.raises(RuntimeError, match="resubmit") as excinfo:
        ticket.result()
    # The ticket surfaces *why* the batch died, not just that it did.
    assert isinstance(excinfo.value.__cause__, AttributeError)
    # The fingerprint is no longer in flight: a resubmit works normally.
    assert service.predict_one(test[0]).shape == (4,)


def test_flush_failure_poisons_only_its_chunk(fitted, split):
    from repro.faults import FaultPlan, FaultSpec, InjectedFault, use_faults

    _, _, test = split
    service = PredictionService(
        fitted["off_the_shelf"], ServiceConfig(max_batch_size=2, cache_size=0)
    )
    tickets = [service.submit(g) for g in test[:3]]
    # max_batch_size=2 auto-flushed the first chunk already (it
    # succeeded); fail the *next* flush chunk and make sure the third
    # request is the only casualty.
    plan = FaultPlan(
        specs=(FaultSpec(seam="serve.flush", fail_on_calls=(1,)),)
    )
    with use_faults(plan):
        with pytest.raises(InjectedFault):
            service.flush()
    assert tickets[0].result().shape == (4,)
    assert tickets[1].result().shape == (4,)
    with pytest.raises(RuntimeError, match="resubmit") as excinfo:
        tickets[2].result()
    assert isinstance(excinfo.value.__cause__, InjectedFault)
    # Poisoned entries left the in-flight table: resubmits re-evaluate.
    assert service.predict_one(test[2]).shape == (4,)


# ---------------------------------------------------------------------------
# CLI (in-process)
# ---------------------------------------------------------------------------
def test_cli_predict_and_list(fitted, tmp_path, capsys, monkeypatch):
    registry = ModelRegistry(tmp_path / "reg")
    registry.register("demo", fitted["hierarchical"])
    source = tmp_path / "kernel.c"
    source.write_text(KERNEL)

    assert (
        serve_main(
            [
                "predict",
                "--registry", str(tmp_path / "reg"),
                "--name", "demo",
                "--source", str(source),
            ]
        )
        == 0
    )
    response = json.loads(capsys.readouterr().out)
    assert set(response["prediction"]) == {"DSP", "LUT", "FF", "CP"}

    assert serve_main(["list", "--registry", str(tmp_path / "reg")]) == 0
    assert "demo" in capsys.readouterr().out


def test_cli_jsonl_loop(fitted, tmp_path, capsys, monkeypatch):
    registry = ModelRegistry(tmp_path / "reg")
    registry.register("demo", fitted["off_the_shelf"])
    requests = [
        {"id": 1, "source": KERNEL},
        {"id": 2, "source": KERNEL},  # same source -> cached
        {"id": 3, "source": "this is not C"},
    ]
    stdin = io.StringIO("\n".join(json.dumps(r) for r in requests) + "\n")
    monkeypatch.setattr("sys.stdin", stdin)
    assert (
        serve_main(
            [
                "predict",
                "--registry", str(tmp_path / "reg"),
                "--name", "demo",
                "--jsonl",
            ]
        )
        == 0
    )
    lines = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
    assert [l["id"] for l in lines] == [1, 2, 3]
    assert lines[0]["cached"] is False
    assert lines[1]["cached"] is True
    assert lines[1]["prediction"] == lines[0]["prediction"]
    # Per-line failures come back structured, and the loop keeps serving.
    assert lines[2]["error"]["type"]
    assert lines[2]["error"]["message"]
    assert "prediction" not in lines[2]


# ---------------------------------------------------------------------------
# Satellites living in other layers
# ---------------------------------------------------------------------------
def test_predict_restores_eval_mode(fitted, split):
    _, _, test = split
    model = fitted["off_the_shelf"].model
    model.eval()
    fitted["off_the_shelf"].predict(test)
    assert model.training is False  # was wrongly flipped to train before
    model.train()
    fitted["off_the_shelf"].predict(test)
    assert model.training is True


def test_parser_roundtrips_printer(straightline_program, loop_program):
    for program in (straightline_program, loop_program):
        source = to_c_source(program)
        assert to_c_source(parse_c_source(source)) == source
