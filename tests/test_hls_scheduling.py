"""Unit + property tests for the chaining-aware scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import lower_program
from repro.hls import characterize, schedule_function
from repro.hls.resource_library import DeviceModel
from repro.hls.scheduling import _block_dependencies
from repro.ir import Opcode
from repro.ldrgen import GeneratorConfig, generate_program
from tests.conftest import make_loop_program, make_straightline_program


@pytest.fixture(scope="module")
def straight_fn():
    return lower_program(make_straightline_program())


@pytest.fixture(scope="module")
def loop_fn():
    return lower_program(make_loop_program())


class TestPrecedence:
    def test_consumers_never_start_before_producers(self, straight_fn):
        schedule = schedule_function(straight_fn)
        for block in straight_fn.blocks:
            deps = _block_dependencies(block.instructions)
            for inst in block.instructions:
                slot = schedule.slots[inst.id]
                for dep in deps[inst.id]:
                    dep_slot = schedule.slots[dep.id]
                    assert (slot.cycle, slot.offset) >= (
                        dep_slot.cycle,
                        0.0,
                    ), f"{inst} starts before {dep}"

    def test_chained_ops_share_cycle_when_budget_allows(self, straight_fn):
        schedule = schedule_function(straight_fn)
        cycles = {
            inst.id: schedule.slots[inst.id].cycle
            for inst in straight_fn.instructions()
        }
        # The straight-line program's cheap ops fit in few cycles.
        assert max(cycles.values()) <= 3

    def test_multicycle_op_occupies_latency(self, straight_fn):
        schedule = schedule_function(straight_fn)
        for inst in straight_fn.instructions():
            character = characterize(inst)
            slot = schedule.slots[inst.id]
            if character.latency:
                assert slot.finish_cycle == slot.cycle + character.latency


class TestClockBudget:
    def test_chain_never_exceeds_budget(self, straight_fn):
        device = DeviceModel(clock_period_ns=4.0, clock_uncertainty_ns=0.5)
        schedule = schedule_function(straight_fn, device=device)
        assert schedule.max_chain_ns <= 3.5 + 1e-9

    def test_tighter_clock_means_more_cycles(self, straight_fn):
        relaxed = schedule_function(
            straight_fn, DeviceModel(clock_period_ns=20.0, clock_uncertainty_ns=1.0)
        )
        tight = schedule_function(
            straight_fn, DeviceModel(clock_period_ns=3.0, clock_uncertainty_ns=0.5)
        )
        assert tight.total_states >= relaxed.total_states


class TestBlocksAndStates:
    def test_every_instruction_scheduled(self, loop_fn):
        schedule = schedule_function(loop_fn)
        scheduled = set(schedule.slots)
        expected = {i.id for i in loop_fn.instructions()}
        assert scheduled == expected

    def test_block_latency_at_least_one(self, loop_fn):
        schedule = schedule_function(loop_fn)
        assert all(b.latency >= 1 for b in schedule.blocks.values())

    def test_total_states_sum_of_blocks(self, loop_fn):
        schedule = schedule_function(loop_fn)
        assert schedule.total_states == sum(
            b.latency for b in schedule.blocks.values()
        )

    def test_crosses_cycle_for_cross_block_values(self, loop_fn):
        schedule = schedule_function(loop_fn)
        from repro.ir.values import Instruction

        cross = 0
        for inst in loop_fn.instructions():
            for op in inst.operands:
                if isinstance(op, Instruction) and op.block != inst.block:
                    assert schedule.crosses_cycle(op, inst)
                    cross += 1
        assert cross > 0


class TestResourceConstraint:
    def test_dsp_limit_serialises_multiplies(self):
        from repro.frontend import BinOp, Decl, Function, IntConst, Program, Return, Var
        from repro.typesys import CInt

        I32 = CInt(32)
        body = [
            Decl(f"m{k}", I32, BinOp("*", Var("a"), Var("b"))) for k in range(4)
        ]
        body.append(Return(Var("m0")))
        fn = lower_program(
            Program("mults", [Function("mults", [("a", I32), ("b", I32)], I32, body)])
        )
        unlimited = schedule_function(fn)
        limited = schedule_function(fn, dsp_limit=4)
        assert limited.total_states > unlimited.total_states


class TestSchedulingProperties:
    @given(seed=st.integers(0, 200))
    @settings(max_examples=20, deadline=None)
    def test_generated_programs_schedule_cleanly(self, seed):
        program = generate_program(GeneratorConfig(mode="cdfg", max_loops=1), seed)
        fn = lower_program(program)
        schedule = schedule_function(fn)
        assert schedule.total_states >= len(fn.blocks)
        assert schedule.max_chain_ns <= (
            schedule.device.clock_period_ns - schedule.device.clock_uncertainty_ns
        ) + 1e-9
        assert set(schedule.slots) == {i.id for i in fn.instructions()}
