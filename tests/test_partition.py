"""Partitioned graphs, neighbor sampling and bounded-memory streaming.

Covers PR 10's invariants: deterministic degree-bounded partitions with
halo closure, monotone edge-cut refinement, bitwise-deterministic
neighbor sampling independent of worker count, layer-wise streaming
parity with the full-graph forward, bounded plan/context caches, the
serving tier's streaming route, and the tracemalloc peak-memory gauge.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset.features import NUM_EDGE_TYPES_WITH_BACK
from repro.gnn.network import GraphRegressor, NodeClassifier
from repro.gnn.streaming import (
    predict_node_logits_streaming,
    predict_regressor_streaming,
    stream_node_embeddings,
    supports_streaming,
)
from repro.graph.batch import CONTEXT_CACHE_SIZE, Batch
from repro.graph.data import GraphData
from repro.graph.partition import (
    BLOCK_CONTEXT_CACHE_SIZE,
    NeighborSampler,
    PartitionedGraph,
    SampledNodeDataset,
    partition_graph,
)
from repro.obs import MetricsRegistry, track_peak_memory
from repro.obs.report import render_report
from repro.training.trainer import TrainConfig, train_node_classifier
from repro.utils import LRUCache

NUM_TYPES = NUM_EDGE_TYPES_WITH_BACK


def make_graph(
    num_nodes: int = 600,
    feature_dim: int = 12,
    avg_degree: int = 3,
    seed: int = 0,
    with_labels: bool = False,
) -> GraphData:
    rng = np.random.default_rng(seed)
    edges = num_nodes * avg_degree
    src = rng.integers(0, num_nodes, size=edges)
    dst = rng.integers(0, num_nodes, size=edges)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    return GraphData(
        node_features=rng.normal(size=(num_nodes, feature_dim)).astype(np.float32),
        edge_index=np.stack([src, dst]),
        edge_type=rng.integers(0, NUM_TYPES // 2, size=len(src)),
        edge_back=rng.integers(0, 2, size=len(src)).astype(np.int64),
        y=None,
        node_labels=(
            rng.integers(0, 2, size=(num_nodes, 3)).astype(np.float64)
            if with_labels
            else None
        ),
    )


# -- partitioner -----------------------------------------------------------
class TestPartitioner:
    def test_deterministic_per_seed(self):
        graph = make_graph()
        a = partition_graph(graph, 128, seed=3)
        b = partition_graph(graph, 128, seed=3)
        np.testing.assert_array_equal(a.assignment, b.assignment)

    def test_covers_every_node_within_bound(self):
        graph = make_graph()
        part = partition_graph(graph, 100, seed=0)
        assert part.assignment.min() >= 0
        sizes = part.block_sizes()
        assert sizes.sum() == graph.num_nodes
        assert sizes.max() <= 100
        # Every node appears in exactly one block.
        all_nodes = np.sort(np.concatenate(part.blocks))
        np.testing.assert_array_equal(all_nodes, np.arange(graph.num_nodes))

    def test_refinement_never_increases_cut(self):
        graph = make_graph(seed=5)
        raw = partition_graph(graph, 100, seed=0, refine_passes=0)
        refined = partition_graph(graph, 100, seed=0, refine_passes=2)
        assert refined.edge_cut() <= raw.edge_cut()

    def test_degree_budget_splits_hub_blocks(self):
        # A star graph: the hub's degree alone exhausts a block's degree
        # budget, so the partitioner must still terminate and cover.
        n = 400
        hub_edges = np.stack(
            [np.zeros(n - 1, dtype=np.int64), np.arange(1, n, dtype=np.int64)]
        )
        rng = np.random.default_rng(0)
        graph = GraphData(
            node_features=rng.normal(size=(n, 4)).astype(np.float32),
            edge_index=hub_edges,
            edge_type=np.zeros(n - 1, dtype=np.int64),
            edge_back=np.zeros(n - 1, dtype=np.int64),
            y=None,
        )
        part = partition_graph(graph, 64, seed=0, max_block_degree=128)
        assert part.block_sizes().sum() == n

    def test_halo_closure(self):
        # Every edge touching a core node must be inside the induced
        # local set — that is what makes streamed aggregation exact.
        graph = make_graph()
        part = partition_graph(graph, 128, seed=0)
        src, dst = graph.edge_index
        for block in range(part.num_blocks):
            local, core_count = part.block_nodes(block, hops=1)
            is_local = np.zeros(graph.num_nodes, dtype=bool)
            is_local[local] = True
            is_core = np.zeros(graph.num_nodes, dtype=bool)
            is_core[local[:core_count]] = True
            touches_core = is_core[src] | is_core[dst]
            assert is_local[src[touches_core]].all()
            assert is_local[dst[touches_core]].all()

    def test_block_context_matches_global_degrees(self):
        graph = make_graph()
        part = partition_graph(graph, 128, seed=0)
        ctx, local, _ = part.block_context(0, NUM_TYPES)
        np.testing.assert_array_equal(ctx.sym_degree, part.sym_degree[local])
        assert ctx.mean_log_degree == pytest.approx(part.mean_log_degree)

    def test_block_context_cache_bounded(self):
        graph = make_graph()
        part = partition_graph(graph, 64, seed=0)
        assert part.num_blocks > BLOCK_CONTEXT_CACHE_SIZE
        for block in range(part.num_blocks):
            part.block_context(block, NUM_TYPES)
        assert len(part._context_cache) <= BLOCK_CONTEXT_CACHE_SIZE
        assert part._context_cache.evictions > 0


# -- neighbor sampler ------------------------------------------------------
class TestNeighborSampler:
    def test_bitwise_deterministic_across_workers(self):
        graph = make_graph(seed=2)
        sampler = NeighborSampler(graph, fanouts=[4, 4], seed=9)
        seeds = np.arange(0, 120, 3)
        reference = sampler.sample_nodes(seeds, workers=1)
        for workers in (2, 3, 16):
            np.testing.assert_array_equal(
                sampler.sample_nodes(seeds, workers=workers), reference
            )
        sub_a = sampler.sample(seeds, workers=1)
        sub_b = sampler.sample(seeds, workers=7)
        np.testing.assert_array_equal(sub_a.node_features, sub_b.node_features)
        np.testing.assert_array_equal(sub_a.edge_index, sub_b.edge_index)

    def test_seed_changes_the_draw(self):
        graph = make_graph(seed=2, avg_degree=6)
        seeds = np.arange(40)
        a = NeighborSampler(graph, [2], seed=0).sample_nodes(seeds)
        b = NeighborSampler(graph, [2], seed=1).sample_nodes(seeds)
        assert a.shape != b.shape or (a != b).any()

    def test_fanout_cap(self):
        graph = make_graph(seed=3, avg_degree=8)
        sampler = NeighborSampler(graph, fanouts=[3], seed=0)
        for node in range(0, graph.num_nodes, 17):
            assert len(sampler._sample_neighbors(0, node)) <= 3

    def test_sampled_subgraph_marks_core(self):
        graph = make_graph(with_labels=True)
        sampler = NeighborSampler(graph, fanouts=[4], seed=0)
        seeds = np.array([5, 9, 9, 31])  # duplicate seed collapses
        sub = sampler.sample(seeds)
        assert sub.meta["sampled_core"] == 3
        # Seed rows come first, in input order.
        np.testing.assert_array_equal(
            sub.node_features[:3], graph.node_features[[5, 9, 31]]
        )
        batch = Batch([sub])
        np.testing.assert_array_equal(batch.core_index, [0, 1, 2])

    def test_core_index_none_for_full_graphs(self):
        batch = Batch([make_graph(num_nodes=40), make_graph(num_nodes=30, seed=1)])
        assert batch.core_index is None

    def test_core_index_offsets_across_batch(self):
        graph = make_graph(with_labels=True)
        sampler = NeighborSampler(graph, fanouts=[4], seed=0)
        sub = sampler.sample([3, 8])
        full = make_graph(num_nodes=25, seed=4, with_labels=True)
        batch = Batch([sub, full])
        expected = np.concatenate(
            [[0, 1], sub.num_nodes + np.arange(full.num_nodes)]
        )
        np.testing.assert_array_equal(batch.core_index, expected)

    def test_sampled_training_deterministic(self):
        graph = make_graph(num_nodes=300, with_labels=True, seed=6)
        config = TrainConfig(epochs=2, batch_size=2, seed=0, verbose=False)

        def run():
            sampler = NeighborSampler(graph, fanouts=[4, 4], seed=11)
            dataset = SampledNodeDataset(sampler, seeds_per_graph=50)
            model = NodeClassifier(
                "gcn", graph.feature_dim, 8, 2, NUM_TYPES,
                rng=np.random.default_rng(0),
            )
            result = train_node_classifier(model, dataset, dataset, config)
            return [h["loss"] for h in result.history]

        assert run() == run()


# -- layer-wise streaming --------------------------------------------------
class TestStreamingParity:
    @pytest.mark.parametrize("model_name", ["gcn", "rgcn"])
    def test_node_logits_match_full_forward(self, model_name):
        graph = make_graph(with_labels=True)
        model = NodeClassifier(
            model_name, graph.feature_dim, 16, 2, NUM_TYPES,
            rng=np.random.default_rng(0),
        )
        model.eval()
        from repro.tensor import no_grad

        with no_grad():
            full = model(Batch([graph])).data
        streamed = predict_node_logits_streaming(model, graph, max_block_nodes=128)
        np.testing.assert_allclose(streamed, full, rtol=1e-4, atol=1e-5)

    def test_regressor_matches_full_prediction(self):
        graph = make_graph()
        model = GraphRegressor(
            "gcn", graph.feature_dim, 16, 2, NUM_TYPES, pooling="mean",
            rng=np.random.default_rng(0),
        )
        from repro.training.trainer import predict_regressor

        full = predict_regressor(model, [graph], batch_size=1)[0]
        streamed = predict_regressor_streaming(model, graph, max_block_nodes=128)
        np.testing.assert_allclose(streamed, full, rtol=1e-4, atol=1e-6)

    def test_multi_hop_layer_gets_deeper_halo(self):
        # SGC applies hops propagations per layer; parity fails unless
        # the halo depth follows layer_hops.
        graph = make_graph()
        model = NodeClassifier(
            "sgc", graph.feature_dim, 16, 2, NUM_TYPES,
            rng=np.random.default_rng(0),
        )
        model.eval()
        from repro.tensor import no_grad

        with no_grad():
            full = model(Batch([graph])).data
        streamed = predict_node_logits_streaming(model, graph, max_block_nodes=128)
        np.testing.assert_allclose(streamed, full, rtol=1e-4, atol=1e-5)

    def test_unstreamable_specs_are_gated(self):
        graph = make_graph(num_nodes=60)
        model = GraphRegressor(
            "unet", graph.feature_dim, 8, 2, NUM_TYPES,
            rng=np.random.default_rng(0),
        )
        assert not supports_streaming(model.encoder)
        part = partition_graph(graph, 32, seed=0)
        with pytest.raises(ValueError, match="cannot stream"):
            stream_node_embeddings(model.encoder, part)

    def test_training_mode_restored(self):
        graph = make_graph(num_nodes=80)
        model = GraphRegressor(
            "gcn", graph.feature_dim, 8, 2, NUM_TYPES,
            rng=np.random.default_rng(0),
        )
        assert model.training
        predict_regressor_streaming(model, graph, max_block_nodes=32)
        assert model.training


# -- bounded caches --------------------------------------------------------
class TestBoundedCaches:
    def test_lru_evicts_oldest(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"
        cache.put("c", 3)  # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_lru_get_or_create_counts(self):
        cache = LRUCache(4)
        assert cache.get_or_create("k", lambda: 7) == 7
        assert cache.get_or_create("k", lambda: 8) == 7
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_rejects_invalid_size(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_batch_context_cache_bounded(self):
        from repro.gnn.message_passing import GraphContext

        batch = Batch([make_graph(num_nodes=30)])
        for num_types in range(1, CONTEXT_CACHE_SIZE + 4):
            GraphContext.from_batch(batch, num_types)
        assert len(batch._context_cache) <= CONTEXT_CACHE_SIZE
        assert batch._context_cache.evictions > 0


# -- serving route ---------------------------------------------------------
class TestServeStreaming:
    def _fitted_predictor(self, feature_dim):
        from repro.models.base import PredictorConfig
        from repro.models.off_the_shelf import OffTheShelfPredictor

        predictor = OffTheShelfPredictor(
            PredictorConfig(
                model_name="gcn", hidden_dim=8, num_layers=2,
                num_edge_types=NUM_TYPES,
            )
        )
        return predictor.build({"graph": feature_dim})

    def test_large_graphs_take_the_streaming_path(self):
        from repro.serve.service import PredictionService, ServiceConfig

        big = make_graph(num_nodes=700, seed=1)
        small = make_graph(num_nodes=40, seed=2)
        predictor = self._fitted_predictor(big.feature_dim)
        service = PredictionService(
            predictor,
            ServiceConfig(stream_nodes=500, stream_block_nodes=128, validate=False),
        )
        tickets = [service.submit(big), service.submit(small)]
        service.flush()
        results = [t.result() for t in tickets]
        assert service.stats.streamed == 1
        assert service.stats.batches == 1
        assert service.stats.model_graphs == 2
        reference = predictor.predict([big, small])
        np.testing.assert_allclose(results[0], reference[0], rtol=1e-4)
        np.testing.assert_allclose(results[1], reference[1], rtol=1e-6)

    def test_predictor_without_streaming_falls_back(self):
        from repro.serve.service import PredictionService, ServiceConfig

        big = make_graph(num_nodes=700, seed=1)
        inner = self._fitted_predictor(big.feature_dim)

        class BatchOnly:
            config = inner.config
            feature_view = "base"
            requires_hls = False

            def predict(self, graphs, batch_size=64):
                return inner.predict(graphs, batch_size=batch_size)

        service = PredictionService(
            BatchOnly(), ServiceConfig(stream_nodes=100, validate=False)
        )
        service.submit(big)
        service.flush()
        assert service.stats.streamed == 0
        assert service.stats.batches == 1

    def test_unstreamable_architecture_falls_back_inside_predictor(self):
        from repro.models.base import PredictorConfig
        from repro.models.off_the_shelf import OffTheShelfPredictor

        graph = make_graph(num_nodes=60)
        predictor = OffTheShelfPredictor(
            PredictorConfig(
                model_name="unet", hidden_dim=8, num_layers=2,
                num_edge_types=NUM_TYPES,
            )
        ).build({"graph": graph.feature_dim})
        streamed = predictor.predict_streaming(graph)
        np.testing.assert_allclose(streamed, predictor.predict([graph])[0])

    def test_config_validation(self):
        from repro.serve.service import ServiceConfig

        with pytest.raises(ValueError):
            ServiceConfig(stream_nodes=-1)
        with pytest.raises(ValueError):
            ServiceConfig(stream_block_nodes=0)


# -- peak-memory gauge -----------------------------------------------------
class TestPeakMemoryGauge:
    def test_tracks_and_sets_gauge(self):
        registry = MetricsRegistry()
        with track_peak_memory(registry) as mem:
            buffer = np.zeros((512, 1024))  # 4 MiB
            del buffer
        assert 3.0 < mem.peak_mb < 16.0
        assert registry.gauge("mem.peak_mb").value == pytest.approx(mem.peak_mb)

    def test_composes_with_outer_trace(self):
        import tracemalloc

        tracemalloc.start()
        try:
            with track_peak_memory(MetricsRegistry()) as mem:
                buffer = np.zeros((256, 1024))
                del buffer
            assert tracemalloc.is_tracing()
            assert mem.peak_mb > 1.0
        finally:
            tracemalloc.stop()

    def test_report_surfaces_peak_memory(self):
        run = {
            "header": {"run_id": "r", "kind": "train"},
            "records": [
                {
                    "type": "metrics",
                    "counters": {},
                    "timers": {},
                    "gauges": {"mem.peak_mb": 42.25},
                }
            ],
        }
        text = render_report(run)
        assert "peak mem (MB)" in text
        assert "42.2" in text


# -- streamed memory stays bounded (small-scale mirror of the bench) -------
def test_streaming_uses_less_peak_memory_than_full():
    graph = make_graph(num_nodes=4000, feature_dim=24, avg_degree=4, seed=8)
    model = GraphRegressor(
        "gcn", graph.feature_dim, 32, 3, NUM_TYPES, pooling="mean",
        rng=np.random.default_rng(0),
    )
    from repro.training.trainer import predict_regressor

    part = partition_graph(graph, 256, seed=0, context_cache_size=1)
    predict_regressor(model, [graph], batch_size=1)
    predict_regressor_streaming(model, graph, partition=part)
    with track_peak_memory(MetricsRegistry()) as full:
        predict_regressor(model, [graph], batch_size=1)
    with track_peak_memory(MetricsRegistry()) as streamed:
        predict_regressor_streaming(model, graph, partition=part)
    assert streamed.peak_mb < full.peak_mb
