"""Unit tests for every layer in the 14-model zoo.

Each architecture gets: output-shape check, gradient-flow check,
determinism check, and behavioural checks specific to its mechanism
(e.g. GAT attention normalisation, RGCN relation sensitivity).
"""

import numpy as np
import pytest

from repro.gnn import ALL_MODEL_NAMES, GraphContext, MODEL_SPECS, build_layer, get_spec
from repro.gnn.gcn import SGCLayer
from repro.gnn.unet import GraphUNet, TopKPool
from repro.gnn.virtual_node import VirtualNodeExchange, VirtualNodeState
from repro.tensor import Tensor

DIM = 8
RELATIONS = 8  # 4 edge types x 2 directions


def make_context(num_nodes=6, seed=0, num_graphs=1):
    rng = np.random.default_rng(seed)
    edges = [(i, i + 1) for i in range(num_nodes - 1)]
    edges += [(0, num_nodes - 1)]
    edge_index = np.array(edges).T
    edge_type = rng.integers(0, 4, edge_index.shape[1])
    if num_graphs == 1:
        batch = np.zeros(num_nodes, dtype=int)
    else:
        batch = np.sort(rng.integers(0, num_graphs, num_nodes))
    return GraphContext(
        edge_index=edge_index,
        edge_type=edge_type,
        num_nodes=num_nodes,
        batch=batch,
        num_graphs=num_graphs,
        num_edge_types=4,
    )


def layer_names():
    return [n for n in ALL_MODEL_NAMES if not MODEL_SPECS[n].whole_architecture]


class TestRegistry:
    def test_all_14_entries_present(self):
        assert len(ALL_MODEL_NAMES) == 14

    def test_paper_rows_match(self):
        rows = {MODEL_SPECS[n].paper_row for n in ALL_MODEL_NAMES}
        assert rows == {
            "GCN", "GCN-V", "SGC", "SAGE", "ARMA", "PAN", "GIN", "GIN-V",
            "PNA", "GAT", "GGNN", "RGCN", "UNet", "FiLM",
        }

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            get_spec("transformer")

    def test_unknown_layer_rejected(self):
        with pytest.raises(KeyError):
            build_layer("unet", DIM, DIM, RELATIONS)  # whole-architecture


class TestAllLayers:
    @pytest.mark.parametrize("name", layer_names())
    def test_output_shape(self, name, rng):
        ctx = make_context()
        layer = build_layer(name, DIM, DIM, RELATIONS, rng)
        out = layer(Tensor(rng.normal(size=(6, DIM))), ctx)
        assert out.shape == (6, DIM)

    @pytest.mark.parametrize("name", layer_names())
    def test_gradients_flow_to_all_used_parameters(self, name, rng):
        ctx = make_context()
        layer = build_layer(name, DIM, DIM, RELATIONS, rng)
        x = Tensor(rng.normal(size=(6, DIM)), requires_grad=True)
        layer(x, ctx).sum().backward()
        assert x.grad is not None
        assert np.abs(x.grad).sum() > 0

    @pytest.mark.parametrize("name", layer_names())
    def test_deterministic_given_seed(self, name):
        ctx = make_context()
        x = np.random.default_rng(5).normal(size=(6, DIM))
        outs = []
        for _ in range(2):
            layer = build_layer(name, DIM, DIM, RELATIONS, np.random.default_rng(3))
            outs.append(layer(Tensor(x), ctx).data)
        np.testing.assert_allclose(outs[0], outs[1])

    @pytest.mark.parametrize("name", layer_names())
    def test_finite_output_on_large_inputs(self, name, rng):
        ctx = make_context()
        layer = build_layer(name, DIM, DIM, RELATIONS, rng)
        out = layer(Tensor(rng.normal(size=(6, DIM)) * 100.0), ctx)
        assert np.isfinite(out.data).all()


class TestGCNFamily:
    def test_gcn_norm_coefficients_symmetric(self):
        ctx = make_context()
        # gcn norm was built from in/out degrees incl. self loops
        assert ctx.gcn_norm.shape[0] == len(ctx.gcn_src)
        assert (ctx.gcn_norm > 0).all()

    def test_sgc_hops_equals_repeated_propagation(self, rng):
        ctx = make_context()
        x = Tensor(rng.normal(size=(6, DIM)))
        sgc = SGCLayer(DIM, DIM, hops=3, rng=np.random.default_rng(0))
        manual = x
        for _ in range(3):
            manual = ctx.propagate_gcn(manual)
        expected = sgc.linear(manual)
        np.testing.assert_allclose(sgc(x, ctx).data, expected.data)

    def test_sgc_invalid_hops(self):
        with pytest.raises(ValueError):
            SGCLayer(DIM, DIM, hops=0)


class TestAttention:
    def test_gat_out_dim_divisibility_enforced(self):
        from repro.gnn.gat import GATLayer

        with pytest.raises(ValueError):
            GATLayer(DIM, 10, heads=4)

    def test_gat_isolated_node_attends_to_itself(self, rng):
        from repro.gnn.gat import GATLayer

        # Graph with an isolated last node: self-loop keeps it finite.
        ctx = GraphContext(
            edge_index=np.array([[0], [1]]),
            edge_type=np.array([0]),
            num_nodes=3,
            batch=np.zeros(3, dtype=int),
            num_graphs=1,
            num_edge_types=4,
        )
        layer = GATLayer(DIM, DIM, heads=2, rng=rng)
        out = layer(Tensor(rng.normal(size=(3, DIM))), ctx)
        assert np.isfinite(out.data).all()


class TestRelationalLayers:
    def test_rgcn_sensitive_to_edge_types(self, rng):
        """Same topology, different edge types -> different outputs."""
        base = make_context(seed=0)
        other = GraphContext(
            edge_index=base.edge_index,
            edge_type=(base.edge_type + 1) % 4,
            num_nodes=base.num_nodes,
            batch=base.batch,
            num_graphs=1,
            num_edge_types=4,
        )
        layer = build_layer("rgcn", DIM, DIM, RELATIONS, np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).normal(size=(6, DIM)))
        assert not np.allclose(layer(x, base).data, layer(x, other).data)

    def test_rgcn_relation_count_mismatch_rejected(self, rng):
        layer = build_layer("rgcn", DIM, DIM, 4, rng)
        with pytest.raises(ValueError):
            layer(Tensor(rng.normal(size=(6, DIM))), make_context())

    def test_ggnn_requires_square_dims(self):
        with pytest.raises(ValueError):
            build_layer("ggnn", DIM, DIM + 1, RELATIONS)

    def test_ggnn_gating_keeps_state_bounded(self, rng):
        ctx = make_context()
        layer = build_layer("ggnn", DIM, DIM, RELATIONS, rng)
        x = Tensor(rng.normal(size=(6, DIM)))
        out = layer(x, ctx)
        # GRU output is a convex-ish mix of tanh candidate and state.
        assert np.abs(out.data).max() <= np.abs(x.data).max() + 1.0

    def test_film_modulation_depends_on_target(self, rng):
        ctx = make_context()
        layer = build_layer("film", DIM, DIM, RELATIONS, rng)
        x1 = rng.normal(size=(6, DIM))
        x2 = x1.copy()
        x2[3] += 10.0  # changing a target node changes its FiLM params
        out1 = layer(Tensor(x1), ctx).data
        out2 = layer(Tensor(x2), ctx).data
        assert not np.allclose(out1[3], out2[3])


class TestVirtualNode:
    def test_exchange_broadcasts_graph_context(self, rng):
        ctx = make_context(num_nodes=6, num_graphs=2, seed=3)
        exchange = VirtualNodeExchange(DIM, rng=rng)
        state = VirtualNodeState(2, DIM)
        x = Tensor(rng.normal(size=(6, DIM)))
        out, state = exchange(x, state, ctx)
        assert out.shape == (6, DIM)
        assert state.embedding.shape == (2, DIM)
        # nodes of the same graph receive the same additive shift
        shift = out.data - x.data
        same_graph = ctx.batch == ctx.batch[0]
        spread = shift[same_graph] - shift[same_graph][0]
        np.testing.assert_allclose(spread, 0.0, atol=1e-9)


class TestGraphUNet:
    def test_topk_keeps_at_least_one_node_per_graph(self, rng):
        ctx = make_context(num_nodes=6, num_graphs=3, seed=1)
        pool = TopKPool(DIM, ratio=0.3, rng=rng)
        keep, gate = pool.select(Tensor(rng.normal(size=(6, DIM))), ctx)
        kept_graphs = set(ctx.batch[keep])
        assert kept_graphs == set(ctx.batch)
        assert gate.shape == (len(keep), 1)

    def test_topk_invalid_ratio(self):
        with pytest.raises(ValueError):
            TopKPool(DIM, ratio=0.0)

    def test_unet_preserves_resolution(self, rng):
        ctx = make_context(num_nodes=10, seed=2)
        unet = GraphUNet(DIM, depth=2, rng=rng)
        out = unet(Tensor(rng.normal(size=(10, DIM))), ctx)
        assert out.shape == (10, DIM)

    def test_subgraph_renumbers_edges(self):
        ctx = make_context(num_nodes=6)
        sub = ctx.subgraph(np.array([0, 2, 3]))
        assert sub.num_nodes == 3
        if sub.edge_index.size:
            assert sub.edge_index.max() < 3
