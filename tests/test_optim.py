"""Unit tests for optimisers, schedulers and gradient clipping."""

import numpy as np
import pytest

from repro.nn import MLP, Linear
from repro.optim import SGD, Adam, CosineDecay, StepDecay, clip_grad_norm
from repro.tensor import Tensor


def _quadratic_step(optimizer, parameter):
    """One gradient step on f(w) = ||w||^2 / 2."""
    optimizer.zero_grad()
    (parameter * parameter * 0.5).sum().backward()
    optimizer.step()


class TestSGD:
    def test_plain_step_direction(self):
        w = Tensor(np.array([2.0]), requires_grad=True)
        opt = SGD([w], lr=0.1)
        _quadratic_step(opt, w)
        np.testing.assert_allclose(w.data, [1.8])

    def test_momentum_accelerates(self):
        w_plain = Tensor(np.array([1.0]), requires_grad=True)
        w_momentum = Tensor(np.array([1.0]), requires_grad=True)
        opt_plain = SGD([w_plain], lr=0.05)
        opt_momentum = SGD([w_momentum], lr=0.05, momentum=0.9)
        for _ in range(10):
            _quadratic_step(opt_plain, w_plain)
            _quadratic_step(opt_momentum, w_momentum)
        assert abs(w_momentum.data.item()) < abs(w_plain.data.item())

    def test_weight_decay_shrinks_weights(self):
        w = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([w], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (w * 0.0).sum().backward()
        opt.step()
        assert w.data.item() < 1.0

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_bad_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([Tensor([1.0], requires_grad=True)], lr=0.0)

    def test_skips_parameters_without_grad(self):
        w = Tensor(np.array([1.0]), requires_grad=True)
        SGD([w], lr=0.1).step()  # no backward ran; must not crash
        np.testing.assert_allclose(w.data, [1.0])


class TestAdam:
    def test_converges_on_quadratic(self):
        w = Tensor(np.array([5.0, -3.0]), requires_grad=True)
        opt = Adam([w], lr=0.2)
        for _ in range(200):
            _quadratic_step(opt, w)
        np.testing.assert_allclose(w.data, 0.0, atol=1e-3)

    def test_bad_betas_rejected(self):
        with pytest.raises(ValueError):
            Adam([Tensor([1.0], requires_grad=True)], betas=(1.0, 0.9))

    def test_fits_linear_regression(self, rng):
        x = rng.normal(size=(128, 3))
        true_w = np.array([[1.0], [-2.0], [0.5]])
        y = Tensor(x @ true_w)
        model = Linear(3, 1, rng=rng)
        opt = Adam(model.parameters(), lr=0.05)
        for _ in range(300):
            opt.zero_grad()
            loss = ((model(Tensor(x)) - y) ** 2).mean()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(model.weight.data, true_w, atol=0.05)

    def test_decoupled_weight_decay(self):
        w = Tensor(np.array([1.0]), requires_grad=True)
        opt = Adam([w], lr=0.001, weight_decay=0.5)
        opt.zero_grad()
        (w * 0.0).sum().backward()
        opt.step()
        assert w.data.item() < 1.0


class TestSchedulers:
    def test_step_decay_halves(self):
        w = Tensor([1.0], requires_grad=True)
        opt = SGD([w], lr=1.0)
        sched = StepDecay(opt, step_size=2, gamma=0.5)
        sched.step()
        assert opt.lr == 1.0
        sched.step()
        assert opt.lr == 0.5

    def test_step_decay_invalid_step_size(self):
        with pytest.raises(ValueError):
            StepDecay(SGD([Tensor([1.0], requires_grad=True)], lr=1.0), 0)

    def test_cosine_reaches_min(self):
        opt = SGD([Tensor([1.0], requires_grad=True)], lr=1.0)
        sched = CosineDecay(opt, total=10, min_lr=0.1)
        for _ in range(10):
            sched.step()
        np.testing.assert_allclose(opt.lr, 0.1, atol=1e-12)

    def test_cosine_monotone_decreasing(self):
        opt = SGD([Tensor([1.0], requires_grad=True)], lr=1.0)
        sched = CosineDecay(opt, total=8)
        previous = opt.lr
        for _ in range(8):
            sched.step()
            assert opt.lr <= previous + 1e-12
            previous = opt.lr


class TestClipGradNorm:
    def test_large_gradient_scaled_to_max(self):
        w = Tensor(np.array([1.0]), requires_grad=True)
        w.grad = np.array([30.0, 40.0])[:1] * 0 + np.array([30.0])
        v = Tensor(np.array([1.0]), requires_grad=True)
        v.grad = np.array([40.0])
        total = clip_grad_norm([w, v], max_norm=5.0)
        np.testing.assert_allclose(total, 50.0)
        clipped = np.sqrt(float((w.grad**2).sum() + (v.grad**2).sum()))
        np.testing.assert_allclose(clipped, 5.0)

    def test_small_gradient_untouched(self):
        w = Tensor(np.array([1.0]), requires_grad=True)
        w.grad = np.array([0.3])
        clip_grad_norm([w], max_norm=5.0)
        np.testing.assert_allclose(w.grad, [0.3])

    def test_no_grads_returns_zero(self):
        assert clip_grad_norm([Tensor([1.0], requires_grad=True)], 1.0) == 0.0

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], 0.0)

    def test_training_mlp_end_to_end_improves(self, rng):
        x = rng.normal(size=(64, 2))
        y = Tensor((x[:, :1] * 2 - x[:, 1:]) ** 2)
        model = MLP([2, 16, 1], rng=rng)
        opt = Adam(model.parameters(), lr=0.01)
        first = None
        for step in range(150):
            opt.zero_grad()
            loss = ((model(Tensor(x)) - y) ** 2).mean()
            loss.backward()
            clip_grad_norm(model.parameters(), 1.0)
            opt.step()
            if first is None:
                first = float(loss.data)
        assert float(loss.data) < first
