"""Design-space exploration: spaces, directive threading, strategies.

Covers the repro.dse subsystem plus the directive plumbing it leans on:
AST directives -> lowering -> unroll_factors/latency -> feature columns,
the knob <-> loop-header alignment, Pareto/ADRS math, and the
predictor-backed evaluator's fast paths against their reference
implementations. Property tests (hypothesis) pin the flow's internal
consistency under arbitrary legal overrides and the fingerprint/ground
truth cache agreement.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset.features import DIRECTIVE_DIM, FeatureEncoder, directive_features
from repro.dse import (
    DesignPoint,
    DesignSpace,
    GroundTruthEvaluator,
    PredictorEvaluator,
    adrs,
    dominates,
    explore,
    iter_loops,
    pareto_front,
)
from repro.frontend.ast_ import (
    ArrayRef,
    Assign,
    BinOp,
    Decl,
    For,
    Function,
    IntConst,
    Program,
    Return,
    Var,
)
from repro.frontend.lower import lower_program
from repro.hls.flow import run_hls
from repro.hls.latency import LatencyModel, estimate_latency
from repro.hls.loops import unroll_factors
from repro.hls.scheduling import schedule_function
from repro.models import OffTheShelfPredictor, PredictorConfig
from repro.serve import PredictionService, ServiceConfig
from repro.training import TrainConfig
from repro.typesys import CArray, CInt
from tests.conftest import make_loop_program

INT32 = CInt(32)


def make_nested_program(name: str = "nested", outer: int = 16, inner: int = 8) -> Program:
    """Two nested loops over an array — the canonical 2-knob DSE kernel."""
    body = [
        Decl("acc", INT32, IntConst(0)),
        For("i", 0, outer, 1, body=[
            For("j", 0, inner, 1, body=[
                Assign(
                    Var("acc"),
                    BinOp("+", Var("acc"),
                          BinOp("*", ArrayRef("x", Var("j")), Var("i"))),
                ),
            ]),
        ]),
        Return(Var("acc")),
    ]
    fn = Function(name, [("x", CArray(CInt(16), inner))], INT32, body)
    return Program(name, [fn])


@pytest.fixture(scope="module")
def tiny_predictor(dfg_samples):
    """A small fitted GCN (quality is irrelevant to these tests)."""
    config = PredictorConfig(
        model_name="gcn", hidden_dim=16, num_layers=2,
        train=TrainConfig(epochs=2, batch_size=8, lr=3e-3),
    )
    predictor = OffTheShelfPredictor(config)
    predictor.fit(dfg_samples[:16], dfg_samples[16:20])
    return predictor


# ---------------------------------------------------------------------------
# Directive metadata plumbing
# ---------------------------------------------------------------------------
class TestDirectivePlumbing:
    def test_ast_directives_reach_ir(self):
        program = make_nested_program()
        program.top.body[1].unroll = 4
        program.top.body[1].body[0].pipeline = True
        function = lower_program(program)
        assert len(function.loop_headers) == 2
        outer, inner = function.loop_headers
        assert function.loop_directives[outer].unroll == 4
        assert function.loop_directives[inner].pipeline is True

    def test_loop_headers_follow_source_preorder(self):
        program = make_nested_program()
        function = lower_program(program)
        loops = list(iter_loops(program.top.body))
        assert [loop.var for loop in loops] == ["i", "j"]
        # Outer header is created before the inner one during lowering.
        assert function.loop_headers == sorted(
            function.loop_headers,
            key=lambda name: int(name.removeprefix("for.head")),
        )

    def test_explicit_unroll_overrides_heuristic(self):
        function = lower_program(make_loop_program())  # trip 8 -> heuristic 8
        header = function.loop_headers[0]
        heuristic = unroll_factors(function)
        explicit = unroll_factors(function, overrides={header: 2})
        body_blocks = [name for name, f in heuristic.items() if f == 8]
        assert body_blocks
        assert all(explicit[name] == 2 for name in body_blocks)

    def test_unknown_override_header_rejected(self):
        function = lower_program(make_loop_program())
        with pytest.raises(KeyError, match="unknown loop headers"):
            unroll_factors(function, overrides={"nope": 2})

    def test_bad_unroll_values_rejected(self):
        with pytest.raises(ValueError, match="unroll"):
            For("i", 0, 4, 1, unroll=0)
        function = lower_program(make_loop_program())
        with pytest.raises(ValueError, match=">= 1"):
            unroll_factors(function, overrides={function.loop_headers[0]: 0})

    def test_directive_feature_columns(self):
        program = make_nested_program()
        function = lower_program(program)
        from repro.ir.cdfg import extract_cdfg

        graph = extract_cdfg(function, name=program.name)
        inner = function.loop_headers[1]
        columns = directive_features(
            function, graph,
            unroll_overrides={inner: 4}, pipeline_overrides={inner: True},
        )
        assert columns.shape == (graph.num_nodes, DIRECTIVE_DIM)
        expected = np.log2(4) / np.log2(64)
        assert np.isclose(columns[:, 0].max(), expected)
        assert set(np.unique(columns[:, 1])) == {0.0, 1.0}
        assert np.allclose(columns[:, 2], 0.0)  # default clock
        plain = directive_features(function, graph)
        assert np.allclose(plain, 0.0)

    def test_heuristic_unroll_stays_invisible(self):
        """Small-loop auto-unrolling must not leak into the columns."""
        function = lower_program(make_loop_program())  # trip 8, fully unrolled
        from repro.ir.cdfg import extract_cdfg

        graph = extract_cdfg(function, name="loopy")
        assert unroll_factors(function)[function.loop_headers[0]] == 8
        assert np.allclose(directive_features(function, graph), 0.0)

    def test_pipeline_cuts_latency_not_resources(self):
        # Inner trip 16 > UNROLL_THRESHOLD: the loop stays rolled, so
        # pipelining has iterations to overlap.
        function = lower_program(make_nested_program(outer=16, inner=16))
        inner = function.loop_headers[1]
        base = run_hls(function)
        piped = run_hls(function, pipeline_overrides={inner: True})
        assert piped.latency.cycles < base.latency.cycles
        assert piped.impl == base.impl

    def test_latency_model_matches_estimate(self):
        function = lower_program(make_nested_program())
        schedule = schedule_function(function)
        model = LatencyModel(function, schedule)
        outer, inner = function.loop_headers
        for overrides in ({}, {outer: 4}, {outer: 16, inner: 8}):
            for pipeline in ({}, {inner: True}, {outer: True, inner: True}):
                assert model.cycles(overrides, pipeline) == estimate_latency(
                    function, schedule, overrides, pipeline
                ).cycles


# ---------------------------------------------------------------------------
# Property tests: any legal override keeps the flow consistent
# ---------------------------------------------------------------------------
@st.composite
def legal_overrides(draw):
    """(program, unroll overrides, pipeline overrides) for the nested
    kernel; factors may exceed trip counts to exercise clamping."""
    program = make_nested_program()
    function = lower_program(program)
    unroll = {}
    pipeline = {}
    for header in function.loop_headers:
        if draw(st.booleans()):
            unroll[header] = draw(st.integers(min_value=1, max_value=32))
        pipeline[header] = draw(st.booleans())
    return function, unroll, pipeline


class TestDirectiveProperties:
    @settings(max_examples=30, deadline=None)
    @given(data=legal_overrides())
    def test_reports_stay_internally_consistent(self, data):
        function, unroll, pipeline = data
        result = run_hls(
            function, unroll_overrides=unroll, pipeline_overrides=pipeline
        )
        for metrics in (result.impl, result.report):
            values = metrics.as_array()
            assert np.isfinite(values).all()
            assert metrics.dsp >= 0
            assert metrics.lut >= 1 and metrics.ff >= 1
            assert 0 < metrics.cp_ns <= 1.2 * 10.0
        assert result.latency.cycles >= 1
        # Per-node attribution stays aligned with the instruction set.
        ids = {inst.id for inst in function.instructions()}
        assert set(result.node_resources) == ids
        # The flow is a pure function of (function, overrides).
        again = run_hls(
            function, unroll_overrides=unroll, pipeline_overrides=pipeline
        )
        assert again.impl == result.impl
        assert again.latency.cycles == result.latency.cycles

    @settings(max_examples=30, deadline=None)
    @given(data=legal_overrides())
    def test_unrolling_never_slows_the_kernel(self, data):
        function, unroll, pipeline = data
        rolled = run_hls(
            function,
            unroll_overrides={h: 1 for h in function.loop_headers},
            pipeline_overrides=pipeline,
        )
        tuned = run_hls(
            function, unroll_overrides=unroll, pipeline_overrides=pipeline
        )
        assert tuned.latency.cycles <= rolled.latency.cycles

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_fingerprint_agreement_with_ground_truth(self, data):
        """Equal candidate fingerprints imply equal ground truth — the
        service cache can never serve a stale QoR for a distinct design.

        Factor options beyond the inner trip count force genuine
        fingerprint collisions (clamped factors encode identically)."""
        program = make_nested_program()
        space = DesignSpace.from_program(program, unroll_options=(1, 4, 8, 16))
        gt = GroundTruthEvaluator(program, space)
        function = gt.function
        from repro.ir.cdfg import extract_cdfg

        graph = extract_cdfg(function, name=program.name)
        encoder = FeatureEncoder()
        rng_points = [
            data.draw(st.sampled_from(list(space.points()))) for _ in range(2)
        ]
        encoded = []
        for point in rng_points:
            unroll, pipeline = space.overrides_for(function, point)
            columns = directive_features(
                function, graph,
                device=space.device_for(point),
                unroll_overrides=unroll, pipeline_overrides=pipeline,
            )
            encoded.append(encoder.encode(graph, directives=columns))
        a, b = rng_points
        if encoded[0].fingerprint() == encoded[1].fingerprint():
            # The cache serves model predictions (resources); latency is
            # priced analytically per point and never cache-shared, so
            # only the resource metrics must agree under a collision.
            ea, eb = gt.evaluate(a), gt.evaluate(b)
            assert (ea.dsp, ea.lut, ea.ff, ea.cp_ns) == (eb.dsp, eb.lut, eb.ff, eb.cp_ns)


# ---------------------------------------------------------------------------
# DesignSpace
# ---------------------------------------------------------------------------
class TestDesignSpace:
    def test_size_and_distinct_enumeration(self):
        space = DesignSpace.from_program(
            make_nested_program(), unroll_options=(1, 2, 4),
            clock_options=(10.0, 8.0),
        )
        points = list(space.points())
        assert space.size == (3 * 2) ** 2 * 2
        assert len(points) == space.size
        assert len(set(points)) == space.size

    def test_unroll_options_clamped_to_trip(self):
        space = DesignSpace.from_program(
            make_nested_program(outer=16, inner=4), unroll_options=(1, 2, 8, 64)
        )
        assert space.knobs[0].unroll_options == (1, 2, 8)  # 64 > trip 16
        assert space.knobs[1].unroll_options == (1, 2)  # 8, 64 > trip 4

    def test_apply_annotates_a_copy(self):
        program = make_nested_program()
        space = DesignSpace.from_program(program, unroll_options=(1, 4))
        point = DesignPoint(unroll=(4, 1), pipeline=(False, True), clock_ns=10.0)
        variant = space.apply(point)
        loops = list(iter_loops(variant.top.body))
        assert loops[0].unroll == 4 and loops[0].pipeline is False
        assert loops[1].unroll is None and loops[1].pipeline is True
        # The base program is untouched.
        assert all(l.unroll is None and not l.pipeline
                   for l in iter_loops(program.top.body))

    def test_apply_matches_overrides_path(self):
        """AST annotation and flow overrides are the same design point."""
        program = make_nested_program()
        space = DesignSpace.from_program(program, unroll_options=(1, 2, 4))
        point = DesignPoint(unroll=(2, 4), pipeline=(True, False), clock_ns=10.0)
        via_ast = run_hls(lower_program(space.apply(point)))
        function = lower_program(program)
        unroll, pipeline = space.overrides_for(function, point)
        via_overrides = run_hls(
            function, unroll_overrides=unroll, pipeline_overrides=pipeline
        )
        assert via_ast.impl == via_overrides.impl
        assert via_ast.latency.cycles == via_overrides.latency.cycles

    def test_point_overrides_win_over_base_ast_directives(self):
        """A rolled point on a pre-annotated kernel really rolls it."""
        program = make_nested_program()
        program.top.body[1].unroll = 8
        space = DesignSpace.from_program(program, unroll_options=(1, 2))
        function = lower_program(program)
        rolled = DesignPoint(unroll=(1, 1), pipeline=(False, False), clock_ns=10.0)
        unroll, _ = space.overrides_for(function, rolled)
        factors = unroll_factors(function, overrides=unroll)
        assert all(f == 1 for f in factors.values())

    def test_mutate_and_crossover_stay_in_space(self):
        space = DesignSpace.from_program(
            make_nested_program(), unroll_options=(1, 2, 4),
            clock_options=(10.0, 8.0),
        )
        rng = np.random.default_rng(3)
        valid = set(space.points())
        a, b = space.sample(rng), space.sample(rng)
        for _ in range(50):
            a = space.mutate(a, rng)
            child = space.crossover(a, b, rng)
            assert a in valid and child in valid

    def test_loopless_program_rejected(self):
        program = Program("flat", [Function(
            "flat", [("a", INT32)], INT32, [Return(Var("a"))],
        )])
        with pytest.raises(ValueError, match="no loops"):
            DesignSpace.from_program(program)


# ---------------------------------------------------------------------------
# Pareto / ADRS
# ---------------------------------------------------------------------------
class TestPareto:
    def test_front_is_nondominated_and_sorted(self):
        rng = np.random.default_rng(0)
        points = [tuple(v) for v in rng.random((60, 2))]
        front = pareto_front(points, key=lambda p: p)
        for i, a in enumerate(front):
            assert not any(dominates(b, a) for b in points)
            if i:
                assert front[i - 1][0] <= a[0]

    def test_front_dedupes_equal_objectives(self):
        points = [(1.0, 2.0), (1.0, 2.0), (2.0, 1.0)]
        assert len(pareto_front(points, key=lambda p: p)) == 2

    def test_adrs_zero_for_matching_front(self):
        ref = [(1.0, 4.0), (2.0, 2.0), (4.0, 1.0)]
        assert adrs(ref, ref) == 0.0

    def test_adrs_positive_for_worse_front(self):
        ref = [(1.0, 4.0), (2.0, 2.0), (4.0, 1.0)]
        worse = [(2.0, 8.0), (4.0, 4.0)]
        score = adrs(ref, worse)
        assert score > 0
        # A strictly better extra point cannot hurt the score.
        assert adrs(ref, worse + [(1.0, 4.0)]) <= score

    def test_adrs_rejects_empty_and_mismatched(self):
        with pytest.raises(ValueError):
            adrs([], [(1.0, 1.0)])
        with pytest.raises(ValueError):
            adrs([(1.0, 1.0)], [])
        with pytest.raises(ValueError):
            adrs([(1.0, 1.0)], [(1.0, 1.0, 1.0)])


# ---------------------------------------------------------------------------
# Evaluators and exploration
# ---------------------------------------------------------------------------
class TestEvaluation:
    def test_ground_truth_memoises(self):
        program = make_nested_program()
        space = DesignSpace.from_program(program, unroll_options=(1, 2))
        evaluator = GroundTruthEvaluator(program, space)
        point = next(space.points())
        first = evaluator.evaluate(point)
        again = evaluator.evaluate(point)
        assert evaluator.flow_runs == 1
        assert first == again

    def test_predictor_batch_matches_per_point_paths(self, tiny_predictor):
        program = make_nested_program()
        space = DesignSpace.from_program(
            program, unroll_options=(1, 2, 4), clock_options=(10.0, 7.5)
        )
        service = PredictionService(
            tiny_predictor, ServiceConfig(max_batch_size=64, validate=False)
        )
        evaluator = PredictorEvaluator(service, program, space)
        rng = np.random.default_rng(1)
        points = [space.sample(rng) for _ in range(12)]
        evaluations = evaluator.evaluate_many(points)
        for point, evaluation in zip(points, evaluations):
            graph = evaluator.graph_for(point)
            expected = tiny_predictor.predict([graph])[0]
            got = np.array([evaluation.dsp, evaluation.lut,
                            evaluation.ff, evaluation.cp_ns])
            np.testing.assert_allclose(got, expected, rtol=1e-5, atol=1e-6)
            assert evaluation.latency_cycles == evaluator.latency_for(point)

    def test_predictor_latency_matches_ground_truth(self, tiny_predictor):
        """Both backends price latency with the same loop-forest model."""
        program = make_nested_program()
        space = DesignSpace.from_program(program, unroll_options=(1, 2, 8))
        service = PredictionService(
            tiny_predictor, ServiceConfig(validate=False)
        )
        predictor_eval = PredictorEvaluator(service, program, space)
        gt_eval = GroundTruthEvaluator(program, space)
        rng = np.random.default_rng(2)
        points = [space.sample(rng) for _ in range(8)]
        fast = predictor_eval.evaluate_many(points)
        slow = gt_eval.evaluate_many(points)
        for a, b in zip(fast, slow):
            assert a.latency_cycles == b.latency_cycles

    def test_revisits_hit_the_service_cache(self, tiny_predictor):
        program = make_nested_program()
        space = DesignSpace.from_program(program, unroll_options=(1, 2))
        service = PredictionService(
            tiny_predictor, ServiceConfig(max_batch_size=64, validate=False)
        )
        evaluator = PredictorEvaluator(service, program, space)
        points = list(space.points())[:10]
        evaluator.evaluate_many(points)
        misses = service.stats.cache_misses
        evaluator.evaluate_many(points)  # full revisit
        assert service.stats.cache_misses == misses
        assert service.stats.cache_hits >= len(points)

    @pytest.mark.parametrize("strategy", ["exhaustive", "random", "greedy",
                                          "evolutionary"])
    def test_explore_respects_budget_and_frontier(self, strategy, tiny_predictor):
        program = make_nested_program()
        space = DesignSpace.from_program(program, unroll_options=(1, 2, 4))
        service = PredictionService(
            tiny_predictor, ServiceConfig(max_batch_size=256, validate=False)
        )
        evaluator = PredictorEvaluator(service, program, space)
        result = explore(space, evaluator, strategy=strategy, budget=20, seed=4)
        assert 1 <= result.evaluated <= 20
        assert len({e.point for e in result.evaluations}) == result.evaluated
        objectives = [e.objectives() for e in result.evaluations]
        for front_eval in result.frontier:
            assert not any(
                dominates(o, front_eval.objectives()) for o in objectives
            )

    def test_exhaustive_covers_the_space(self):
        program = make_nested_program(outer=4, inner=4)
        space = DesignSpace.from_program(
            program, unroll_options=(1, 4), allow_pipeline=False
        )
        evaluator = GroundTruthEvaluator(program, space)
        result = explore(space, evaluator, strategy="exhaustive")
        assert result.evaluated == space.size

    def test_unknown_strategy_rejected(self, tiny_predictor):
        program = make_nested_program()
        space = DesignSpace.from_program(program)
        with pytest.raises(KeyError, match="unknown strategy"):
            explore(space, GroundTruthEvaluator(program, space),
                    strategy="simulated-annealing")


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestCli:
    def test_space_verb(self, capsys):
        from repro.dse.cli import main

        assert main(["space", "--suite", "machsuite", "--kernel", "ms_gemm"]) == 0
        out = capsys.readouterr().out
        assert "design points" in out and "unroll options" in out

    def test_explore_hls_backend(self, capsys):
        from repro.dse.cli import main

        code = main([
            "explore", "--suite", "machsuite", "--kernel", "ms_backprop",
            "--backend", "hls", "--strategy", "random", "--budget", "12",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out and "points/s" in out

    def test_explore_unknown_kernel(self):
        from repro.dse.cli import main

        with pytest.raises(SystemExit, match="unknown kernel"):
            main(["explore", "--suite", "machsuite", "--kernel", "nope"])

    def test_explore_predictor_backend_with_adrs(self, tmp_path, capsys,
                                                 monkeypatch, tiny_predictor):
        from repro.dse.cli import main
        from repro.serve.registry import ModelRegistry

        ModelRegistry(tmp_path / "reg").register("gcn-tiny", tiny_predictor)
        code = main([
            "explore", "--ldrgen-seed", "3", "--strategy", "greedy",
            "--budget", "24", "--unroll", "1,2,4",
            "--registry", str(tmp_path / "reg"), "--model", "gcn-tiny",
            "--json", str(tmp_path / "out.json"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ADRS vs exhaustive ground truth" in out
        import json

        payload = json.loads((tmp_path / "out.json").read_text())
        assert payload["adrs"] >= 0
        assert payload["result"]["frontier"]
