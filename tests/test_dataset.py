"""Unit tests for feature encoding, dataset building, splits and IO."""

import numpy as np
import pytest

from repro.dataset import (
    FeatureEncoder,
    NUM_EDGE_TYPES_WITH_BACK,
    build_graph,
    build_realcase_dataset,
    build_synthetic_dataset,
    load_dataset,
    save_dataset,
    split_dataset,
)
from repro.frontend import lower_program
from repro.graph import validate_graph
from repro.ir import NodeType, extract_cdfg
from tests.conftest import make_loop_program, make_straightline_program


class TestFeatureEncoder:
    def test_base_dimension_formula(self):
        encoder = FeatureEncoder()
        assert encoder.feature_dim == encoder.base_dim

    def test_extended_dimensions(self):
        assert FeatureEncoder(with_resource_values=True).feature_dim == (
            FeatureEncoder().base_dim + 3
        )
        assert FeatureEncoder(
            with_resource_values=True, with_resource_types=True
        ).feature_dim == FeatureEncoder().base_dim + 6

    def test_onehots_are_valid(self):
        graph = extract_cdfg(lower_program(make_loop_program()))
        feats = FeatureEncoder().encode_nodes(graph)
        from repro.ir.opcodes import NodeType as NT, OPCODE_CATEGORIES, Opcode

        node_type_block = feats[:, : len(NT)]
        np.testing.assert_allclose(node_type_block.sum(axis=1), 1.0)
        cat_block = feats[:, len(NT) + 2 : len(NT) + 2 + len(OPCODE_CATEGORIES)]
        np.testing.assert_allclose(cat_block.sum(axis=1), 1.0)
        op_block = feats[
            :,
            len(NT) + 2 + len(OPCODE_CATEGORIES) : len(NT)
            + 2
            + len(OPCODE_CATEGORIES)
            + len(tuple(Opcode)),
        ]
        np.testing.assert_allclose(op_block.sum(axis=1), 1.0)

    def test_start_of_path_flags_sources(self):
        from repro.dataset.features import DIRECTIVE_DIM

        graph = extract_cdfg(lower_program(make_loop_program()))
        encoder = FeatureEncoder()
        feats = encoder.encode_nodes(graph)
        # Layout tail: [start, cluster, cluster misc, directives...].
        start_col = feats[:, encoder.base_dim - 3 - DIRECTIVE_DIM]
        data_preds = graph.data_predecessor_counts()
        np.testing.assert_array_equal(start_col, (data_preds == 0).astype(float))

    def test_missing_rich_inputs_rejected(self):
        graph = extract_cdfg(lower_program(make_loop_program()))
        with pytest.raises(ValueError):
            FeatureEncoder(with_resource_values=True).encode_nodes(graph)

    def test_edge_types_fold_back_flag(self):
        graph = extract_cdfg(lower_program(make_loop_program()))
        _, merged, back = FeatureEncoder().encode_edges(graph)
        assert merged.max() < NUM_EDGE_TYPES_WITH_BACK
        # back edges land in the upper half of the vocabulary
        assert (merged[back == 1] >= NUM_EDGE_TYPES_WITH_BACK // 2).all()


class TestBuildGraph:
    def test_dfg_sample_valid(self):
        sample = build_graph(make_straightline_program())
        validate_graph(sample)
        assert sample.meta["kind"] == "dfg"
        assert sample.y is not None and sample.y.shape == (4,)

    def test_cdfg_sample_valid(self):
        sample = build_graph(make_loop_program())
        validate_graph(sample)
        assert sample.meta["kind"] == "cdfg"

    def test_hls_report_rides_in_meta(self):
        sample = build_graph(make_loop_program())
        assert len(sample.meta["hls_report"]) == 4

    def test_forced_kind(self):
        sample = build_graph(make_straightline_program(), kind="cdfg")
        assert sample.meta["kind"] == "cdfg"

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            build_graph(make_straightline_program(), kind="ast")

    def test_node_labels_nontrivial(self):
        sample = build_graph(make_loop_program())
        assert sample.node_labels.sum() > 0
        assert (sample.node_labels.sum(axis=1) == 0).any()  # empty nodes exist


class TestSyntheticBuilder:
    def test_sizes_and_kinds(self, dfg_samples, cdfg_samples):
        assert len(dfg_samples) == 24
        assert all(s.meta["kind"] == "dfg" for s in dfg_samples)
        assert all(s.meta["kind"] == "cdfg" for s in cdfg_samples)

    def test_deterministic(self):
        a = build_synthetic_dataset("dfg", 3, seed=9)
        b = build_synthetic_dataset("dfg", 3, seed=9)
        for x, y in zip(a, b):
            np.testing.assert_allclose(x.node_features, y.node_features)
            np.testing.assert_allclose(x.y, y.y)

    def test_zero_programs_rejected(self):
        with pytest.raises(ValueError):
            build_synthetic_dataset("dfg", 0)

    def test_mode_config_mismatch_rejected(self):
        from repro.ldrgen import GeneratorConfig

        with pytest.raises(ValueError):
            build_synthetic_dataset("dfg", 2, config=GeneratorConfig(mode="cdfg"))

    def test_all_samples_validate(self, dfg_samples, cdfg_samples):
        for sample in [*dfg_samples, *cdfg_samples]:
            validate_graph(sample)

    def test_realcase_dataset(self):
        samples = build_realcase_dataset(suites=("chstone",))
        assert len(samples) == 10
        assert all(s.meta["suite"] == "chstone" for s in samples)


class TestSplits:
    def test_fractions(self, dfg_samples):
        train, val, test = split_dataset(dfg_samples, seed=0)
        assert len(train) + len(val) + len(test) == len(dfg_samples)
        assert len(train) >= len(val)
        assert len(train) >= len(test)

    def test_no_overlap(self, dfg_samples):
        train, val, test = split_dataset(dfg_samples, seed=0)
        names = lambda xs: {x.meta["name"] for x in xs}
        assert not (names(train) & names(val))
        assert not (names(train) & names(test))

    def test_deterministic_split(self, dfg_samples):
        a = split_dataset(dfg_samples, seed=4)[0]
        b = split_dataset(dfg_samples, seed=4)[0]
        assert [x.meta["name"] for x in a] == [x.meta["name"] for x in b]

    def test_bad_fractions_rejected(self, dfg_samples):
        with pytest.raises(ValueError):
            split_dataset(dfg_samples, fractions=(0.9, 0.2, 0.1))

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            split_dataset([])

    def test_two_way_split(self, dfg_samples):
        train, val, test = split_dataset(
            dfg_samples, fractions=(0.85, 0.15, 0.0), seed=0
        )
        assert len(test) == 0 or len(test) <= 2


class TestIO:
    def test_roundtrip(self, tmp_path, dfg_samples):
        path = tmp_path / "dataset.npz"
        save_dataset(dfg_samples[:5], path)
        loaded = load_dataset(path)
        assert len(loaded) == 5
        for original, restored in zip(dfg_samples[:5], loaded):
            np.testing.assert_allclose(original.node_features, restored.node_features)
            np.testing.assert_array_equal(original.edge_index, restored.edge_index)
            np.testing.assert_array_equal(original.edge_type, restored.edge_type)
            np.testing.assert_allclose(original.y, restored.y)
            np.testing.assert_allclose(original.node_labels, restored.node_labels)
            assert original.meta == restored.meta

    def test_loaded_samples_validate(self, tmp_path, cdfg_samples):
        path = tmp_path / "dataset.npz"
        save_dataset(cdfg_samples[:4], path)
        for sample in load_dataset(path):
            validate_graph(sample)
