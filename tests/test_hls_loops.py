"""Unit tests for natural-loop analysis, trip counts and unrolling."""

import pytest

from repro.frontend import (
    ArrayRef,
    Assign,
    BinOp,
    Decl,
    For,
    Function,
    IntConst,
    Program,
    Return,
    Var,
    lower_program,
)
from repro.hls import run_hls
from repro.hls.loops import (
    MAX_UNROLL_FACTOR,
    UNROLL_THRESHOLD,
    analyze_loops,
    unroll_factors,
)
from repro.typesys import CArray, CInt

I32 = CInt(32)


def loop_fn(trip: int, nested_trip: int | None = None):
    inner = [Assign(Var("s"), BinOp("+", Var("s"), Var("i")))]
    if nested_trip is not None:
        inner = [For("j", 0, nested_trip, 1, [
            Assign(Var("s"), BinOp("+", Var("s"), BinOp("*", Var("i"), Var("j")))),
        ])]
    body = [
        Decl("s", I32, IntConst(0)),
        For("i", 0, trip, 1, inner),
        Return(Var("s")),
    ]
    return lower_program(Program("l", [Function("l", [("a", I32)], I32, body)]))


class TestLoopDiscovery:
    def test_single_loop_found(self):
        loops = analyze_loops(loop_fn(8))
        assert len(loops) == 1
        assert loops[0].trip_count == 8

    def test_nested_loops_found(self):
        loops = analyze_loops(loop_fn(4, nested_trip=4))
        assert len(loops) == 2
        assert sorted(l.trip_count for l in loops) == [4, 4]

    def test_loop_blocks_include_body_and_latch(self):
        loops = analyze_loops(loop_fn(8))
        blocks = loops[0].blocks
        assert loops[0].header in blocks
        assert loops[0].latch in blocks
        assert any("body" in b for b in blocks)

    def test_straightline_has_no_loops(self, straightline_program):
        assert analyze_loops(lower_program(straightline_program)) == []

    def test_nonconstant_bound_gives_unknown_trip(self):
        # Loop bound via parameter-dependent comparison is not canonical.
        from repro.frontend import If

        body = [
            Decl("s", I32, IntConst(0)),
            For("i", 0, 100, 1, [
                Assign(Var("s"), BinOp("+", Var("s"), IntConst(1))),
            ]),
            Return(Var("s")),
        ]
        fn = lower_program(Program("u", [Function("u", [("a", I32)], I32, body)]))
        loops = analyze_loops(fn)
        assert loops[0].trip_count == 100  # still canonical
        assert not loops[0].unrolled  # > threshold


class TestUnrollDecision:
    def test_small_trip_unrolls(self):
        assert analyze_loops(loop_fn(UNROLL_THRESHOLD))[0].unrolled

    def test_large_trip_stays_rolled(self):
        assert not analyze_loops(loop_fn(UNROLL_THRESHOLD * 4))[0].unrolled

    def test_factors_applied_to_loop_blocks(self):
        factors = unroll_factors(loop_fn(4))
        assert max(factors.values()) == 4
        assert factors["entry"] == 1

    def test_nested_factors_multiply_with_cap(self):
        factors = unroll_factors(loop_fn(8, nested_trip=8))
        assert max(factors.values()) == min(64, MAX_UNROLL_FACTOR)

    def test_rolled_loop_factors_stay_one(self):
        factors = unroll_factors(loop_fn(32))
        assert max(factors.values()) == 1


class TestUnrollingAffectsLabels:
    def test_unrolled_loop_uses_more_resources_than_rolled(self):
        """Same body, trip 8 (unrolled) vs trip 32 (rolled): the unrolled
        variant replicates datapath despite the smaller trip count."""

        def kernel(trip):
            body = [
                Decl("s", I32, IntConst(0)),
                For("i", 0, trip, 1, [
                    Assign(Var("s"), BinOp("+", Var("s"),
                                           BinOp("*", Var("a"), Var("i")))),
                ]),
                Return(Var("s")),
            ]
            return lower_program(
                Program(f"k{trip}", [Function(f"k{trip}", [("a", I32)], I32, body)])
            )

        unrolled = run_hls(kernel(8)).impl
        rolled = run_hls(kernel(32)).impl
        assert unrolled.dsp > rolled.dsp
        assert unrolled.lut > rolled.lut

    def test_trip_count_invisible_in_graph_features(self):
        """The graphs of trip-4 and trip-8 variants are isomorphic with
        identical features — the unrolling effect on labels is exactly
        the hard-to-learn CDFG variance the paper describes."""
        import numpy as np

        from repro.dataset import build_graph

        def program(trip):
            body = [
                Decl("s", I32, IntConst(0)),
                For("i", 0, trip, 1, [
                    Assign(Var("s"), BinOp("+", Var("s"),
                                           BinOp("*", Var("a"), Var("i")))),
                ]),
                Return(Var("s")),
            ]
            return Program(f"t{trip}", [Function(f"t{trip}", [("a", I32)], I32, body)])

        a = build_graph(program(4), kind="cdfg")
        b = build_graph(program(8), kind="cdfg")
        np.testing.assert_allclose(a.node_features, b.node_features)
        assert a.y[0] != b.y[0] or a.y[1] != b.y[1]  # labels differ
