"""Unit tests for the autograd core: arithmetic, reductions, shape ops."""

import numpy as np
import pytest

from repro.tensor import Tensor, gradcheck, no_grad


class TestConstruction:
    def test_float_data_preserved(self):
        t = Tensor(np.array([1.5, 2.5]))
        assert t.dtype == np.float64
        assert t.shape == (2,)

    def test_int_input_promoted_to_float(self):
        t = Tensor([1, 2, 3])
        assert np.issubdtype(t.dtype, np.floating)

    def test_requires_grad_flag(self):
        assert Tensor([1.0], requires_grad=True).requires_grad
        assert not Tensor([1.0]).requires_grad

    def test_detach_shares_data_but_cuts_graph(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_repr_mentions_shape(self):
        assert "shape=(2,)" in repr(Tensor([1.0, 2.0]))

    def test_len_and_size(self):
        t = Tensor(np.zeros((3, 4)))
        assert len(t) == 3
        assert t.size == 12
        assert t.ndim == 2


class TestArithmetic:
    def test_add_values(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    def test_add_scalar_broadcast(self):
        out = Tensor([1.0, 2.0]) + 1.0
        np.testing.assert_allclose(out.data, [2.0, 3.0])

    def test_radd(self):
        out = 1.0 + Tensor([1.0])
        np.testing.assert_allclose(out.data, [2.0])

    def test_sub_and_rsub(self):
        np.testing.assert_allclose((Tensor([3.0]) - 1.0).data, [2.0])
        np.testing.assert_allclose((5.0 - Tensor([3.0])).data, [2.0])

    def test_mul_div(self):
        np.testing.assert_allclose((Tensor([2.0]) * 3.0).data, [6.0])
        np.testing.assert_allclose((Tensor([6.0]) / 3.0).data, [2.0])
        np.testing.assert_allclose((6.0 / Tensor([3.0])).data, [2.0])

    def test_neg_pow(self):
        np.testing.assert_allclose((-Tensor([2.0])).data, [-2.0])
        np.testing.assert_allclose((Tensor([3.0]) ** 2).data, [9.0])

    def test_tensor_exponent_rejected(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_matmul_2d(self):
        a = Tensor(np.eye(2) * 2)
        b = Tensor(np.arange(4.0).reshape(2, 2))
        np.testing.assert_allclose((a @ b).data, 2 * np.arange(4.0).reshape(2, 2))


class TestBackwardBasics:
    def test_add_grad_accumulates_to_both(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_mul_grad(self):
        a = Tensor([2.0], requires_grad=True)
        b = Tensor([5.0], requires_grad=True)
        (a * b).backward()
        np.testing.assert_allclose(a.grad, [5.0])
        np.testing.assert_allclose(b.grad, [2.0])

    def test_reused_tensor_accumulates(self):
        a = Tensor([3.0], requires_grad=True)
        (a * a).backward()
        np.testing.assert_allclose(a.grad, [6.0])

    def test_broadcast_unreduces_grad(self):
        a = Tensor(np.ones((3, 2)), requires_grad=True)
        b = Tensor(np.ones(2), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(b.grad, [3.0, 3.0])

    def test_backward_without_requires_grad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_no_grad_disables_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2.0
        assert not out.requires_grad

    def test_diamond_graph_gradient(self):
        # f = (a + a*2) -> grad 3
        a = Tensor([1.0], requires_grad=True)
        left = a * 2.0
        (a + left).backward()
        np.testing.assert_allclose(a.grad, [3.0])

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2.0).backward()
        a.zero_grad()
        assert a.grad is None


class TestGradcheckElementwise:
    @pytest.mark.parametrize(
        "fn",
        [
            lambda x: x + 2.0,
            lambda x: x * 3.0 - 1.0,
            lambda x: x / 2.0,
            lambda x: 2.0 / (x + 3.0),
            lambda x: x**3,
            lambda x: (-x) * 0.5,
            lambda x: x.exp(),
            lambda x: (x + 3.1).log(),
            lambda x: (x + 3.1).sqrt(),
            lambda x: x.tanh(),
            lambda x: x.sigmoid(),
            lambda x: x.abs(),
        ],
        ids=["add", "affine", "div", "rdiv", "pow", "neg", "exp", "log",
             "sqrt", "tanh", "sigmoid", "abs"],
    )
    def test_elementwise(self, fn, rng):
        x = Tensor(rng.normal(size=(3, 4)) + 0.1, requires_grad=True)
        assert gradcheck(lambda: fn(x), [x])

    def test_relu_gradcheck_away_from_kink(self, rng):
        x = Tensor(rng.normal(size=(4, 4)) + 5.0, requires_grad=True)
        assert gradcheck(lambda: x.relu(), [x])

    def test_clip_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(3, 3)) * 3.0, requires_grad=True)
        assert gradcheck(lambda: x.clip(-1.0, 1.0), [x], eps=1e-7)


class TestMatmulGrad:
    def test_matmul_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        assert gradcheck(lambda: a @ b, [a, b])

    def test_matmul_chain_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 3)), requires_grad=True)
        assert gradcheck(lambda: ((a @ b).tanh() @ b).sum(axis=0), [a, b])


class TestReductions:
    def test_sum_all(self):
        t = Tensor(np.arange(6.0).reshape(2, 3))
        assert float(t.sum().data) == 15.0

    def test_sum_axis_keepdims(self):
        t = Tensor(np.ones((2, 3)))
        assert t.sum(axis=0).shape == (3,)
        assert t.sum(axis=0, keepdims=True).shape == (1, 3)

    def test_mean_matches_numpy(self, rng):
        x = rng.normal(size=(4, 5))
        np.testing.assert_allclose(Tensor(x).mean(axis=1).data, x.mean(axis=1))

    def test_sum_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        assert gradcheck(lambda: x.sum(axis=1), [x])

    def test_mean_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        assert gradcheck(lambda: x.mean(axis=0), [x])

    def test_max_value_and_grad_routing(self):
        x = Tensor([[1.0, 5.0], [7.0, 2.0]], requires_grad=True)
        out = x.max(axis=1)
        np.testing.assert_allclose(out.data, [5.0, 7.0])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_max_tie_splits_gradient(self):
        x = Tensor([[2.0, 2.0]], requires_grad=True)
        x.max(axis=1).backward()
        np.testing.assert_allclose(x.grad, [[0.5, 0.5]])

    def test_min_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        assert gradcheck(lambda: x.min(axis=1), [x])


class TestShapes:
    def test_reshape_roundtrip(self, rng):
        x = Tensor(rng.normal(size=(2, 6)), requires_grad=True)
        assert x.reshape(3, 4).shape == (3, 4)
        assert gradcheck(lambda: x.reshape(3, 4) * 2.0, [x])

    def test_transpose_default_reverses(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4)))
        assert x.transpose().shape == (4, 3, 2)
        assert x.T.shape == (4, 3, 2)

    def test_transpose_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        assert gradcheck(lambda: x.T @ x, [x])

    def test_squeeze_unsqueeze(self):
        x = Tensor(np.zeros((2, 1, 3)))
        assert x.squeeze(1).shape == (2, 3)
        assert x.squeeze(1).unsqueeze(0).shape == (1, 2, 3)

    def test_squeeze_wrong_axis_raises(self):
        with pytest.raises(ValueError):
            Tensor(np.zeros((2, 3))).squeeze(0)

    def test_getitem_rows_grad(self):
        x = Tensor(np.arange(6.0).reshape(3, 2), requires_grad=True)
        idx = np.array([0, 0, 2])
        x[idx].sum().backward()
        np.testing.assert_allclose(x.grad, [[2.0, 2.0], [0.0, 0.0], [1.0, 1.0]])

    def test_getitem_slice(self):
        x = Tensor(np.arange(6.0).reshape(3, 2), requires_grad=True)
        out = x[1:]
        assert out.shape == (2, 2)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [[0, 0], [1, 1], [1, 1]])

    def test_getitem_with_tensor_index_rejected(self):
        x = Tensor(np.zeros((3, 2)))
        with pytest.raises(TypeError):
            x[Tensor([0.0])]
