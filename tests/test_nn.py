"""Unit tests for the neural-network layer library."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    BatchNorm1d,
    Dropout,
    ELU,
    Embedding,
    LayerNorm,
    LeakyReLU,
    Linear,
    Module,
    ModuleList,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.tensor import Tensor


class TestModule:
    def test_parameters_discovered_recursively(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.layer = Linear(2, 3)
                self.extras = ModuleList([Linear(3, 3)])
                self.scale = Parameter(np.ones(1))

        names = dict(Net().named_parameters())
        assert "layer.weight" in names
        assert "layer.bias" in names
        assert "extras.items.0.weight" in names
        assert "scale" in names

    def test_num_parameters(self):
        layer = Linear(4, 5)
        assert layer.num_parameters() == 4 * 5 + 5

    def test_train_eval_propagates(self):
        net = Sequential(Linear(2, 2), Dropout(0.5))
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_state_dict_roundtrip(self):
        a = Linear(3, 2)
        b = Linear(3, 2)
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_state_dict_mismatch_raises(self):
        a = Linear(3, 2)
        state = a.state_dict()
        del state["bias"]
        with pytest.raises(KeyError):
            a.load_state_dict(state)

    def test_state_dict_shape_mismatch_raises(self):
        a = Linear(3, 2)
        state = a.state_dict()
        state["bias"] = np.zeros(5)
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_zero_grad_clears_all(self):
        layer = Linear(2, 2)
        out = layer(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(4, 7, rng=rng)
        assert layer(Tensor(np.ones((5, 4)))).shape == (5, 7)

    def test_no_bias_option(self, rng):
        layer = Linear(4, 7, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_linear_is_affine(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_deterministic_with_seeded_rng(self):
        a = Linear(3, 3, rng=np.random.default_rng(7))
        b = Linear(3, 3, rng=np.random.default_rng(7))
        np.testing.assert_allclose(a.weight.data, b.weight.data)


class TestEmbedding:
    def test_lookup_shape(self, rng):
        emb = Embedding(10, 4, rng=rng)
        out = emb(np.array([1, 2, 2]))
        assert out.shape == (3, 4)

    def test_same_id_same_vector(self, rng):
        emb = Embedding(10, 4, rng=rng)
        out = emb(np.array([3, 3]))
        np.testing.assert_allclose(out.data[0], out.data[1])

    def test_out_of_range_rejected(self, rng):
        emb = Embedding(4, 2, rng=rng)
        with pytest.raises(IndexError):
            emb(np.array([4]))

    def test_gradient_flows_to_rows(self, rng):
        emb = Embedding(5, 2, rng=rng)
        emb(np.array([1, 1])).sum().backward()
        assert emb.weight.grad is not None
        np.testing.assert_allclose(emb.weight.grad[1], [2.0, 2.0])
        np.testing.assert_allclose(emb.weight.grad[0], 0.0)


class TestActivationModules:
    @pytest.mark.parametrize("cls", [ReLU, LeakyReLU, ELU, Tanh, Sigmoid])
    def test_shape_preserved(self, cls, rng):
        module = cls()
        x = Tensor(rng.normal(size=(3, 4)))
        assert module(x).shape == (3, 4)

    def test_relu_clamps(self):
        np.testing.assert_allclose(ReLU()(Tensor([-1.0, 2.0])).data, [0.0, 2.0])


class TestDropoutModule:
    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.5)

    def test_eval_identity(self, rng):
        d = Dropout(0.9, rng=rng)
        d.eval()
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_allclose(d(x).data, 1.0)


class TestNormalisation:
    def test_batchnorm_normalises_training_batch(self, rng):
        bn = BatchNorm1d(3)
        x = Tensor(rng.normal(loc=5.0, scale=2.0, size=(64, 3)))
        out = bn(x)
        np.testing.assert_allclose(out.data.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.data.std(axis=0), 1.0, atol=1e-2)

    def test_batchnorm_eval_uses_running_stats(self, rng):
        bn = BatchNorm1d(2, momentum=1.0)
        x = Tensor(rng.normal(size=(32, 2)))
        bn(x)
        bn.eval()
        out = bn(Tensor(np.zeros((1, 2))))
        assert np.isfinite(out.data).all()

    def test_batchnorm_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            BatchNorm1d(3)(Tensor(np.zeros((4, 2))))

    def test_layernorm_normalises_rows(self, rng):
        ln = LayerNorm(6)
        out = ln(Tensor(rng.normal(size=(4, 6)) * 3.0 + 1.0))
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-9)

    def test_layernorm_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            LayerNorm(4)(Tensor(np.zeros((2, 3))))


class TestContainersAndMLP:
    def test_sequential_applies_in_order(self, rng):
        net = Sequential(Linear(2, 3, rng=rng), ReLU(), Linear(3, 1, rng=rng))
        assert net(Tensor(np.ones((5, 2)))).shape == (5, 1)
        assert len(net) == 3
        assert isinstance(net[1], ReLU)

    def test_modulelist_iteration_and_append(self):
        ml = ModuleList([Linear(2, 2)])
        ml.append(Linear(2, 2))
        assert len(ml) == 2
        assert len(list(iter(ml))) == 2

    def test_mlp_shapes_match_paper_head(self, rng):
        head = MLP([300, 600, 300, 1], rng=rng)
        assert head(Tensor(np.ones((2, 300)))).shape == (2, 1)

    def test_mlp_too_short_rejected(self):
        with pytest.raises(ValueError):
            MLP([5])

    def test_mlp_gradients_reach_all_layers(self, rng):
        net = MLP([3, 4, 2], rng=rng)
        net(Tensor(np.ones((2, 3)))).sum().backward()
        assert all(p.grad is not None for p in net.parameters())
