"""Unit tests for the implementation model, synthesis report and flow."""

import numpy as np
import pytest

from repro.frontend import lower_program
from repro.hls import fsm_cost, run_hls, schedule_function
from repro.hls.implementation import pipeline_registers, structural_seed
from repro.ir import Opcode
from repro.ldrgen import GeneratorConfig, generate_program
from tests.conftest import make_loop_program, make_straightline_program


@pytest.fixture(scope="module")
def loop_result():
    return run_hls(lower_program(make_loop_program()))


@pytest.fixture(scope="module")
def straight_result():
    return run_hls(lower_program(make_straightline_program()))


class TestImplementationMetrics:
    def test_metrics_positive_and_finite(self, loop_result):
        impl = loop_result.impl
        for value in (impl.dsp, impl.lut, impl.ff, impl.cp_ns):
            assert np.isfinite(value)
            assert value >= 0

    def test_cp_within_plausible_band(self, loop_result):
        assert 1.0 <= loop_result.impl.cp_ns <= 12.0 + 1e-6

    def test_deterministic_labels(self):
        a = run_hls(lower_program(make_loop_program())).impl
        b = run_hls(lower_program(make_loop_program())).impl
        assert a == b

    def test_structural_seed_stable_and_distinct(self):
        fn_a = lower_program(make_loop_program())
        fn_b = lower_program(make_straightline_program())
        assert structural_seed(fn_a) == structural_seed(fn_a)
        assert structural_seed(fn_a) != structural_seed(fn_b)

    def test_pipeline_registers_cover_cross_block_values(self, loop_result):
        fn = loop_result.function
        regs = pipeline_registers(fn, loop_result.schedule)
        assert regs  # loop-carried values must be registered
        for inst_id, bits in regs.items():
            assert bits > 0


class TestSynthesisReportBias:
    def test_lut_overestimated(self, loop_result):
        assert loop_result.report.lut > loop_result.impl.lut

    def test_ff_overestimated(self, loop_result):
        assert loop_result.report.ff > loop_result.impl.ff

    def test_dsp_estimate_reasonable(self, straight_result):
        impl, report = straight_result.impl, straight_result.report
        assert report.dsp >= impl.dsp
        assert report.dsp <= 2 * impl.dsp + 2

    def test_report_deterministic(self):
        a = run_hls(lower_program(make_loop_program())).report
        b = run_hls(lower_program(make_loop_program())).report
        assert a == b

    def test_memory_rich_programs_blow_up_lut_estimate(self):
        """The report's per-array adapters make its LUT error explode on
        memory/control-rich programs — the paper's Table 5 behaviour."""
        loop = run_hls(lower_program(make_loop_program()))
        straight = run_hls(lower_program(make_straightline_program()))
        loop_ratio = loop.report.lut / loop.impl.lut
        straight_ratio = straight.report.lut / straight.impl.lut
        assert loop_ratio > straight_ratio


class TestFSM:
    def test_states_grow_with_blocks(self):
        loop_fn = lower_program(make_loop_program())
        straight_fn = lower_program(make_straightline_program())
        loop_states = fsm_cost(loop_fn, schedule_function(loop_fn)).states
        straight_states = fsm_cost(
            straight_fn, schedule_function(straight_fn)
        ).states
        assert loop_states > straight_states

    def test_fsm_cost_positive(self):
        fn = lower_program(make_loop_program())
        cost = fsm_cost(fn, schedule_function(fn))
        assert cost.lut > 0 and cost.ff >= 1
        assert cost.transitions >= len(fn.blocks) - 1


class TestNodeLevelOutputs:
    def test_every_instruction_has_type_and_value(self, loop_result):
        ids = {i.id for i in loop_result.function.instructions()}
        assert set(loop_result.node_types) == ids
        assert set(loop_result.node_resources) == ids

    def test_types_consistent_with_values(self, loop_result):
        for inst_id, (dsp, lut, ff) in loop_result.node_resources.items():
            t_dsp, t_lut, t_ff = loop_result.node_types[inst_id]
            assert t_dsp == int(dsp > 0.01)
            assert t_lut == int(lut > 0.5)
            assert t_ff == int(ff > 0.5)

    def test_control_nodes_are_empty(self, loop_result):
        for inst in loop_result.function.instructions():
            if inst.opcode in (Opcode.BR, Opcode.RET):
                assert loop_result.node_types[inst.id] == (0, 0, 0)

    def test_multiple_resource_types_exist(self, loop_result):
        """Some node must use more than one resource type (paper: 'a sdiv
        node may use both DSP and LUT')."""
        kinds = set(loop_result.node_types.values())
        assert any(sum(k) >= 2 for k in kinds)


class TestAcrossPrograms:
    @pytest.mark.parametrize("seed", [0, 7, 21])
    def test_generated_programs_flow_cleanly(self, seed):
        program = generate_program(GeneratorConfig(mode="cdfg", max_loops=2), seed)
        result = run_hls(lower_program(program))
        assert result.impl.lut > 0
        assert result.impl.ff > 0
        assert 1.0 <= result.impl.cp_ns <= 12.1

    def test_bigger_program_uses_more_resources(self):
        small = generate_program(
            GeneratorConfig(mode="dfg", min_statements=2, max_statements=3), 1
        )
        big = generate_program(
            GeneratorConfig(mode="dfg", min_statements=18, max_statements=20), 1
        )
        small_lut = run_hls(lower_program(small)).impl.lut
        big_lut = run_hls(lower_program(big)).impl.lut
        assert big_lut > small_lut
