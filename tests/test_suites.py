"""Unit tests for the MachSuite/CHStone/PolyBench suite substitutes."""

import numpy as np
import pytest

from repro.frontend import lower_program, to_c_source
from repro.hls import run_hls
from repro.ir import extract_cdfg, verify_function
from repro.suites import SUITE_NAMES, all_programs, suite_programs
from repro.suites import chstone, machsuite, polybench


class TestCounts:
    def test_suite_sizes_match_paper(self):
        assert len(machsuite.programs()) == 16
        assert len(chstone.programs()) == 10
        assert len(polybench.programs()) == 30

    def test_total_56(self):
        assert len(all_programs()) == 56

    def test_registry_names(self):
        assert SUITE_NAMES == ("machsuite", "chstone", "polybench")
        for name in SUITE_NAMES:
            assert suite_programs(name)

    def test_unknown_suite_rejected(self):
        with pytest.raises(KeyError):
            suite_programs("spec2006")

    def test_kernel_names_unique(self):
        names = [p.name for p in all_programs()]
        assert len(names) == len(set(names))

    def test_kernel_name_prefixes(self):
        for program in machsuite.programs():
            assert program.name.startswith("ms_")
        for program in chstone.programs():
            assert program.name.startswith("ch_")
        for program in polybench.programs():
            assert program.name.startswith("pb_")


@pytest.mark.parametrize("program", all_programs(), ids=lambda p: p.name)
class TestEveryKernel:
    def test_lowers_verifies_and_synthesises(self, program):
        fn = lower_program(program)
        verify_function(fn)
        result = run_hls(fn)
        labels = result.impl.as_array()
        assert np.isfinite(labels).all()
        assert labels[1] > 0  # every kernel uses LUTs

    def test_cdfg_extraction(self, program):
        graph = extract_cdfg(lower_program(program))
        assert graph.num_nodes >= 10
        assert graph.num_edges >= graph.num_nodes - 1


class TestStructure:
    def test_every_kernel_has_a_loop(self):
        """Real-case kernels are control-rich: each must produce at least
        one CFG back edge except the soft-float CHStone kernels."""
        loopless = {"ch_dfadd", "ch_dfmul"}
        for program in all_programs():
            graph = extract_cdfg(lower_program(program))
            has_back = any(e[3] for e in graph.edges)
            if program.name not in loopless:
                assert has_back, f"{program.name} has no loop"

    def test_sources_are_well_formed(self):
        for program in all_programs():
            text = to_c_source(program)
            assert text.count("{") == text.count("}")
            assert program.name in text

    def test_distribution_differs_from_synthetic(self):
        """Suite kernels are memory-richer than synthetic CDFGs —
        the distribution shift that makes Table 5 interesting."""
        from repro.ir.opcodes import Opcode
        from repro.ldrgen import GeneratorConfig, generate_program

        def memop_fraction(programs):
            total, mem = 0, 0
            for p in programs:
                for inst in lower_program(p).instructions():
                    total += 1
                    mem += inst.opcode in (Opcode.LOAD, Opcode.STORE)
            return mem / total

        real = memop_fraction(all_programs()[:10])
        synth = memop_fraction(
            [generate_program(GeneratorConfig(mode="cdfg"), s) for s in range(10)]
        )
        assert real > synth
