"""Unit tests for IR structures, CFG queries, verification, IRGraph."""

import numpy as np
import pytest

from repro.frontend import lower_program
from repro.ir import (
    BasicBlock,
    EdgeType,
    IRFunction,
    IRGraph,
    IRVerificationError,
    NodeType,
    Opcode,
    back_edges,
    opcode_category,
    predecessors,
    reverse_post_order,
    successors,
    verify_function,
)
from repro.ir.values import Argument, Constant, Instruction
from repro.typesys import CInt

I32 = CInt(32)


def _br(*targets):
    inst = Instruction(Opcode.BR, [], CInt(1))
    inst.targets = list(targets)
    return inst


def _ret():
    return Instruction(Opcode.RET, [Constant(0, I32)], I32)


def make_diamond():
    """entry -> (left | right) -> exit"""
    fn = IRFunction("diamond", [], I32)
    entry = fn.add_block("entry")
    left = fn.add_block("left")
    right = fn.add_block("right")
    exit_ = fn.add_block("exit")
    cond = entry.append(Instruction(Opcode.ICMP, [Constant(1, I32), Constant(2, I32)], CInt(1)))
    br = Instruction(Opcode.BR, [cond], CInt(1))
    br.targets = ["left", "right"]
    entry.append(br)
    left.append(_br("exit"))
    right.append(_br("exit"))
    exit_.append(_ret())
    return fn


def make_loop():
    """entry -> head <-> body, head -> exit"""
    fn = IRFunction("looper", [], I32)
    entry = fn.add_block("entry")
    head = fn.add_block("head")
    body = fn.add_block("body")
    exit_ = fn.add_block("exit")
    entry.append(_br("head"))
    cond = head.append(Instruction(Opcode.ICMP, [Constant(0, I32), Constant(4, I32)], CInt(1)))
    br = Instruction(Opcode.BR, [cond], CInt(1))
    br.targets = ["body", "exit"]
    head.append(br)
    body.append(_br("head"))
    exit_.append(_ret())
    return fn


class TestBasicBlock:
    def test_append_after_terminator_rejected(self):
        block = BasicBlock("b")
        block.append(_ret())
        with pytest.raises(ValueError):
            block.append(_ret())

    def test_terminator_detection(self):
        block = BasicBlock("b")
        assert block.terminator is None
        block.append(_ret())
        assert block.terminator.opcode == Opcode.RET

    def test_instruction_block_name_set(self):
        block = BasicBlock("myblock")
        inst = block.append(_ret())
        assert inst.block == "myblock"


class TestIRFunction:
    def test_duplicate_block_rejected(self):
        fn = IRFunction("f", [], I32)
        fn.add_block("b")
        with pytest.raises(ValueError):
            fn.add_block("b")

    def test_entry_of_empty_function_rejected(self):
        with pytest.raises(ValueError):
            IRFunction("f", [], I32).entry

    def test_instruction_iteration_order(self):
        fn = make_diamond()
        blocks = [i.block for i in fn.instructions()]
        assert blocks == sorted(blocks, key=["entry", "left", "right", "exit"].index)


class TestCFG:
    def test_successors_of_diamond(self):
        succ = successors(make_diamond())
        assert succ["entry"] == ["left", "right"]
        assert succ["exit"] == []

    def test_predecessors_of_diamond(self):
        preds = predecessors(make_diamond())
        assert sorted(preds["exit"]) == ["left", "right"]

    def test_rpo_starts_at_entry_and_respects_topology(self):
        order = reverse_post_order(make_diamond())
        assert order[0] == "entry"
        assert order.index("exit") > order.index("left")
        assert order.index("exit") > order.index("right")

    def test_no_back_edges_in_dag(self):
        assert back_edges(make_diamond()) == set()

    def test_loop_back_edge_found(self):
        assert back_edges(make_loop()) == {("body", "head")}


class TestVerifier:
    def test_valid_functions_pass(self):
        verify_function(make_diamond())
        verify_function(make_loop())

    def test_unterminated_block_rejected(self):
        fn = IRFunction("f", [], I32)
        fn.add_block("entry")
        with pytest.raises(IRVerificationError):
            verify_function(fn)

    def test_branch_to_unknown_block_rejected(self):
        fn = IRFunction("f", [], I32)
        fn.add_block("entry").append(_br("nowhere"))
        with pytest.raises(IRVerificationError):
            verify_function(fn)

    def test_foreign_argument_rejected(self):
        fn = IRFunction("f", [], I32)
        foreign = Argument("ghost", I32)
        entry = fn.add_block("entry")
        entry.append(Instruction(Opcode.RET, [foreign], I32))
        with pytest.raises(IRVerificationError):
            verify_function(fn)

    def test_phi_incoming_mismatch_rejected(self):
        fn = make_diamond()
        phi = Instruction(Opcode.PHI, [Constant(0, I32)], I32)
        phi.incoming_blocks = ["left"]  # misses 'right'
        fn.block("exit").instructions.insert(0, phi)
        with pytest.raises(IRVerificationError):
            verify_function(fn)

    def test_phi_after_non_phi_rejected(self):
        fn = make_diamond()
        phi = Instruction(Opcode.PHI, [Constant(0, I32), Constant(1, I32)], I32)
        phi.incoming_blocks = ["left", "right"]
        exit_ = fn.block("exit")
        exit_.instructions.insert(1, phi)  # after the ret... before append guard
        with pytest.raises(IRVerificationError):
            verify_function(fn)


class TestOpcodeTaxonomy:
    def test_categories_cover_all_opcodes(self):
        for op in Opcode:
            assert opcode_category(op) != "misc"

    def test_sample_categories(self):
        assert opcode_category(Opcode.MUL) == "binary_unary"
        assert opcode_category(Opcode.XOR) == "bitwise"
        assert opcode_category(Opcode.LOAD) == "memory"
        assert opcode_category(Opcode.BR) == "control"


class TestIRGraph:
    def test_add_edge_bounds_checked(self):
        g = IRGraph("g", "dfg")
        g.add_node(NodeType.OPERATION, Opcode.ADD, 32)
        with pytest.raises(IndexError):
            g.add_edge(0, 5, EdgeType.DATA)

    def test_edge_arrays_empty_graph(self):
        g = IRGraph("g", "dfg")
        ei, et, eb = g.edge_arrays()
        assert ei.shape == (2, 0)
        assert et.shape == (0,)

    def test_cycle_detection(self):
        g = IRGraph("g", "cdfg")
        a = g.add_node(NodeType.OPERATION, Opcode.ADD, 32)
        b = g.add_node(NodeType.OPERATION, Opcode.ADD, 32)
        g.add_edge(a, b, EdgeType.DATA)
        assert not g.has_cycle()
        g.add_edge(b, a, EdgeType.CONTROL)
        assert g.has_cycle()

    def test_data_predecessor_counts_ignore_control(self):
        g = IRGraph("g", "cdfg")
        a = g.add_node(NodeType.OPERATION, Opcode.ADD, 32)
        b = g.add_node(NodeType.OPERATION, Opcode.ADD, 32)
        g.add_edge(a, b, EdgeType.CONTROL)
        assert g.data_predecessor_counts()[b] == 0
        g.add_edge(a, b, EdgeType.DATA)
        assert g.data_predecessor_counts()[b] == 1

    def test_networkx_export(self, loop_program):
        from repro.ir import extract_cdfg

        g = extract_cdfg(lower_program(loop_program))
        nx_graph = g.to_networkx()
        assert nx_graph.number_of_nodes() == g.num_nodes
        assert nx_graph.number_of_edges() == g.num_edges
