"""Unit tests for the three prediction approaches."""

import numpy as np
import pytest

from repro.models import (
    HierarchicalPredictor,
    KnowledgeRichPredictor,
    OffTheShelfPredictor,
    PredictorConfig,
    apply_feature_view,
)
from repro.models.base import attach_inferred_types
from repro.training import TrainConfig


def tiny_config(model_name="gcn", seed=0):
    return PredictorConfig(
        model_name=model_name,
        hidden_dim=16,
        num_layers=2,
        seed=seed,
        train=TrainConfig(epochs=6, batch_size=8, lr=3e-3, seed=seed),
    )


class TestFeatureViews:
    def test_base_view_is_identity(self, dfg_samples):
        out = apply_feature_view(dfg_samples[:3], "base")
        assert out[0] is dfg_samples[0]

    def test_rich_view_appends_three_columns(self, dfg_samples):
        out = apply_feature_view(dfg_samples[:3], "rich")
        assert out[0].feature_dim == dfg_samples[0].feature_dim + 3

    def test_rich_view_scales_linearly(self, dfg_samples):
        sample = dfg_samples[0]
        out = apply_feature_view([sample], "rich")[0]
        np.testing.assert_allclose(
            out.node_features[:, -2], sample.node_resources[:, 1] / 64.0
        )

    def test_infused_view_appends_labels(self, dfg_samples):
        out = apply_feature_view(dfg_samples[:3], "infused")
        np.testing.assert_allclose(
            out[0].node_features[:, -3:], dfg_samples[0].node_labels
        )

    def test_unknown_view_rejected(self, dfg_samples):
        with pytest.raises(ValueError):
            apply_feature_view(dfg_samples[:1], "oracle")

    def test_attach_inferred_types_shape_checked(self, dfg_samples):
        graphs = dfg_samples[:2]
        total = sum(g.num_nodes for g in graphs)
        annotated = attach_inferred_types(graphs, np.zeros((total, 3)))
        assert annotated[0].feature_dim == graphs[0].feature_dim + 3
        with pytest.raises(ValueError):
            attach_inferred_types(graphs, np.zeros((total + 1, 3)))


class TestOffTheShelf:
    def test_fit_predict_evaluate(self, dfg_samples):
        predictor = OffTheShelfPredictor(tiny_config())
        predictor.fit(dfg_samples[:16], dfg_samples[16:20])
        pred = predictor.predict(dfg_samples[20:])
        assert pred.shape == (4, 4)
        mape_row = predictor.evaluate(dfg_samples[20:])
        assert mape_row.shape == (4,)
        assert np.isfinite(mape_row).all()

    def test_unfitted_predict_rejected(self, dfg_samples):
        with pytest.raises(RuntimeError):
            OffTheShelfPredictor(tiny_config()).predict(dfg_samples[:1])

    def test_any_backbone_usable(self, dfg_samples):
        predictor = OffTheShelfPredictor(tiny_config(model_name="pna"))
        predictor.fit(dfg_samples[:12], dfg_samples[12:16])
        assert predictor.predict(dfg_samples[16:18]).shape == (2, 4)


class TestKnowledgeRich:
    def test_fit_predict(self, dfg_samples):
        predictor = KnowledgeRichPredictor(tiny_config())
        predictor.fit(dfg_samples[:16], dfg_samples[16:20])
        assert predictor.predict(dfg_samples[20:]).shape == (4, 4)

    def test_inner_model_sees_extended_features(self, dfg_samples):
        predictor = KnowledgeRichPredictor(tiny_config())
        predictor.fit(dfg_samples[:12], dfg_samples[12:16])
        expected = dfg_samples[0].feature_dim + 3
        assert predictor._inner.model.encoder.input_proj.in_features == expected


class TestHierarchical:
    def test_fit_returns_both_stage_results(self, dfg_samples):
        predictor = HierarchicalPredictor(tiny_config())
        node_result, graph_result = predictor.fit(
            dfg_samples[:16], dfg_samples[16:20]
        )
        assert node_result.best_val_metric > 0.5  # accuracy
        assert graph_result.best_val_metric < np.inf

    def test_inference_does_not_touch_ground_truth(self, dfg_samples):
        """Stripping node labels from test graphs must not change the
        hierarchical prediction — the honest-inference guarantee."""
        predictor = HierarchicalPredictor(tiny_config())
        predictor.fit(dfg_samples[:16], dfg_samples[16:20])
        test = dfg_samples[20:]
        with_labels = predictor.predict(test)
        stripped = [g.with_features(g.node_features) for g in test]
        for g in stripped:
            g.node_labels = None
        without_labels = predictor.predict(stripped)
        np.testing.assert_allclose(with_labels, without_labels)

    def test_infer_types_binary(self, dfg_samples):
        predictor = HierarchicalPredictor(tiny_config())
        predictor.fit(dfg_samples[:12], dfg_samples[12:16])
        types = predictor.infer_types(dfg_samples[16:18])
        assert set(np.unique(types)) <= {0.0, 1.0}

    def test_node_stage_evaluation(self, dfg_samples):
        predictor = HierarchicalPredictor(tiny_config())
        predictor.fit(dfg_samples[:12], dfg_samples[12:16])
        accs = predictor.evaluate_node_stage(dfg_samples[16:])
        assert accs.shape == (3,)
        assert (accs >= 0).all() and (accs <= 1).all()

    def test_unfitted_rejected(self, dfg_samples):
        with pytest.raises(RuntimeError):
            HierarchicalPredictor(tiny_config()).predict(dfg_samples[:1])
        with pytest.raises(RuntimeError):
            HierarchicalPredictor(tiny_config()).infer_types(dfg_samples[:1])

    def test_different_node_backbone(self, dfg_samples):
        predictor = HierarchicalPredictor(tiny_config("gin"), node_model_name="sage")
        predictor.fit(dfg_samples[:12], dfg_samples[12:16])
        assert predictor.node_model.encoder.spec.name == "sage"
        assert predictor.graph_model.encoder.spec.name == "gin"

    def test_teacher_forcing_mode_trains(self, dfg_samples):
        """The paper's literal protocol (ground-truth stage-2 features)
        remains available behind a flag."""
        predictor = HierarchicalPredictor(tiny_config(), teacher_forcing=True)
        predictor.fit(dfg_samples[:12], dfg_samples[12:16])
        assert predictor.predict(dfg_samples[16:18]).shape == (2, 4)
