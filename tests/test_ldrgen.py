"""Unit + property tests for the synthetic program generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import lower_program, to_c_source
from repro.frontend.ast_ import For, Function, Return
from repro.hls import run_hls
from repro.ir import extract_cdfg, extract_dfg, verify_function
from repro.ldrgen import GeneratorConfig, ProgramGenerator, generate_program


class TestConfig:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            GeneratorConfig(mode="ast")

    def test_invalid_statement_range_rejected(self):
        with pytest.raises(ValueError):
            GeneratorConfig(min_statements=5, max_statements=2)

    def test_width_weight_mismatch_rejected(self):
        with pytest.raises(ValueError):
            GeneratorConfig(width_choices=(8, 16), width_weights=(1.0,))

    def test_factory_helpers(self):
        assert GeneratorConfig.dfg().mode == "dfg"
        assert GeneratorConfig.cdfg().mode == "cdfg"


class TestDeterminism:
    def test_same_seed_same_program(self):
        a = generate_program(GeneratorConfig(mode="dfg"), seed=5)
        b = generate_program(GeneratorConfig(mode="dfg"), seed=5)
        assert to_c_source(a) == to_c_source(b)

    def test_different_seeds_differ(self):
        a = generate_program(GeneratorConfig(mode="dfg"), seed=1)
        b = generate_program(GeneratorConfig(mode="dfg"), seed=2)
        assert to_c_source(a) != to_c_source(b)

    def test_generator_produces_distinct_programs(self):
        gen = ProgramGenerator(GeneratorConfig(mode="dfg"), seed=0)
        sources = {to_c_source(gen.generate()) for _ in range(5)}
        assert len(sources) == 5


class TestDFGMode:
    def test_single_basic_block(self):
        for seed in range(5):
            fn = lower_program(generate_program(GeneratorConfig(mode="dfg"), seed))
            assert fn.is_single_block

    def test_extracts_acyclic_graph(self):
        for seed in range(5):
            program = generate_program(GeneratorConfig(mode="dfg"), seed)
            graph = extract_dfg(lower_program(program))
            assert not graph.has_cycle()

    def test_liveness_no_dead_locals(self):
        """Every declared local feeds the return expression (ldrgen's
        liveness guarantee) — check by counting xor folds."""
        program = generate_program(GeneratorConfig(mode="dfg"), seed=3)
        fn = program.top
        ret = fn.body[-1]
        assert isinstance(ret, Return)
        text = to_c_source(program)
        locals_declared = text.count(" v")  # v0, v1, ... declarations

        assert locals_declared >= 1


class TestCDFGMode:
    def test_contains_loop(self):
        for seed in range(5):
            program = generate_program(GeneratorConfig(mode="cdfg"), seed)
            assert any(isinstance(s, For) for s in program.top.body)

    def test_cdfg_has_back_edge(self):
        for seed in range(5):
            program = generate_program(GeneratorConfig(mode="cdfg"), seed)
            graph = extract_cdfg(lower_program(program))
            assert any(e[3] for e in graph.edges)

    def test_nesting_bounded(self):
        config = GeneratorConfig(mode="cdfg", max_loop_nest=2)

        def depth(stmts, current=0):
            best = current
            for s in stmts:
                if isinstance(s, For):
                    best = max(best, depth(s.body, current + 1))
                elif hasattr(s, "then_body"):
                    best = max(
                        best,
                        depth(s.then_body, current),
                        depth(s.else_body, current),
                    )
            return best

        for seed in range(8):
            program = generate_program(config, seed)
            assert depth(program.top.body) <= 2


class TestGeneratedProgramsProperty:
    @given(seed=st.integers(0, 500), mode=st.sampled_from(["dfg", "cdfg"]))
    @settings(max_examples=30, deadline=None)
    def test_always_lowers_verifies_and_synthesises(self, seed, mode):
        """The central generator invariant: every program compiles, the IR
        verifies, and the HLS flow yields finite positive labels."""
        program = generate_program(GeneratorConfig(mode=mode), seed)
        fn = lower_program(program)
        verify_function(fn)
        result = run_hls(fn)
        labels = result.impl.as_array()
        assert np.isfinite(labels).all()
        assert labels[1] > 0 and labels[2] > 0  # LUT, FF
        assert labels[3] > 0  # CP

    @given(seed=st.integers(0, 300))
    @settings(max_examples=15, deadline=None)
    def test_division_always_guarded(self, seed):
        """Every generated division/modulo has a provably nonzero divisor:
        either ``x | 1`` (low bit forced) or a nonzero constant."""
        from repro.frontend.ast_ import ArrayRef, Assign, BinOp, Call, Cond
        from repro.frontend.ast_ import Decl, For, If, IntConst, Return, UnOp

        config = GeneratorConfig(mode="dfg")
        config.op_weights["/"] = 0.5

        def check_expr(expr):
            if isinstance(expr, BinOp):
                if expr.op in ("/", "%"):
                    rhs = expr.rhs
                    guarded = (
                        isinstance(rhs, BinOp)
                        and rhs.op == "|"
                        and isinstance(rhs.rhs, IntConst)
                        and rhs.rhs.value % 2 == 1
                    ) or (isinstance(rhs, IntConst) and rhs.value != 0)
                    assert guarded, f"unguarded division: {expr}"
                check_expr(expr.lhs)
                check_expr(expr.rhs)
            elif isinstance(expr, UnOp):
                check_expr(expr.operand)
            elif isinstance(expr, Cond):
                check_expr(expr.cond)
                check_expr(expr.then)
                check_expr(expr.other)
            elif isinstance(expr, Call):
                for arg in expr.args:
                    check_expr(arg)
            elif isinstance(expr, ArrayRef):
                check_expr(expr.index)

        def check_stmts(stmts):
            for stmt in stmts:
                if isinstance(stmt, Decl) and stmt.init is not None:
                    check_expr(stmt.init)
                elif isinstance(stmt, Assign):
                    check_expr(stmt.expr)
                    if isinstance(stmt.target, ArrayRef):
                        check_expr(stmt.target.index)
                elif isinstance(stmt, If):
                    check_expr(stmt.cond)
                    check_stmts(stmt.then_body)
                    check_stmts(stmt.else_body)
                elif isinstance(stmt, For):
                    check_stmts(stmt.body)
                elif isinstance(stmt, Return):
                    check_expr(stmt.expr)

        program = generate_program(config, seed)
        check_stmts(program.top.body)
