"""Pipeline subsystem tests: determinism, sharded formats, resumability,
cache accounting and streaming training parity."""

import json

import numpy as np
import pytest

from repro.dataset import (
    BuildCache,
    ConcatDataset,
    DatasetView,
    Manifest,
    ShardedDataset,
    build_pipeline,
    build_synthetic_dataset,
    load_dataset,
    migrate_dataset,
    save_dataset,
    split_dataset,
)
from repro.dataset.features import FeatureEncoder
from repro.dataset.pipeline import cache_key, program_digest
from repro.dataset.shards import MANIFEST_NAME
from repro.faults import FaultPlan, FaultSpec
from repro.gnn.network import GraphRegressor
from repro.hls.resource_library import DEFAULT_DEVICE
from repro.ldrgen import GeneratorConfig, generate_sample
from repro.training.trainer import BatchStream, TrainConfig, train_graph_regressor


def assert_samples_equal(a, b):
    np.testing.assert_array_equal(a.node_features, b.node_features)
    np.testing.assert_array_equal(a.edge_index, b.edge_index)
    np.testing.assert_array_equal(a.edge_type, b.edge_type)
    np.testing.assert_array_equal(a.edge_back, b.edge_back)
    np.testing.assert_array_equal(a.y, b.y)
    np.testing.assert_array_equal(a.node_labels, b.node_labels)
    np.testing.assert_array_equal(a.node_resources, b.node_resources)
    assert a.meta == b.meta


class TestSeedDerivation:
    def test_sample_independent_of_order(self):
        config = GeneratorConfig(mode="cdfg")
        alone = generate_sample(config, 9, 4)
        in_sequence = [generate_sample(config, 9, i) for i in range(6)][4]
        assert program_digest(alone) == program_digest(in_sequence)
        assert alone.name == "cdfg_prog_000005"

    def test_distinct_indices_distinct_programs(self):
        config = GeneratorConfig(mode="dfg")
        digests = {program_digest(generate_sample(config, 0, i)) for i in range(8)}
        assert len(digests) == 8

    def test_negative_index_rejected(self):
        from repro.ldrgen import sample_seed

        with pytest.raises(ValueError):
            sample_seed(0, -1)


class TestPipelineDeterminism:
    def test_workers_bitwise_identical(self, tmp_path):
        serial, _ = build_pipeline(tmp_path / "w1", "dfg", 6, seed=7, shard_size=4)
        parallel, _ = build_pipeline(
            tmp_path / "w4", "dfg", 6, seed=7, shard_size=4, workers=4
        )
        assert len(serial) == len(parallel) == 6
        for a, b in zip(serial, parallel):
            assert_samples_equal(a, b)

    def test_matches_in_process_builder(self, tmp_path):
        dataset, _ = build_pipeline(tmp_path / "p", "dfg", 5, seed=2, shard_size=2)
        reference = build_synthetic_dataset("dfg", 5, seed=2)
        for a, b in zip(dataset, reference):
            assert_samples_equal(a, b)

    def test_bad_arguments_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            build_pipeline(tmp_path / "x", "dfg", 0)
        with pytest.raises(ValueError):
            build_pipeline(tmp_path / "x", "ast", 3)
        with pytest.raises(ValueError):
            build_pipeline(tmp_path / "x", "dfg", 3, shard_size=0)
        with pytest.raises(ValueError):
            build_pipeline(tmp_path / "x", "dfg", 3, workers=0)
        with pytest.raises(ValueError):
            build_pipeline(
                tmp_path / "x", "dfg", 3, config=GeneratorConfig(mode="cdfg")
            )


class TestResume:
    def test_resume_after_kill_completes_manifest(self, tmp_path):
        out = tmp_path / "ds"
        full, _ = build_pipeline(out, "dfg", 6, seed=1, shard_size=2)
        reference = list(full)

        # Simulate a kill between shards: drop the last shard file and
        # rewind the manifest to the checkpoint the builder would have
        # left behind.
        manifest = json.loads((out / MANIFEST_NAME).read_text())
        (out / manifest["shards"][-1]["file"]).unlink()
        manifest["shards"] = manifest["shards"][:-1]
        manifest["complete"] = False
        (out / MANIFEST_NAME).write_text(json.dumps(manifest))

        with pytest.raises(ValueError, match="incomplete"):
            ShardedDataset(out)

        resumed, stats = build_pipeline(
            out, "dfg", 6, seed=1, shard_size=2, resume=True
        )
        assert stats.shards_skipped == 2
        assert stats.shards_written == 1
        assert stats.built == 2
        assert resumed.manifest.complete
        for a, b in zip(resumed, reference):
            assert_samples_equal(a, b)

    def test_resume_rejects_mismatched_configuration(self, tmp_path):
        out = tmp_path / "ds"
        build_pipeline(out, "dfg", 4, seed=1, shard_size=2)
        with pytest.raises(ValueError, match="cannot resume"):
            build_pipeline(out, "dfg", 4, seed=2, shard_size=2, resume=True)
        with pytest.raises(ValueError, match="cannot resume"):
            build_pipeline(out, "dfg", 4, seed=1, shard_size=3, resume=True)
        with pytest.raises(ValueError, match="cannot resume"):
            build_pipeline(
                out, "dfg", 4, seed=1, shard_size=2, resume=True,
                config=GeneratorConfig(mode="dfg", max_statements=20),
            )
        fast = type(DEFAULT_DEVICE)(clock_uncertainty_ns=0.5)
        with pytest.raises(ValueError, match="cannot resume"):
            build_pipeline(
                out, "dfg", 4, seed=1, shard_size=2, resume=True, device=fast
            )

    def test_no_resume_discards_existing_build(self, tmp_path):
        out = tmp_path / "ds"
        build_pipeline(out, "dfg", 4, seed=1, shard_size=2)
        rebuilt, stats = build_pipeline(out, "dfg", 4, seed=3, shard_size=4)
        assert stats.shards_written == 1
        assert len(rebuilt) == 4
        assert len(list(out.glob("shard-*.npz"))) == 1


class TestBuildCache:
    def test_hit_miss_accounting(self, tmp_path):
        cache = tmp_path / "cache"
        _, cold = build_pipeline(
            tmp_path / "a", "dfg", 5, seed=4, shard_size=3, cache_dir=cache
        )
        assert (cold.cache_hits, cold.cache_misses) == (0, 5)
        warm_ds, warm = build_pipeline(
            tmp_path / "b", "dfg", 5, seed=4, shard_size=3, cache_dir=cache
        )
        assert (warm.cache_hits, warm.cache_misses) == (5, 0)
        for a, b in zip(warm_ds, build_synthetic_dataset("dfg", 5, seed=4)):
            assert_samples_equal(a, b)

    def test_key_separates_directives_and_devices(self):
        from repro.frontend.ast_ import For
        from tests.conftest import make_loop_program

        encoder = FeatureEncoder()
        plain = make_loop_program()
        tuned = make_loop_program()
        loop = next(s for s in tuned.functions[0].body if isinstance(s, For))
        loop.unroll = 4
        base = cache_key(plain, "cdfg", DEFAULT_DEVICE, encoder)
        assert cache_key(tuned, "cdfg", DEFAULT_DEVICE, encoder) != base
        assert cache_key(plain, "dfg", DEFAULT_DEVICE, encoder) != base
        fast = type(DEFAULT_DEVICE)(clock_period_ns=5.0)
        assert cache_key(plain, "cdfg", fast, encoder) != base

    def test_dtype_policies_do_not_share_entries(self, tmp_path):
        from repro.tensor import get_default_dtype, set_default_dtype

        original = np.dtype(get_default_dtype())
        other = np.dtype("float64" if original == np.float32 else "float32")
        cache = tmp_path / "cache"
        _, first = build_pipeline(
            tmp_path / "a", "dfg", 3, seed=6, shard_size=3, cache_dir=cache
        )
        assert first.cache_misses == 3
        try:
            set_default_dtype(other)
            # A cached f32-truncated sample must not satisfy a float64
            # build (or vice versa): the other policy misses and
            # rebuilds natively.
            crossed, stats = build_pipeline(
                tmp_path / "b", "dfg", 3, seed=6, shard_size=3, cache_dir=cache
            )
            assert stats.cache_misses == 3 and stats.cache_hits == 0
            for sample, native in zip(crossed, build_synthetic_dataset("dfg", 3, seed=6)):
                assert_samples_equal(sample, native)
        finally:
            set_default_dtype(original)

    def test_roundtrip_preserves_sample(self, tmp_path, dfg_samples):
        cache = BuildCache(tmp_path)
        cache.put("k" * 64, dfg_samples[0])
        assert_samples_equal(cache.get("k" * 64), dfg_samples[0])
        assert cache.get("m" * 64) is None


class TestShardedFormat:
    def test_lazy_reader_caps_decoded_shards(self, tmp_path):
        dataset, _ = build_pipeline(tmp_path / "ds", "dfg", 6, seed=0, shard_size=2)
        reader = ShardedDataset(tmp_path / "ds", cache_shards=1)
        reference = build_synthetic_dataset("dfg", 6, seed=0)
        for i in (5, 0, 3, 2):
            assert_samples_equal(reader[i], reference[i])
            assert len(reader._cache) == 1
        assert_samples_equal(reader[-1], reference[-1])
        with pytest.raises(IndexError):
            reader[6]

    def test_legacy_sharded_roundtrip_parity(self, tmp_path, dfg_samples):
        legacy = tmp_path / "legacy.npz"
        save_dataset(dfg_samples[:6], legacy)
        sharded = migrate_dataset(legacy, tmp_path / "sharded", shard_size=4)
        assert len(sharded.manifest.shards) == 2
        for a, b in zip(load_dataset(legacy), sharded):
            assert_samples_equal(a, b)
        # load_dataset auto-detects the sharded layout (directory or
        # manifest path) and returns the same materialised list.
        for a, b in zip(load_dataset(tmp_path / "sharded"), dfg_samples[:6]):
            assert_samples_equal(a, b)
        for a, b in zip(
            load_dataset(tmp_path / "sharded" / MANIFEST_NAME), dfg_samples[:6]
        ):
            assert_samples_equal(a, b)

    def test_manifest_schema_guard(self, tmp_path):
        build_pipeline(tmp_path / "ds", "dfg", 2, seed=0, shard_size=2)
        raw = json.loads((tmp_path / "ds" / MANIFEST_NAME).read_text())
        raw["schema_version"] = 99
        (tmp_path / "ds" / MANIFEST_NAME).write_text(json.dumps(raw))
        with pytest.raises(ValueError, match="unsupported shard schema"):
            Manifest.load(tmp_path / "ds")

    def test_empty_save_raises(self, tmp_path):
        with pytest.raises(ValueError, match="empty"):
            save_dataset([], tmp_path / "empty.npz")


class TestStreamingTraining:
    @pytest.fixture(scope="class")
    def sharded(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("stream")
        dataset, _ = build_pipeline(root / "ds", "dfg", 12, seed=5, shard_size=5)
        return dataset

    def _model(self, feature_dim):
        return GraphRegressor(
            "gcn",
            in_dim=feature_dim,
            hidden_dim=16,
            num_layers=2,
            num_edge_types=8,
            rng=np.random.default_rng(7),
        )

    def test_loss_curves_match_in_memory_exactly(self, sharded):
        samples = build_synthetic_dataset("dfg", 12, seed=5)
        config = TrainConfig(epochs=3, batch_size=4, seed=1)
        in_memory = train_graph_regressor(
            self._model(samples[0].feature_dim), samples[:9], samples[9:], config
        )
        streamed = train_graph_regressor(
            self._model(samples[0].feature_dim),
            DatasetView(sharded, np.arange(9)),
            DatasetView(sharded, np.arange(9, 12)),
            config,
        )
        assert in_memory.history == streamed.history
        assert in_memory.best_epoch == streamed.best_epoch

    def test_split_of_streaming_source_is_lazy_and_aligned(self, sharded):
        samples = build_synthetic_dataset("dfg", 12, seed=5)
        lazy = split_dataset(sharded, seed=3)
        eager = split_dataset(samples, seed=3)
        for view, part in zip(lazy, eager):
            assert isinstance(view, DatasetView)
            assert [g.meta["name"] for g in view] == [g.meta["name"] for g in part]

    def test_gather_groups_by_shard(self, sharded):
        reference = build_synthetic_dataset("dfg", 12, seed=5)
        order = [11, 0, 7, 3, 7, 10]
        for got, want in zip(sharded.gather(order), (reference[i] for i in order)):
            assert_samples_equal(got, want)
        view = DatasetView(sharded, np.arange(11, -1, -1))
        for got, want in zip(view.gather([0, 5]), (reference[11], reference[6])):
            assert_samples_equal(got, want)
        with pytest.raises(IndexError):
            sharded.gather([12])

    def test_concat_dataset(self, sharded):
        reference = build_synthetic_dataset("dfg", 12, seed=5)
        both = ConcatDataset(sharded, reference)
        assert len(both) == 24
        assert both.streaming  # one streaming part is enough
        assert_samples_equal(both[13], reference[1])
        assert_samples_equal(both[-1], reference[-1])
        for got, want in zip(
            both.gather([13, 2, 23]), (reference[1], reference[2], reference[11])
        ):
            assert_samples_equal(got, want)
        # Plain-list concatenations stay non-streaming, so splitting
        # them still yields materialised lists (the table5 path).
        plain = ConcatDataset(reference[:4], reference[4:])
        assert not plain.streaming
        train, _, _ = split_dataset(plain, seed=0)
        assert isinstance(train, list)
        with pytest.raises(IndexError):
            both[24]
        with pytest.raises(ValueError):
            ConcatDataset()

    def test_batch_stream_modes(self, sharded):
        in_memory = BatchStream(list(sharded), 4)
        assert in_memory._prebuilt is not None
        streaming = BatchStream(sharded, 4)
        assert streaming._prebuilt is None
        first = [b.graphs[0].meta["name"] for b in streaming]
        second = [b.graphs[0].meta["name"] for b in streaming]
        assert first == second  # schedule replays identically
        assert len(streaming) == 3
        assert [b.num_graphs for b in in_memory] == [4, 4, 4]


class TestFaultTolerance:
    """Retry, quarantine and lost-worker recovery via repro.faults."""

    def test_transient_failure_retried_to_identical_output(self, tmp_path):
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    seam="pipeline.build", on_keys=("3",), fail_on_calls=(1,)
                ),
            )
        )
        faulty, stats = build_pipeline(
            tmp_path / "f", "dfg", 6, seed=7, shard_size=4, faults=plan
        )
        clean, _ = build_pipeline(tmp_path / "c", "dfg", 6, seed=7, shard_size=4)
        assert stats.retries == 1
        assert stats.quarantined == 0
        assert faulty.manifest.failed == []
        # Generation is pure in (config, seed, index): the retried sample
        # is bitwise what it would have been without the fault.
        for a, b in zip(faulty, clean):
            assert_samples_equal(a, b)

    def test_permanent_failure_quarantined_and_dataset_stays_dense(
        self, tmp_path
    ):
        plan = FaultPlan(
            specs=(
                FaultSpec(seam="pipeline.build", on_keys=("3",), fail_rate=1.0),
            )
        )
        dataset, stats = build_pipeline(
            tmp_path / "q", "dfg", 7, seed=7, shard_size=4,
            faults=plan, max_retries=2,
        )
        assert stats.quarantined == 1
        assert stats.retries == 2  # the full budget was spent on index 3
        assert len(dataset) == 6
        failed = dataset.manifest.failed
        assert [entry["index"] for entry in failed] == [3]
        assert failed[0]["retries"] == 2
        assert "injected fault" in failed[0]["error"]
        # Shard starts stay dense over the survivors...
        assert [(s.start, s.num_samples) for s in dataset.manifest.shards] == [
            (0, 3),
            (3, 3),
        ]
        # ...and every surviving sample is the clean build's, in order.
        reference = build_synthetic_dataset("dfg", 7, seed=7)
        survivors = [r for i, r in enumerate(reference) if i != 3]
        for a, b in zip(dataset, survivors):
            assert_samples_equal(a, b)
        assert_samples_equal(dataset[len(dataset) - 1], survivors[-1])

        # Same plan, fresh build: the failed list is reproducible.
        again, again_stats = build_pipeline(
            tmp_path / "q2", "dfg", 7, seed=7, shard_size=4,
            faults=plan, max_retries=2,
        )
        assert again.manifest.failed == failed
        assert again_stats.quarantined == 1

    def test_killed_pool_worker_is_recovered_by_the_driver(self, tmp_path):
        # kill=True inside a pool worker really os._exit()s the process;
        # the driver sees a broken pool, rebuilds the chunk itself and
        # restarts the pool for the remaining work.
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    seam="pipeline.build", on_keys=("2",),
                    fail_on_calls=(1,), kill=True,
                ),
            )
        )
        dataset, stats = build_pipeline(
            tmp_path / "k", "dfg", 6, seed=7, shard_size=6,
            workers=2, faults=plan,
        )
        assert stats.quarantined == 0
        # The driver recovered at least the killed sample (its own call 1
        # on key "2" raises WorkerKilled, the second attempt succeeds); a
        # broken pool may take innocent in-flight chunk mates with it,
        # each costing one extra recovery attempt.
        assert stats.retries >= 2
        assert len(dataset) == 6
        reference = build_synthetic_dataset("dfg", 6, seed=7)
        for a, b in zip(dataset, reference):
            assert_samples_equal(a, b)

    def test_resume_carries_quarantine_forward(self, tmp_path):
        out = tmp_path / "ds"
        plan = FaultPlan(
            specs=(
                FaultSpec(seam="pipeline.build", on_keys=("1",), fail_rate=1.0),
            )
        )
        full, stats = build_pipeline(
            out, "dfg", 6, seed=1, shard_size=3, faults=plan
        )
        assert stats.quarantined == 1
        reference = list(full)

        # Simulate a kill between shards, as in TestResume.
        manifest = json.loads((out / MANIFEST_NAME).read_text())
        (out / manifest["shards"][-1]["file"]).unlink()
        manifest["shards"] = manifest["shards"][:-1]
        manifest["complete"] = False
        (out / MANIFEST_NAME).write_text(json.dumps(manifest))

        # Resume WITHOUT the fault plan: the reused shard must not retry
        # its known-bad sample, and its quarantine entry must carry over.
        resumed, rstats = build_pipeline(
            out, "dfg", 6, seed=1, shard_size=3, resume=True
        )
        assert rstats.shards_skipped == 1
        assert rstats.shards_written == 1
        assert rstats.quarantined == 1
        assert resumed.manifest.complete
        assert [e["index"] for e in resumed.manifest.failed] == [1]
        assert len(resumed) == 5
        for a, b in zip(resumed, reference):
            assert_samples_equal(a, b)

    def test_build_cli_reports_quarantine(self, tmp_path, capsys):
        from repro.dataset.__main__ import main as dataset_main

        plan = FaultPlan(
            specs=(
                FaultSpec(seam="pipeline.build", on_keys=("0",), fail_rate=1.0),
            )
        )
        inject = tmp_path / "faults.json"
        inject.write_text(plan.to_json())
        assert (
            dataset_main(
                [
                    "build",
                    "--mode", "dfg",
                    "--count", "3",
                    "--out", str(tmp_path / "cli"),
                    "--max-retries", "1",
                    "--inject", str(inject),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "1 retries, 1 quarantined" in out
        assert "wrote 2 graphs" in out
