"""Benchmark: checkpointed-training overhead and resume correctness.

Times the same fit three ways — clean (no checkpointing), checkpointing
every ``EVERY_EPOCHS`` epochs, and killed-then-resumed (a ``train.step``
kill mid-run, continued from the flushed snapshot). The acceptance bar
is the robustness PR's: checkpointing costs < 5% wall-clock on top of
the clean run (asserted on hosts with >=4 CPUs — single-core containers
are scheduling-noise-dominated), and the resumed loss curve is
bitwise-identical to the clean one (``resume_identical`` is a hard
regression-gate invariant).
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from benchmarks.conftest import write_bench_json
from repro.dataset import build_synthetic_dataset
from repro.faults import FaultPlan, FaultSpec, WorkerKilled, use_faults
from repro.gnn import GraphRegressor
from repro.obs import best_of
from repro.training import CheckpointConfig, TrainConfig, train_graph_regressor

TYPES = 8
#: Checkpoint amortisation: a realistic cadence for long runs — the
#: per-snapshot cost (compressed npz write + digest + rename) spreads
#: over several epochs of real training work.
EVERY_EPOCHS = 4
#: Acceptance bar, asserted in-bench on hosts with enough cores to keep
#: scheduler noise out of the ratio (same guard as bench_obs).
MAX_OVERHEAD_FRAC = 0.05


@pytest.fixture(scope="module")
def setup(scale):
    samples = build_synthetic_dataset("dfg", max(96, scale.num_dfg // 2), seed=9)
    split = int(len(samples) * 0.8)
    config = TrainConfig(epochs=8, batch_size=16, seed=0)

    def make():
        return GraphRegressor(
            "gcn",
            in_dim=samples[0].feature_dim,
            hidden_dim=64,
            num_layers=3,
            num_edge_types=TYPES,
            rng=np.random.default_rng(0),
        )

    return samples[:split], samples[split:], config, make


@pytest.mark.benchmark(group="checkpoint", min_rounds=1, max_time=1)
def test_checkpoint_overhead_and_resume(benchmark, setup, tmp_path_factory):
    train, val, config, make = setup

    def clean_fit():
        return train_graph_regressor(make(), train, val, config)

    def checkpointed_fit():
        ckpt_dir = tmp_path_factory.mktemp("ckpt-timed")
        return train_graph_regressor(
            make(), train, val, config,
            checkpoint=CheckpointConfig(dir=ckpt_dir, every_epochs=EVERY_EPOCHS),
        )

    def measure():
        clean_s = best_of(clean_fit, repeats=3)
        ckpt_s = best_of(checkpointed_fit, repeats=3)
        return clean_s, ckpt_s

    clean_s, ckpt_s = benchmark.pedantic(measure, rounds=1, iterations=1)

    # Kill mid-run, resume, and compare the finished loss curves bitwise.
    clean_result = clean_fit()
    resume_dir = tmp_path_factory.mktemp("ckpt-resume")
    resume_ckpt = CheckpointConfig(dir=resume_dir, every_epochs=EVERY_EPOCHS)
    steps_per_epoch = -(-len(train) // config.batch_size)
    kill_step = 3 * steps_per_epoch + 1  # mid-epoch 4, past two snapshots
    plan = FaultPlan(
        specs=(FaultSpec(seam="train.step", fail_on_calls=(kill_step,), kill=True),)
    )
    with pytest.raises(WorkerKilled), use_faults(plan):
        train_graph_regressor(
            make(), train, val, config, checkpoint=resume_ckpt
        )
    resumed_result = train_graph_regressor(
        make(), train, val, config, checkpoint=resume_ckpt, resume=True
    )
    resume_identical = int(
        clean_result.history == resumed_result.history
        and clean_result.best_val_metric == resumed_result.best_val_metric
    )

    overhead_frac = max(0.0, ckpt_s / clean_s - 1.0)
    summary = {
        "clean_s": round(clean_s, 4),
        "checkpointed_s": round(ckpt_s, 4),
        "overhead_frac": round(overhead_frac, 4),
        "every_epochs": EVERY_EPOCHS,
        "epochs": config.epochs,
        "resume_identical": resume_identical,
        "kill_step": kill_step,
        "cpus": os.cpu_count() or 1,
    }
    path = write_bench_json("train", summary)
    print()
    print(json.dumps(summary, indent=2))
    if path:
        print(f"wrote {path}")
    benchmark.extra_info.update(summary)

    assert resume_identical == 1, "resumed loss curve diverged from clean run"
    if summary["cpus"] >= 4:
        assert overhead_frac < MAX_OVERHEAD_FRAC, summary
