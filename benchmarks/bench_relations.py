"""Benchmark: batched float32 relation transforms vs the PR 2 baseline.

PR 2 left the relational stack matmul-bound: every relation, every
layer, every step paid a separate dense ``Linear`` call over *all*
nodes, and the whole pipeline silently computed in float64. This PR
attacks both:

- **batched relation transforms** — one stacked ``[R, D, D]`` kernel
  (or the gather-by-relation block kernel) plus ONE fused scatter per
  layer, replacing the per-relation gather/transform/scatter loop;
- **float32 precision policy** — parameters, features, norm tables and
  targets in float32, halving memory traffic;
- **allocation-lean autograd** — fused addmm / linear+activation nodes
  and first-gradient buffer ownership.

Measured: a full forward+backward training step of the RGCN, GGNN and
FiLM regressors on one reused ci-scale batch —

- ``fused_f32``: the new default (batched kernels, float32 end-to-end);
- ``loop_f64``: the PR 2 baseline (``use_fused_relations(False)`` +
  ``default_dtype(np.float64)`` — per-relation Linears over all nodes,
  float64 everywhere), with planned scatter kernels in both cases.

Both paths run the same weights (float32 values upcast exactly into the
float64 model), and their eval-mode predictions must agree within
documented float32 tolerances (rtol 5e-3 / atol 1e-4 after 3 message-
passing layers). Timings land in ``BENCH_relations.json``; the
acceptance bar is the ISSUE's: >= 3x on the RGCN step.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from benchmarks.conftest import write_bench_json
from repro.gnn.network import GraphRegressor
from repro.graph.batch import Batch
from repro.graph.data import GraphData
from repro.tensor import default_dtype, no_grad, use_fused_relations

#: ci-scale hidden width (REPRO_SCALE=ci presets use hidden_dim=40).
WIDTH = 40
EDGE_TYPES = 7
MODELS = ("rgcn", "ggnn", "film")

#: Documented float32-vs-float64 agreement band for 3-layer relational
#: stacks (float32 rounding compounds per layer; see module docstring).
AGREEMENT_RTOL = 5e-3
AGREEMENT_ATOL = 1e-4

#: Acceptance bar for the RGCN step speedup. 3x is the ISSUE criterion,
#: measured ~3.4-3.7x on a quiet machine; CI runs on noisy shared
#: runners and overrides this down (agreement still hard-gates there) so
#: scheduler jitter cannot red unrelated PRs.
MIN_RGCN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "3.0"))


def _best_of(fn, repeats: int = 3, inner: int = 2) -> float:
    fn()  # warm caches (plans, fusions, numpy buffers)
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - start) / inner)
    return best


def _synthetic_batch(seed: int = 7) -> Batch:
    """A ci-scale training batch (matches bench_scatter's topology)."""
    rng = np.random.default_rng(seed)
    graphs = []
    for _ in range(16):
        nodes, degree = 200, 8
        edges = nodes * degree
        graphs.append(
            GraphData(
                node_features=rng.normal(size=(nodes, 16)),
                edge_index=np.stack(
                    [rng.integers(0, nodes, edges), rng.integers(0, nodes, edges)]
                ),
                edge_type=rng.integers(0, EDGE_TYPES, edges),
                edge_back=np.zeros(edges, dtype=np.int64),
                y=np.abs(rng.normal(size=4)),
            )
        )
    return Batch(graphs)


def _build_model(name: str, batch: Batch) -> GraphRegressor:
    return GraphRegressor(
        name,
        in_dim=batch.feature_dim,
        hidden_dim=WIDTH,
        num_layers=3,
        num_edge_types=EDGE_TYPES,
        rng=np.random.default_rng(1),
    )


def _step_time(model: GraphRegressor, batch: Batch) -> float:
    def step():
        out = model(batch)
        out.sum().backward()
        for p in model.parameters():
            p.grad = None

    return _best_of(step, repeats=2, inner=2)


def _measure() -> dict:
    # Fused/float32: the default policy — batch, context tables and
    # parameters are all float32.
    batch32 = _synthetic_batch()
    results: dict[str, dict] = {
        "batch": {
            "graphs": batch32.num_graphs,
            "nodes": batch32.num_nodes,
            "edges": batch32.num_edges,
            "hidden_dim": WIDTH,
            "layers": 3,
            "relations": 2 * EDGE_TYPES,
        },
        "tolerances": {"rtol": AGREEMENT_RTOL, "atol": AGREEMENT_ATOL},
    }
    with default_dtype(np.float64):
        batch64 = _synthetic_batch()  # same topology/values, float64 tables
    for name in MODELS:
        model32 = _build_model(name, batch32)
        with use_fused_relations(True):
            fused_f32 = _step_time(model32, batch32)
        with default_dtype(np.float64):
            model64 = _build_model(name, batch64)
        # Same weights in both precisions: float32 values embed exactly
        # into float64, so the two paths compute the same function.
        model64.load_state_dict(model32.state_dict())
        with use_fused_relations(False):
            loop_f64 = _step_time(model64, batch64)
            with no_grad():
                model64.eval()
                reference = model64(batch64).data
        with use_fused_relations(True), no_grad():
            model32.eval()
            fused_out = model32(batch32).data
        agreement = float(
            np.max(
                np.abs(fused_out - reference)
                / (AGREEMENT_ATOL + AGREEMENT_RTOL * np.abs(reference))
            )
        )
        results[name] = {
            "fused_f32": fused_f32,
            "loop_f64": loop_f64,
            "speedup": round(loop_f64 / fused_f32, 2),
            "max_scaled_error": round(agreement, 4),
            "agrees": bool(
                np.allclose(
                    fused_out, reference, rtol=AGREEMENT_RTOL, atol=AGREEMENT_ATOL
                )
            ),
        }
    return results


@pytest.mark.benchmark(group="relations", min_rounds=1, max_time=1)
def test_batched_relation_speedup(benchmark, scale):
    payload = benchmark.pedantic(_measure, rounds=1, iterations=1)
    payload["scale"] = scale.name
    path = write_bench_json("relations", payload)

    summary = {
        f"{name}_step": payload[name]["speedup"] for name in MODELS
    }
    print()
    print(json.dumps(summary, indent=2))
    benchmark.extra_info.update(summary)

    assert path is None or path.is_file()
    # Batched float32 vs per-relation float64 must agree within the
    # documented band on every model...
    for name in MODELS:
        assert payload[name]["agrees"], (name, payload[name])
    # ...and the ISSUE's acceptance bar: >= 3x on the RGCN step
    # (REPRO_BENCH_MIN_SPEEDUP relaxes it on noisy CI runners).
    assert payload["rgcn"]["speedup"] >= MIN_RGCN_SPEEDUP, {
        m: payload[m] for m in MODELS
    }
