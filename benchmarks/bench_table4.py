"""Benchmark: regenerate Table 4 — base vs -I (infused) vs -R (rich).

Paper reference (RGCN on DFG, mean over DSP/LUT/FF/CP): base 11.9%,
-I 9.8%, -R 8.1% — i.e. every unit of extra domain knowledge buys
accuracy, at the cost of prediction timeliness. The bench asserts that
monotone ordering per backbone, averaged over both datasets.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import mape_summary
from repro.experiments.table4 import TABLE4_BACKBONES, render_table4, run_table4


@pytest.mark.benchmark(group="table4", min_rounds=1, max_time=1)
def test_table4_three_approaches(benchmark, scale):
    results = benchmark.pedantic(
        lambda: run_table4(scale, backbones=TABLE4_BACKBONES, verbose=False),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table4(results))
    benchmark.extra_info.update(mape_summary(results))

    # Shape check on means over both datasets and both backbones:
    # knowledge monotonically helps (base >= -I >= -R), with tolerances
    # calibrated for single-seed runs at reduced scale (the paper
    # averages 3-of-5 GPU-scale runs; per-dataset per-backbone cells are
    # noisy here, the aggregate ordering is the stable signal).
    means = {}
    for approach in ("base", "infused", "rich"):
        cells = [
            np.mean(row)
            for per_approach in results.values()
            for row in per_approach[approach].values()
        ]
        means[approach] = float(np.mean(cells))
    assert means["rich"] < means["base"], (
        f"rich {means['rich']:.3f} should beat base {means['base']:.3f}"
    )
    assert means["infused"] <= means["base"] + 0.05, (
        f"infused {means['infused']:.3f} vs base {means['base']:.3f}"
    )
    assert means["rich"] <= means["infused"] + 0.02, (
        f"rich {means['rich']:.3f} vs infused {means['infused']:.3f}"
    )
