"""Benchmark: the sorted-segment compute engine vs the ``np.add.at`` path.

Three views of the same substrate:

- **op-level** — each scatter primitive (forward + backward) over a grid
  of edge counts at the ci-scale feature width, planned vs fallback;
- **model-level** — a full forward+backward training step of the
  scatter-dominated GCN stack and of the relational RGCN stack on one
  reused batch, planned (cached :class:`GraphContext` plans + CSR
  kernels) vs the unbuffered fallback kernels;
- **backend-level** — the same GCN step on a *skew-heavy* batch
  (zipf-distributed targets: a few hub nodes absorb most edges) under
  every registered scatter backend, recorded as a per-backend metric
  dimension (``backends.gcn_skew.speedup.<backend>``). The bucketed
  backend's win comes from thread-sharded SpMM (scipy releases the GIL),
  so its >=1.2x-over-csr bar is asserted only on hosts with >=4 CPUs —
  single-core runners just record the ratio and gate it loosely through
  ``check_regression.py``.

Timings land in ``BENCH_scatter.json`` (via the shared
``write_bench_json`` helper) so later PRs can compare. The assertion is
the ISSUE's acceptance criterion: the planned engine must deliver at
least a 3x end-to-end step speedup on the scatter-dominated model.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from benchmarks.conftest import write_bench_json
from repro.gnn.network import GraphRegressor
from repro.graph.batch import Batch
from repro.graph.data import GraphData
from repro.tensor import (
    SegmentPlan,
    Tensor,
    available_backends,
    gather_rows,
    scatter_max,
    scatter_mean,
    scatter_softmax,
    scatter_sum,
    scatter_workers,
    use_backend,
    use_plans,
)

#: ci-scale hidden width (REPRO_SCALE=ci presets use hidden_dim=40).
WIDTH = 40
#: Edge counts spanning one small graph to a full ci training batch.
SIZES = {"small": 2_000, "medium": 12_000, "large": 50_000}

OPS = {
    "sum": scatter_sum,
    "mean": scatter_mean,
    "max": scatter_max,
    "softmax": scatter_softmax,
}


def _best_of(fn, repeats: int = 3, inner: int = 2) -> float:
    fn()  # warm caches (plans, CSR operators, numpy buffers)
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - start) / inner)
    return best


def _op_grid(rng: np.random.Generator) -> dict:
    """{op: {size: {planned|fallback: seconds}}} forward+backward timings."""
    grid: dict[str, dict] = {}
    for size_name, num_edges in SIZES.items():
        num_nodes = max(num_edges // 8, 4)
        index = rng.integers(0, num_nodes, num_edges)
        plan = SegmentPlan(index, num_nodes)
        src = Tensor(rng.normal(size=(num_edges, WIDTH)), requires_grad=True)

        for op_name, op in OPS.items():
            def step(op=op, current_plan=None):
                out = op(src, index, num_nodes, plan=current_plan)
                out.backward(np.ones_like(out.data))
                src.grad = None

            timings = grid.setdefault(op_name, {}).setdefault(size_name, {})
            timings["planned"] = _best_of(lambda: step(current_plan=plan))
            timings["fallback"] = _best_of(step)

        # gather backward (the other half of message passing's cost).
        nodes = Tensor(rng.normal(size=(num_nodes, WIDTH)), requires_grad=True)

        def gather_step(current_plan=None):
            out = gather_rows(nodes, index, plan=current_plan)
            out.backward(np.ones_like(out.data))
            nodes.grad = None

        timings = grid.setdefault("gather", {}).setdefault(size_name, {})
        timings["planned"] = _best_of(lambda: gather_step(plan))
        timings["fallback"] = _best_of(gather_step)
    return grid


def _synthetic_batch(rng: np.random.Generator) -> Batch:
    """A ci-scale training batch dominated by message traffic."""
    graphs = []
    for _ in range(16):
        nodes, degree = 200, 8
        edges = nodes * degree
        graphs.append(
            GraphData(
                node_features=rng.normal(size=(nodes, 16)),
                edge_index=np.stack(
                    [rng.integers(0, nodes, edges), rng.integers(0, nodes, edges)]
                ),
                edge_type=rng.integers(0, 7, edges),
                edge_back=np.zeros(edges, dtype=np.int64),
                y=np.abs(rng.normal(size=4)),
            )
        )
    return Batch(graphs)


def _model_steps(rng: np.random.Generator) -> dict:
    """Forward+backward step timings for GCN and RGCN, planned vs fallback."""
    batch = _synthetic_batch(rng)
    results: dict[str, dict] = {
        "batch": {"graphs": batch.num_graphs, "nodes": batch.num_nodes,
                  "edges": batch.num_edges, "hidden_dim": WIDTH},
    }
    for model_name in ("gcn", "rgcn"):
        model = GraphRegressor(
            model_name,
            in_dim=batch.feature_dim,
            hidden_dim=WIDTH,
            num_layers=3,
            num_edge_types=7,
            rng=np.random.default_rng(1),
        )

        def step():
            out = model(batch)
            out.sum().backward()
            for p in model.parameters():
                p.grad = None

        timings = {}
        for label, enabled in (("planned", True), ("fallback", False)):
            with use_plans(enabled):
                timings[label] = _best_of(step, repeats=2, inner=2)
        timings["speedup"] = round(timings["fallback"] / timings["planned"], 2)
        results[model_name] = timings
    return results


def _skewed_batch(rng: np.random.Generator) -> Batch:
    """A skew-heavy batch: zipf targets concentrate edges on hub nodes."""
    graphs = []
    for _ in range(8):
        nodes, edges = 400, 4_000
        dst = np.empty(0, dtype=np.int64)
        while len(dst) < edges:
            raw = rng.zipf(1.5, size=edges * 2)
            dst = np.concatenate([dst, (raw[raw <= nodes] - 1).astype(np.int64)])
        graphs.append(
            GraphData(
                node_features=rng.normal(size=(nodes, 16)),
                edge_index=np.stack(
                    [rng.integers(0, nodes, edges), dst[:edges]]
                ),
                edge_type=rng.integers(0, 7, edges),
                edge_back=np.zeros(edges, dtype=np.int64),
                y=np.abs(rng.normal(size=4)),
            )
        )
    return Batch(graphs)


def _backend_steps(rng: np.random.Generator) -> dict:
    """GCN step timings on the skew-heavy batch, one per backend.

    Every backend's forward is also checked against the ``use_plans(False)``
    fallback before timing — a backend that wins by computing the wrong
    thing must fail here, not in some downstream training run.
    """
    batch = _skewed_batch(rng)
    model = GraphRegressor(
        "gcn",
        in_dim=batch.feature_dim,
        hidden_dim=WIDTH,
        num_layers=3,
        num_edge_types=7,
        rng=np.random.default_rng(2),
    )

    def step():
        out = model(batch)
        out.sum().backward()
        for p in model.parameters():
            p.grad = None
        return out.data

    results: dict[str, object] = {
        "batch": {"graphs": batch.num_graphs, "nodes": batch.num_nodes,
                  "edges": batch.num_edges, "hidden_dim": WIDTH},
        "workers": scatter_workers(),
        "cpus": os.cpu_count() or 1,
    }
    with use_plans(False):
        reference = step()
        fallback = _best_of(step, repeats=2, inner=2)
    timings: dict[str, object] = {"fallback": fallback, "speedup": {}}
    for name in available_backends():
        with use_backend(name):
            np.testing.assert_allclose(step(), reference, rtol=1e-3, atol=1e-4)
            timings[name] = _best_of(step, repeats=2, inner=2)
            timings["speedup"][name] = round(fallback / timings[name], 2)
    timings["bucketed_vs_csr"] = round(timings["csr"] / timings["bucketed"], 2)
    results["gcn_skew"] = timings
    return results


@pytest.mark.benchmark(group="scatter", min_rounds=1, max_time=1)
def test_scatter_engine_speedup(benchmark, scale):
    rng = np.random.default_rng(7)

    def measure():
        return {
            "ops": _op_grid(rng),
            "models": _model_steps(rng),
            "backends": _backend_steps(rng),
        }

    payload = benchmark.pedantic(measure, rounds=1, iterations=1)
    payload["scale"] = scale.name
    path = write_bench_json("scatter", payload)

    summary = {
        f"{name}/{size}": round(t["fallback"] / t["planned"], 2)
        for name, sizes in payload["ops"].items()
        for size, t in sizes.items()
    }
    summary["gcn_step"] = payload["models"]["gcn"]["speedup"]
    summary["rgcn_step"] = payload["models"]["rgcn"]["speedup"]
    skew = payload["backends"]["gcn_skew"]
    for backend, ratio in skew["speedup"].items():
        summary[f"gcn_skew/{backend}"] = ratio
    summary["gcn_skew/bucketed_vs_csr"] = skew["bucketed_vs_csr"]
    print()
    print(json.dumps(summary, indent=2))
    benchmark.extra_info.update(summary)

    # Acceptance: >=3x end-to-end forward+backward on the scatter-dominated
    # model step, artifact emitted with both paths' timings (unless the
    # --bench-json skip knob suppressed artifact writing).
    assert path is None or path.is_file()
    scatter_dominated = payload["models"]["gcn"]
    assert scatter_dominated["speedup"] >= 3.0, payload["models"]
    # The relational stack is matmul-heavy, so the bar is lower: planned
    # kernels must not meaningfully regress it (0.8 leaves headroom for
    # scheduler noise on loaded machines; typical measured value ~1.4).
    assert payload["models"]["rgcn"]["speedup"] >= 0.8, payload["models"]
    # Per-backend bars on the skew-heavy step. The bucketed backend's
    # edge is thread-level (sharded SpMM over a GIL-free scipy kernel),
    # so >=1.2x over csr is only achievable with cores to shard across;
    # single-core hosts just must not fall off a cliff (mirrors the
    # BENCH_dataset parallel-speedup policy).
    assert skew["speedup"]["csr"] >= 2.0, skew
    if (os.cpu_count() or 1) >= 4:
        assert skew["bucketed_vs_csr"] >= 1.2, skew
    else:
        assert skew["bucketed_vs_csr"] >= 0.5, skew
