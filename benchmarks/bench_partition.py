"""Benchmark: partitioned layer-wise inference vs full-graph execution.

One ~110k-node synthetic CDFG (the ``ldrgen`` scale knob
:meth:`GeneratorConfig.cdfg_scaled` pins the statement budget so a
single program carries the whole node count) is pushed through the same
trained-shape GCN twice:

- **full** — the ordinary ``Batch`` forward over the whole graph;
- **partitioned** — :func:`partition_graph` blocks + halo, streamed
  layer-wise through :func:`predict_regressor_streaming`, peak live
  state bounded by the block size instead of the graph size.

Peak memory for both paths is measured with the shared
:func:`repro.obs.track_peak_memory` tracemalloc tracker (Python-level
allocations: stable across runners, unlike RSS); throughput is timed
separately so the tracer's overhead never contaminates nodes/sec.
Results land in ``BENCH_partition.json`` and the memory bound is gated
by ``check_regression.py``.

Acceptance (asserted here): >=100k nodes, partitioned peak <= 0.5x the
full-graph peak, outputs matching within rtol 1e-4.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from benchmarks.conftest import write_bench_json
from repro.dataset.builder import lower_and_extract
from repro.dataset.features import NUM_EDGE_TYPES_WITH_BACK, FeatureEncoder
from repro.gnn.network import GraphRegressor
from repro.gnn.streaming import predict_regressor_streaming
from repro.graph.partition import partition_graph
from repro.ldrgen import GeneratorConfig, generate_program
from repro.obs import track_peak_memory
from repro.training.trainer import predict_regressor

#: Node target for the synthetic CDFG (overshoots the 100k acceptance
#: floor — generated size is stochastic around the statement budget).
TARGET_NODES = 110_000
#: Streaming block size: ~4% of the graph, the memory-bound knob.
MAX_BLOCK_NODES = 4_096
HIDDEN_DIM = 32
NUM_LAYERS = 3


def _large_cdfg():
    config = GeneratorConfig.cdfg_scaled(TARGET_NODES)
    program = generate_program(config, seed=7)
    _, ir_graph, _ = lower_and_extract(program, "cdfg")
    # Encoding without the HLS flow: the benchmark needs the graph's
    # shape and features, not resource labels.
    return FeatureEncoder().encode(ir_graph)


@pytest.mark.benchmark(group="partition", min_rounds=1, max_time=1)
def test_partitioned_inference_memory_bound(benchmark, scale):
    graph = _large_cdfg()
    assert graph.num_nodes >= 100_000, graph.num_nodes

    model = GraphRegressor(
        "gcn",
        in_dim=graph.feature_dim,
        hidden_dim=HIDDEN_DIM,
        num_layers=NUM_LAYERS,
        num_edge_types=NUM_EDGE_TYPES_WITH_BACK,
        pooling="mean",
        rng=np.random.default_rng(0),
    )
    # context_cache_size=1 mirrors the on-the-fly partitions the predict
    # helpers build: single-pass streaming cannot reuse cached contexts.
    partition = partition_graph(graph, MAX_BLOCK_NODES, seed=0, context_cache_size=1)

    def run_full():
        return predict_regressor(model, [graph], batch_size=1)[0]

    def run_streamed():
        return predict_regressor_streaming(model, graph, partition=partition)

    def measure():
        # Warm once (lazy plan/operator caches), then trace the peaks of
        # steady-state runs so one-time setup cannot mask the bound.
        full_out = run_full()
        streamed_out = run_streamed()
        with track_peak_memory() as full_mem:
            run_full()
        with track_peak_memory() as streamed_mem:
            run_streamed()
        # Untraced timing (tracemalloc roughly doubles allocation cost).
        timings = {}
        for name, fn in (("full", run_full), ("streamed", run_streamed)):
            start = time.perf_counter()
            fn()
            timings[name] = time.perf_counter() - start
        denom = np.maximum(np.abs(full_out), 1e-12)
        return {
            "nodes": int(graph.num_nodes),
            "edges": int(graph.num_edges),
            "feature_dim": int(graph.feature_dim),
            "hidden_dim": HIDDEN_DIM,
            "num_layers": NUM_LAYERS,
            "max_block_nodes": MAX_BLOCK_NODES,
            "num_blocks": int(partition.num_blocks),
            "edge_cut": round(float(partition.edge_cut()), 4),
            "full_peak_mb": round(full_mem.peak_mb, 2),
            "streamed_peak_mb": round(streamed_mem.peak_mb, 2),
            "mem_ratio": round(streamed_mem.peak_mb / full_mem.peak_mb, 4),
            "full_nodes_per_s": round(graph.num_nodes / timings["full"], 1),
            "streamed_nodes_per_s": round(
                graph.num_nodes / timings["streamed"], 1
            ),
            "parity_max_rel_diff": float(
                np.abs(streamed_out - full_out).max() / denom.max()
            ),
        }

    payload = benchmark.pedantic(measure, rounds=1, iterations=1)
    payload["parity_ok"] = float(payload["parity_max_rel_diff"] <= 1e-4)
    payload["scale"] = scale.name
    path = write_bench_json("partition", payload)

    print()
    print(json.dumps(payload, indent=2))
    benchmark.extra_info.update(payload)

    assert path is None or path.is_file()
    # Acceptance: bounded memory (<= 0.5x the full-graph peak) with
    # full-graph-equivalent outputs.
    assert payload["mem_ratio"] <= 0.5, payload
    assert payload["parity_ok"] == 1.0, payload
