"""Benchmark: regenerate Table 5 — real-case generalisation vs HLS.

Paper reference (MAPE on MachSuite+CHStone+PolyBench):

    HLS    DSP 26.07  LUT 871.56  FF 322.86  CP 32.09
    RGCN-I DSP 40.89  LUT  30.91  FF  38.75  CP  5.35
    PNA-R  DSP 15.20  LUT  16.96  FF  17.42  CP  3.97

Shape checks: the HLS report's LUT and FF errors are catastrophic (LUT
worst of all its metrics); the learned predictors trained purely on
synthetic programs beat the HLS report on LUT and FF by a large factor;
CP is the GNNs' best-predicted metric.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import mape_summary
from repro.experiments.table5 import TABLE5_BACKBONES, render_table5, run_table5


@pytest.mark.benchmark(group="table5", min_rounds=1, max_time=1)
def test_table5_realcase_generalisation(benchmark, scale):
    results = benchmark.pedantic(
        lambda: run_table5(scale, backbones=TABLE5_BACKBONES, verbose=False),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table5(results))
    benchmark.extra_info.update(mape_summary(results))

    hls = results["HLS"]
    # Shape check 1: the HLS report error profile — LUT is its worst
    # metric by far, FF second; DSP and CP comparatively fine.
    assert hls[1] > 3.0, f"HLS LUT MAPE should be catastrophic, got {hls[1]}"
    assert hls[1] > hls[0] and hls[1] > hls[3]
    assert hls[2] > hls[0] and hls[2] > hls[3]
    # Shape check 2: every learned predictor beats the HLS report on LUT
    # and FF by a wide margin (the paper's headline up-to-40x result).
    for label, row in results.items():
        if label == "HLS":
            continue
        assert hls[1] / max(row[1], 1e-9) > 2.0, (
            f"{label} LUT {row[1]:.3f} vs HLS {hls[1]:.3f}"
        )
        assert hls[2] / max(row[2], 1e-9) > 1.5, (
            f"{label} FF {row[2]:.3f} vs HLS {hls[2]:.3f}"
        )
    # Shape check 3: CP is the best-predicted metric for the GNNs
    # (paper: 4-9% vs 15-101% for resources).
    learned = [row for label, row in results.items() if label != "HLS"]
    cp_avg = np.mean([row[3] for row in learned])
    resource_avg = np.mean([np.mean(row[:3]) for row in learned])
    assert cp_avg < resource_avg
