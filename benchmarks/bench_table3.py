"""Benchmark: regenerate Table 3 — node-level resource-type accuracy.

Paper reference: accuracies mostly 60-96%, DSP classification easiest,
RGCN the most consistent model, and DFG accuracy >= CDFG accuracy on
average (control nodes confuse node-level prediction too).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import mape_summary
from repro.experiments.table3 import TABLE3_MODELS, render_table3, run_table3


@pytest.mark.benchmark(group="table3", min_rounds=1, max_time=1)
def test_table3_node_classification(benchmark, scale):
    results = benchmark.pedantic(
        lambda: run_table3(scale, models=TABLE3_MODELS, verbose=False),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table3(results))
    benchmark.extra_info.update(mape_summary(results))

    # Shape check 1: node-level classification is genuinely learnable —
    # every model beats 60% on every synthetic task (paper: 60.4-96.3%).
    for model, per_dataset in results.items():
        for dataset in ("dfg", "cdfg"):
            assert (per_dataset[dataset] > 0.60).all(), (
                f"{model}/{dataset} accuracy {per_dataset[dataset]}"
            )
    # Shape check 2: averaged accuracy on DFGs beats CDFGs (small
    # tolerance — at reduced scale the node task is near-saturated).
    dfg_avg = np.mean([np.mean(r["dfg"]) for r in results.values()])
    cdfg_avg = np.mean([np.mean(r["cdfg"]) for r in results.values()])
    assert dfg_avg > cdfg_avg - 0.03
    # Shape check 3: the relational model generalises to real kernels at
    # least as well as plain GCN on average (paper: RGCN dominates the
    # real-case columns).
    assert np.mean(results["rgcn"]["real"]) >= np.mean(results["gcn"]["real"]) - 0.05
