"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's evaluation artifacts
(Tables 2-5 plus the ablation studies) at the scale selected by
``REPRO_SCALE`` (default ``ci``). The measured "time" is the wall-clock
cost of regenerating that table; the scientific output — the table in
the paper's layout plus the ordering checks — is printed to stdout and
attached to the benchmark's ``extra_info``.

Run everything (this is the one-command regeneration of every
``BENCH_*.json`` artifact at the repo root)::

    pytest benchmarks/ --benchmark-only

Run one table::

    pytest benchmarks/bench_table4.py --benchmark-only

Redirect or suppress the JSON artifacts (CI smoke runs pass ``skip`` so
the working tree stays clean); the ``REPRO_BENCH_DIR`` environment
variable is the equivalent knob for non-pytest invocations::

    pytest benchmarks/ --benchmark-only --bench-json /tmp/bench
    pytest benchmarks/ --benchmark-only --bench-json skip
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.experiments.common import get_scale

_REPO_ROOT = Path(__file__).resolve().parent.parent

#: Environment knob backing --bench-json ("skip" or a directory). The
#: option is forwarded through the environment because pytest imports
#: this conftest as its own plugin module, distinct from the
#: ``benchmarks.conftest`` instance the bench modules import
#: ``write_bench_json`` from — a module global would not be shared.
_BENCH_DIR_ENV = "REPRO_BENCH_DIR"


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        action="store",
        default=None,
        metavar="DIR|skip",
        help=(
            "Directory for BENCH_*.json artifacts (default: repo root); "
            "'skip' disables writing entirely."
        ),
    )


def pytest_configure(config):
    option = config.getoption("--bench-json")
    if option is not None:
        os.environ[_BENCH_DIR_ENV] = option


@pytest.fixture(scope="session")
def scale():
    return get_scale()


def write_bench_json(name: str, payload: dict, merge: bool = False) -> Path | None:
    """Persist a benchmark artifact as ``BENCH_<name>.json``, giving
    future PRs a perf trajectory to compare against.

    Lands at the repo root unless ``--bench-json`` (or
    ``REPRO_BENCH_DIR``) redirects it; returns ``None`` when artifact
    writing is disabled (``skip``). ``merge=True`` folds ``payload``'s
    top-level keys into an existing artifact instead of replacing it —
    used when several benches contribute sections to one file (e.g. the
    serve throughput and chaos-stress benches).
    """
    target = os.environ.get(_BENCH_DIR_ENV)
    if target == "skip":
        return None
    directory = Path(target) if target else _REPO_ROOT
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    if merge and path.exists():
        merged = json.loads(path.read_text())
        merged.update(payload)
        payload = merged
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def mape_summary(results: dict) -> dict:
    """Flatten nested {model: {dataset: ndarray}} MAPEs for extra_info."""
    flat = {}
    for model, per_dataset in results.items():
        if isinstance(per_dataset, np.ndarray):
            flat[model] = [round(100 * float(v), 2) for v in per_dataset]
            continue
        for dataset, row in per_dataset.items():
            if isinstance(row, np.ndarray):
                flat[f"{model}/{dataset}"] = [
                    round(100 * float(v), 2) for v in row
                ]
            elif isinstance(row, dict):
                for inner, values in row.items():
                    flat[f"{model}/{dataset}/{inner}"] = [
                        round(100 * float(v), 2) for v in values
                    ]
    return flat
