#!/usr/bin/env python3
"""Benchmark regression gate: candidate BENCH_*.json vs committed baselines.

CI regenerates the benchmark artifacts into a scratch directory and this
script compares them against the baselines committed at the repo root.
Only *ratio* metrics are gated (speedups, rps ratios, ADRS) — absolute
wall-clock numbers shift with runner hardware, relative numbers should
not. A metric regresses when it falls below ``baseline * tolerance``
(or, for lower-is-better metrics, rises above ``baseline / tolerance``
plus the metric's absolute slack).

Usage::

    python benchmarks/check_regression.py --candidate /tmp/bench
    python benchmarks/check_regression.py --candidate /tmp/bench --tolerance 0.4

``REPRO_BENCH_TOLERANCE`` is the environment equivalent of
``--tolerance`` (default 0.5 — shared CI runners are noisy; local runs
can gate tighter).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

#: artifact -> list of (dotted metric path, direction, absolute slack).
#: direction "higher": candidate >= baseline * tolerance;
#: direction "lower":  candidate <= baseline / tolerance + slack.
GATES: dict[str, list[tuple[str, str, float]]] = {
    "BENCH_scatter.json": [
        ("models.gcn.speedup", "higher", 0.0),
        ("models.rgcn.speedup", "higher", 0.0),
        # Per-backend skew-heavy GCN step (the backend registry's raison
        # d'être). Each backend gates against its own baseline ratio;
        # bucketed-vs-csr is additionally bounded so the sharded kernel
        # never quietly decays into "slower csr". The >=1.2x multicore
        # bar is asserted inside bench_scatter.py on hosts with >=4
        # CPUs — this gate only protects the recorded ratio's shape.
        ("backends.gcn_skew.speedup.csr", "higher", 0.0),
        ("backends.gcn_skew.speedup.bucketed", "higher", 0.0),
        ("backends.gcn_skew.speedup.numpy-reduceat", "higher", 0.0),
        ("backends.gcn_skew.bucketed_vs_csr", "higher", 0.0),
    ],
    "BENCH_relations.json": [
        ("rgcn.speedup", "higher", 0.0),
        ("ggnn.speedup", "higher", 0.0),
        ("film.speedup", "higher", 0.0),
    ],
    "BENCH_dse.json": [
        ("speedup", "higher", 0.0),
        ("cached_speedup", "higher", 0.0),
        # ADRS is search quality (lower is better) and noisy across
        # retrained models — allow generous absolute slack.
        ("adrs_greedy", "lower", 0.25),
    ],
    "BENCH_serve.json": [
        # Gate the shape, not the absolute rps: batching must beat the
        # naive path, caching must beat batching.
        ("batched_rps/naive_rps", "higher", 0.0),
        ("cached_rps/batched_rps", "higher", 0.0),
        # Chaos stress (injected faults + latency spikes): sustained rps
        # must not collapse and tail latency must not blow up. Both are
        # wall-clock-flavoured, so the p99 ceiling carries generous
        # absolute slack on top of the ratio tolerance.
        ("stress.rps", "higher", 0.0),
        ("stress.p99_ms", "lower", 100.0),
        # Hard invariant, not a ratio: no admitted request may ever hang
        # (baseline 0 makes the bound exactly 0).
        ("stress.hung", "lower", 0.0),
    ],
    "BENCH_train.json": [
        # Checkpoint overhead is scheduling-noise-dominated on small
        # hosts (the committed baseline comes from a single-core dev
        # container); the strict <5% bar is asserted inside
        # bench_checkpoint.py on hosts with >=4 CPUs. This gate only
        # catches gross regressions (e.g. a snapshot every step).
        ("overhead_frac", "lower", 0.05),
        # Hard invariant: a killed-and-resumed run must finish with a
        # bitwise-identical loss curve (1 = identical).
        ("resume_identical", "higher", 0.0),
    ],
    "BENCH_partition.json": [
        # The tentpole bound: partitioned layer-wise inference must stay
        # well under the full-graph peak. tracemalloc ratios are
        # hardware-independent, so the slack is small — and the <=0.5x
        # acceptance bar is asserted inside bench_partition.py itself.
        ("mem_ratio", "lower", 0.05),
        # Hard invariant: streamed outputs match the full-graph forward
        # within rtol 1e-4 (1 = within tolerance).
        ("parity_ok", "higher", 0.0),
    ],
    "BENCH_dataset.json": [
        # Parallel-vs-serial scales with runner cores (the committed
        # baseline may come from a small host); the warm-cache rebuild
        # ratio is hardware-independent.
        ("speedup", "higher", 0.0),
        ("warm_cache_speedup", "higher", 0.0),
    ],
}


def lookup(payload: dict, path: str) -> float | None:
    """Resolve ``a.b.c`` or a ratio ``x/y`` of two dotted paths."""
    if "/" in path:
        num, den = path.split("/", 1)
        numerator, denominator = lookup(payload, num), lookup(payload, den)
        if numerator is None or denominator in (None, 0):
            return None
        return numerator / denominator
    value: object = payload
    for key in path.split("."):
        if not isinstance(value, dict) or key not in value:
            return None
        value = value[key]
    return float(value) if isinstance(value, (int, float)) else None


def compare(name: str, candidate: dict, baseline: dict, tolerance: float):
    """Yield (metric, candidate, baseline, bound, ok) rows for one file."""
    for metric, direction, slack in GATES.get(name, []):
        new = lookup(candidate, metric)
        old = lookup(baseline, metric)
        if new is None or old is None:
            yield (metric, new, old, None, None)
            continue
        if direction == "higher":
            bound = old * tolerance
            ok = new >= bound
        else:
            bound = old / tolerance + slack
            ok = new <= bound
        yield (metric, new, old, bound, ok)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--candidate", required=True,
        help="directory holding freshly generated BENCH_*.json files",
    )
    parser.add_argument(
        "--baseline", default=str(Path(__file__).resolve().parent.parent),
        help="directory holding baseline artifacts (default: repo root)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.5")),
        help="fraction of the baseline a ratio may drop to (default 0.5)",
    )
    args = parser.parse_args(argv)
    if not 0 < args.tolerance <= 1:
        parser.error("tolerance must be in (0, 1]")

    candidate_dir = Path(args.candidate)
    baseline_dir = Path(args.baseline)
    failures = 0
    checked = 0
    for name in sorted(GATES):
        new_path = candidate_dir / name
        old_path = baseline_dir / name
        if not new_path.exists() or not old_path.exists():
            missing = new_path if not new_path.exists() else old_path
            print(f"[skip] {name}: {missing} not present")
            continue
        candidate = json.loads(new_path.read_text())
        baseline = json.loads(old_path.read_text())
        for metric, new, old, bound, ok in compare(
            name, candidate, baseline, args.tolerance
        ):
            if ok is None:
                print(f"[skip] {name}:{metric}: metric missing "
                      f"(candidate={new}, baseline={old})")
                continue
            checked += 1
            status = "ok" if ok else "REGRESSION"
            print(
                f"[{status}] {name}:{metric}: candidate {new:.3f} vs "
                f"baseline {old:.3f} (bound {bound:.3f})"
            )
            failures += 0 if ok else 1
    if checked == 0:
        print("no benchmark metrics compared — nothing to gate", file=sys.stderr)
        return 2
    if failures:
        print(f"\n{failures}/{checked} gated metrics regressed "
              f"(tolerance {args.tolerance})", file=sys.stderr)
        return 1
    print(f"\nall {checked} gated metrics within tolerance {args.tolerance}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
