"""Benchmark: the sharded dataset pipeline vs serial construction.

Three throughput numbers at ci scale (``BENCH_dataset.json``):

- ``serial_pps`` — ``build_pipeline(workers=1)``, the in-process
  baseline (same per-sample cost as the legacy ``build_synthetic_
  dataset`` loop);
- ``parallel_pps`` — the same build fanned out over a worker pool.
  Process parallelism scales with *available* cores: the JSON records
  ``cpus`` and the >=2x acceptance bar is asserted only where the host
  can physically provide it (single-core containers report ~1x);
- ``warm_cache_pps`` — a rebuild against a populated content-addressed
  cache: the derivation memo skips program generation and the object
  store skips compile + HLS + encode, leaving only reads and shard
  writes.

Determinism is asserted, not assumed: the parallel build must be
bitwise-identical to the serial one, and the warm rebuild to the cold
one.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from benchmarks.conftest import write_bench_json
from repro.dataset import build_pipeline

PARALLEL_WORKERS = 4
MIN_BUILD_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_BUILD_SPEEDUP", "2.0"))
MIN_WARM_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_WARM_SPEEDUP", "5.0"))


def _identical(a, b) -> bool:
    if len(a) != len(b):
        return False
    for x, y in zip(a, b):
        if not (
            np.array_equal(x.node_features, y.node_features)
            and np.array_equal(x.edge_index, y.edge_index)
            and np.array_equal(x.edge_type, y.edge_type)
            and np.array_equal(x.edge_back, y.edge_back)
            and np.array_equal(x.y, y.y)
            and np.array_equal(x.node_labels, y.node_labels)
            and np.array_equal(x.node_resources, y.node_resources)
            and x.meta == y.meta
        ):
            return False
    return True


def _best_of(builds, rounds: int = 2):
    """Best-of-N builds (one-off scheduler hiccups must not decide a
    throughput ratio); returns (dataset, stats) of the fastest round."""
    best = None
    for i in range(rounds):
        result = builds(i)
        if best is None or result[1].seconds < best[1].seconds:
            best = result
    return best


@pytest.mark.benchmark(group="dataset", min_rounds=1, max_time=1)
def test_dataset_pipeline_throughput(benchmark, scale, tmp_path_factory):
    root = tmp_path_factory.mktemp("bench_dataset")
    count = max(64, scale.num_cdfg)
    shard_size = max(16, count // 4)
    cpus = os.cpu_count() or 1

    def measure():
        serial = _best_of(
            lambda i: build_pipeline(
                root / f"serial-{i}", "cdfg", count, seed=33, shard_size=shard_size
            )
        )
        parallel = _best_of(
            lambda i: build_pipeline(
                root / f"parallel-{i}",
                "cdfg",
                count,
                seed=33,
                shard_size=shard_size,
                workers=PARALLEL_WORKERS,
            )
        )
        cache_dir = root / "cache"
        cold = build_pipeline(
            root / "cold", "cdfg", count, seed=33, shard_size=shard_size,
            cache_dir=cache_dir,
        )
        warm = _best_of(
            lambda i: build_pipeline(
                root / f"warm-{i}", "cdfg", count, seed=33, shard_size=shard_size,
                cache_dir=cache_dir,
            )
        )
        return serial, parallel, cold, warm

    serial, parallel, cold, warm = benchmark.pedantic(measure, rounds=1, iterations=1)
    (serial_ds, serial_stats) = serial
    (parallel_ds, parallel_stats) = parallel
    (cold_ds, cold_stats) = cold
    (warm_ds, warm_stats) = warm

    parallel_identical = _identical(serial_ds, parallel_ds)
    warm_identical = _identical(cold_ds, warm_ds)
    summary = {
        "scale": scale.name,
        "count": count,
        "shard_size": shard_size,
        "cpus": cpus,
        "workers": PARALLEL_WORKERS,
        "serial_pps": round(serial_stats.points_per_second, 1),
        "parallel_pps": round(parallel_stats.points_per_second, 1),
        "speedup": round(serial_stats.seconds / parallel_stats.seconds, 2),
        "cold_cache_pps": round(cold_stats.points_per_second, 1),
        "warm_cache_pps": round(warm_stats.points_per_second, 1),
        "warm_cache_speedup": round(serial_stats.seconds / warm_stats.seconds, 2),
        "warm_cache_hits": warm_stats.cache_hits,
        "parallel_identical": parallel_identical,
        "warm_identical": warm_identical,
    }
    path = write_bench_json("dataset", summary)
    print()
    print(json.dumps(summary, indent=2))
    if path:
        print(f"wrote {path}")
    benchmark.extra_info.update(summary)

    # Correctness bars hold everywhere.
    assert parallel_identical, "workers=4 output differs from workers=1"
    assert warm_identical, "cache-served rebuild differs from cold build"
    assert warm_stats.cache_hits == count and warm_stats.cache_misses == 0
    assert summary["warm_cache_speedup"] >= MIN_WARM_SPEEDUP, summary
    # The parallel bar needs cores to scale onto; single-core hosts
    # record the ratio (~1x) without gating on it.
    if cpus >= PARALLEL_WORKERS:
        assert summary["speedup"] >= MIN_BUILD_SPEEDUP, summary
