"""Benchmark: serving throughput — single, batched and cache-hit paths.

Unlike the table benches (which regenerate paper artifacts), this one
measures the serving subsystem itself: per-request latency of the naive
one-graph-at-a-time path, throughput of the micro-batched
:class:`~repro.serve.service.PredictionService`, and throughput once the
fingerprint LRU absorbs repeated DSE-style queries. The shape assertion
is the ISSUE's acceptance criterion: batching must beat naive, and cache
hits must beat batching.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from benchmarks.conftest import write_bench_json
from repro.dataset import build_synthetic_dataset
from repro.experiments.common import predictor_config
from repro.models import OffTheShelfPredictor
from repro.obs import throughput_summary
from repro.serve import ModelRegistry, PredictionService, ServiceConfig
from repro.serve.cli import main as serve_main


@pytest.fixture(scope="module")
def served(scale):
    """A fitted predictor plus a pool of request graphs (built once)."""
    samples = build_synthetic_dataset("dfg", max(64, scale.num_dfg // 2), seed=21)
    config = predictor_config(scale, "rgcn")
    config.train.epochs = min(config.train.epochs, 10)
    predictor = OffTheShelfPredictor(config)
    predictor.fit(samples[:48], samples[48:56])
    requests = samples[56:] if len(samples) > 56 else samples
    # Strip labels: serving-time graphs carry features/topology only.
    return predictor, [g.with_features(g.node_features) for g in requests]


@pytest.mark.benchmark(group="serve", min_rounds=1, max_time=1)
def test_serve_throughput(benchmark, served):
    predictor, requests = served

    def measure():
        timings = {}
        start = time.perf_counter()
        for graph in requests:
            predictor.predict([graph])
        timings["naive"] = time.perf_counter() - start

        service = PredictionService(
            predictor, ServiceConfig(max_batch_size=64, cache_size=4096)
        )
        start = time.perf_counter()
        service.predict(requests)
        timings["batched"] = time.perf_counter() - start

        start = time.perf_counter()
        service.predict(requests)
        timings["cached"] = time.perf_counter() - start
        return timings, service.stats

    timings, stats = benchmark.pedantic(measure, rounds=1, iterations=1)
    summary = throughput_summary(timings, len(requests))
    summary["stats"] = stats.as_dict()
    path = write_bench_json("serve", summary)
    print()
    print(json.dumps(summary, indent=2))
    if path:
        print(f"wrote {path}")
    benchmark.extra_info.update(summary)

    # Acceptance: fused batches beat one-graph-at-a-time, and the cache
    # beats running the model at all.
    assert timings["batched"] < timings["naive"], summary
    assert timings["cached"] < timings["batched"], summary
    assert stats.cache_hits == len(requests)


@pytest.mark.benchmark(group="serve", min_rounds=1, max_time=1)
def test_serve_stress_chaos(benchmark, served):
    """Chaos stress: SLO metrics under the stock fault plan.

    Runs the serving tier (workers, bounded queue, breaker, analytical
    degradation) through :func:`repro.serve.stress.run_stress` with
    ``DEFAULT_CHAOS_PLAN`` injected, and merges the summary into
    ``BENCH_serve.json`` under ``stress`` — the section
    ``check_regression.py`` gates (rps floor, p99 ceiling, hung == 0).
    """
    from repro.faults import use_faults
    from repro.serve.server import PredictionServer, ServerConfig
    from repro.serve.stress import DEFAULT_CHAOS_PLAN, run_stress

    predictor, _ = served

    def measure():
        config = ServerConfig(
            workers=2,
            queue_depth=16,
            max_batch_size=16,
            max_wait_ms=2.0,
            default_deadline_ms=500.0,
            retry_seed=0,
        )
        with use_faults(DEFAULT_CHAOS_PLAN):
            with PredictionServer.from_predictor(
                predictor, config=config
            ) as server:
                return run_stress(server, requests=96, seed=0)

    summary = benchmark.pedantic(measure, rounds=1, iterations=1)
    path = write_bench_json("serve", {"stress": summary}, merge=True)
    print()
    print(json.dumps(summary, indent=2))
    if path:
        print(f"wrote {path}")
    benchmark.extra_info.update(summary)

    # Acceptance: the server never hangs, and the chaos plan genuinely
    # exercised backpressure and degradation (otherwise the gated
    # baseline would assert nothing).
    assert summary["hung"] == 0, summary
    assert summary["shed"] > 0, summary
    assert summary["degraded"] > 0, summary


@pytest.mark.benchmark(group="serve", min_rounds=1, max_time=1)
def test_serve_cli_predict_smoke(benchmark, served, tmp_path, capsys):
    """Smoke: the CLI ``predict`` verb answers a C-source request in-process."""
    predictor, _ = served
    ModelRegistry(tmp_path / "reg").register("bench-rgcn", predictor)
    source = tmp_path / "kernel.c"
    source.write_text(
        "#include <stdint.h>\n"
        "int32_t top(int32_t a, int32_t b, int32_t c) {\n"
        "    int32_t t = ((a * b) + c);\n"
        "    return (t ^ 255);\n"
        "}\n"
    )
    argv = [
        "predict",
        "--registry", str(tmp_path / "reg"),
        "--name", "bench-rgcn",
        "--source", str(source),
    ]
    result = benchmark.pedantic(lambda: serve_main(argv), rounds=1, iterations=1)
    assert result == 0
    response = json.loads(capsys.readouterr().out.splitlines()[-1])
    values = np.array(list(response["prediction"].values()))
    assert values.shape == (4,) and np.isfinite(values).all()
