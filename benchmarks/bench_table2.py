"""Benchmark: regenerate Table 2 — the 14-model off-the-shelf zoo.

Paper reference values (MAPE, DFG/CDFG): GCN 16.3/25.3 DSP ... with PNA
and RGCN the two best models and SGC/GAT the clear losers; every model
is worse on CDFGs than DFGs. The bench asserts those *shape* properties
rather than absolute numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import mape_summary
from repro.experiments.table2 import render_table2, run_table2
from repro.gnn.registry import ALL_MODEL_NAMES


@pytest.mark.benchmark(group="table2", min_rounds=1, max_time=1)
def test_table2_zoo_screening(benchmark, scale):
    results = benchmark.pedantic(
        lambda: run_table2(scale, models=ALL_MODEL_NAMES, verbose=False),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table2(results))
    benchmark.extra_info.update(mape_summary(results))

    mean_over_targets = {
        model: {d: float(np.mean(row)) for d, row in per.items()}
        for model, per in results.items()
    }
    # Shape check 1: averaged over the zoo, CDFG prediction is harder
    # than DFG (paper Section 5.2, "Different graphs: DFG vs CDFG").
    dfg_avg = np.mean([m["dfg"] for m in mean_over_targets.values()])
    cdfg_avg = np.mean([m["cdfg"] for m in mean_over_targets.values()])
    assert cdfg_avg > dfg_avg, (
        f"expected CDFG harder than DFG, got {cdfg_avg:.3f} vs {dfg_avg:.3f}"
    )
    # Shape check 2: the paper's winners (PNA, RGCN) rank in the better
    # half of the zoo; its loser (SGC) ranks in the worse half (DFG set).
    ranking = sorted(mean_over_targets, key=lambda m: mean_over_targets[m]["dfg"])
    half = len(ranking) // 2
    assert ranking.index("pna") < half or ranking.index("rgcn") < half, (
        f"expected pna/rgcn in the top half, ranking: {ranking}"
    )
    assert ranking.index("sgc") >= half, (
        f"expected sgc in the bottom half, ranking: {ranking}"
    )
