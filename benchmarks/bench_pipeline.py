"""Micro-benchmarks of the substrate itself.

Not paper artifacts — these measure the throughput of each pipeline
stage (program generation, lowering, graph extraction, HLS flow, GNN
forward/backward) so regressions in the supporting systems are visible
independently of the table-level runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset import build_synthetic_dataset
from repro.frontend import lower_program
from repro.graph import Batch
from repro.gnn import GraphContext, GraphRegressor
from repro.hls import run_hls
from repro.ir import extract_cdfg
from repro.ldrgen import GeneratorConfig, ProgramGenerator
from repro.tensor import Tensor


@pytest.fixture(scope="module")
def cdfg_programs():
    generator = ProgramGenerator(GeneratorConfig(mode="cdfg"), seed=3)
    return [generator.generate() for _ in range(8)]


@pytest.fixture(scope="module")
def lowered(cdfg_programs):
    return [lower_program(p) for p in cdfg_programs]


@pytest.fixture(scope="module")
def training_batch():
    samples = build_synthetic_dataset("cdfg", 16, seed=5)
    return Batch(samples)


@pytest.mark.benchmark(group="pipeline")
def test_generate_programs(benchmark):
    generator = ProgramGenerator(GeneratorConfig(mode="cdfg"), seed=11)
    benchmark(generator.generate)


@pytest.mark.benchmark(group="pipeline")
def test_lower_to_ir(benchmark, cdfg_programs):
    programs = iter(cdfg_programs * 1000)
    benchmark(lambda: lower_program(next(programs)))


@pytest.mark.benchmark(group="pipeline")
def test_extract_cdfg(benchmark, lowered):
    functions = iter(lowered * 1000)
    benchmark(lambda: extract_cdfg(next(functions)))


@pytest.mark.benchmark(group="pipeline")
def test_hls_flow(benchmark, lowered):
    functions = iter(lowered * 1000)
    benchmark(lambda: run_hls(next(functions)))


@pytest.mark.benchmark(group="pipeline")
def test_gnn_forward(benchmark, training_batch):
    model = GraphRegressor(
        "rgcn",
        in_dim=training_batch.feature_dim,
        hidden_dim=48,
        num_layers=3,
        num_edge_types=8,
        rng=np.random.default_rng(0),
    )
    model.eval()
    from repro.tensor import no_grad

    def forward():
        with no_grad():
            return model(training_batch)

    benchmark(forward)


@pytest.mark.benchmark(group="pipeline")
def test_gnn_forward_backward(benchmark, training_batch):
    model = GraphRegressor(
        "rgcn",
        in_dim=training_batch.feature_dim,
        hidden_dim=48,
        num_layers=3,
        num_edge_types=8,
        rng=np.random.default_rng(0),
    )
    target = Tensor(np.log1p(training_batch.y))

    def step():
        model.zero_grad()
        out = model(training_batch)
        loss = ((out - target) ** 2).mean()
        loss.backward()
        return float(loss.data)

    benchmark(step)


@pytest.mark.benchmark(group="pipeline")
def test_context_construction(benchmark, training_batch):
    benchmark(lambda: GraphContext.from_batch(training_batch, 8))


@pytest.mark.benchmark(group="pipeline")
def test_hls_flow_span_profile(benchmark, lowered):
    """Per-phase cost of the HLS flow via the obs span tracer.

    Same flow as ``test_hls_flow``, but run under a scoped tracer so the
    schedule/bind/implement/report split lands in ``extra_info`` — the
    phase-level trajectory, not just the end-to-end number.
    """
    from repro.obs import use_tracer

    functions = iter(lowered * 1000)
    with use_tracer() as tracer:
        benchmark(lambda: run_hls(next(functions)))
    spans = tracer.snapshot()
    flow_calls = spans["hls.flow"]["count"]
    assert flow_calls > 0
    benchmark.extra_info.update(
        {
            path: round(1000 * entry["self_s"] / entry["count"], 4)
            for path, entry in spans.items()
        }
    )
    # Phase self-times must account for the flow total (no unexplained
    # gap beyond the flow's own glue work).
    phase_s = sum(
        entry["self_s"] for path, entry in spans.items() if "/" in path
    )
    assert phase_s <= spans["hls.flow"]["total_s"]
