"""Benchmark: predictor-guided DSE vs the analytical HLS flow.

The first workload where micro-batching throughput is the headline
number: a :class:`~repro.dse.evaluate.PredictorEvaluator` scores an
entire 512-point directive space of a PolyBench kernel in a handful of
fused model calls (shared topology, per-point directive columns,
fingerprint-deduped through the
:class:`~repro.serve.service.PredictionService`), while the ground-truth
backend pays one full schedule/bind/FSM/implement/report flow per point.

Measured on the full space of PolyBench ``pb_floyd_warshall`` (3 loops x
{unroll 1/2/4/8} x {pipeline on/off} = 512 points):

- ``hls``: exhaustive :class:`GroundTruthEvaluator` sweep (also the ADRS
  reference frontier);
- ``predictor``: the same points through a cold prediction service;
- ``cached``: a full revisit (the fingerprint LRU absorbs everything).

The acceptance bar is the ISSUE's: the predictor backend evaluates
>= 20x more points/sec than the analytical flow at ci scale
(``REPRO_BENCH_MIN_DSE_SPEEDUP`` relaxes it on noisy CI runners). ADRS
of a budgeted greedy search against the exhaustive ground-truth frontier
rides along in ``BENCH_dse.json`` so search quality can't silently rot.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from benchmarks.conftest import write_bench_json
from repro.dse import (
    DesignSpace,
    GroundTruthEvaluator,
    PredictorEvaluator,
    adrs,
    explore,
    pareto_front,
)
from repro.experiments.common import predictor_config
from repro.dataset import build_synthetic_dataset
from repro.models import OffTheShelfPredictor
from repro.serve import PredictionService, ServiceConfig
from repro.suites.registry import suite_programs

KERNEL = "pb_floyd_warshall"
SUITE = "polybench"
MIN_DSE_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_DSE_SPEEDUP", "20.0"))


@pytest.fixture(scope="module")
def dse_setup(scale):
    """A fitted GCN predictor plus the benchmark kernel's design space.

    The serving model is throughput-tuned (GCN, hidden 24): DSE wants
    thousands of scores per second and tolerates a coarser regressor —
    frontier quality is still reported via ADRS below.
    """
    samples = build_synthetic_dataset("cdfg", max(128, scale.num_cdfg), seed=33)
    config = predictor_config(scale, "gcn")
    config.train.epochs = min(config.train.epochs, 16)
    config.hidden_dim = min(config.hidden_dim, 24)
    predictor = OffTheShelfPredictor(config)
    split = int(len(samples) * 0.85)
    predictor.fit(samples[:split], samples[split:])
    program = next(p for p in suite_programs(SUITE) if p.name == KERNEL)
    space = DesignSpace.from_program(program, unroll_options=(1, 2, 4, 8))
    return predictor, program, space


def _service(predictor) -> PredictionService:
    return PredictionService(
        predictor,
        ServiceConfig(max_batch_size=1024, cache_size=16384, validate=False),
    )


@pytest.mark.benchmark(group="dse", min_rounds=1, max_time=1)
def test_dse_backend_throughput(benchmark, dse_setup, scale):
    predictor, program, space = dse_setup
    points = list(space.points())

    def measure():
        timings = {}
        # Best-of-two cold passes on both backends: one-off scheduler/
        # allocator hiccups must not decide a throughput ratio.
        ground_truth = GroundTruthEvaluator(program, space)
        start = time.perf_counter()
        truth = ground_truth.evaluate_many(points)
        timings["hls"] = time.perf_counter() - start
        second = GroundTruthEvaluator(program, space)
        start = time.perf_counter()
        second.evaluate_many(points)
        timings["hls"] = min(timings["hls"], time.perf_counter() - start)

        # Full steady-state warm-up (separate service): first-call numpy/
        # BLAS initialisation must not be billed to the cold measurement.
        service = _service(predictor)
        evaluator = PredictorEvaluator(service, program, space)
        evaluator.evaluate_many(points)
        timings["predictor"] = float("inf")
        for _ in range(3):
            service_cold = _service(predictor)
            evaluator_cold = PredictorEvaluator(service_cold, program, space)
            start = time.perf_counter()
            evaluator_cold.evaluate_many(points)
            timings["predictor"] = min(
                timings["predictor"], time.perf_counter() - start
            )

        start = time.perf_counter()
        evaluator_cold.evaluate_many(points)
        timings["cached"] = time.perf_counter() - start

        # Search quality: budgeted greedy search, frontier re-scored with
        # the (memoised) ground truth, ADRS vs the exhaustive frontier.
        search_service = _service(predictor)
        search = explore(
            space,
            PredictorEvaluator(search_service, program, space),
            strategy="greedy",
            budget=space.size // 4,
            seed=0,
        )
        searched_truth = ground_truth.evaluate_many(
            [evaluation.point for evaluation in search.frontier]
        )
        reference = pareto_front(truth, key=lambda e: e.objectives())
        approx = pareto_front(searched_truth, key=lambda e: e.objectives())
        greedy_adrs = adrs(
            [e.objectives() for e in reference],
            [e.objectives() for e in approx],
        )
        return timings, greedy_adrs, search, service_cold.stats

    timings, greedy_adrs, search, stats = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    n = len(points)
    summary = {
        "scale": scale.name,
        "kernel": KERNEL,
        "space_size": space.size,
        "points": n,
        "hls_pps": round(n / timings["hls"], 1),
        "predictor_pps": round(n / timings["predictor"], 1),
        "cached_pps": round(n / timings["cached"], 1),
        "speedup": round(timings["hls"] / timings["predictor"], 2),
        "cached_speedup": round(timings["hls"] / timings["cached"], 2),
        "adrs_greedy": round(greedy_adrs, 4),
        "greedy_evaluated": search.evaluated,
        "service_stats": stats.as_dict(),
    }
    path = write_bench_json("dse", summary)
    print()
    print(json.dumps(summary, indent=2))
    if path:
        print(f"wrote {path}")
    benchmark.extra_info.update(summary)

    assert np.isfinite(greedy_adrs) and greedy_adrs >= 0
    # Acceptance: the predictor backend must clear the throughput bar,
    # and a full revisit must be faster still (pure cache hits).
    assert summary["speedup"] >= MIN_DSE_SPEEDUP, summary
    assert timings["cached"] < timings["predictor"], summary
