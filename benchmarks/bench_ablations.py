"""Benchmark: ablation studies over the design choices DESIGN.md lists.

Not a paper table — these answer the natural reviewer questions: does
the readout matter, how deep/wide is enough, how much do Table-1
features buy over bare structure, and how does accuracy scale with
training data.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.ablations import (
    ablate_dataset_size,
    ablate_depth,
    ablate_features,
    ablate_pooling,
    ablate_width,
)
from repro.utils.tables import format_table


@pytest.mark.benchmark(group="ablations", min_rounds=1, max_time=1)
def test_ablation_pooling(benchmark, scale):
    results = benchmark.pedantic(
        lambda: ablate_pooling(scale), rounds=1, iterations=1
    )
    print()
    print(format_table(
        ["pooling", "mean MAPE"],
        [[k, f"{100 * v:.2f}%"] for k, v in results.items()],
        title="Ablation: graph readout",
    ))
    benchmark.extra_info.update({k: round(100 * v, 2) for k, v in results.items()})
    assert all(np.isfinite(v) for v in results.values())


@pytest.mark.benchmark(group="ablations", min_rounds=1, max_time=1)
def test_ablation_depth(benchmark, scale):
    results = benchmark.pedantic(
        lambda: ablate_depth(scale, depths=(1, 3, 5)), rounds=1, iterations=1
    )
    print()
    print(format_table(
        ["layers", "mean MAPE"],
        [[k, f"{100 * v:.2f}%"] for k, v in results.items()],
        title="Ablation: message-passing depth",
    ))
    benchmark.extra_info.update({str(k): round(100 * v, 2) for k, v in results.items()})
    # Multi-hop context must beat a single hop.
    assert min(results[3], results[5]) < results[1]


@pytest.mark.benchmark(group="ablations", min_rounds=1, max_time=1)
def test_ablation_width(benchmark, scale):
    results = benchmark.pedantic(
        lambda: ablate_width(scale, widths=(16, 48, 96)), rounds=1, iterations=1
    )
    print()
    print(format_table(
        ["hidden", "mean MAPE"],
        [[k, f"{100 * v:.2f}%"] for k, v in results.items()],
        title="Ablation: hidden width",
    ))
    benchmark.extra_info.update({str(k): round(100 * v, 2) for k, v in results.items()})
    assert all(np.isfinite(v) for v in results.values())


@pytest.mark.benchmark(group="ablations", min_rounds=1, max_time=1)
def test_ablation_features(benchmark, scale):
    results = benchmark.pedantic(
        lambda: ablate_features(scale), rounds=1, iterations=1
    )
    print()
    print(format_table(
        ["features", "mean MAPE"],
        [[k, f"{100 * v:.2f}%"] for k, v in results.items()],
        title="Ablation: Table-1 features vs bare structure",
    ))
    benchmark.extra_info.update({k: round(100 * v, 2) for k, v in results.items()})
    # At paper scale the full Table-1 features win decisively; at the
    # reduced presets the 4-dim variant can edge ahead by acting as a
    # regulariser, so the bench only requires both configurations to
    # train to finite, sane error (the comparison itself is the output).
    assert all(np.isfinite(v) and v < 10.0 for v in results.values())


@pytest.mark.benchmark(group="ablations", min_rounds=1, max_time=1)
def test_ablation_dataset_size(benchmark, scale):
    results = benchmark.pedantic(
        lambda: ablate_dataset_size(scale, fractions=(0.25, 1.0)),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(
        ["train fraction", "mean MAPE"],
        [[k, f"{100 * v:.2f}%"] for k, v in results.items()],
        title="Ablation: training-set size",
    ))
    benchmark.extra_info.update({str(k): round(100 * v, 2) for k, v in results.items()})
    # More data should not hurt (allow small single-seed noise).
    assert results[1.0] <= results[0.25] + 0.05
