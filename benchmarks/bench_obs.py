"""Benchmark: tensor-engine profiling overhead.

Measures one GCN training step three ways — baseline (profiling never
touched), after a ``use_profiling()`` session has ended (the disabled
path must cost one attribute load per op), and with profiling enabled
(op counts + kernel timers collecting). The acceptance bar is the obs
PR's: the disabled toggle stays within 5% of baseline step cost.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from benchmarks.conftest import write_bench_json
from repro.dataset import build_synthetic_dataset
from repro.gnn import GraphRegressor
from repro.graph import Batch
from repro.obs import best_of
from repro.tensor import Tensor, use_profiling

TYPES = 8
#: Same gating idea as bench_dataset: loaded single-core hosts record the
#: ratio without failing on scheduler noise.
MAX_DISABLED_OVERHEAD = 1.05


@pytest.fixture(scope="module")
def gcn_step(scale):
    samples = build_synthetic_dataset("cdfg", max(16, scale.num_cdfg // 4), seed=9)
    batch = Batch(samples[:16])
    model = GraphRegressor(
        "gcn",
        in_dim=batch.feature_dim,
        hidden_dim=48,
        num_layers=3,
        num_edge_types=TYPES,
        rng=np.random.default_rng(0),
    )
    target = Tensor(np.log1p(batch.y))

    def step():
        model.zero_grad()
        out = model(batch)
        loss = ((out - target) ** 2).mean()
        loss.backward()

    step()  # warm caches (graph contexts, scatter plans)
    return step


@pytest.mark.benchmark(group="obs", min_rounds=1, max_time=1)
def test_profiling_overhead(benchmark, gcn_step):
    def measure():
        baseline_s = best_of(gcn_step, repeats=5)
        with use_profiling() as prof:
            enabled_s = best_of(gcn_step, repeats=5)
        disabled_s = best_of(gcn_step, repeats=5)
        return baseline_s, disabled_s, enabled_s, prof

    baseline_s, disabled_s, enabled_s, prof = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    snap = prof.snapshot()
    summary = {
        "baseline_ms": round(1000 * baseline_s, 3),
        "disabled_ms": round(1000 * disabled_s, 3),
        "enabled_ms": round(1000 * enabled_s, 3),
        "disabled_overhead": round(disabled_s / baseline_s, 3),
        "enabled_overhead": round(enabled_s / baseline_s, 3),
        "ops_per_step": prof.total_ops // 5,
        "kernels_timed": len(snap["kernels"]),
        "cpus": os.cpu_count() or 1,
    }
    path = write_bench_json("obs", summary)
    print()
    print(json.dumps(summary, indent=2))
    if path:
        print(f"wrote {path}")
    benchmark.extra_info.update(summary)

    # Enabled profiling actually collected: tape ops and kernel timings.
    assert prof.total_ops > 0
    assert snap["kernels"], "no kernel timings recorded under use_profiling"
    if summary["cpus"] >= 4:
        assert summary["disabled_overhead"] < MAX_DISABLED_OVERHEAD, summary
