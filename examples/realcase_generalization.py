#!/usr/bin/env python3
"""Generalisation to real applications: GNN predictor vs the HLS report
(mini Table 5).

Trains the three approaches on synthetic programs only, then evaluates
on MachSuite/CHStone/PolyBench kernels none of the models have seen.
The punchline matches the paper: the HLS tool's own LUT/FF estimates are
catastrophically wrong on real kernels, while the GNN predictors —
including the hierarchical one that needs nothing but the IR graph —
stay accurate.

Run:  python examples/realcase_generalization.py
"""

import numpy as np

from repro.dataset import build_realcase_dataset, build_synthetic_dataset, split_dataset
from repro.models import (
    HierarchicalPredictor,
    KnowledgeRichPredictor,
    OffTheShelfPredictor,
    PredictorConfig,
)
from repro.training import TrainConfig
from repro.training.metrics import mape
from repro.utils.tables import format_table


def main() -> None:
    synthetic = (
        build_synthetic_dataset("dfg", 120, seed=0)
        + build_synthetic_dataset("cdfg", 100, seed=1)
    )
    train, val, _ = split_dataset(synthetic, fractions=(0.85, 0.15, 0.0), seed=0)
    real = build_realcase_dataset()
    print(f"training on {len(train)} synthetic graphs; "
          f"evaluating on {len(real)} real kernels")

    results = {}
    # The HLS baseline: its own synthesis report vs implementation truth.
    reports = np.stack([np.asarray(s.meta["hls_report"]) for s in real])
    targets = np.stack([s.y for s in real])
    results["HLS report"] = mape(reports, targets)

    config = PredictorConfig(
        model_name="rgcn",
        hidden_dim=48,
        num_layers=3,
        train=TrainConfig(epochs=30, batch_size=16, lr=3e-3),
    )
    for label, predictor in (
        ("RGCN (off-the-shelf)", OffTheShelfPredictor(config)),
        ("RGCN-I (infused)", HierarchicalPredictor(config)),
        ("RGCN-R (rich)", KnowledgeRichPredictor(config)),
    ):
        predictor.fit(train, val)
        results[label] = predictor.evaluate(real)
        print(f"trained {label}")

    print()
    rows = [
        [metric] + [f"{100 * results[k][i]:.1f}%" for k in results]
        for i, metric in enumerate(("DSP", "LUT", "FF", "CP"))
    ]
    print(format_table(["Metric", *results.keys()], rows,
                       title="MAPE on unseen real-case kernels"))
    lut_gain = results["HLS report"][1] / max(results["RGCN-I (infused)"][1], 1e-9)
    print(f"\nhierarchical GNN beats the HLS report on LUT by {lut_gain:.1f}x")


if __name__ == "__main__":
    main()
