#!/usr/bin/env python3
"""Quickstart: predict FPGA resources/timing for a C kernel before HLS.

Walks the full pipeline on one hand-written program:

1. build a mini-C kernel with the AST API (or take one from a suite),
2. compile it to IR and extract its CDFG,
3. run the simulated HLS + implementation flow for ground truth,
4. train a small knowledge-infused (hierarchical) predictor on a
   synthetic dataset and predict the kernel's DSP/LUT/FF/CP *from the
   graph alone* — the paper's headline use case.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.dataset import build_graph, build_synthetic_dataset, split_dataset
from repro.frontend import (
    ArrayRef,
    Assign,
    BinOp,
    Decl,
    For,
    Function,
    IntConst,
    Program,
    Return,
    Var,
    lower_program,
    to_c_source,
)
from repro.typesys import CArray, CInt
from repro.hls import run_hls
from repro.models import HierarchicalPredictor, PredictorConfig
from repro.training import TrainConfig

INT16, INT32 = CInt(16), CInt(32)


def build_kernel() -> Program:
    """An 8-tap dot-product kernel, the kind HLS tutorials start with."""
    body = [
        Decl("acc", INT32, IntConst(0)),
        For("i", 0, 8, 1, body=[
            Assign(
                Var("acc"),
                BinOp("+", Var("acc"),
                      BinOp("*", ArrayRef("a", Var("i")), ArrayRef("b", Var("i")))),
            ),
        ]),
        Return(Var("acc")),
    ]
    function = Function(
        name="dot8",
        params=[("a", CArray(INT16, 8)), ("b", CArray(INT16, 8))],
        ret_type=INT32,
        body=body,
    )
    return Program(name="dot8", functions=[function])


def main() -> None:
    program = build_kernel()
    print("=== C source ===")
    print(to_c_source(program))

    # Ground truth from the simulated flow (what Vitis would measure).
    function = lower_program(program)
    hls = run_hls(function)
    print("=== simulated HLS flow ===")
    print(f"implementation (ground truth): {hls.impl}")
    print(f"synthesis report (estimate)  : {hls.report}")

    # Train the knowledge-infused predictor on synthetic programs only.
    print("\n=== training hierarchical predictor (small demo scale) ===")
    dataset = build_synthetic_dataset("cdfg", 150, seed=0)
    train, val, test = split_dataset(dataset, seed=0)
    predictor = HierarchicalPredictor(
        PredictorConfig(
            model_name="rgcn",
            hidden_dim=48,
            num_layers=3,
            train=TrainConfig(epochs=30, batch_size=16, lr=3e-3),
        )
    )
    predictor.fit(train, val)
    test_mape = predictor.evaluate(test)
    print("synthetic test MAPE [DSP, LUT, FF, CP]:",
          [f"{100 * v:.1f}%" for v in test_mape])

    # Predict the unseen kernel from its IR graph alone.
    sample = build_graph(program, kind="cdfg")
    prediction = predictor.predict([sample])[0]
    truth = sample.y
    print("\n=== dot8 prediction (earliest stage, graph only) ===")
    for name, p, t in zip(("DSP", "LUT", "FF", "CP"), prediction, truth):
        print(f"{name:4s} predicted {p:9.1f}   ground truth {t:9.1f}")


if __name__ == "__main__":
    main()
