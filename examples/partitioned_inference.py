"""Bounded-memory inference on one large CDFG via graph partitioning.

The full-graph forward materialises the whole topology (contexts, plans,
per-edge message buffers) at once; on large designs that is the OOM.
This example builds a ~20k-node synthetic CDFG, partitions it into
degree-bounded blocks with halo nodes, and streams a GCN regressor over
the blocks layer by layer — peak memory tracks the block size while the
prediction matches the full-graph path to float tolerance.

Run::

    PYTHONPATH=src python examples/partitioned_inference.py
"""

from __future__ import annotations

import numpy as np

from repro.dataset.builder import lower_and_extract
from repro.dataset.features import NUM_EDGE_TYPES_WITH_BACK, FeatureEncoder
from repro.gnn.network import GraphRegressor
from repro.gnn.streaming import predict_regressor_streaming
from repro.graph.partition import NeighborSampler, partition_graph
from repro.ldrgen import GeneratorConfig, generate_program
from repro.obs import MetricsRegistry, track_peak_memory
from repro.training.trainer import predict_regressor


def main() -> None:
    # One program sized to carry ~20k graph nodes (the bench pushes the
    # same path past 100k; see benchmarks/bench_partition.py).
    config = GeneratorConfig.cdfg_scaled(20_000)
    program = generate_program(config, seed=7)
    _, ir_graph, _ = lower_and_extract(program, "cdfg")
    graph = FeatureEncoder().encode(ir_graph)
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    partition = partition_graph(graph, 2_048, seed=0, context_cache_size=1)
    sizes = partition.block_sizes()
    print(
        f"partition: {partition.num_blocks} blocks "
        f"(sizes {sizes.min()}-{sizes.max()}), "
        f"edge cut {partition.edge_cut():.3f}, "
        f"{partition.refine_moves} refinement moves"
    )

    model = GraphRegressor(
        "gcn",
        in_dim=graph.feature_dim,
        hidden_dim=32,
        num_layers=3,
        num_edge_types=NUM_EDGE_TYPES_WITH_BACK,
        pooling="mean",
        rng=np.random.default_rng(0),
    )

    # Warm both paths once so lazy caches don't skew the traced peaks.
    full = predict_regressor(model, [graph], batch_size=1)[0]
    streamed = predict_regressor_streaming(model, graph, partition=partition)
    with track_peak_memory(MetricsRegistry()) as full_mem:
        predict_regressor(model, [graph], batch_size=1)
    with track_peak_memory(MetricsRegistry()) as streamed_mem:
        predict_regressor_streaming(model, graph, partition=partition)

    diff = float(np.abs(streamed - full).max() / np.maximum(np.abs(full), 1e-12).max())
    print(f"full-graph peak:   {full_mem.peak_mb:8.1f} MB")
    print(f"partitioned peak:  {streamed_mem.peak_mb:8.1f} MB "
          f"({streamed_mem.peak_mb / full_mem.peak_mb:.2f}x)")
    print(f"prediction parity: max rel diff {diff:.2e}")
    assert diff <= 1e-4, "streamed prediction diverged from the full forward"

    # The same machinery caps training fan-in: a seeded NeighborSampler
    # draws bitwise-identical receptive fields regardless of workers.
    sampler = NeighborSampler(graph, fanouts=[8, 8, 8], seed=0)
    sub = sampler.sample(np.arange(64))
    print(
        f"sampled subgraph for 64 seed nodes: {sub.num_nodes} nodes "
        f"({sub.meta['sampled_core']} core), {sub.num_edges} edges"
    )


if __name__ == "__main__":
    main()
