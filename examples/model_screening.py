#!/usr/bin/env python3
"""Screen GNN architectures for HLS QoR prediction (mini Table 2).

The paper's first contribution is a systematic comparison of 14 GNN
architectures on the DFG dataset. This example screens a representative
subset at demo scale and prints the ranking, illustrating the paper's
takeaways: relational models (RGCN) and multi-aggregator models (PNA)
beat plain convolutions, and over-simplified propagation (SGC) loses.

Run:  python examples/model_screening.py
"""

import numpy as np

from repro.dataset import build_synthetic_dataset, split_dataset
from repro.models import OffTheShelfPredictor, PredictorConfig
from repro.training import TrainConfig
from repro.utils.tables import format_table

MODELS = ("gcn", "sgc", "sage", "gin", "pna", "gat", "rgcn")


def main() -> None:
    dataset = build_synthetic_dataset("dfg", 200, seed=0)
    train, val, test = split_dataset(dataset, seed=0)
    print(f"dataset: {len(train)} train / {len(val)} val / {len(test)} test DFGs")

    rows = []
    for model_name in MODELS:
        predictor = OffTheShelfPredictor(
            PredictorConfig(
                model_name=model_name,
                hidden_dim=48,
                num_layers=3,
                train=TrainConfig(epochs=30, batch_size=16, lr=3e-3),
            )
        )
        predictor.fit(train, val)
        mape = predictor.evaluate(test)
        rows.append((model_name.upper(), *[f"{100 * v:.1f}%" for v in mape],
                     f"{100 * float(np.mean(mape)):.1f}%"))
        print(f"trained {model_name:6s} mean MAPE {100 * float(np.mean(mape)):.1f}%")

    rows.sort(key=lambda r: float(r[-1].rstrip("%")))
    print()
    print(format_table(
        ["Model", "DSP", "LUT", "FF", "CP", "mean"],
        rows,
        title="Off-the-shelf screening on DFGs (lower is better)",
    ))


if __name__ == "__main__":
    main()
