#!/usr/bin/env python3
"""Sharded dataset build + streaming training, end to end.

The production dataset path at a glance:

1. build a CDFG benchmark in parallel with ``build_pipeline`` — per-
   sample seeding makes the output bitwise-identical for any worker
   count, the content-addressed cache makes rebuilds nearly free, and
   the sharded on-disk layout persists incrementally (kill it halfway
   and ``resume=True`` finishes the manifest);
2. reopen it as a lazy ``ShardedDataset`` and split it into streaming
   ``DatasetView`` partitions — nothing is materialised;
3. train a regressor straight from the shards: the trainer replays one
   batch schedule per run, so the streamed loss curve is *exactly* the
   in-memory one;
4. rebuild from the warm cache to see what a directive re-sweep or a
   restarted job pays.

Run:  python examples/build_and_stream.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.dataset import ShardedDataset, build_pipeline, split_dataset
from repro.gnn.network import GraphRegressor
from repro.training.trainer import TrainConfig, train_graph_regressor

COUNT = 64
SHARDS_ROOT = Path(tempfile.mkdtemp(prefix="repro-shards-"))


def main() -> None:
    out = SHARDS_ROOT / "cdfg-demo"
    cache = SHARDS_ROOT / "cache"

    # -- 1. parallel, cached, resumable build ---------------------------
    dataset, stats = build_pipeline(
        out, "cdfg", COUNT, seed=7, workers=4, shard_size=16, cache_dir=cache
    )
    print(
        f"built {stats.built} samples at {stats.points_per_second:.0f} pts/s "
        f"({stats.shards_written} shards, workers={stats.workers})"
    )

    # -- 2. lazy reader + streaming split -------------------------------
    reader = ShardedDataset(out, cache_shards=2)
    train, val, test = split_dataset(reader, seed=0)
    print(f"split: {len(train)} train / {len(val)} val / {len(test)} test "
          f"(lazy {type(train).__name__} partitions)")

    # -- 3. train straight from the shards ------------------------------
    model = GraphRegressor(
        "gcn",
        in_dim=reader[0].feature_dim,
        hidden_dim=24,
        num_layers=2,
        num_edge_types=8,
        rng=np.random.default_rng(0),
    )
    result = train_graph_regressor(
        model, train, val, TrainConfig(epochs=8, batch_size=16, seed=0)
    )
    print(f"streamed training: best val MAPE {result.best_val_metric:.3f} "
          f"at epoch {result.best_epoch}")

    # -- 4. warm-cache rebuild ------------------------------------------
    _, warm = build_pipeline(
        SHARDS_ROOT / "rebuild", "cdfg", COUNT, seed=7, workers=4,
        shard_size=16, cache_dir=cache,
    )
    print(
        f"warm rebuild: {warm.cache_hits}/{warm.built} cache hits, "
        f"{warm.points_per_second:.0f} pts/s "
        f"({warm.points_per_second / stats.points_per_second:.1f}x the cold build)"
    )


if __name__ == "__main__":
    main()
