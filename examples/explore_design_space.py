#!/usr/bin/env python3
"""Walkthrough of the ``repro.dse`` subsystem.

The earlier ``design_space_exploration.py`` example sweeps a manually
rewritten kernel variant-by-variant; this one drives the real DSE stack:
a :class:`~repro.dse.space.DesignSpace` over per-loop directives, the
batched predictor backend, a search strategy, Pareto extraction and ADRS
against exhaustive ground truth.

Run:  python examples/explore_design_space.py
(REPRO_EPOCHS=8 makes it quicker at the cost of predictor quality.)
"""

from repro.dse import (
    DesignSpace,
    GroundTruthEvaluator,
    PredictorEvaluator,
    adrs,
    explore,
    pareto_front,
)
from repro.experiments.common import get_scale
from repro.experiments.publish import train_predictor
from repro.serve import PredictionService, ServiceConfig
from repro.suites.registry import suite_programs
from repro.utils.tables import format_table


def main() -> None:
    # 1. The kernel and its directive space: every loop gets an unroll
    #    factor and a pipeline flag; the cross product is the space.
    program = next(p for p in suite_programs("machsuite") if p.name == "ms_gemm")
    space = DesignSpace.from_program(program, unroll_options=(1, 2, 4, 8))
    print(f"{program.name}: {len(space.knobs)} loop knobs, "
          f"{space.size} design points\n")

    # 2. A QoR predictor served through the micro-batching service. The
    #    training distribution includes randomly-directived programs, so
    #    the model has seen the directive feature columns it must rank.
    scale = get_scale()
    print(f"training an off-the-shelf GCN at scale '{scale.name}' ...")
    predictor, metrics = train_predictor("off_the_shelf", scale,
                                         model_name="gcn", mode="cdfg")
    print(f"test MAPE {metrics['test_mape_mean']:.3f}\n")
    service = PredictionService(
        predictor,
        ServiceConfig(max_batch_size=512, cache_size=8192, validate=False),
    )

    # 3. Search a quarter of the space with the epsilon-greedy strategy;
    #    hundreds of candidate graphs flow through one fused model call
    #    per batch, revisits hit the fingerprint cache.
    result = explore(
        space,
        PredictorEvaluator(service, program, space),
        strategy="greedy",
        budget=space.size // 4,
        seed=0,
    )
    print(f"greedy explored {result.evaluated}/{space.size} points at "
          f"{result.points_per_second:.0f} points/s "
          f"({result.stats['service']['batches']} fused batches)\n")

    # 4. Score the found frontier with the analytical flow and compare
    #    against the exhaustive ground-truth frontier (ADRS).
    ground_truth = GroundTruthEvaluator(program, space)
    reference = explore(space, ground_truth, strategy="exhaustive")
    rescored = ground_truth.evaluate_many([e.point for e in result.frontier])
    true_front = pareto_front(rescored, key=lambda e: e.objectives())
    score = adrs(
        reference.frontier_objectives(),
        [e.objectives() for e in true_front],
    )

    rows = [
        [e.point.label(), f"{e.latency_ns:.0f}", f"{e.dsp:.0f}",
         f"{e.lut:.0f}", f"{e.ff:.0f}", f"{e.cp_ns:.2f}"]
        for e in true_front
    ]
    print(format_table(
        ["design point", "latency (ns)", "DSP", "LUT", "FF", "CP (ns)"],
        rows,
        title="Predictor-selected frontier (ground-truth QoR)",
    ))
    print(f"\nADRS vs exhaustive ground truth: {score:.4f} "
          f"(0 = the predictor found the true frontier)")
    print(f"throughput: predictor {result.points_per_second:.0f} points/s "
          f"vs analytical flow {reference.points_per_second:.0f} points/s")


if __name__ == "__main__":
    main()
