#!/usr/bin/env python3
"""Design-space exploration with a pre-HLS QoR predictor.

The paper motivates early prediction with agile design iteration: an
architect sweeps a design knob and wants QoR feedback in seconds, not
HLS-hours. This example sweeps the datapath bitwidth and unroll factor
of a dot-product accelerator, predicts DSP/LUT/FF/CP for every variant
with a GNN trained on synthetic programs, and checks the predicted
Pareto ranking against the simulated implementation ground truth.

Run:  python examples/design_space_exploration.py
"""

import numpy as np

from repro.dataset import build_graph, build_synthetic_dataset, split_dataset
from repro.frontend import (
    ArrayRef,
    Assign,
    BinOp,
    Decl,
    For,
    Function,
    IntConst,
    Program,
    Return,
    Var,
)
from repro.typesys import CArray, CInt
from repro.models import OffTheShelfPredictor, PredictorConfig
from repro.training import TrainConfig
from repro.utils.tables import format_table


def dot_kernel(width: int, unroll: int, length: int = 32) -> Program:
    """Dot product with ``unroll`` parallel accumulators (manual unroll —
    the classic HLS throughput/resource trade-off)."""
    elem = CInt(width)
    acc_t = CInt(min(2 * width, 64))
    body = [Decl(f"acc{u}", acc_t, IntConst(0)) for u in range(unroll)]
    body.append(
        For("i", 0, length // unroll, 1, body=[
            Assign(
                Var(f"acc{u}"),
                BinOp("+", Var(f"acc{u}"),
                      BinOp("*",
                            ArrayRef("a", BinOp("+", BinOp("*", Var("i"), IntConst(unroll)), IntConst(u))),
                            ArrayRef("b", BinOp("+", BinOp("*", Var("i"), IntConst(unroll)), IntConst(u))))),
            )
            for u in range(unroll)
        ])
    )
    total = Var("acc0")
    for u in range(1, unroll):
        total = BinOp("+", total, Var(f"acc{u}"))
    body.append(Return(total))
    fn = Function(
        f"dot_w{width}_u{unroll}",
        [("a", CArray(elem, length)), ("b", CArray(elem, length))],
        acc_t,
        body,
    )
    return Program(fn.name, [fn])


def main() -> None:
    print("training the off-the-shelf predictor on synthetic CDFGs ...")
    dataset = build_synthetic_dataset("cdfg", 160, seed=0)
    train, val, _ = split_dataset(dataset, seed=0)
    predictor = OffTheShelfPredictor(PredictorConfig(
        model_name="rgcn", hidden_dim=48, num_layers=3,
        train=TrainConfig(epochs=30, batch_size=16, lr=3e-3),
    ))
    predictor.fit(train, val)

    print("sweeping the design space (4 widths x 3 unroll factors) ...\n")
    rows = []
    predicted_dsp, actual_dsp = [], []
    for width in (8, 16, 32, 64):
        for unroll in (1, 2, 4):
            variant = dot_kernel(width, unroll)
            sample = build_graph(variant, kind="cdfg")
            prediction = predictor.predict([sample])[0]
            rows.append([
                f"w={width} u={unroll}",
                f"{prediction[0]:.1f} / {sample.y[0]:.0f}",
                f"{prediction[1]:.0f} / {sample.y[1]:.0f}",
                f"{prediction[2]:.0f} / {sample.y[2]:.0f}",
                f"{prediction[3]:.2f} / {sample.y[3]:.2f}",
            ])
            predicted_dsp.append(prediction[0])
            actual_dsp.append(sample.y[0])

    print(format_table(
        ["variant", "DSP pred/true", "LUT pred/true", "FF pred/true",
         "CP pred/true"],
        rows,
        title="Design-space sweep (prediction vs simulated implementation)",
    ))

    # Rank agreement: does the predictor order variants like the flow does?
    from scipy.stats import spearmanr

    rho = spearmanr(predicted_dsp, actual_dsp).statistic
    print(f"\nSpearman rank correlation on DSP across variants: {rho:.2f}")
    print("(positive rank agreement means the predictor can steer DSE "
          "without running HLS per variant)")


if __name__ == "__main__":
    main()
