#!/usr/bin/env python3
"""Serving: train once, publish, answer batched queries forever.

The DSE workflows built on this predictor (Sohrabizadeh et al.,
Ferretti et al.) query it thousands of times per exploration — so the
model must be trained *once*, saved, and served cheaply. This example
walks that lifecycle:

1. train a small hierarchical (knowledge-infused) predictor,
2. publish it to a model registry (versioned artifact on disk),
3. stand up a ``PredictionService`` from the registry in "another
   process" (nothing shared with the trainer but the directory),
4. answer a raw C-source request end to end,
5. run a mock DSE loop — repeated, overlapping queries — and watch the
   micro-batcher and fingerprint cache absorb the traffic.

Run:  python examples/serve_predictions.py
"""

import tempfile
import time

import numpy as np

from repro.dataset import TARGET_NAMES, build_synthetic_dataset, split_dataset
from repro.models import HierarchicalPredictor, PredictorConfig
from repro.serve import ModelRegistry, PredictionService, ServiceConfig
from repro.training import TrainConfig

KERNEL = """
#include <stdint.h>

int32_t fir(int16_t x[16], int16_t h[16]) {
    int32_t acc = 0;
    for (int i = 0; i < 16; i++) {
        acc = acc + x[i] * h[i];
    }
    return acc;
}
"""


def main() -> None:
    # 1. Train (the expensive step — everything after reuses it).
    print("[1/5] building dataset and training ...")
    samples = build_synthetic_dataset("cdfg", 60, seed=0)
    train, val, test = split_dataset(samples, seed=0)
    config = PredictorConfig(
        model_name="rgcn",
        hidden_dim=32,
        num_layers=2,
        train=TrainConfig(epochs=10, batch_size=16),
    )
    predictor = HierarchicalPredictor(config)
    predictor.fit(train, val)
    test_mape = predictor.evaluate(test)
    print(f"      test MAPE: {np.mean(test_mape):.3f}")

    with tempfile.TemporaryDirectory() as root:
        # 2. Publish a versioned artifact under a name.
        registry = ModelRegistry(root)
        record = registry.register(
            "rgcn-hier",
            predictor,
            extras={"test_mape_mean": round(float(np.mean(test_mape)), 4)},
        )
        print(f"[2/5] published {record.name} v{record.version} -> {record.path}")

        # 3. A consumer resolves by name — no training code involved.
        service = PredictionService.from_registry(
            root, "rgcn-hier", config=ServiceConfig(max_batch_size=16)
        )
        print("[3/5] service up; model reloaded bitwise from the artifact")

        # 4. One raw C-source request, end to end.
        values = service.predict_source(KERNEL)
        pretty = ", ".join(
            f"{name}={value:.1f}" for name, value in zip(TARGET_NAMES, values)
        )
        print(f"[4/5] fir kernel -> {pretty}")

        # 5. Mock DSE loop: 4 sweeps over the same candidate set.
        candidates = list(test)
        start = time.perf_counter()
        for _ in range(4):
            service.predict(candidates)
        elapsed = time.perf_counter() - start
        stats = service.stats
        print(
            f"[5/5] DSE loop: {stats.requests - 1} queries in {elapsed:.2f}s — "
            f"{stats.model_graphs} model evaluations in {stats.batches} "
            f"batches, {stats.cache_hits} cache hits"
        )


if __name__ == "__main__":
    main()
