#!/usr/bin/env python3
"""Profile a training + serving run end to end with ``repro.obs``.

Opens a :class:`~repro.obs.RunLedger` (JSON-lines under
``$REPRO_OBS_DIR``, default ``./obs``), turns on tensor-op profiling,
trains a small GCN regressor, then answers a burst of prediction
requests through a :class:`~repro.serve.PredictionService` so serving
latency percentiles land in the same run. Finally renders the Markdown
report in-process — the same output as::

    python -m repro.obs report --latest

Run:  REPRO_OBS_DIR=/tmp/obs python examples/profile_training_run.py
"""

from __future__ import annotations

import logging

import numpy as np

from repro.dataset import build_synthetic_dataset, split_dataset
from repro.models import OffTheShelfPredictor, PredictorConfig
from repro.obs import RunLedger, load_run
from repro.obs.report import render_report
from repro.serve import PredictionService, ServiceConfig
from repro.tensor import use_profiling
from repro.training import TrainConfig

logging.basicConfig(level=logging.INFO, format="%(name)s: %(message)s")


def main() -> int:
    samples = build_synthetic_dataset("dfg", 48, seed=7)
    train, val, test = split_dataset(samples, seed=7)
    config = PredictorConfig(
        model_name="gcn",
        hidden_dim=24,
        num_layers=2,
        train=TrainConfig(epochs=5, batch_size=16, log_every=1),
    )

    with RunLedger(
        "train",
        meta={"example": "profile_training_run"},
        config={"model": "gcn", "epochs": config.train.epochs},
    ) as ledger:
        # Tensor-op profiling is off by default; scope it to the work
        # being measured and attach the profile so op counts + kernel
        # timings land in the ledger on close.
        with use_profiling() as profile:
            predictor = OffTheShelfPredictor(config)
            predictor.fit(train, val)

            service = PredictionService(
                predictor, ServiceConfig(max_batch_size=16)
            )
            requests = [g.with_features(g.node_features) for g in test + val]
            service.predict(requests)  # batched cold pass
            service.predict(requests)  # cache-served pass
        ledger.attach_profile(profile)
        ledger.attach_registry(service.metrics)

    report = render_report(load_run(ledger.path))
    print()
    print(report)
    print(f"ledger: {ledger.path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
