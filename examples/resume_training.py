#!/usr/bin/env python3
"""Crash-safe training: kill a run mid-epoch, resume it, match bitwise.

Trains the same GCN regressor twice:

1. a clean, uninterrupted run — the reference loss curve;
2. a run with checkpointing on that gets "killed" mid-epoch by a
   deterministic ``train.step`` fault, then resumed from the flushed
   snapshot with ``resume=True``.

The resumed curve must equal the clean one **bitwise** — checkpoints
capture model parameters, optimizer moments, every RNG stream and the
exact position in the batch schedule, so a crash costs wall-clock time
but never reproducibility. The CI chaos smoke runs this script and
relies on the parity assertion at the bottom.

Run:  python examples/resume_training.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.dataset import build_synthetic_dataset, split_dataset
from repro.faults import FaultPlan, FaultSpec, WorkerKilled, use_faults
from repro.gnn import GraphRegressor
from repro.training import CheckpointConfig, TrainConfig, train_graph_regressor
from repro.utils import seed_all

CKPT_ROOT = Path(tempfile.mkdtemp(prefix="repro-ckpt-"))


def make_model(in_dim: int) -> GraphRegressor:
    # One seed_all per run: dropout layers fork the process-global
    # generator at construction, so reseeding here makes clean and
    # killed runs draw identical masks.
    seed_all(11)
    return GraphRegressor(
        "gcn",
        in_dim=in_dim,
        hidden_dim=24,
        num_layers=2,
        num_edge_types=8,
        dropout=0.1,
    )


def main() -> int:
    samples = build_synthetic_dataset("dfg", 48, seed=7)
    train, val, _ = split_dataset(samples, seed=7)
    config = TrainConfig(epochs=6, batch_size=8, seed=0)
    checkpoint = CheckpointConfig(
        dir=CKPT_ROOT / "run", every_epochs=2, keep_last=2
    )
    steps_per_epoch = -(-len(train) // config.batch_size)

    # -- reference: clean, uninterrupted ---------------------------------
    clean = train_graph_regressor(make_model(train[0].feature_dim),
                                  train, val, config)
    print(f"clean run:   best val MAPE {clean.best_val_metric:.4f} "
          f"at epoch {clean.best_epoch}")

    # -- chaos: kill mid-epoch 4, two snapshots into the run --------------
    kill_step = 3 * steps_per_epoch + 2
    plan = FaultPlan(specs=(
        FaultSpec(seam="train.step", fail_on_calls=(kill_step,), kill=True),
    ))
    try:
        with use_faults(plan):
            train_graph_regressor(make_model(train[0].feature_dim),
                                  train, val, config, checkpoint=checkpoint)
    except WorkerKilled:
        snapshots = sorted(
            p.name for p in (CKPT_ROOT / "run").iterdir()
            if p.name.startswith("ckpt-")
        )
        print(f"killed at step {kill_step}; snapshots on disk: {snapshots}")

    # -- resume from the newest snapshot ----------------------------------
    resumed = train_graph_regressor(
        make_model(train[0].feature_dim), train, val, config,
        checkpoint=checkpoint, resume=True,
    )
    print(f"resumed run: best val MAPE {resumed.best_val_metric:.4f} "
          f"at epoch {resumed.best_epoch}")

    identical = (
        clean.history == resumed.history
        and clean.best_val_metric == resumed.best_val_metric
        and all(
            np.array_equal(clean.best_state[k], resumed.best_state[k])
            for k in clean.best_state
        )
    )
    print(f"bitwise parity (history, best metric, weights): {identical}")
    assert identical, "resumed run diverged from the clean run"
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
