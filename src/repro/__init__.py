"""repro — reproduction of "High-Level Synthesis Performance Prediction using
GNNs: Benchmarking, Modeling, and Advancing" (Wu et al., DAC 2022).

The package is organised bottom-up:

- :mod:`repro.tensor` — a numpy reverse-mode autograd engine.
- :mod:`repro.nn`, :mod:`repro.optim` — neural-network layers and optimisers.
- :mod:`repro.graph` — graph containers and mini-batching.
- :mod:`repro.gnn` — the 14 GNN architectures screened by the paper.
- :mod:`repro.frontend`, :mod:`repro.ir` — mini-C AST, LLVM-flavoured IR and
  DFG/CDFG extraction (the HLS front-end substitute).
- :mod:`repro.ldrgen` — the synthetic C program generator.
- :mod:`repro.hls` — scheduling/binding/implementation simulator providing
  ground-truth DSP/LUT/FF/CP labels and a biased synthesis report.
- :mod:`repro.suites` — MachSuite/CHStone/PolyBench kernel substitutes.
- :mod:`repro.dataset` — benchmark construction (Table 1 features, labels,
  splits, serialisation).
- :mod:`repro.models` — the three prediction approaches (off-the-shelf,
  knowledge-rich, knowledge-infused hierarchical GNN).
- :mod:`repro.training` — losses, metrics and the trainer.
- :mod:`repro.experiments` — one runner per paper table (Tables 2-5).
- :mod:`repro.serve` — model artifacts, registry and the batched
  inference service.

Saving and serving predictors
-----------------------------
Trained predictors outlive the training process: ``repro.serve`` saves
any of the three approaches as a versioned artifact (JSON manifest +
``.npz`` weights), publishes it to a directory-backed model registry,
and serves predictions — for pre-encoded graphs or raw mini-C source —
through a micro-batching, fingerprint-cached ``PredictionService``::

    from repro.serve import ModelRegistry, PredictionService

    ModelRegistry("model-registry").register("rgcn-hier", predictor)
    service = PredictionService.from_registry("model-registry", "rgcn-hier")
    dsp, lut, ff, cp = service.predict_source(c_source_text)

The same flow is scriptable via ``python -m repro.serve``
(``save`` / ``list`` / ``predict`` / ``bench``) and
``python -m repro.experiments publish``; see :mod:`repro.serve` for the
full tour and ``examples/serve_predictions.py`` for a runnable demo.
"""

from repro.version import __version__

__all__ = ["__version__"]
