"""repro — reproduction of "High-Level Synthesis Performance Prediction using
GNNs: Benchmarking, Modeling, and Advancing" (Wu et al., DAC 2022).

The package is organised bottom-up:

- :mod:`repro.tensor` — a numpy reverse-mode autograd engine.
- :mod:`repro.nn`, :mod:`repro.optim` — neural-network layers and optimisers.
- :mod:`repro.graph` — graph containers and mini-batching.
- :mod:`repro.gnn` — the 14 GNN architectures screened by the paper.
- :mod:`repro.frontend`, :mod:`repro.ir` — mini-C AST, LLVM-flavoured IR and
  DFG/CDFG extraction (the HLS front-end substitute).
- :mod:`repro.ldrgen` — the synthetic C program generator.
- :mod:`repro.hls` — scheduling/binding/implementation simulator providing
  ground-truth DSP/LUT/FF/CP labels and a biased synthesis report.
- :mod:`repro.suites` — MachSuite/CHStone/PolyBench kernel substitutes.
- :mod:`repro.dataset` — benchmark construction (Table 1 features, labels,
  splits, serialisation).
- :mod:`repro.models` — the three prediction approaches (off-the-shelf,
  knowledge-rich, knowledge-infused hierarchical GNN).
- :mod:`repro.training` — losses, metrics and the trainer.
- :mod:`repro.experiments` — one runner per paper table (Tables 2-5).
"""

from repro.version import __version__

__all__ = ["__version__"]
