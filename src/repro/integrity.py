"""End-to-end artifact integrity: content digests, verified loads.

Every durable artifact the system produces — training checkpoints
(:mod:`repro.training.checkpoint`), serve artifacts (``weights.npz`` +
``manifest.json``), dataset shards (``shard-*.npz``) — records a content
digest at write time and verifies it on every load, so silent disk or
transfer corruption surfaces as a typed :class:`IntegrityError` at the
boundary instead of NaNs (or worse, plausible-but-wrong predictions)
deep inside a run.

Digests are self-describing ``"sha256:<hex>"`` strings over the exact
bytes on disk. Loads route through :func:`read_bytes`, which passes the
raw bytes through the ``io.read`` fault seam (:mod:`repro.faults`):
chaos tests flip a deterministic byte with ``FaultSpec(seam="io.read",
corrupt=True, ...)`` and assert the digest check catches it, without
touching the real file.

Failure taxonomy:

- :class:`DigestMismatch` — the bytes hash differently than the
  recorded digest (bit flips, truncation, partial writes);
- :class:`IntegrityError` (base) — also raised directly when an archive
  with no recorded digest fails to parse at all.

Callers decide the recovery policy: the checkpoint resolver skips-and-
warns back to an older snapshot, the model registry refuses the
artifact outright, and the serving tier's hot reload keeps workers on
their current model instead of swapping in a corrupt candidate.
"""

from __future__ import annotations

import hashlib
import io
import zipfile
from pathlib import Path

import numpy as np

from repro.faults import fault_data

__all__ = [
    "DigestMismatch",
    "IntegrityError",
    "digest_bytes",
    "digest_file",
    "load_npz_verified",
    "read_bytes",
    "verify_bytes",
]

#: Fault seam every verified read passes its bytes through.
READ_SEAM = "io.read"


class IntegrityError(ValueError):
    """An artifact failed its integrity check on load."""


class DigestMismatch(IntegrityError):
    """Bytes on disk hash differently than the recorded content digest."""


def digest_bytes(data: bytes) -> str:
    """Self-describing content digest of ``data``."""
    return "sha256:" + hashlib.sha256(data).hexdigest()


def digest_file(path: str | Path) -> str:
    """Digest of a file's exact on-disk bytes (no fault seam: this is
    the write-side hash that gets recorded)."""
    return digest_bytes(Path(path).read_bytes())


def read_bytes(path: str | Path, key: str | None = None) -> bytes:
    """Read a file through the ``io.read`` fault seam.

    ``key`` (default: the file name) scopes fault specs to individual
    artifacts; a ``corrupt=True`` spec flips a seeded byte in the
    returned buffer, a plain spec raises — both without modifying disk.
    """
    path = Path(path)
    data = path.read_bytes()
    return fault_data(READ_SEAM, key if key is not None else path.name, data)


def verify_bytes(data: bytes, expected: str, label: str) -> None:
    """Raise :class:`DigestMismatch` unless ``data`` hashes to ``expected``."""
    actual = digest_bytes(data)
    if actual != expected:
        raise DigestMismatch(
            f"{label}: content digest mismatch (expected {expected}, "
            f"got {actual}) — artifact is corrupt or was tampered with"
        )


def load_npz_verified(
    path: str | Path,
    expected: str | None = None,
    label: str | None = None,
    key: str | None = None,
) -> dict[str, np.ndarray]:
    """Load an ``.npz`` archive with digest verification.

    Bytes come through :func:`read_bytes` (the fault seam), are checked
    against ``expected`` when a digest was recorded, and only then
    parsed. A parse failure on an archive *without* a recorded digest
    (legacy artifacts) still raises :class:`IntegrityError`, so torn
    files never escape as cryptic ``zipfile`` errors.
    """
    path = Path(path)
    label = label or str(path)
    data = read_bytes(path, key=key)
    if expected:
        verify_bytes(data, expected, label)
    try:
        with np.load(io.BytesIO(data), allow_pickle=False) as archive:
            return {name: archive[name] for name in archive.files}
    except (ValueError, OSError, KeyError, zipfile.BadZipFile) as exc:
        raise IntegrityError(f"{label}: unreadable archive: {exc}") from exc
