"""Learning-rate schedules (applied by mutating the optimiser's lr)."""

from __future__ import annotations

import math

from repro.optim.optimizer import Optimizer


class StepDecay:
    """Multiply the lr by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        self.optimizer.lr = self.base_lr * self.gamma ** (self.epoch // self.step_size)


class CosineDecay:
    """Cosine annealing from the base lr to ``min_lr`` over ``total`` epochs."""

    def __init__(self, optimizer: Optimizer, total: int, min_lr: float = 0.0):
        if total <= 0:
            raise ValueError("total must be positive")
        self.optimizer = optimizer
        self.total = total
        self.min_lr = min_lr
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch = min(self.epoch + 1, self.total)
        ratio = 0.5 * (1.0 + math.cos(math.pi * self.epoch / self.total))
        self.optimizer.lr = self.min_lr + (self.base_lr - self.min_lr) * ratio
