"""Optimiser base class."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.tensor import Tensor


class Optimizer:
    def __init__(self, parameters: Iterable[Tensor], lr: float):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # -- state -----------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat ``name -> array copy`` of the optimiser's mutable state.

        Same contract as :meth:`repro.nn.module.Module.state_dict`:
        ``load_state_dict(state_dict())`` is an exact no-op, every value
        is ``.npz``-serialisable, and a round-trip through disk restores
        the optimiser bitwise — stepping a restored optimiser produces
        the same parameter updates as stepping the original. Stateless
        optimisers return ``{}``.
        """
        return {}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        expected = self.state_dict()
        missing = set(expected) - set(state)
        unexpected = set(state) - set(expected)
        if missing or unexpected:
            raise KeyError(
                f"optimizer state mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        self._load_state(state)

    def _load_state(self, state: dict[str, np.ndarray]) -> None:
        if state:
            raise NotImplementedError

    @staticmethod
    def _copy_buffers(name: str, buffers: list[np.ndarray]) -> dict[str, np.ndarray]:
        return {f"{name}.{i}": buffer.copy() for i, buffer in enumerate(buffers)}

    @staticmethod
    def _restore_buffers(
        name: str, buffers: list[np.ndarray], state: dict[str, np.ndarray]
    ) -> None:
        for i, buffer in enumerate(buffers):
            value = np.asarray(state[f"{name}.{i}"])
            if buffer.shape != value.shape:
                raise ValueError(
                    f"shape mismatch for {name}.{i}: {buffer.shape} vs {value.shape}"
                )
            buffer[...] = value
