"""Optimiser base class."""

from __future__ import annotations

from typing import Iterable

from repro.tensor import Tensor


class Optimizer:
    def __init__(self, parameters: Iterable[Tensor], lr: float):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError
