"""Global-norm gradient clipping."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.tensor import Tensor


def clip_grad_norm(parameters: Iterable[Tensor], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (useful for logging divergence).
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    clipped = [p for p in parameters if p.grad is not None]
    if not clipped:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in clipped)))
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        for p in clipped:
            # Replace rather than scale in place: with first-gradient
            # ownership a ``.grad`` buffer may be shared with another node.
            p.grad = p.grad * scale
    return total
