"""Gradient-based optimisers (the paper trains every model with Adam)."""

from repro.optim.optimizer import Optimizer
from repro.optim.sgd import SGD
from repro.optim.adam import Adam
from repro.optim.scheduler import CosineDecay, StepDecay
from repro.optim.clip import clip_grad_norm

__all__ = ["Optimizer", "SGD", "Adam", "CosineDecay", "StepDecay", "clip_grad_norm"]
