"""Adam optimiser (Kingma & Ba, 2015) with decoupled weight decay option."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.optim.optimizer import Optimizer
from repro.tensor import Tensor


class Adam(Optimizer):
    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ValueError(f"betas must lie in [0, 1), got {betas}")
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1**self._step
        bias2 = 1.0 - beta2**self._step
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                # AdamW-style decoupled decay.
                parameter.data -= self.lr * self.weight_decay * parameter.data
            m *= beta1
            m += (1.0 - beta1) * grad
            v *= beta2
            v += (1.0 - beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict[str, np.ndarray]:
        state = {"step": np.asarray(self._step, dtype=np.int64)}
        state.update(self._copy_buffers("m", self._m))
        state.update(self._copy_buffers("v", self._v))
        return state

    def _load_state(self, state: dict[str, np.ndarray]) -> None:
        self._step = int(state["step"])
        self._restore_buffers("m", self._m, state)
        self._restore_buffers("v", self._v, state)
