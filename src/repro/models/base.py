"""Shared predictor configuration and feature views.

Datasets are built once with the base (off-the-shelf) features; the
knowledge-rich and knowledge-infused approaches *extend* those features.
``apply_feature_view`` derives the extended graphs without re-running
compilation or HLS.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dataset.features import NUM_EDGE_TYPES_WITH_BACK
from repro.graph.data import GraphData
from repro.training.trainer import TrainConfig


@dataclass
class PredictorConfig:
    """Hyper-parameters shared by all three approaches.

    The paper's setting is ``hidden_dim=300, num_layers=5`` trained 100
    epochs; the scaled presets in :mod:`repro.experiments.common` shrink
    these for CPU runs.
    """

    model_name: str = "rgcn"
    hidden_dim: int = 64
    num_layers: int = 3
    dropout: float = 0.0
    pooling: str = "sum"
    num_edge_types: int = NUM_EDGE_TYPES_WITH_BACK
    seed: int = 0
    train: TrainConfig = field(default_factory=TrainConfig)


def apply_feature_view(graphs: list[GraphData], view: str) -> list[GraphData]:
    """Derive approach-specific features from base-encoded graphs.

    ``view`` is one of:

    - ``"base"`` — unchanged (off-the-shelf);
    - ``"rich"`` — append per-node resource values (DSP raw, log1p LUT,
      log1p FF) from intermediate HLS results;
    - ``"infused"`` — append the three ground-truth resource-type bits
      (used during hierarchical training; inference appends *inferred*
      bits instead, see :class:`~repro.models.knowledge_infused.
      HierarchicalPredictor`).
    """
    if view == "base":
        return list(graphs)
    out = []
    for graph in graphs:
        if view == "rich":
            if graph.node_resources is None:
                raise ValueError("graph lacks node_resources for the rich view")
            # Linear scaling (not log): sum pooling then directly yields
            # quantities proportional to the graph totals, which is the
            # shortcut this approach is supposed to enjoy.
            extra = np.column_stack(
                [
                    graph.node_resources[:, 0] / 4.0,
                    graph.node_resources[:, 1] / 64.0,
                    graph.node_resources[:, 2] / 64.0,
                ]
            )
        elif view == "infused":
            if graph.node_labels is None:
                raise ValueError("graph lacks node_labels for the infused view")
            extra = graph.node_labels
        else:
            raise ValueError(f"unknown view {view!r}")
        out.append(
            graph.with_features(np.concatenate([graph.node_features, extra], axis=1))
        )
    return out


def attach_inferred_types(
    graphs: list[GraphData], inferred: np.ndarray
) -> list[GraphData]:
    """Append model-inferred resource-type bits as extra features.

    ``inferred`` is the concatenated ``[total_nodes, 3]`` 0/1 matrix in
    dataset order (the hierarchical inference path of Fig. 2(b)).
    """
    out = []
    cursor = 0
    for graph in graphs:
        block = inferred[cursor : cursor + graph.num_nodes]
        cursor += graph.num_nodes
        out.append(
            graph.with_features(np.concatenate([graph.node_features, block], axis=1))
        )
    if cursor != len(inferred):
        raise ValueError("inferred matrix does not match total node count")
    return out
