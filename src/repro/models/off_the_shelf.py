"""Approach 1: off-the-shelf GNN regression on raw IR graphs."""

from __future__ import annotations

import numpy as np

from repro.gnn.network import GraphRegressor
from repro.graph.data import GraphData
from repro.models.base import PredictorConfig
from repro.training.trainer import (
    TrainResult,
    evaluate_regressor,
    predict_regressor,
    train_graph_regressor,
)


class OffTheShelfPredictor:
    """Earliest prediction: IR graph in, DSP/LUT/FF/CP out.

    Any of the 14 zoo architectures can back it (``config.model_name``).
    """

    def __init__(self, config: PredictorConfig | None = None):
        self.config = config or PredictorConfig()
        self.model: GraphRegressor | None = None

    def _build(self, in_dim: int) -> GraphRegressor:
        cfg = self.config
        return GraphRegressor(
            cfg.model_name,
            in_dim=in_dim,
            hidden_dim=cfg.hidden_dim,
            num_layers=cfg.num_layers,
            num_edge_types=cfg.num_edge_types,
            out_dim=4,
            pooling=cfg.pooling,
            dropout=cfg.dropout,
            rng=np.random.default_rng(cfg.seed),
        )

    def fit(
        self, train_graphs: list[GraphData], val_graphs: list[GraphData]
    ) -> TrainResult:
        self.model = self._build(train_graphs[0].feature_dim)
        return train_graph_regressor(
            self.model, train_graphs, val_graphs, self.config.train
        )

    def predict(self, graphs: list[GraphData]) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("predictor is not fitted")
        return predict_regressor(self.model, graphs)

    def evaluate(self, graphs: list[GraphData]) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("predictor is not fitted")
        return evaluate_regressor(self.model, graphs)
