"""Approach 1: off-the-shelf GNN regression on raw IR graphs."""

from __future__ import annotations

import numpy as np

from repro.gnn.network import GraphRegressor
from repro.gnn.streaming import predict_regressor_streaming, supports_streaming
from repro.graph.data import GraphData
from repro.models.base import PredictorConfig
from repro.training.checkpoint import CheckpointConfig
from repro.training.trainer import (
    TrainResult,
    evaluate_regressor,
    predict_regressor,
    train_graph_regressor,
)


class OffTheShelfPredictor:
    """Earliest prediction: IR graph in, DSP/LUT/FF/CP out.

    Any of the 14 zoo architectures can back it (``config.model_name``).
    """

    #: Feature view this approach consumes (see ``apply_feature_view``).
    feature_view = "base"
    #: Whether request-time encoding needs intermediate HLS results.
    requires_hls = False

    def __init__(self, config: PredictorConfig | None = None):
        self.config = config or PredictorConfig()
        self.model: GraphRegressor | None = None

    def _build(self, in_dim: int) -> GraphRegressor:
        cfg = self.config
        return GraphRegressor(
            cfg.model_name,
            in_dim=in_dim,
            hidden_dim=cfg.hidden_dim,
            num_layers=cfg.num_layers,
            num_edge_types=cfg.num_edge_types,
            out_dim=4,
            pooling=cfg.pooling,
            dropout=cfg.dropout,
            rng=np.random.default_rng(cfg.seed),
        )

    def fit(
        self,
        train_graphs: list[GraphData],
        val_graphs: list[GraphData],
        *,
        checkpoint: CheckpointConfig | None = None,
        resume: bool = False,
    ) -> TrainResult:
        self.model = self._build(train_graphs[0].feature_dim)
        return train_graph_regressor(
            self.model,
            train_graphs,
            val_graphs,
            self.config.train,
            checkpoint=checkpoint,
            resume=resume,
        )

    def predict(
        self, graphs: list[GraphData], batch_size: int = 64
    ) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("predictor is not fitted")
        return predict_regressor(self.model, graphs, batch_size=batch_size)

    def predict_streaming(
        self, graph: GraphData, *, max_block_nodes: int = 4096, seed: int = 0
    ) -> np.ndarray:
        """``[4]`` prediction for one (large) graph in bounded memory.

        Runs the layer-wise block-streaming path
        (:func:`repro.gnn.streaming.predict_regressor_streaming`): peak
        memory scales with ``max_block_nodes``, not graph size, and the
        output matches ``predict([graph])[0]`` within float
        reassociation tolerance. Architectures that need whole-graph
        state (U-Net, virtual-node) fall back to the full-graph path.
        """
        if self.model is None:
            raise RuntimeError("predictor is not fitted")
        if not supports_streaming(self.model.encoder):
            return self.predict([graph])[0]
        return predict_regressor_streaming(
            self.model, graph, max_block_nodes=max_block_nodes, seed=seed
        )

    def evaluate(self, graphs: list[GraphData]) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("predictor is not fitted")
        return evaluate_regressor(self.model, graphs)

    # -- artifact export ------------------------------------------------
    @property
    def input_dims(self) -> dict[str, int]:
        """Network input widths needed to rebuild the model untrained."""
        if self.model is None:
            raise RuntimeError("predictor is not fitted")
        return {"graph": self.model.encoder.input_proj.in_features}

    def build(self, input_dims: dict[str, int]) -> "OffTheShelfPredictor":
        """Construct the (untrained) network for checkpoint loading."""
        self.model = self._build(input_dims["graph"])
        return self

    def state_dict(self) -> dict[str, np.ndarray]:
        if self.model is None:
            raise RuntimeError("predictor is not fitted")
        return self.model.state_dict()

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        if self.model is None:
            raise RuntimeError("call build() before loading a state dict")
        self.model.load_state_dict(state)
