"""The paper's three prediction approaches.

- :class:`OffTheShelfPredictor` — GNN on raw IR-graph features (earliest).
- :class:`KnowledgeRichPredictor` — adds per-node resource values from
  intermediate HLS results (latest, most accurate).
- :class:`HierarchicalPredictor` — knowledge-infused two-stage model:
  node-level resource-type classification feeding graph-level regression
  (earliest prediction, self-inferred domain knowledge).
"""

from repro.models.base import PredictorConfig, apply_feature_view
from repro.models.off_the_shelf import OffTheShelfPredictor
from repro.models.knowledge_rich import KnowledgeRichPredictor
from repro.models.knowledge_infused import HierarchicalPredictor

__all__ = [
    "PredictorConfig",
    "apply_feature_view",
    "OffTheShelfPredictor",
    "KnowledgeRichPredictor",
    "HierarchicalPredictor",
]
