"""Approach 2: knowledge-rich regression with HLS auxiliary features."""

from __future__ import annotations

import numpy as np

from repro.graph.data import GraphData
from repro.models.base import PredictorConfig, apply_feature_view
from repro.models.off_the_shelf import OffTheShelfPredictor
from repro.training.checkpoint import CheckpointConfig
from repro.training.trainer import TrainResult


class KnowledgeRichPredictor:
    """Latest, most accurate prediction: per-node resource values from
    intermediate HLS results ride along as node features (both during
    training and inference — which is why this approach must wait for the
    HLS tool to run)."""

    feature_view = "rich"
    requires_hls = True

    def __init__(self, config: PredictorConfig | None = None):
        self.config = config or PredictorConfig()
        self._inner = OffTheShelfPredictor(self.config)

    def fit(
        self,
        train_graphs: list[GraphData],
        val_graphs: list[GraphData],
        *,
        checkpoint: CheckpointConfig | None = None,
        resume: bool = False,
    ) -> TrainResult:
        return self._inner.fit(
            apply_feature_view(train_graphs, "rich"),
            apply_feature_view(val_graphs, "rich"),
            checkpoint=checkpoint,
            resume=resume,
        )

    def predict(
        self, graphs: list[GraphData], batch_size: int = 64
    ) -> np.ndarray:
        return self._inner.predict(
            apply_feature_view(graphs, "rich"), batch_size=batch_size
        )

    def predict_streaming(
        self, graph: GraphData, *, max_block_nodes: int = 4096, seed: int = 0
    ) -> np.ndarray:
        """Bounded-memory single-graph prediction (rich feature view)."""
        (rich,) = apply_feature_view([graph], "rich")
        return self._inner.predict_streaming(
            rich, max_block_nodes=max_block_nodes, seed=seed
        )

    def evaluate(self, graphs: list[GraphData]) -> np.ndarray:
        return self._inner.evaluate(apply_feature_view(graphs, "rich"))

    # -- artifact export ------------------------------------------------
    # The inner model consumes *rich* features, so the recorded input
    # width already includes the three appended resource columns.
    @property
    def input_dims(self) -> dict[str, int]:
        return self._inner.input_dims

    def build(self, input_dims: dict[str, int]) -> "KnowledgeRichPredictor":
        self._inner.build(input_dims)
        return self

    def state_dict(self) -> dict[str, np.ndarray]:
        return self._inner.state_dict()

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        self._inner.load_state_dict(state)
