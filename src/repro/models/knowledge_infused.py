"""Approach 3: the knowledge-infused hierarchical GNN (the paper's novel
contribution, Fig. 2(b)).

Training (domain knowledge infused via labels):

1. a node-level GNN classifies each node's resource types (DSP/LUT/FF)
   from base IR features;
2. a graph-level GNN regresses DSP/LUT/FF/CP from base features *plus
   the ground-truth resource-type bits* (teacher forcing).

Inference (zero overhead — nothing beyond the IR graph is needed):

1. the node model *infers* the type bits;
2. the graph model consumes the self-inferred annotation.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

import numpy as np

from repro.gnn.network import GraphRegressor, NodeClassifier
from repro.graph.data import GraphData
from repro.models.base import (
    PredictorConfig,
    apply_feature_view,
    attach_inferred_types,
)
from repro.training.checkpoint import CheckpointConfig
from repro.training.metrics import mape
from repro.training.trainer import (
    TrainResult,
    evaluate_node_classifier,
    predict_node_logits,
    predict_regressor,
    train_graph_regressor,
    train_node_classifier,
)


class HierarchicalPredictor:
    """Two-stage knowledge-infused predictor.

    ``node_model_name`` defaults to the graph model's architecture; the
    paper pairs like with like (RGCN-I, PNA-I).
    """

    feature_view = "infused"
    requires_hls = False

    def __init__(
        self,
        config: PredictorConfig | None = None,
        node_model_name: str | None = None,
        teacher_forcing: bool = False,
    ):
        self.config = config or PredictorConfig()
        self.node_model_name = node_model_name or self.config.model_name
        #: True = stage 2 trains on ground-truth type bits (the paper's
        #: literal description); False (default) = stage 2 trains on the
        #: node model's *own* inferred bits, which matches the inference
        #: path and is markedly more robust when stage-1 accuracy is
        #: imperfect (CDFGs, small training sets).
        self.teacher_forcing = teacher_forcing
        self.node_model: NodeClassifier | None = None
        self.graph_model: GraphRegressor | None = None

    # -- training --------------------------------------------------------
    def fit(
        self,
        train_graphs: list[GraphData],
        val_graphs: list[GraphData],
        *,
        checkpoint: CheckpointConfig | None = None,
        resume: bool = False,
    ) -> tuple[TrainResult, TrainResult]:
        cfg = self.config
        # Each stage checkpoints into its own subdirectory; resuming a run
        # killed during stage 2 replays stage 1 from its final checkpoint
        # (an instant restore — the epoch loop is already exhausted).
        node_ckpt = graph_ckpt = None
        if checkpoint is not None:
            root = Path(checkpoint.dir)
            node_ckpt = dataclasses.replace(checkpoint, dir=root / "node")
            graph_ckpt = dataclasses.replace(checkpoint, dir=root / "graph")
        rng = np.random.default_rng(cfg.seed)
        self.node_model = NodeClassifier(
            self.node_model_name,
            in_dim=train_graphs[0].feature_dim,
            hidden_dim=cfg.hidden_dim,
            num_layers=cfg.num_layers,
            num_edge_types=cfg.num_edge_types,
            dropout=cfg.dropout,
            rng=rng,
        )
        node_result = train_node_classifier(
            self.node_model,
            train_graphs,
            val_graphs,
            cfg.train,
            checkpoint=node_ckpt,
            resume=resume,
        )
        if self.teacher_forcing:
            infused_train = apply_feature_view(train_graphs, "infused")
            infused_val = apply_feature_view(val_graphs, "infused")
        else:
            infused_train = attach_inferred_types(
                train_graphs, self.infer_types(train_graphs)
            )
            infused_val = attach_inferred_types(
                val_graphs, self.infer_types(val_graphs)
            )
        self.graph_model = GraphRegressor(
            cfg.model_name,
            in_dim=infused_train[0].feature_dim,
            hidden_dim=cfg.hidden_dim,
            num_layers=cfg.num_layers,
            num_edge_types=cfg.num_edge_types,
            out_dim=4,
            pooling=cfg.pooling,
            dropout=cfg.dropout,
            rng=rng,
        )
        graph_result = train_graph_regressor(
            self.graph_model,
            infused_train,
            infused_val,
            cfg.train,
            checkpoint=graph_ckpt,
            resume=resume,
        )
        return node_result, graph_result

    # -- inference ---------------------------------------------------------
    def infer_types(
        self, graphs: list[GraphData], batch_size: int = 64
    ) -> np.ndarray:
        """Stage-1 inference: 0/1 resource-type bits for every node."""
        if self.node_model is None:
            raise RuntimeError("predictor is not fitted")
        logits = predict_node_logits(self.node_model, graphs, batch_size=batch_size)
        return (logits > 0).astype(float)

    def predict(
        self, graphs: list[GraphData], batch_size: int = 64
    ) -> np.ndarray:
        if self.graph_model is None:
            raise RuntimeError("predictor is not fitted")
        annotated = attach_inferred_types(
            graphs, self.infer_types(graphs, batch_size=batch_size)
        )
        return predict_regressor(self.graph_model, annotated, batch_size=batch_size)

    # -- evaluation -----------------------------------------------------------
    def evaluate(self, graphs: list[GraphData]) -> np.ndarray:
        """Graph-level MAPE with self-inferred annotations (the honest
        inference path; ground-truth types are never consulted)."""
        pred = self.predict(graphs)
        target = np.stack([g.y for g in graphs])
        return mape(pred, target)

    def evaluate_node_stage(self, graphs: list[GraphData]) -> np.ndarray:
        """Per-task accuracy of the node-level classifier (Table 3)."""
        if self.node_model is None:
            raise RuntimeError("predictor is not fitted")
        return evaluate_node_classifier(self.node_model, graphs)

    # -- artifact export ------------------------------------------------
    # The two stages serialise into one flat state dict with "node." /
    # "graph." prefixes so a single ``.npz`` holds the whole predictor.
    @property
    def input_dims(self) -> dict[str, int]:
        if self.node_model is None or self.graph_model is None:
            raise RuntimeError("predictor is not fitted")
        return {
            "node": self.node_model.encoder.input_proj.in_features,
            "graph": self.graph_model.encoder.input_proj.in_features,
        }

    def build(self, input_dims: dict[str, int]) -> "HierarchicalPredictor":
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        self.node_model = NodeClassifier(
            self.node_model_name,
            in_dim=input_dims["node"],
            hidden_dim=cfg.hidden_dim,
            num_layers=cfg.num_layers,
            num_edge_types=cfg.num_edge_types,
            dropout=cfg.dropout,
            rng=rng,
        )
        self.graph_model = GraphRegressor(
            cfg.model_name,
            in_dim=input_dims["graph"],
            hidden_dim=cfg.hidden_dim,
            num_layers=cfg.num_layers,
            num_edge_types=cfg.num_edge_types,
            out_dim=4,
            pooling=cfg.pooling,
            dropout=cfg.dropout,
            rng=rng,
        )
        return self

    def state_dict(self) -> dict[str, np.ndarray]:
        if self.node_model is None or self.graph_model is None:
            raise RuntimeError("predictor is not fitted")
        state = {f"node.{k}": v for k, v in self.node_model.state_dict().items()}
        state.update(
            {f"graph.{k}": v for k, v in self.graph_model.state_dict().items()}
        )
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        if self.node_model is None or self.graph_model is None:
            raise RuntimeError("call build() before loading a state dict")
        node_state = {
            k[len("node.") :]: v for k, v in state.items() if k.startswith("node.")
        }
        graph_state = {
            k[len("graph.") :]: v for k, v in state.items() if k.startswith("graph.")
        }
        if len(node_state) + len(graph_state) != len(state):
            stray = [
                k
                for k in state
                if not k.startswith("node.") and not k.startswith("graph.")
            ]
            raise KeyError(f"unprefixed keys in hierarchical state dict: {stray}")
        self.node_model.load_state_dict(node_state)
        self.graph_model.load_state_dict(graph_state)
