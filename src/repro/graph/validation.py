"""Structural validation of graph samples (used by dataset builders)."""

from __future__ import annotations

import numpy as np

from repro.graph.data import GraphData


class GraphValidationError(ValueError):
    """Raised when a graph sample is internally inconsistent."""


def validate_graph(graph: GraphData) -> None:
    """Raise :class:`GraphValidationError` on any structural problem."""
    n = graph.num_nodes
    if n == 0:
        raise GraphValidationError("graph has no nodes")
    if not np.isfinite(graph.node_features).all():
        raise GraphValidationError("non-finite node features")
    if graph.edge_index.ndim != 2 or graph.edge_index.shape[0] != 2:
        raise GraphValidationError(
            f"edge_index must have shape (2, E), got {graph.edge_index.shape}"
        )
    if graph.num_edges:
        lo, hi = graph.edge_index.min(), graph.edge_index.max()
        if lo < 0 or hi >= n:
            raise GraphValidationError(
                f"edge index out of range [0, {n}): min={lo}, max={hi}"
            )
        if graph.edge_type.size and graph.edge_type.min() < 0:
            raise GraphValidationError("edge_type ids must be non-negative")
    if graph.edge_type.shape[0] != graph.num_edges:
        raise GraphValidationError("edge_type length mismatch")
    if graph.edge_back.shape[0] != graph.num_edges:
        raise GraphValidationError("edge_back length mismatch")
    if not np.isin(graph.edge_back, (0, 1)).all():
        raise GraphValidationError("edge_back must be 0/1")
    if graph.y is not None:
        if graph.y.shape != (4,):
            raise GraphValidationError(f"y must have shape (4,), got {graph.y.shape}")
        if not np.isfinite(graph.y).all():
            raise GraphValidationError("non-finite targets")
    if graph.node_labels is not None:
        if graph.node_labels.shape != (n, 3):
            raise GraphValidationError(
                f"node_labels must be ({n}, 3), got {graph.node_labels.shape}"
            )
        if not np.isin(graph.node_labels, (0.0, 1.0)).all():
            raise GraphValidationError("node_labels must be binary")
    if graph.node_resources is not None and graph.node_resources.shape != (n, 3):
        raise GraphValidationError(
            f"node_resources must be ({n}, 3), got {graph.node_resources.shape}"
        )


def validate_inference_graph(
    graph: GraphData,
    feature_dim: int | None = None,
    num_edge_types: int | None = None,
) -> None:
    """Validate a graph arriving at the service boundary.

    Runs the full structural checks and additionally pins the graph to the
    *model's* expectations: ``feature_dim`` must match the network input
    and every ``edge_type`` id must fall inside the relation table
    (``[0, num_edge_types)``) — an out-of-range id would silently select
    the wrong relation partition rather than fail loudly.
    """
    validate_graph(graph)
    if feature_dim is not None and graph.feature_dim != feature_dim:
        raise GraphValidationError(
            f"feature dim mismatch: model expects {feature_dim}, "
            f"graph has {graph.feature_dim}"
        )
    if num_edge_types is not None and graph.num_edges:
        hi = int(graph.edge_type.max())
        if hi >= num_edge_types:
            raise GraphValidationError(
                f"edge_type id {hi} out of range [0, {num_edge_types})"
            )
