"""Structural validation of graph samples (used by dataset builders)."""

from __future__ import annotations

import numpy as np

from repro.graph.data import GraphData


class GraphValidationError(ValueError):
    """Raised when a graph sample is internally inconsistent."""


def validate_graph(graph: GraphData) -> None:
    """Raise :class:`GraphValidationError` on any structural problem."""
    n = graph.num_nodes
    if n == 0:
        raise GraphValidationError("graph has no nodes")
    if not np.isfinite(graph.node_features).all():
        raise GraphValidationError("non-finite node features")
    if graph.num_edges:
        lo, hi = graph.edge_index.min(), graph.edge_index.max()
        if lo < 0 or hi >= n:
            raise GraphValidationError(
                f"edge index out of range [0, {n}): min={lo}, max={hi}"
            )
    if graph.edge_type.shape[0] != graph.num_edges:
        raise GraphValidationError("edge_type length mismatch")
    if graph.edge_back.shape[0] != graph.num_edges:
        raise GraphValidationError("edge_back length mismatch")
    if not np.isin(graph.edge_back, (0, 1)).all():
        raise GraphValidationError("edge_back must be 0/1")
    if graph.y is not None:
        if graph.y.shape != (4,):
            raise GraphValidationError(f"y must have shape (4,), got {graph.y.shape}")
        if not np.isfinite(graph.y).all():
            raise GraphValidationError("non-finite targets")
    if graph.node_labels is not None:
        if graph.node_labels.shape != (n, 3):
            raise GraphValidationError(
                f"node_labels must be ({n}, 3), got {graph.node_labels.shape}"
            )
        if not np.isin(graph.node_labels, (0.0, 1.0)).all():
            raise GraphValidationError("node_labels must be binary")
    if graph.node_resources is not None and graph.node_resources.shape != (n, 3):
        raise GraphValidationError(
            f"node_resources must be ({n}, 3), got {graph.node_resources.shape}"
        )
