"""Bounded-memory graph partitioning and neighbor sampling.

Every other path in the repo batches a whole CDFG at once; the designs
the paper targets can be orders of magnitude larger than the synthetic
kernels, so this module cuts one giant :class:`~repro.graph.data.GraphData`
into pieces that fit a memory budget:

- :func:`partition_graph` — deterministic, seeded block partitioner:
  BFS-grown blocks bounded by node count *and* degree sum (hubs close a
  block early), followed by a greedy edge-cut refinement pass that moves
  boundary nodes to the neighboring block where most of their edges
  live. Same graph + same seed → bitwise-identical assignment.
- :class:`PartitionedGraph` — the partition plus per-block *halo* (ghost)
  node sets and block :class:`~repro.gnn.message_passing.GraphContext`
  construction for layer-wise streaming inference
  (:mod:`repro.gnn.streaming`). Block contexts carry the **global**
  symmetric degrees of their local nodes, so degree-normalised layers
  (GCN, PNA) match full-graph execution exactly on core rows.
- :class:`NeighborSampler` — seeded per-layer fan-in capping for
  mini-batch training. The per-node sample draws from an independent
  ``SeedSequence(entropy=seed, spawn_key=(layer, node))`` stream, the
  same contract as :func:`repro.ldrgen.generator.sample_seed`, so the
  output is bitwise-identical for any worker count or chunk order.
- :class:`SampledNodeDataset` — a lazy ``Sequence[GraphData]`` of
  sampled subgraphs that plugs straight into the trainer's
  ``BatchStream`` streaming mode; seed nodes come first in each
  subgraph and ``meta["sampled_core"]`` records how many, which
  :attr:`repro.graph.batch.Batch.core_index` turns into the loss mask.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.data import GraphData
from repro.utils.cache import LRUCache

#: Default bound on the per-partition block-context cache. Each cached
#: context holds the block's induced topology, scatter plans and fused
#: operators; caching *every* block would re-materialise the full graph
#: and defeat the bounded-memory point, so the default keeps only a few
#: hot blocks (layer-wise streaming visits blocks round-robin and mostly
#: reuses the plans within one block visit).
BLOCK_CONTEXT_CACHE_SIZE = 4


def _symmetric_csr(
    edge_index: np.ndarray, num_nodes: int
) -> tuple[np.ndarray, np.ndarray]:
    """CSR (indptr, indices) of the symmetrised edge set.

    Neighbor lists are sorted ascending (lexsort by (src, dst)) so every
    traversal below is order-deterministic. Parallel edges are kept —
    degree counts must match ``GraphContext``'s ``bincount`` semantics.
    """
    src, dst = np.asarray(edge_index, dtype=np.int64).reshape(2, -1)
    sym_src = np.concatenate([src, dst])
    sym_dst = np.concatenate([dst, src])
    order = np.lexsort((sym_dst, sym_src))
    counts = np.bincount(sym_src, minlength=num_nodes)
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, sym_dst[order]


def _neighbors_of(
    indptr: np.ndarray, indices: np.ndarray, nodes: np.ndarray
) -> np.ndarray:
    """Concatenated neighbor lists of ``nodes`` (with repeats)."""
    starts = indptr[nodes]
    counts = indptr[nodes + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.cumsum(counts) - counts
    flat = np.arange(total, dtype=np.int64) + np.repeat(starts - offsets, counts)
    return indices[flat]


class PartitionedGraph:
    """A graph cut into degree-bounded blocks, with halo-aware contexts.

    Built by :func:`partition_graph`. ``blocks[b]`` holds the *core*
    node ids of block ``b`` (ascending); :meth:`block_context` extends a
    block with its ``hops``-hop halo and builds the induced
    ``GraphContext`` whose scatter plans are cached per block **and per
    active backend name** (plan caches inside the context key by backend,
    exactly like full-graph contexts).
    """

    def __init__(
        self,
        graph: GraphData,
        assignment: np.ndarray,
        seed: int,
        max_block_nodes: int,
        context_cache_size: int = BLOCK_CONTEXT_CACHE_SIZE,
    ):
        self.graph = graph
        self.assignment = np.asarray(assignment, dtype=np.int64)
        self.seed = int(seed)
        self.max_block_nodes = int(max_block_nodes)
        num_blocks = int(self.assignment.max()) + 1 if self.assignment.size else 0
        # Stable argsort groups nodes by block, ascending ids within.
        order = np.argsort(self.assignment, kind="stable")
        counts = np.bincount(self.assignment, minlength=num_blocks)
        bounds = np.concatenate([[0], np.cumsum(counts)])
        self.blocks = [
            order[bounds[b] : bounds[b + 1]] for b in range(num_blocks)
        ]
        self._indptr, self._indices = _symmetric_csr(
            graph.edge_index, graph.num_nodes
        )
        #: Global symmetric in-degrees — the override handed to every
        #: block context so GCN/PNA normalisation matches the full graph.
        self.sym_degree = (self._indptr[1:] - self._indptr[:-1]).astype(np.float64)
        self._context_cache = LRUCache(context_cache_size)
        # Global batch statistic a block cannot recover locally: PNA's
        # degree-scaler anchor is the full-graph mean log-degree.
        # Computed once — block contexts are rebuilt freely under the
        # LRU and must not redo a full-N pass each time.
        self.mean_log_degree = (
            max(float(np.log1p(self.sym_degree).mean()), 1e-6)
            if graph.num_nodes
            else 1e-6
        )
        #: Filled in by :func:`partition_graph` for reporting.
        self.refine_moves = 0

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def block_sizes(self) -> np.ndarray:
        return np.array([len(b) for b in self.blocks], dtype=np.int64)

    def edge_cut(self) -> float:
        """Fraction of symmetric edges whose endpoints sit in different
        blocks (0 = no cut)."""
        src, dst = self.graph.edge_index
        if src.size == 0:
            return 0.0
        cut = int((self.assignment[src] != self.assignment[dst]).sum())
        return cut / float(src.size)

    def block_nodes(self, block: int, hops: int = 1) -> tuple[np.ndarray, int]:
        """(local node ids, core count) for ``block`` with a ``hops`` halo.

        Core nodes come first (ascending), then halo nodes (ascending).
        A ``hops``-hop halo makes the induced subgraph exact for ``hops``
        propagations on the core rows: propagation ``t`` only needs
        correct values on the ``(hops - t)``-hop neighborhood, and all
        edges inside it are present.
        """
        core = self.blocks[block]
        member = np.zeros(self.graph.num_nodes, dtype=bool)
        member[core] = True
        frontier = core
        halo: list[np.ndarray] = []
        for _ in range(int(hops)):
            neighbors = np.unique(_neighbors_of(self._indptr, self._indices, frontier))
            fresh = neighbors[~member[neighbors]]
            if fresh.size == 0:
                break
            member[fresh] = True
            halo.append(fresh)
            frontier = fresh
        halo_nodes = (
            np.unique(np.concatenate(halo)) if halo else np.empty(0, dtype=np.int64)
        )
        return np.concatenate([core, halo_nodes]), len(core)

    def block_context(self, block: int, num_edge_types: int, hops: int = 1):
        """(GraphContext, local node ids, core count) for one block.

        The context covers the induced subgraph on core + halo, carries
        the global-degree override, and is LRU-cached per
        ``(block, num_edge_types, hops)`` — bounded, so streaming a
        thousand blocks holds only a few blocks' plans at a time.
        """
        key = (int(block), int(num_edge_types), int(hops))
        return self._context_cache.get_or_create(
            key, lambda: self._build_context(block, num_edge_types, hops)
        )

    def _build_context(self, block: int, num_edge_types: int, hops: int):
        # Imported here: repro.gnn imports repro.graph at module load.
        from repro.gnn.message_passing import GraphContext

        local, core_count = self.block_nodes(block, hops)
        remap = np.full(self.graph.num_nodes, -1, dtype=np.int64)
        remap[local] = np.arange(len(local))
        src, dst = self.graph.edge_index
        mask = (remap[src] >= 0) & (remap[dst] >= 0)
        ctx = GraphContext(
            edge_index=np.stack([remap[src[mask]], remap[dst[mask]]]),
            edge_type=self.graph.edge_type[mask],
            num_nodes=len(local),
            batch=np.zeros(len(local), dtype=np.int64),
            num_graphs=1,
            num_edge_types=num_edge_types,
            sym_degree=self.sym_degree[local],
        )
        ctx.mean_log_degree = self.mean_log_degree
        return ctx, local, core_count

    def __repr__(self) -> str:
        return (
            f"PartitionedGraph(nodes={self.graph.num_nodes}, "
            f"blocks={self.num_blocks}, max_block={self.max_block_nodes}, "
            f"cut={self.edge_cut():.3f}, seed={self.seed})"
        )


def partition_graph(
    graph: GraphData,
    max_block_nodes: int,
    *,
    seed: int = 0,
    refine_passes: int = 2,
    max_block_degree: int | None = None,
    context_cache_size: int = BLOCK_CONTEXT_CACHE_SIZE,
) -> PartitionedGraph:
    """Deterministic degree-bounded block partition of ``graph``.

    Blocks are grown frontier-by-frontier from seeded BFS starts until
    they hit ``max_block_nodes`` nodes or ``max_block_degree`` total
    symmetric degree (default ``8 * max_block_nodes`` — dense hubs close
    a block early so no block's induced edge set explodes). A greedy
    refinement pass then moves boundary nodes to the adjacent block
    holding most of their edges, whenever that respects both bounds; a
    pass that fails to lower the edge cut is rolled back, so the cut is
    monotonically non-increasing. Everything draws from
    ``default_rng(seed)`` — same inputs, same partition, bit for bit.
    """
    if max_block_nodes < 1:
        raise ValueError(f"max_block_nodes must be >= 1, got {max_block_nodes}")
    num_nodes = graph.num_nodes
    if max_block_degree is None:
        max_block_degree = 8 * max_block_nodes
    indptr, indices = _symmetric_csr(graph.edge_index, num_nodes)
    degree = (indptr[1:] - indptr[:-1]).astype(np.int64)

    rng = np.random.default_rng(seed)
    start_order = rng.permutation(num_nodes)
    assignment = np.full(num_nodes, -1, dtype=np.int64)
    start_pos = 0
    assigned = 0
    block = 0
    size = 0
    degree_sum = 0
    # A block keeps absorbing BFS trees (disconnected components, dead
    # frontiers) until its node or degree budget is spent — blocks are
    # buckets, not components.
    while assigned < num_nodes:
        while assignment[start_order[start_pos]] >= 0:
            start_pos += 1
        root = int(start_order[start_pos])
        if size >= max_block_nodes or degree_sum >= max_block_degree:
            block += 1
            size = 0
            degree_sum = 0
        assignment[root] = block
        assigned += 1
        size += 1
        degree_sum += int(degree[root])
        frontier = np.array([root], dtype=np.int64)
        while frontier.size and size < max_block_nodes and degree_sum < max_block_degree:
            neighbors = np.unique(_neighbors_of(indptr, indices, frontier))
            fresh = neighbors[assignment[neighbors] < 0]
            if fresh.size == 0:
                break
            # Admit the ascending-id prefix that fits both bounds.
            fresh = fresh[: max_block_nodes - size]
            fits = int(
                np.searchsorted(
                    np.cumsum(degree[fresh]), max_block_degree - degree_sum, "right"
                )
            )
            # Always admit at least one node so an over-budget hub still
            # lands somewhere instead of looping.
            fresh = fresh[: max(fits, 1)]
            assignment[fresh] = block
            assigned += len(fresh)
            size += len(fresh)
            degree_sum += int(degree[fresh].sum())
            frontier = fresh

    assignment = _refine_edge_cut(
        graph, assignment, block + 1, degree,
        max_block_nodes, max_block_degree, refine_passes,
    )
    if (assignment < 0).any():
        raise AssertionError("partition left unassigned nodes")
    return PartitionedGraph(
        graph, assignment, seed, max_block_nodes,
        context_cache_size=context_cache_size,
    )


def _refine_edge_cut(
    graph: GraphData,
    assignment: np.ndarray,
    num_blocks: int,
    degree: np.ndarray,
    max_block_nodes: int,
    max_block_degree: int,
    passes: int,
) -> np.ndarray:
    """Greedy boundary-node moves; each pass must lower the symmetric
    edge cut or it is rolled back."""
    if num_blocks < 2 or passes < 1:
        return assignment
    src, dst = graph.edge_index
    sym_src = np.concatenate([src, dst])
    sym_dst = np.concatenate([dst, src])
    num_nodes = graph.num_nodes

    def cut(a: np.ndarray) -> int:
        return int((a[sym_src] != a[sym_dst]).sum())

    # Row chunking keeps the (nodes x blocks) count table bounded.
    chunk_rows = max(1, 10_000_000 // num_blocks)
    indptr, indices = _symmetric_csr(graph.edge_index, num_nodes)
    for _ in range(passes):
        before = cut(assignment)
        candidate = assignment.copy()
        sizes = np.bincount(candidate, minlength=num_blocks)
        degree_sums = np.bincount(
            candidate, weights=degree.astype(np.float64), minlength=num_blocks
        ).astype(np.int64)
        moved = 0
        for lo in range(0, num_nodes, chunk_rows):
            rows = np.arange(lo, min(lo + chunk_rows, num_nodes), dtype=np.int64)
            neighbors = _neighbors_of(indptr, indices, rows)
            counts_per = indptr[rows + 1] - indptr[rows]
            row_of = np.repeat(np.arange(len(rows), dtype=np.int64), counts_per)
            table = np.bincount(
                row_of * num_blocks + candidate[neighbors],
                minlength=len(rows) * num_blocks,
            ).reshape(len(rows), num_blocks)
            current = candidate[rows]
            internal = table[np.arange(len(rows)), current]
            best = table.argmax(axis=1)
            gain = table[np.arange(len(rows)), best] - internal
            for i in np.flatnonzero((gain > 0) & (best != current)):
                node = int(rows[i])
                target = int(best[i])
                source = int(candidate[node])
                if (
                    sizes[target] < max_block_nodes
                    and sizes[source] > 1
                    and degree_sums[target] + degree[node] <= max_block_degree
                ):
                    candidate[node] = target
                    sizes[target] += 1
                    sizes[source] -= 1
                    degree_sums[target] += degree[node]
                    degree_sums[source] -= degree[node]
                    moved += 1
        if moved == 0 or cut(candidate) >= before:
            break
        assignment = candidate
    return assignment


class NeighborSampler:
    """Seeded per-layer fan-in capping over one (large) graph.

    ``fanouts[l]`` caps how many neighbors each frontier node of layer
    ``l`` contributes to the receptive field. Each node's sample draws
    from its own ``SeedSequence(entropy=seed, spawn_key=(layer, node))``
    stream — worker count and chunk order cannot change the draw, so
    :meth:`sample` is bitwise-deterministic (the contract the dataset
    pipeline already relies on for program generation).
    """

    def __init__(self, graph: GraphData, fanouts: Sequence[int], seed: int = 0):
        if not fanouts:
            raise ValueError("fanouts must name at least one layer")
        self.graph = graph
        self.fanouts = [int(f) for f in fanouts]
        if any(f < 1 for f in self.fanouts):
            raise ValueError(f"fanouts must be >= 1, got {self.fanouts}")
        self.seed = int(seed)
        # Deduplicated symmetric CSR: sampling semantics, not aggregation
        # — parallel edges would just waste fan-in budget.
        src, dst = graph.edge_index
        key = np.unique(
            np.concatenate([src, dst]) * graph.num_nodes
            + np.concatenate([dst, src])
        )
        sym_src, sym_dst = key // graph.num_nodes, key % graph.num_nodes
        counts = np.bincount(sym_src, minlength=graph.num_nodes)
        self._indptr = np.zeros(graph.num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=self._indptr[1:])
        self._indices = sym_dst

    def _sample_neighbors(self, layer: int, node: int) -> np.ndarray:
        neighbors = self._indices[self._indptr[node] : self._indptr[node + 1]]
        fanout = self.fanouts[layer]
        if len(neighbors) <= fanout:
            return neighbors
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=self.seed, spawn_key=(layer, int(node)))
        )
        chosen = rng.choice(len(neighbors), size=fanout, replace=False)
        return neighbors[np.sort(chosen)]

    def sample_nodes(self, seeds: Sequence[int], workers: int = 1) -> np.ndarray:
        """Sampled receptive field of ``seeds``: seed nodes first (input
        order, deduplicated), then support nodes ascending."""
        seeds = np.asarray(seeds, dtype=np.int64).reshape(-1)
        _, first = np.unique(seeds, return_index=True)
        seeds = seeds[np.sort(first)]
        selected = np.zeros(self.graph.num_nodes, dtype=bool)
        selected[seeds] = True
        frontier = seeds
        workers = max(1, int(workers))
        for layer in range(len(self.fanouts)):
            picked: list[np.ndarray] = []
            # Chunking mirrors a worker pool split; per-node seeding makes
            # the result independent of it.
            for chunk in np.array_split(frontier, min(workers, max(len(frontier), 1))):
                picked.extend(
                    self._sample_neighbors(layer, int(node)) for node in chunk
                )
            if not picked:
                break
            neighbors = np.unique(np.concatenate(picked)) if picked else frontier[:0]
            fresh = neighbors[~selected[neighbors]]
            if fresh.size == 0:
                break
            selected[fresh] = True
            frontier = fresh
        support = np.flatnonzero(selected)
        support = support[~np.isin(support, seeds)]
        return np.concatenate([seeds, support])

    def sample(self, seeds: Sequence[int], workers: int = 1) -> GraphData:
        """Induced subgraph on the sampled receptive field of ``seeds``.

        Seed nodes come first; ``meta["sampled_core"]`` records how many,
        so :attr:`repro.graph.batch.Batch.core_index` can mask losses and
        metrics to rows whose receptive field is honest.
        """
        nodes = self.sample_nodes(seeds, workers=workers)
        graph = self.graph
        remap = np.full(graph.num_nodes, -1, dtype=np.int64)
        remap[nodes] = np.arange(len(nodes))
        src, dst = graph.edge_index
        mask = (remap[src] >= 0) & (remap[dst] >= 0)
        meta = dict(graph.meta)
        meta["sampled_core"] = int(
            len(np.unique(np.asarray(seeds, dtype=np.int64)))
        )
        meta["sampler_seed"] = self.seed
        return GraphData(
            node_features=graph.node_features[nodes],
            edge_index=np.stack([remap[src[mask]], remap[dst[mask]]]),
            edge_type=graph.edge_type[mask],
            edge_back=graph.edge_back[mask],
            y=None,
            node_labels=(
                graph.node_labels[nodes] if graph.node_labels is not None else None
            ),
            node_resources=(
                graph.node_resources[nodes]
                if graph.node_resources is not None
                else None
            ),
            meta=meta,
        )


class SampledNodeDataset(Sequence):
    """Lazy sequence of neighbor-sampled subgraphs over one graph.

    Element ``i`` is the sampled subgraph of seed chunk ``i`` (all nodes
    of the base graph, split into ``seeds_per_graph`` chunks by default).
    ``streaming = True`` and ``gather`` make the trainer's
    ``BatchStream`` rebuild elements lazily per epoch instead of pinning
    them — the sampled-subgraph training mode. Deterministic per sampler
    seed: the same element is bitwise-identical every time it is built.
    """

    streaming = True

    def __init__(
        self,
        sampler: NeighborSampler,
        seed_batches: Sequence[np.ndarray] | None = None,
        *,
        seeds_per_graph: int = 64,
        workers: int = 1,
    ):
        self.sampler = sampler
        if seed_batches is None:
            all_nodes = np.arange(sampler.graph.num_nodes, dtype=np.int64)
            seed_batches = [
                all_nodes[start : start + seeds_per_graph]
                for start in range(0, len(all_nodes), seeds_per_graph)
            ]
        self.seed_batches = [np.asarray(b, dtype=np.int64) for b in seed_batches]
        self.workers = int(workers)

    def __len__(self) -> int:
        return len(self.seed_batches)

    def __getitem__(self, index: int) -> GraphData:
        return self.sampler.sample(self.seed_batches[index], workers=self.workers)

    def gather(self, chunk: Sequence[int]) -> list[GraphData]:
        """Batch-build the subgraphs for one schedule chunk."""
        return [self[int(i)] for i in chunk]
