"""Mini-batching by disjoint union (the PyG convention).

Graphs are concatenated into one big disconnected graph; ``batch`` maps
each node to its source graph so pooling can separate them again.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.data import GraphData
from repro.utils.cache import LRUCache

#: Bound on the per-batch context cache. One batch normally serves one
#: ``num_edge_types`` (a network's edge vocabulary), so 4 distinct keys
#: is already an unusual session — the LRU is the leak guard for long
#: streams that batch the same graphs under many vocabularies.
CONTEXT_CACHE_SIZE = 4


class Batch:
    """Disjoint union of :class:`GraphData` samples."""

    def __init__(self, graphs: Sequence[GraphData]):
        if not graphs:
            raise ValueError("cannot batch zero graphs")
        dims = {g.feature_dim for g in graphs}
        if len(dims) != 1:
            raise ValueError(f"inconsistent feature dims in batch: {sorted(dims)}")
        self.graphs = list(graphs)
        counts = np.array([g.num_nodes for g in graphs], dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(counts)])
        self.ptr = offsets
        self.num_graphs = len(graphs)
        self.num_nodes = int(offsets[-1])
        self.node_features = np.concatenate([g.node_features for g in graphs], axis=0)
        self.edge_index = np.concatenate(
            [g.edge_index + offsets[i] for i, g in enumerate(graphs)], axis=1
        )
        self.edge_type = np.concatenate([g.edge_type for g in graphs])
        self.edge_back = np.concatenate([g.edge_back for g in graphs])
        self.batch = np.repeat(np.arange(self.num_graphs, dtype=np.int64), counts)
        self.y = (
            np.stack([g.y for g in graphs])
            if all(g.y is not None for g in graphs)
            else None
        )
        self.node_labels = (
            np.concatenate([g.node_labels for g in graphs], axis=0)
            if all(g.node_labels is not None for g in graphs)
            else None
        )
        self.node_resources = (
            np.concatenate([g.node_resources for g in graphs], axis=0)
            if all(g.node_resources is not None for g in graphs)
            else None
        )
        #: Per-``num_edge_types`` GraphContext cache, filled by
        #: :meth:`repro.gnn.message_passing.GraphContext.from_batch` so a
        #: reused batch (epoch loops, repeated service flushes) pays for
        #: topology precomputation — symmetrisation, GCN norms, scatter
        #: plans — exactly once. LRU-bounded: contexts hold plans and
        #: operators, and an unbounded map leaks them over long streams.
        self._context_cache = LRUCache(CONTEXT_CACHE_SIZE)
        self._core_index: np.ndarray | None | bool = False

    @property
    def num_edges(self) -> int:
        return self.edge_index.shape[1]

    @property
    def core_index(self) -> np.ndarray | None:
        """Global row ids of *core* (seed) nodes, or ``None``.

        Sampled subgraphs from :class:`repro.graph.partition.NeighborSampler`
        order their seed nodes first and record the count in
        ``meta["sampled_core"]``; losses and metrics must only read those
        rows — the remaining rows are receptive-field support whose
        embeddings are biased by the fan-in cap. ``None`` means every row
        is a real target (no graph in the batch is a sampled subgraph).
        """
        if self._core_index is False:
            counts = [
                int(g.meta.get("sampled_core", g.num_nodes)) for g in self.graphs
            ]
            if all(c == g.num_nodes for c, g in zip(counts, self.graphs)):
                self._core_index = None
            else:
                self._core_index = np.concatenate(
                    [
                        np.arange(count, dtype=np.int64) + self.ptr[i]
                        for i, count in enumerate(counts)
                    ]
                )
        return self._core_index

    @property
    def feature_dim(self) -> int:
        return self.node_features.shape[1]

    def __repr__(self) -> str:
        return (
            f"Batch(graphs={self.num_graphs}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )


def batch_schedule(
    num_graphs: int,
    batch_size: int,
    rng: np.random.Generator | None = None,
) -> list[np.ndarray]:
    """Index chunks for one pass over ``num_graphs`` samples.

    Drawn once and replayed, this is what makes streaming training
    (lazy shard-backed batches, rebuilt every epoch) bitwise-identical
    to in-memory training (batches materialised once): both paths
    consume the same schedule from the same rng draw.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    order = np.arange(num_graphs)
    if rng is not None:
        rng.shuffle(order)
    return [
        order[start : start + batch_size]
        for start in range(0, num_graphs, batch_size)
    ]


def iter_batches(
    graphs: Sequence[GraphData],
    batch_size: int,
    rng: np.random.Generator | None = None,
):
    """Yield :class:`Batch` objects, shuffling when ``rng`` is given.

    ``graphs`` may be any sequence, including the lazy shard-backed
    readers from :mod:`repro.dataset.shards`.
    """
    for chunk in batch_schedule(len(graphs), batch_size, rng):
        yield Batch([graphs[int(i)] for i in chunk])
