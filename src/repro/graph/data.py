"""The per-program graph record consumed by every GNN model.

A :class:`GraphData` is the fully *encoded* form of an IR graph: dense node
features (Table 1 of the paper), integer edge types with back-edge flags,
graph-level regression targets (DSP/LUT/FF/CP) and node-level resource-type
labels. Construction from IR happens in :mod:`repro.dataset.features`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.tensor import get_default_dtype


@dataclass
class GraphData:
    """One graph sample.

    Attributes
    ----------
    node_features:
        ``[num_nodes, feature_dim]`` float array (encoded Table-1 features).
    edge_index:
        ``[2, num_edges]`` int array of (source, target) node ids.
    edge_type:
        ``[num_edges]`` int array of discrete edge-type ids.
    edge_back:
        ``[num_edges]`` 0/1 array marking CDFG back edges.
    y:
        ``[4]`` float array of graph targets ``(DSP, LUT, FF, CP)`` or None.
    node_labels:
        ``[num_nodes, 3]`` 0/1 array of per-node resource types
        ``(uses DSP, uses LUT, uses FF)`` or None.
    node_resources:
        ``[num_nodes, 3]`` float array of per-node resource *values* from
        intermediate HLS results (knowledge-rich features) or None.
    meta:
        Free-form provenance (program name, graph kind "dfg"/"cdfg", suite).
    """

    node_features: np.ndarray
    edge_index: np.ndarray
    edge_type: np.ndarray
    edge_back: np.ndarray
    y: np.ndarray | None = None
    node_labels: np.ndarray | None = None
    node_resources: np.ndarray | None = None
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Model *inputs* adopt the global precision policy (float32 by
        # default); targets/labels stay float64 for metric accuracy.
        self.node_features = np.asarray(self.node_features, dtype=get_default_dtype())
        self.edge_index = np.asarray(self.edge_index, dtype=np.int64).reshape(2, -1)
        self.edge_type = np.asarray(self.edge_type, dtype=np.int64).reshape(-1)
        self.edge_back = np.asarray(self.edge_back, dtype=np.int64).reshape(-1)
        if self.y is not None:
            self.y = np.asarray(self.y, dtype=np.float64).reshape(-1)
        if self.node_labels is not None:
            self.node_labels = np.asarray(self.node_labels, dtype=np.float64)
        if self.node_resources is not None:
            self.node_resources = np.asarray(
                self.node_resources, dtype=get_default_dtype()
            )

    @property
    def num_nodes(self) -> int:
        return self.node_features.shape[0]

    @property
    def num_edges(self) -> int:
        return self.edge_index.shape[1]

    @property
    def feature_dim(self) -> int:
        return self.node_features.shape[1]

    def fingerprint_context(self):
        """Digest of the feature-independent payload (topology + per-node
        resources).

        A DSE loop derives hundreds of candidate graphs from one base
        graph by rewriting feature columns only; hashing the shared
        arrays once and finishing per variant via
        ``fingerprint(context=...)`` keeps the cache key cheap. The
        context is only valid for graphs sharing *identical* topology and
        resource arrays.
        """
        digest = hashlib.sha256()
        arrays = [self.edge_index, self.edge_type, self.edge_back]
        if self.node_resources is not None:
            arrays.append(self.node_resources)
        for array in arrays:
            digest.update(str(array.shape).encode())
            digest.update(np.ascontiguousarray(array).tobytes())
        return digest

    def fingerprint(self, context=None) -> str:
        """Stable content hash of the model-visible payload.

        Covers features, topology and (when present) per-node resource
        values — every input some predictor consumes — but not labels or
        ``meta``, so the same design point always maps to the same key
        regardless of provenance. ``__post_init__`` normalises dtypes,
        making the digest stable across processes — it is the cache key
        of :class:`repro.serve.service.PredictionService`.

        ``context`` may carry this graph's :meth:`fingerprint_context`
        (computed once for a family of same-topology graphs); it is
        copied, never mutated.
        """
        digest = (
            context.copy() if context is not None else self.fingerprint_context()
        )
        digest.update(str(self.node_features.shape).encode())
        digest.update(np.ascontiguousarray(self.node_features).tobytes())
        return digest.hexdigest()

    def with_features(self, node_features: np.ndarray) -> "GraphData":
        """Copy of this graph with replaced node features (same topology)."""
        return GraphData(
            node_features=node_features,
            edge_index=self.edge_index,
            edge_type=self.edge_type,
            edge_back=self.edge_back,
            y=self.y,
            node_labels=self.node_labels,
            node_resources=self.node_resources,
            meta=dict(self.meta),
        )

    def __repr__(self) -> str:
        return (
            f"GraphData(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"features={self.feature_dim}, kind={self.meta.get('kind', '?')})"
        )
