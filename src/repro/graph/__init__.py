"""Graph containers: single graphs, mini-batches, validation."""

from repro.graph.data import GraphData
from repro.graph.batch import Batch
from repro.graph.validation import validate_graph, validate_inference_graph

__all__ = ["GraphData", "Batch", "validate_graph", "validate_inference_graph"]
