"""Graph containers: single graphs, mini-batches, partitions, validation."""

from repro.graph.data import GraphData
from repro.graph.batch import Batch
from repro.graph.partition import (
    NeighborSampler,
    PartitionedGraph,
    SampledNodeDataset,
    partition_graph,
)
from repro.graph.validation import validate_graph, validate_inference_graph

__all__ = [
    "GraphData",
    "Batch",
    "NeighborSampler",
    "PartitionedGraph",
    "SampledNodeDataset",
    "partition_graph",
    "validate_graph",
    "validate_inference_graph",
]
