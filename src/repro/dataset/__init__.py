"""Benchmark construction: encoded graphs with ground-truth labels.

Mirrors Section 3 of the paper: node/edge features per Table 1, two task
families (graph-level regression on DSP/LUT/FF/CP, node-level resource
type classification), synthetic DFG/CDFG datasets from ldrgen and the
real-case generalisation set from the three suites.

Two construction paths share one sample definition:

- :func:`build_synthetic_dataset` / :func:`build_realcase_dataset` —
  simple in-process loops returning lists;
- :func:`repro.dataset.pipeline.build_pipeline` — the production path:
  a multiprocessing pool with deterministic per-sample seeding, a
  content-addressed build cache, and incremental persistence to the
  sharded ``manifest.json`` + ``shard-*.npz`` layout that
  :class:`~repro.dataset.shards.ShardedDataset` streams back lazily.
"""

from repro.dataset.features import (
    FeatureEncoder,
    NUM_EDGE_TYPES_WITH_BACK,
    TARGET_NAMES,
)
from repro.dataset.builder import (
    build_graph,
    build_realcase_dataset,
    build_synthetic_dataset,
)
from repro.dataset.splits import split_dataset
from repro.dataset.io import load_dataset, save_dataset
from repro.dataset.pipeline import BuildCache, BuildStats, build_pipeline
from repro.dataset.shards import (
    ConcatDataset,
    DatasetView,
    Manifest,
    ShardedDataset,
    migrate_dataset,
)
from repro.dataset.stats import DatasetStats, compute_stats, render_stats

__all__ = [
    "FeatureEncoder",
    "NUM_EDGE_TYPES_WITH_BACK",
    "TARGET_NAMES",
    "build_graph",
    "build_realcase_dataset",
    "build_synthetic_dataset",
    "split_dataset",
    "load_dataset",
    "save_dataset",
    "BuildCache",
    "BuildStats",
    "build_pipeline",
    "ConcatDataset",
    "DatasetView",
    "Manifest",
    "ShardedDataset",
    "migrate_dataset",
    "DatasetStats",
    "compute_stats",
    "render_stats",
]
