"""Dataset splitting (the paper uses 80/10/10 random splits)."""

from __future__ import annotations

import numpy as np

from repro.graph.data import GraphData


def split_dataset(
    samples: list[GraphData],
    fractions: tuple[float, float, float] = (0.8, 0.1, 0.1),
    seed: int = 0,
) -> tuple[list[GraphData], list[GraphData], list[GraphData]]:
    """Random train/validation/test split with at least one sample in
    every non-empty partition."""
    if abs(sum(fractions) - 1.0) > 1e-9:
        raise ValueError(f"fractions must sum to 1, got {fractions}")
    if not samples:
        raise ValueError("cannot split an empty dataset")
    order = np.random.default_rng(seed).permutation(len(samples))
    n = len(samples)
    n_train = max(1, int(round(fractions[0] * n)))
    n_val = max(1, int(round(fractions[1] * n))) if n > 2 else 0
    n_train = min(n_train, n - n_val - 1) if n > 2 else n_train
    train = [samples[i] for i in order[:n_train]]
    val = [samples[i] for i in order[n_train : n_train + n_val]]
    test = [samples[i] for i in order[n_train + n_val :]]
    return train, val, test
