"""Dataset splitting (the paper uses 80/10/10 random splits)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.data import GraphData


def split_dataset(
    samples: Sequence[GraphData],
    fractions: tuple[float, float, float] = (0.8, 0.1, 0.1),
    seed: int = 0,
):
    """Random train/validation/test split with at least one sample in
    every non-empty partition.

    Plain lists split into lists (unchanged behaviour). Streaming
    sources — :class:`~repro.dataset.shards.ShardedDataset` and friends,
    marked by ``streaming = True`` — split into lazy
    :class:`~repro.dataset.shards.DatasetView` partitions instead, so a
    shard-backed dataset is never materialised by splitting alone.
    """
    if abs(sum(fractions) - 1.0) > 1e-9:
        raise ValueError(f"fractions must sum to 1, got {fractions}")
    if not len(samples):
        raise ValueError("cannot split an empty dataset")
    order = np.random.default_rng(seed).permutation(len(samples))
    n = len(samples)
    n_train = max(1, int(round(fractions[0] * n)))
    n_val = max(1, int(round(fractions[1] * n))) if n > 2 else 0
    n_train = min(n_train, n - n_val - 1) if n > 2 else n_train
    if getattr(samples, "streaming", False):
        from repro.dataset.shards import DatasetView

        # Same index order as the list path, so a streaming split is
        # sample-for-sample identical to the in-memory one.
        def take(indices):
            return DatasetView(samples, indices)
    else:

        def take(indices):
            return [samples[i] for i in indices]

    train = take(order[:n_train])
    val = take(order[n_train : n_train + n_val])
    test = take(order[n_train + n_val :])
    return train, val, test
