"""Dataset builders: program -> IR -> graph -> HLS labels -> GraphData.

The builders store *raw* per-node labels and resource values on every
sample; approach-specific feature sets are derived later by
re-encoding (see :func:`repro.models.base.apply_feature_view`), so one
built dataset serves all three prediction approaches.
"""

from __future__ import annotations

import numpy as np

from repro.dataset.features import FeatureEncoder, directive_features
from repro.frontend.ast_ import Program
from repro.frontend.lower import lower_program
from repro.graph.data import GraphData
from repro.graph.validation import validate_graph
from repro.hls.flow import HLSResult, run_hls
from repro.hls.resource_library import DEFAULT_DEVICE, DeviceModel
from repro.ir.cdfg import extract_cdfg
from repro.ir.dfg import extract_dfg
from repro.ir.graph import IRGraph
from repro.ldrgen.config import GeneratorConfig
from repro.ldrgen.generator import generate_sample
from repro.suites.registry import SUITE_NAMES, suite_programs


def lower_and_extract(program: Program, kind: str | None = None):
    """Compile a program and extract its graph: ``(function, graph, kind)``.

    ``kind`` forces "dfg" or "cdfg" extraction; by default single-block
    functions produce DFGs and everything else CDFGs (as in the paper's
    benchmark format). Shared by the dataset builders and the serving
    path so training-time and request-time compilation cannot diverge.
    """
    function = lower_program(program)
    if kind is None:
        kind = "dfg" if function.is_single_block else "cdfg"
    if kind == "dfg":
        graph = extract_dfg(function, name=program.name)
    elif kind == "cdfg":
        graph = extract_cdfg(function, name=program.name)
    else:
        raise ValueError(f"kind must be 'dfg' or 'cdfg', got {kind!r}")
    return function, graph, kind


def per_node_arrays(graph: IRGraph, hls: HLSResult) -> tuple[np.ndarray, np.ndarray]:
    """Per-graph-node (resource values, resource types); non-instruction
    nodes (ports, constants, blocks) carry zeros (= "empty")."""
    values = np.zeros((graph.num_nodes, 3))
    types = np.zeros((graph.num_nodes, 3))
    for node in graph.nodes:
        if node.instruction_id is None:
            continue
        if node.instruction_id in hls.node_resources:
            values[node.index] = hls.node_resources[node.instruction_id]
            types[node.index] = hls.node_types[node.instruction_id]
    return values, types


def build_graph(
    program: Program,
    kind: str | None = None,
    encoder: FeatureEncoder | None = None,
    meta: dict | None = None,
    device: DeviceModel = DEFAULT_DEVICE,
) -> GraphData:
    """Compile, synthesise and encode a single program.

    Loop directives on the AST (``For.unroll`` / ``For.pipeline``) are
    honoured end-to-end: the HLS flow applies them when labelling and the
    encoder exposes them as directive feature columns, so the model can
    learn the pragma -> QoR mapping. ``device`` selects the target clock
    (a DSE knob); it reaches both the flow and the clock feature column.
    """
    encoder = encoder or FeatureEncoder()
    function, graph, kind = lower_and_extract(program, kind)
    hls = run_hls(function, device=device)
    values, types = per_node_arrays(graph, hls)
    sample_meta = {"name": program.name, "kind": kind}
    if meta:
        sample_meta.update(meta)
    sample = encoder.encode(
        graph,
        y=hls.impl.as_array(),
        node_labels=types,
        node_resources=values,
        directives=directive_features(function, graph, device=device),
        meta=sample_meta,
    )
    # The biased HLS report rides along for the Table-5 baseline; the
    # latency estimate feeds the DSE objectives.
    sample.meta["hls_report"] = hls.report.as_array().tolist()
    if hls.latency is not None:
        sample.meta["latency_cycles"] = hls.latency.cycles
    validate_graph(sample)
    return sample


def build_synthetic_dataset(
    mode: str,
    num_programs: int,
    seed: int = 0,
    config: GeneratorConfig | None = None,
) -> list[GraphData]:
    """ldrgen-generated DFG or CDFG dataset of ``num_programs`` samples.

    Sample ``i`` is generated from its own derived seed stream
    (:func:`repro.ldrgen.generator.sample_seed`), so this in-process
    loop, the parallel :func:`repro.dataset.pipeline.build_pipeline`
    and any single re-generated sample all agree bitwise.
    """
    if num_programs <= 0:
        raise ValueError("num_programs must be positive")
    config = config or GeneratorConfig(mode=mode)
    if config.mode != mode:
        raise ValueError(f"config mode {config.mode!r} != requested {mode!r}")
    encoder = FeatureEncoder()
    samples = []
    for index in range(num_programs):
        program = generate_sample(config, seed, index)
        samples.append(
            build_graph(program, kind=mode, encoder=encoder, meta={"suite": "synthetic"})
        )
    return samples


def build_realcase_dataset(suites: tuple[str, ...] = SUITE_NAMES) -> list[GraphData]:
    """The 56-kernel generalisation set (always CDFG extraction)."""
    encoder = FeatureEncoder()
    return [
        build_graph(program, kind="cdfg", encoder=encoder, meta={"suite": suite})
        for suite in suites
        for program in suite_programs(suite)
    ]
