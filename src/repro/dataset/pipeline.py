"""Parallel, cached, resumable dataset construction.

The production-scale successor of the serial ``for program:
build_graph(...)`` loop. One :func:`build_pipeline` call fans the
compile -> HLS -> encode work for every sample out over a
multiprocessing pool and persists the results incrementally as a
sharded dataset (:mod:`repro.dataset.shards`):

- **Determinism** — every sample is generated from its own
  :func:`repro.ldrgen.generator.sample_seed` stream, so ``workers=N``
  output is bitwise-identical to ``workers=1`` and to the in-process
  :func:`repro.dataset.builder.build_synthetic_dataset`.
- **Content-addressed caching** — each built sample is stored under a
  digest of (program source, graph kind, device, encoder schema); a
  rebuild, a re-seeded sweep that shares programs, or a directive
  re-sweep of the same kernels skips compilation and HLS entirely.
- **Resumability** — the manifest is checkpointed after every shard;
  restarting a killed build skips every shard already on disk and
  completes the manifest.

Typical use::

    dataset, stats = build_pipeline(
        "data/cdfg-40k", mode="cdfg", count=40_000,
        workers=8, shard_size=512, cache_dir="data/cache", resume=True,
    )
    train, val, test = split_dataset(dataset)   # lazy DatasetViews
    train_graph_regressor(model, train, val)    # streams shard by shard

or from the shell::

    python -m repro.dataset build --mode cdfg --count 40000 \\
        --out data/cdfg-40k --workers 8 --shard-size 512 --resume
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import pickle
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.dataset.builder import build_graph
from repro.dataset.features import FeatureEncoder
from repro.dataset.shards import (
    Manifest,
    ShardInfo,
    ShardedDataset,
    shard_filename,
    write_shard,
)
from repro.frontend.ast_ import For, If, Program
from repro.frontend.printer import to_c_source
from repro.graph.data import GraphData
from repro.hls.resource_library import DEFAULT_DEVICE, DeviceModel
from repro.ldrgen.config import GeneratorConfig
from repro.ldrgen.generator import generate_sample
from repro.obs import active_ledger, get_registry, get_tracer, trace
from repro.suites.registry import SUITE_NAMES, suite_programs
from repro.tensor import get_default_dtype

DEFAULT_SHARD_SIZE = 256

MODES = ("dfg", "cdfg", "real")


@dataclass
class BuildStats:
    """Accounting for one :func:`build_pipeline` run."""

    total: int = 0  # samples in the finished dataset
    built: int = 0  # samples processed this run (cache hits included)
    cache_hits: int = 0
    cache_misses: int = 0
    shards_written: int = 0
    shards_skipped: int = 0  # complete shards reused by --resume
    workers: int = 1
    seconds: float = 0.0

    @property
    def points_per_second(self) -> float:
        return self.built / self.seconds if self.seconds > 0 else float("inf")

    def as_dict(self) -> dict:
        return {
            "total": self.total,
            "built": self.built,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "shards_written": self.shards_written,
            "shards_skipped": self.shards_skipped,
            "workers": self.workers,
            "seconds": round(self.seconds, 3),
            "points_per_second": round(self.points_per_second, 1),
        }

    # Ledger-facing name; same payload as the historical as_dict.
    to_dict = as_dict


def _directive_footprint(program: Program) -> str:
    """Serialised per-loop HLS directives, in source order.

    The C printer emits plain loops without pragmas, so directive
    variants of one kernel would otherwise hash identically — exactly
    the collisions a directive re-sweep must avoid.
    """
    parts: list[str] = []

    def walk(statements) -> None:
        for statement in statements:
            if isinstance(statement, For):
                parts.append(
                    f"{statement.var}:{statement.unroll}:"
                    f"{int(bool(statement.pipeline))}"
                )
                walk(statement.body)
            elif isinstance(statement, If):
                walk(statement.then_body)
                walk(statement.else_body)

    for function in program.functions:
        walk(function.body)
    return "|".join(parts)


def program_digest(program: Program) -> str:
    """Content hash of a program: emitted C source (which carries the
    kernel name) plus the loop-directive footprint."""
    digest = hashlib.sha256(to_c_source(program).encode())
    digest.update(_directive_footprint(program).encode())
    return digest.hexdigest()


def cache_key(
    program: Program,
    kind: str,
    device: DeviceModel,
    encoder: FeatureEncoder,
) -> str:
    """Content address of one built sample.

    Keyed on everything that decides the encoded output: program
    source, extraction kind, target device (name + clocking), the
    encoder schema and the active dtype policy (a float64 build must
    never be served float32-truncated arrays cached under the default
    policy). Anything else (worker count, shard size, build seed) is
    deliberately absent — the same kernel rebuilt under a different
    sweep still hits.
    """
    digest = hashlib.sha256()
    digest.update(program_digest(program).encode())
    digest.update(f":{kind}:".encode())
    digest.update(
        f"{device.name}:{device.clock_period_ns}:{device.clock_uncertainty_ns}".encode()
    )
    digest.update(encoder.schema_key().encode())
    digest.update(f":{np.dtype(get_default_dtype()).name}".encode())
    return digest.hexdigest()


def derivation_key(
    mode: str,
    config: GeneratorConfig,
    seed: int,
    index: int,
    device: DeviceModel,
    encoder: FeatureEncoder,
) -> str:
    """Content address of the *inputs* that deterministically produce a
    synthetic sample.

    Because generation is pure in ``(config, seed, index)``, this key
    uniquely determines the program — it lets a warm rebuild resolve a
    sample without even regenerating its source (the dominant cost once
    compilation and HLS are cached). It maps to the program-digest key
    of :func:`cache_key` through the cache's derivation memo, so the
    underlying object store stays addressed by program content and
    directive re-sweeps sharing kernels still deduplicate.
    """
    digest = hashlib.sha256()
    digest.update(_config_digest(config).encode())
    digest.update(f":{mode}:{seed}:{index}:".encode())
    digest.update(
        f"{device.name}:{device.clock_period_ns}:{device.clock_uncertainty_ns}".encode()
    )
    digest.update(encoder.schema_key().encode())
    digest.update(f":{np.dtype(get_default_dtype()).name}".encode())
    return digest.hexdigest()


def _config_digest(config: GeneratorConfig) -> str:
    return hashlib.sha256(
        json.dumps(dataclasses.asdict(config), sort_keys=True).encode()
    ).hexdigest()


class BuildCache:
    """Content-addressed store of built samples.

    Two levels under ``root``:

    - ``objects/<k>/<key>.pkl`` — the built sample payload, addressed
      by :func:`cache_key` (program digest + kind + device + encoder
      schema). Pickled array payloads, not ``.npz``: the cache is a
      *local trusted scratch* (never a published artifact — shards are
      the interchange format) and a warm rebuild is dominated by read
      latency, where a flat pickle is several times cheaper than zip
      member parsing. Samples are reconstructed through
      :class:`~repro.graph.data.GraphData`; keys embed the dtype
      policy, so a float64 run never resolves to arrays that were
      truncated through float32 (and vice versa).
    - ``derived/<k>/<dkey>`` — memo from :func:`derivation_key` to the
      object key, letting synthetic rebuilds skip program generation.

    Safe under concurrent writers: entries are written to a tmp file and
    renamed into place, and two workers racing on the same key simply
    produce the same bytes.
    """

    _FIELDS = (
        "node_features",
        "edge_index",
        "edge_type",
        "edge_back",
        "y",
        "node_labels",
        "node_resources",
        "meta",
    )

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def _object_path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.pkl"

    def _memo_path(self, dkey: str) -> Path:
        return self.root / "derived" / dkey[:2] / dkey

    def _write(self, path: Path, data: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_bytes(data)
        os.replace(tmp, path)

    def get(self, key: str) -> GraphData | None:
        path = self._object_path(key)
        if not path.exists():
            return None
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        return GraphData(**payload)

    def put(self, key: str, sample: GraphData) -> None:
        payload = {name: getattr(sample, name) for name in self._FIELDS}
        self._write(
            self._object_path(key),
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
        )

    def get_key(self, dkey: str) -> str | None:
        """Resolve a derivation memo to its object key, if recorded."""
        path = self._memo_path(dkey)
        if not path.exists():
            return None
        return path.read_text().strip()

    def put_key(self, dkey: str, key: str) -> None:
        self._write(self._memo_path(dkey), key.encode())


# ---------------------------------------------------------------------------
# Worker side. Pool workers receive one spec dict via the initializer and
# then build samples addressed purely by index — the per-sample seeding
# contract makes every index independent of execution order and placement.
# ---------------------------------------------------------------------------

_SPEC: dict | None = None
_REAL_PROGRAMS: dict[tuple[str, ...], list] = {}


def _real_program_table(suites: tuple[str, ...]) -> list[tuple[Program, str]]:
    table = _REAL_PROGRAMS.get(suites)
    if table is None:
        table = [
            (program, suite) for suite in suites for program in suite_programs(suite)
        ]
        _REAL_PROGRAMS[suites] = table
    return table


def _build_one(spec: dict, index: int) -> tuple[int, GraphData, bool]:
    """Build (or fetch from cache) sample ``index``; returns
    ``(index, sample, cache_hit)``."""
    mode = spec["mode"]
    device: DeviceModel = spec["device"]
    encoder = FeatureEncoder()
    cache = BuildCache(spec["cache_dir"]) if spec["cache_dir"] else None

    dkey = None
    if cache is not None and mode != "real":
        # Fast path: the derivation memo resolves (config, seed, index)
        # straight to a built object, skipping program generation.
        dkey = derivation_key(
            mode, spec["config"], spec["seed"], index, device, encoder
        )
        key = cache.get_key(dkey)
        if key is not None:
            cached = cache.get(key)
            if cached is not None:
                return index, cached, True

    if mode == "real":
        program, suite = _real_program_table(spec["suites"])[index]
        kind = "cdfg"
    else:
        with trace("pipeline.generate"):
            program = generate_sample(spec["config"], spec["seed"], index)
        suite, kind = "synthetic", mode

    if cache is None:
        with trace("pipeline.build_graph"):
            sample = build_graph(
                program, kind=kind, encoder=encoder, meta={"suite": suite},
                device=device,
            )
        return index, sample, False

    key = cache_key(program, kind, device, encoder)
    sample = cache.get(key)
    hit = sample is not None
    if not hit:
        with trace("pipeline.build_graph"):
            sample = build_graph(
                program, kind=kind, encoder=encoder, meta={"suite": suite},
                device=device,
            )
        cache.put(key, sample)
    if dkey is not None:
        cache.put_key(dkey, key)
    return index, sample, hit


def _init_worker(spec: dict) -> None:
    global _SPEC
    _SPEC = spec
    from repro.tensor import set_default_dtype

    set_default_dtype(np.dtype(spec["dtype"]))


def _pool_build(index: int) -> tuple[int, GraphData, bool, dict]:
    """Worker task: the built sample plus the worker tracer's spans.

    Each worker process aggregates spans into its own process-global
    tracer; draining per result ships the accumulated table to the
    driver piggybacked on the sample (merge-on-join), so span telemetry
    survives multiprocessing without shared state.
    """
    index, sample, hit = _build_one(_SPEC, index)
    return index, sample, hit, get_tracer().drain()


def _result_stream(
    spec: dict, indices: list[int], workers: int
) -> Iterator[tuple[int, GraphData, bool]]:
    """Ordered stream of built samples for ``indices``.

    ``workers <= 1`` builds in-process (no pool overhead — this is also
    the serial baseline the benchmark compares against); otherwise a
    pool of ``workers`` processes feeds an ordered ``imap``, and each
    worker's span telemetry is merged into the driver's tracer as its
    results arrive.
    """
    if workers <= 1 or len(indices) <= 1:
        for index in indices:
            yield _build_one(spec, index)
        return
    context = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    )
    chunksize = max(1, min(32, len(indices) // (workers * 4)))
    tracer = get_tracer()
    with context.Pool(
        processes=workers, initializer=_init_worker, initargs=(spec,)
    ) as pool:
        for index, sample, hit, spans in pool.imap(
            _pool_build, indices, chunksize=chunksize
        ):
            if spans:
                tracer.merge(spans)
            yield index, sample, hit


# ---------------------------------------------------------------------------
# Driver side.
# ---------------------------------------------------------------------------


def _planned_shards(count: int, shard_size: int) -> list[tuple[int, int, int]]:
    """``(shard_index, start, num_samples)`` for every shard of a build."""
    return [
        (k, start, min(shard_size, count - start))
        for k, start in enumerate(range(0, count, shard_size))
    ]


def _build_descriptor(
    mode: str,
    count: int,
    seed: int,
    config: GeneratorConfig | None,
    device: DeviceModel,
    suites: tuple[str, ...],
) -> dict:
    """Everything that decides a build's output, recorded in the
    manifest so ``resume=True`` refuses to mix incompatible shards."""
    descriptor = {
        "mode": mode,
        "count": count,
        "device": device.name,
        "clock_period_ns": device.clock_period_ns,
        "clock_uncertainty_ns": device.clock_uncertainty_ns,
        "dtype": np.dtype(get_default_dtype()).name,
    }
    if mode == "real":
        descriptor["suites"] = list(suites)
    else:
        descriptor["seed"] = seed
        descriptor["generator_config"] = _config_digest(config)
    return descriptor


def _reusable_shards(
    root: Path, manifest: Manifest | None, planned: Iterable[tuple[int, int, int]]
) -> dict[int, ShardInfo]:
    """Planned shards already complete on disk (file present, span matches)."""
    if manifest is None:
        return {}
    by_start = {info.start: info for info in manifest.shards}
    reusable = {}
    for shard_index, start, num in planned:
        info = by_start.get(start)
        if (
            info is not None
            and info.num_samples == num
            and info.file == shard_filename(shard_index)
            and (root / info.file).exists()
        ):
            reusable[shard_index] = info
    return reusable


def _clear_build(root: Path) -> None:
    if not root.exists():
        return
    for stale in root.glob("shard-*.npz"):
        stale.unlink()
    manifest_path = root / "manifest.json"
    if manifest_path.exists():
        manifest_path.unlink()


def build_pipeline(
    out_dir: str | Path,
    mode: str,
    count: int | None = None,
    *,
    seed: int = 0,
    config: GeneratorConfig | None = None,
    workers: int = 1,
    shard_size: int = DEFAULT_SHARD_SIZE,
    cache_dir: str | Path | None = None,
    resume: bool = False,
    device: DeviceModel = DEFAULT_DEVICE,
    suites: tuple[str, ...] = SUITE_NAMES,
) -> tuple[ShardedDataset, BuildStats]:
    """Build a sharded dataset at ``out_dir``; returns ``(reader, stats)``.

    ``mode`` is ``"dfg"``/``"cdfg"`` (ldrgen-synthetic, ``count``
    required) or ``"real"`` (the suite kernels; ``count`` defaults to
    all of them). With ``resume=True`` an interrupted build at the same
    configuration continues where it left off; without it any existing
    build at ``out_dir`` is discarded. ``cache_dir`` enables the
    content-addressed sample cache shared across builds.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    if mode == "real":
        if config is not None:
            raise ValueError("config does not apply to mode='real'")
        available = len(_real_program_table(tuple(suites)))
        count = available if count is None else count
        if not 0 < count <= available:
            raise ValueError(
                f"count must be in 1..{available} for mode='real', got {count}"
            )
    else:
        if count is None or count <= 0:
            raise ValueError("count must be positive")
        config = config or GeneratorConfig(mode=mode)
        if config.mode != mode:
            raise ValueError(f"config mode {config.mode!r} != requested {mode!r}")
    if shard_size <= 0:
        raise ValueError("shard_size must be positive")
    if workers < 1:
        raise ValueError("workers must be >= 1")

    out_dir = Path(out_dir)
    encoder_schema = FeatureEncoder().schema_key()
    descriptor = _build_descriptor(mode, count, seed, config, device, tuple(suites))

    existing: Manifest | None = None
    if (out_dir / "manifest.json").exists():
        if resume:
            existing = Manifest.load(out_dir)
            if (
                existing.build != descriptor
                or existing.shard_size != shard_size
                or existing.encoder_schema != encoder_schema
            ):
                raise ValueError(
                    f"cannot resume: existing build at {out_dir} was produced "
                    f"with a different configuration ({existing.build} vs "
                    f"{descriptor}); rebuild without resume=True"
                )
        else:
            _clear_build(out_dir)

    planned = _planned_shards(count, shard_size)
    reusable = _reusable_shards(out_dir, existing, planned)
    to_build = [
        index
        for shard_index, start, num in planned
        if shard_index not in reusable
        for index in range(start, start + num)
    ]

    stats = BuildStats(total=count, workers=workers)
    start_time = time.perf_counter()
    spec = {
        "mode": mode,
        "config": config,
        "seed": seed,
        "device": device,
        "suites": tuple(suites),
        "cache_dir": str(cache_dir) if cache_dir else None,
        "dtype": np.dtype(get_default_dtype()).name,
    }

    manifest = Manifest(
        complete=False,
        num_samples=count,
        shard_size=shard_size,
        encoder_schema=encoder_schema,
        build=descriptor,
    )
    results = _result_stream(spec, to_build, workers)
    infos: list[ShardInfo] = []
    for shard_index, start, num in planned:
        if shard_index in reusable:
            infos.append(reusable[shard_index])
            stats.shards_skipped += 1
            continue
        chunk: list[GraphData] = []
        for _ in range(num):
            index, sample, hit = next(results)
            if index != start + len(chunk):
                raise RuntimeError(
                    f"pipeline ordering violated: expected sample "
                    f"{start + len(chunk)}, got {index}"
                )
            chunk.append(sample)
            stats.built += 1
            stats.cache_hits += int(hit)
            stats.cache_misses += int(not hit)
        infos.append(write_shard(out_dir, shard_index, start, chunk))
        stats.shards_written += 1
        # Checkpoint after every shard: a kill between shards resumes
        # cleanly from the manifest prefix written here.
        manifest.shards = list(infos)
        manifest.save(out_dir)

    manifest.shards = infos
    manifest.complete = True
    manifest.save(out_dir)
    stats.seconds = time.perf_counter() - start_time

    registry = get_registry()
    registry.inc("pipeline.samples_built", stats.built)
    registry.inc("pipeline.cache_hits", stats.cache_hits)
    registry.inc("pipeline.cache_misses", stats.cache_misses)
    registry.observe("pipeline.build_s", stats.seconds)
    registry.set_gauge("pipeline.points_per_second", stats.points_per_second)
    ledger = active_ledger()
    if ledger is not None:
        ledger.record("dataset_build", stats.to_dict(), out_dir=str(out_dir))
    return ShardedDataset(out_dir), stats
