"""Parallel, cached, resumable dataset construction.

The production-scale successor of the serial ``for program:
build_graph(...)`` loop. One :func:`build_pipeline` call fans the
compile -> HLS -> encode work for every sample out over a
multiprocessing pool and persists the results incrementally as a
sharded dataset (:mod:`repro.dataset.shards`):

- **Determinism** — every sample is generated from its own
  :func:`repro.ldrgen.generator.sample_seed` stream, so ``workers=N``
  output is bitwise-identical to ``workers=1`` and to the in-process
  :func:`repro.dataset.builder.build_synthetic_dataset`.
- **Content-addressed caching** — each built sample is stored under a
  digest of (program source, graph kind, device, encoder schema); a
  rebuild, a re-seeded sweep that shares programs, or a directive
  re-sweep of the same kernels skips compilation and HLS entirely.
- **Resumability** — the manifest is checkpointed after every shard;
  restarting a killed build skips every shard already on disk and
  completes the manifest.
- **Fault tolerance** — a sample that raises (or whose pool worker dies
  abruptly) is retried up to ``max_retries`` times in the driver —
  deterministically, since generation is pure in ``(config, seed,
  index)`` — then *quarantined* into the manifest's ``failed`` list and
  the build continues; one bad kernel or one killed worker no longer
  aborts a 40k-sample run. The per-sample build is wrapped in the
  ``pipeline.build`` fault seam (:mod:`repro.faults`), keyed by sample
  index, so chaos tests can schedule failures and kills precisely.

Typical use::

    dataset, stats = build_pipeline(
        "data/cdfg-40k", mode="cdfg", count=40_000,
        workers=8, shard_size=512, cache_dir="data/cache", resume=True,
    )
    train, val, test = split_dataset(dataset)   # lazy DatasetViews
    train_graph_regressor(model, train, val)    # streams shard by shard

or from the shell::

    python -m repro.dataset build --mode cdfg --count 40000 \\
        --out data/cdfg-40k --workers 8 --shard-size 512 --resume
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import multiprocessing
import os
import pickle
import time
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool, ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.dataset.builder import build_graph
from repro.dataset.features import FeatureEncoder
from repro.dataset.shards import (
    Manifest,
    ShardInfo,
    ShardedDataset,
    shard_filename,
    write_shard,
)
from repro.faults import FaultInjector, FaultPlan, fault_point, use_faults
from repro.frontend.ast_ import For, If, Program
from repro.frontend.printer import to_c_source
from repro.graph.data import GraphData
from repro.hls.resource_library import DEFAULT_DEVICE, DeviceModel
from repro.ldrgen.config import GeneratorConfig
from repro.ldrgen.generator import generate_sample
from repro.obs import active_ledger, get_registry, get_tracer, trace
from repro.suites.registry import SUITE_NAMES, suite_programs
from repro.tensor import get_default_dtype

DEFAULT_SHARD_SIZE = 256

#: Driver-side rebuild attempts for a sample whose first build failed.
DEFAULT_MAX_RETRIES = 2

#: Ceiling on one pool chunk's build time before the driver declares the
#: worker lost and rebuilds the chunk itself. Abrupt worker death is
#: detected immediately (broken pool); the timeout only catches hangs.
DEFAULT_WORKER_TIMEOUT_S = 300.0

MODES = ("dfg", "cdfg", "real")


@dataclass
class BuildStats:
    """Accounting for one :func:`build_pipeline` run."""

    total: int = 0  # samples in the finished dataset
    built: int = 0  # samples processed this run (cache hits included)
    cache_hits: int = 0
    cache_misses: int = 0
    shards_written: int = 0
    shards_skipped: int = 0  # complete shards reused by --resume
    retries: int = 0  # extra build attempts after a failure
    quarantined: int = 0  # samples given up on (manifest `failed` list)
    workers: int = 1
    seconds: float = 0.0

    @property
    def points_per_second(self) -> float:
        return self.built / self.seconds if self.seconds > 0 else float("inf")

    def as_dict(self) -> dict:
        return {
            "total": self.total,
            "built": self.built,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "shards_written": self.shards_written,
            "shards_skipped": self.shards_skipped,
            "retries": self.retries,
            "quarantined": self.quarantined,
            "workers": self.workers,
            "seconds": round(self.seconds, 3),
            "points_per_second": round(self.points_per_second, 1),
        }

    # Ledger-facing name; same payload as the historical as_dict.
    to_dict = as_dict


def _directive_footprint(program: Program) -> str:
    """Serialised per-loop HLS directives, in source order.

    The C printer emits plain loops without pragmas, so directive
    variants of one kernel would otherwise hash identically — exactly
    the collisions a directive re-sweep must avoid.
    """
    parts: list[str] = []

    def walk(statements) -> None:
        for statement in statements:
            if isinstance(statement, For):
                parts.append(
                    f"{statement.var}:{statement.unroll}:"
                    f"{int(bool(statement.pipeline))}"
                )
                walk(statement.body)
            elif isinstance(statement, If):
                walk(statement.then_body)
                walk(statement.else_body)

    for function in program.functions:
        walk(function.body)
    return "|".join(parts)


def program_digest(program: Program) -> str:
    """Content hash of a program: emitted C source (which carries the
    kernel name) plus the loop-directive footprint."""
    digest = hashlib.sha256(to_c_source(program).encode())
    digest.update(_directive_footprint(program).encode())
    return digest.hexdigest()


def cache_key(
    program: Program,
    kind: str,
    device: DeviceModel,
    encoder: FeatureEncoder,
) -> str:
    """Content address of one built sample.

    Keyed on everything that decides the encoded output: program
    source, extraction kind, target device (name + clocking), the
    encoder schema and the active dtype policy (a float64 build must
    never be served float32-truncated arrays cached under the default
    policy). Anything else (worker count, shard size, build seed) is
    deliberately absent — the same kernel rebuilt under a different
    sweep still hits.
    """
    digest = hashlib.sha256()
    digest.update(program_digest(program).encode())
    digest.update(f":{kind}:".encode())
    digest.update(
        f"{device.name}:{device.clock_period_ns}:{device.clock_uncertainty_ns}".encode()
    )
    digest.update(encoder.schema_key().encode())
    digest.update(f":{np.dtype(get_default_dtype()).name}".encode())
    return digest.hexdigest()


def derivation_key(
    mode: str,
    config: GeneratorConfig,
    seed: int,
    index: int,
    device: DeviceModel,
    encoder: FeatureEncoder,
) -> str:
    """Content address of the *inputs* that deterministically produce a
    synthetic sample.

    Because generation is pure in ``(config, seed, index)``, this key
    uniquely determines the program — it lets a warm rebuild resolve a
    sample without even regenerating its source (the dominant cost once
    compilation and HLS are cached). It maps to the program-digest key
    of :func:`cache_key` through the cache's derivation memo, so the
    underlying object store stays addressed by program content and
    directive re-sweeps sharing kernels still deduplicate.
    """
    digest = hashlib.sha256()
    digest.update(_config_digest(config).encode())
    digest.update(f":{mode}:{seed}:{index}:".encode())
    digest.update(
        f"{device.name}:{device.clock_period_ns}:{device.clock_uncertainty_ns}".encode()
    )
    digest.update(encoder.schema_key().encode())
    digest.update(f":{np.dtype(get_default_dtype()).name}".encode())
    return digest.hexdigest()


def _config_digest(config: GeneratorConfig) -> str:
    return hashlib.sha256(
        json.dumps(dataclasses.asdict(config), sort_keys=True).encode()
    ).hexdigest()


class BuildCache:
    """Content-addressed store of built samples.

    Two levels under ``root``:

    - ``objects/<k>/<key>.pkl`` — the built sample payload, addressed
      by :func:`cache_key` (program digest + kind + device + encoder
      schema). Pickled array payloads, not ``.npz``: the cache is a
      *local trusted scratch* (never a published artifact — shards are
      the interchange format) and a warm rebuild is dominated by read
      latency, where a flat pickle is several times cheaper than zip
      member parsing. Samples are reconstructed through
      :class:`~repro.graph.data.GraphData`; keys embed the dtype
      policy, so a float64 run never resolves to arrays that were
      truncated through float32 (and vice versa).
    - ``derived/<k>/<dkey>`` — memo from :func:`derivation_key` to the
      object key, letting synthetic rebuilds skip program generation.

    Safe under concurrent writers: entries are written to a tmp file and
    renamed into place, and two workers racing on the same key simply
    produce the same bytes.
    """

    _FIELDS = (
        "node_features",
        "edge_index",
        "edge_type",
        "edge_back",
        "y",
        "node_labels",
        "node_resources",
        "meta",
    )

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def _object_path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.pkl"

    def _memo_path(self, dkey: str) -> Path:
        return self.root / "derived" / dkey[:2] / dkey

    def _write(self, path: Path, data: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_bytes(data)
        os.replace(tmp, path)

    def get(self, key: str) -> GraphData | None:
        path = self._object_path(key)
        if not path.exists():
            return None
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        return GraphData(**payload)

    def put(self, key: str, sample: GraphData) -> None:
        payload = {name: getattr(sample, name) for name in self._FIELDS}
        self._write(
            self._object_path(key),
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
        )

    def get_key(self, dkey: str) -> str | None:
        """Resolve a derivation memo to its object key, if recorded."""
        path = self._memo_path(dkey)
        if not path.exists():
            return None
        return path.read_text().strip()

    def put_key(self, dkey: str, key: str) -> None:
        self._write(self._memo_path(dkey), key.encode())


# ---------------------------------------------------------------------------
# Worker side. Pool workers receive one spec dict via the initializer and
# then build samples addressed purely by index — the per-sample seeding
# contract makes every index independent of execution order and placement.
# ---------------------------------------------------------------------------

_SPEC: dict | None = None
_REAL_PROGRAMS: dict[tuple[str, ...], list] = {}


def _real_program_table(suites: tuple[str, ...]) -> list[tuple[Program, str]]:
    table = _REAL_PROGRAMS.get(suites)
    if table is None:
        table = [
            (program, suite) for suite in suites for program in suite_programs(suite)
        ]
        _REAL_PROGRAMS[suites] = table
    return table


def _build_one(spec: dict, index: int) -> tuple[int, GraphData, bool]:
    """Build (or fetch from cache) sample ``index``; returns
    ``(index, sample, cache_hit)``."""
    fault_point("pipeline.build", str(index))
    mode = spec["mode"]
    device: DeviceModel = spec["device"]
    encoder = FeatureEncoder()
    cache = BuildCache(spec["cache_dir"]) if spec["cache_dir"] else None

    dkey = None
    if cache is not None and mode != "real":
        # Fast path: the derivation memo resolves (config, seed, index)
        # straight to a built object, skipping program generation.
        dkey = derivation_key(
            mode, spec["config"], spec["seed"], index, device, encoder
        )
        key = cache.get_key(dkey)
        if key is not None:
            cached = cache.get(key)
            if cached is not None:
                return index, cached, True

    if mode == "real":
        program, suite = _real_program_table(spec["suites"])[index]
        kind = "cdfg"
    else:
        with trace("pipeline.generate"):
            program = generate_sample(spec["config"], spec["seed"], index)
        suite, kind = "synthetic", mode

    if cache is None:
        with trace("pipeline.build_graph"):
            sample = build_graph(
                program, kind=kind, encoder=encoder, meta={"suite": suite},
                device=device,
            )
        return index, sample, False

    key = cache_key(program, kind, device, encoder)
    sample = cache.get(key)
    hit = sample is not None
    if not hit:
        with trace("pipeline.build_graph"):
            sample = build_graph(
                program, kind=kind, encoder=encoder, meta={"suite": suite},
                device=device,
            )
        cache.put(key, sample)
    if dkey is not None:
        cache.put_key(dkey, key)
    return index, sample, hit


def _init_worker(spec: dict) -> None:
    global _SPEC
    _SPEC = spec
    from repro.tensor import set_default_dtype

    set_default_dtype(np.dtype(spec["dtype"]))
    plan: FaultPlan | None = spec.get("faults")
    if plan is not None:
        from repro.faults import set_injector

        # in_worker: kill specs os._exit the process — a real lost task,
        # exactly what SIGKILL/OOM look like from the driver's side.
        set_injector(FaultInjector(plan, in_worker=True))


def _pool_build_chunk(
    indices: list[int],
) -> tuple[list[tuple[int, GraphData | None, bool, str | None]], dict]:
    """Worker task: one chunk of samples plus the worker tracer's spans.

    Per-index exceptions are caught and returned as error rows (the
    driver retries them), so one bad sample never discards its chunk
    mates' finished work. Spans aggregate in the worker's process-global
    tracer and ship to the driver piggybacked on the chunk
    (merge-on-join), so telemetry survives multiprocessing without
    shared state.
    """
    rows: list[tuple[int, GraphData | None, bool, str | None]] = []
    for index in indices:
        try:
            _, sample, hit = _build_one(_SPEC, index)
            rows.append((index, sample, hit, None))
        except Exception as exc:  # noqa: BLE001 - retried by the driver
            rows.append((index, None, False, f"{type(exc).__name__}: {exc}"))
    return rows, get_tracer().drain()


#: One built sample's accounting row:
#: ``(index, sample | None, cache_hit, retries_spent, error | None)``.
_Row = tuple[int, "GraphData | None", bool, int, "str | None"]


def _recover(spec: dict, index: int, first_error: str | None = None) -> _Row:
    """Driver-side retries for a sample whose first attempt failed.

    Deterministic: generation is pure in ``(config, seed, index)``, so a
    retry recomputes exactly the original sample — only transient faults
    (a killed worker, an injected failure schedule that has run out)
    disappear on retry; a genuinely bad kernel fails every attempt and
    is quarantined.
    """
    max_retries = spec.get("max_retries", DEFAULT_MAX_RETRIES)
    last = first_error or "lost worker (killed or timed out)"
    for attempt in range(1, max_retries + 1):
        try:
            _, sample, hit = _build_one(spec, index)
            return index, sample, hit, attempt, None
        except Exception as exc:  # noqa: BLE001 - quarantine after retries
            last = f"{type(exc).__name__}: {exc}"
    return index, None, False, max_retries, last


def _serial_rows(spec: dict, indices: list[int]) -> Iterator[_Row]:
    max_retries = spec.get("max_retries", DEFAULT_MAX_RETRIES)
    for index in indices:
        last: str | None = None
        row: _Row | None = None
        for attempt in range(max_retries + 1):
            try:
                _, sample, hit = _build_one(spec, index)
                row = (index, sample, hit, attempt, None)
                break
            except Exception as exc:  # noqa: BLE001 - quarantine below
                last = f"{type(exc).__name__}: {exc}"
        yield row if row is not None else (index, None, False, max_retries, last)


def _pool_rows(spec: dict, indices: list[int], workers: int) -> Iterator[_Row]:
    """Ordered, lost-worker-tolerant fan-out over a process pool.

    Chunks go through a :class:`ProcessPoolExecutor` — unlike
    ``Pool.imap`` its futures *fail fast* (``BrokenProcessPool``) when a
    worker dies abruptly instead of hanging forever on the lost task.
    A failed or lost chunk is rebuilt in the driver process with the
    retry budget; after a broken pool the executor is recreated and the
    remaining chunks resubmitted, so one killed worker costs one chunk
    of recovery work, not the build.
    """
    context = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    )
    chunk_size = max(1, min(32, len(indices) // (workers * 4)))
    chunks = [
        indices[start : start + chunk_size]
        for start in range(0, len(indices), chunk_size)
    ]
    timeout = spec.get("worker_timeout_s", DEFAULT_WORKER_TIMEOUT_S)
    tracer = get_tracer()
    position = 0
    while position < len(chunks):
        executor = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_init_worker,
            initargs=(spec,),
        )
        resubmit = True
        try:
            futures = [
                executor.submit(_pool_build_chunk, chunk)
                for chunk in chunks[position:]
            ]
            for offset, future in enumerate(futures):
                chunk = chunks[position + offset]
                try:
                    rows, spans = future.result(timeout)
                except (BrokenProcessPool, FutureTimeout, OSError):
                    # Lost worker: rebuild this chunk in-process, then
                    # restart the pool for everything after it.
                    for index in chunk:
                        yield _recover(spec, index)
                    position += offset + 1
                    break
                if spans:
                    tracer.merge(spans)
                for index, sample, hit, error in rows:
                    if error is None:
                        yield index, sample, hit, 0, None
                    else:
                        yield _recover(spec, index, first_error=error)
            else:
                resubmit = False
                position = len(chunks)
        finally:
            executor.shutdown(wait=not resubmit, cancel_futures=True)


def _result_stream(spec: dict, indices: list[int], workers: int) -> Iterator[_Row]:
    """Ordered stream of per-sample rows for ``indices``.

    ``workers <= 1`` builds in-process (no pool overhead — this is also
    the serial baseline the benchmark compares against); otherwise the
    chunked executor fan-out of :func:`_pool_rows`. Both paths retry
    failures up to ``spec["max_retries"]`` and emit quarantine rows
    (``sample is None``) instead of raising.
    """
    if workers <= 1 or len(indices) <= 1:
        yield from _serial_rows(spec, indices)
    else:
        yield from _pool_rows(spec, indices, workers)


# ---------------------------------------------------------------------------
# Driver side.
# ---------------------------------------------------------------------------


def _planned_shards(count: int, shard_size: int) -> list[tuple[int, int, int]]:
    """``(shard_index, start, num_samples)`` for every shard of a build."""
    return [
        (k, start, min(shard_size, count - start))
        for k, start in enumerate(range(0, count, shard_size))
    ]


def _build_descriptor(
    mode: str,
    count: int,
    seed: int,
    config: GeneratorConfig | None,
    device: DeviceModel,
    suites: tuple[str, ...],
) -> dict:
    """Everything that decides a build's output, recorded in the
    manifest so ``resume=True`` refuses to mix incompatible shards."""
    descriptor = {
        "mode": mode,
        "count": count,
        "device": device.name,
        "clock_period_ns": device.clock_period_ns,
        "clock_uncertainty_ns": device.clock_uncertainty_ns,
        "dtype": np.dtype(get_default_dtype()).name,
    }
    if mode == "real":
        descriptor["suites"] = list(suites)
    else:
        descriptor["seed"] = seed
        descriptor["generator_config"] = _config_digest(config)
    return descriptor


def _reusable_shards(
    root: Path, manifest: Manifest | None, planned: Iterable[tuple[int, int, int]]
) -> dict[int, ShardInfo]:
    """Planned shards already complete on disk (file present, span matches).

    A shard's expected population is its planned span *minus* any
    samples the previous run quarantined inside that span — a shard that
    completed with quarantined samples is still done; rebuilding it
    would retry known-bad kernels on every resume.
    """
    if manifest is None:
        return {}
    by_file = {info.file: info for info in manifest.shards}
    failed_by_shard: dict[int, int] = {}
    for entry in manifest.failed:
        shard_index = int(entry["index"]) // max(manifest.shard_size, 1)
        failed_by_shard[shard_index] = failed_by_shard.get(shard_index, 0) + 1
    reusable = {}
    for shard_index, _start, num in planned:
        info = by_file.get(shard_filename(shard_index))
        expected = num - failed_by_shard.get(shard_index, 0)
        if (
            info is not None
            and info.num_samples == expected
            and (root / info.file).exists()
        ):
            reusable[shard_index] = info
    return reusable


def _clear_build(root: Path) -> None:
    if not root.exists():
        return
    for stale in root.glob("shard-*.npz"):
        stale.unlink()
    manifest_path = root / "manifest.json"
    if manifest_path.exists():
        manifest_path.unlink()


def build_pipeline(
    out_dir: str | Path,
    mode: str,
    count: int | None = None,
    *,
    seed: int = 0,
    config: GeneratorConfig | None = None,
    workers: int = 1,
    shard_size: int = DEFAULT_SHARD_SIZE,
    cache_dir: str | Path | None = None,
    resume: bool = False,
    device: DeviceModel = DEFAULT_DEVICE,
    suites: tuple[str, ...] = SUITE_NAMES,
    max_retries: int = DEFAULT_MAX_RETRIES,
    worker_timeout_s: float = DEFAULT_WORKER_TIMEOUT_S,
    faults: FaultPlan | None = None,
) -> tuple[ShardedDataset, BuildStats]:
    """Build a sharded dataset at ``out_dir``; returns ``(reader, stats)``.

    ``mode`` is ``"dfg"``/``"cdfg"`` (ldrgen-synthetic, ``count``
    required) or ``"real"`` (the suite kernels; ``count`` defaults to
    all of them). With ``resume=True`` an interrupted build at the same
    configuration continues where it left off; without it any existing
    build at ``out_dir`` is discarded. ``cache_dir`` enables the
    content-addressed sample cache shared across builds.

    Failures don't abort the build: each failed sample (exception,
    killed worker, or hang past ``worker_timeout_s``) is retried up to
    ``max_retries`` times in the driver, then quarantined into the
    manifest's ``failed`` list while the build continues; the resulting
    dataset is dense over the surviving samples. ``faults`` installs a
    deterministic :class:`~repro.faults.FaultPlan` on the driver and on
    every pool worker (in-worker kill specs really ``os._exit``) — the
    chaos-test entry point.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    if mode == "real":
        if config is not None:
            raise ValueError("config does not apply to mode='real'")
        available = len(_real_program_table(tuple(suites)))
        count = available if count is None else count
        if not 0 < count <= available:
            raise ValueError(
                f"count must be in 1..{available} for mode='real', got {count}"
            )
    else:
        if count is None or count <= 0:
            raise ValueError("count must be positive")
        config = config or GeneratorConfig(mode=mode)
        if config.mode != mode:
            raise ValueError(f"config mode {config.mode!r} != requested {mode!r}")
    if shard_size <= 0:
        raise ValueError("shard_size must be positive")
    if workers < 1:
        raise ValueError("workers must be >= 1")

    out_dir = Path(out_dir)
    encoder_schema = FeatureEncoder().schema_key()
    descriptor = _build_descriptor(mode, count, seed, config, device, tuple(suites))

    existing: Manifest | None = None
    if (out_dir / "manifest.json").exists():
        if resume:
            existing = Manifest.load(out_dir)
            if (
                existing.build != descriptor
                or existing.shard_size != shard_size
                or existing.encoder_schema != encoder_schema
            ):
                raise ValueError(
                    f"cannot resume: existing build at {out_dir} was produced "
                    f"with a different configuration ({existing.build} vs "
                    f"{descriptor}); rebuild without resume=True"
                )
        else:
            _clear_build(out_dir)

    planned = _planned_shards(count, shard_size)
    reusable = _reusable_shards(out_dir, existing, planned)
    to_build = [
        index
        for shard_index, start, num in planned
        if shard_index not in reusable
        for index in range(start, start + num)
    ]

    stats = BuildStats(total=count, workers=workers)
    start_time = time.perf_counter()
    spec = {
        "mode": mode,
        "config": config,
        "seed": seed,
        "device": device,
        "suites": tuple(suites),
        "cache_dir": str(cache_dir) if cache_dir else None,
        "dtype": np.dtype(get_default_dtype()).name,
        "max_retries": max_retries,
        "worker_timeout_s": worker_timeout_s,
        "faults": faults,
    }

    manifest = Manifest(
        complete=False,
        num_samples=count,
        shard_size=shard_size,
        encoder_schema=encoder_schema,
        build=descriptor,
    )
    # Quarantine entries from reused shards carry over (their samples
    # stay missing); rebuilt spans get a fresh chance.
    if existing is not None:
        manifest.failed = [
            entry
            for entry in existing.failed
            if int(entry["index"]) // shard_size in reusable
        ]
        stats.quarantined += len(manifest.failed)

    # The driver applies the same fault plan as the workers (with
    # in-process kill semantics) so recovery retries stay deterministic.
    driver_faults = (
        use_faults(FaultInjector(faults)) if faults is not None
        else contextlib.nullcontext()
    )
    with driver_faults:
        results = _result_stream(spec, to_build, workers)
        infos: list[ShardInfo] = []
        next_start = 0  # dense start over *surviving* samples
        for shard_index, start, num in planned:
            if shard_index in reusable:
                info = reusable[shard_index]
                # Re-anchor: earlier shards rebuilt this run may have
                # quarantined a different set, shifting dense starts.
                infos.append(
                    ShardInfo(
                        file=info.file, start=next_start,
                        num_samples=info.num_samples,
                    )
                )
                next_start += info.num_samples
                stats.shards_skipped += 1
                continue
            chunk: list[GraphData] = []
            for expected in range(start, start + num):
                index, sample, hit, retries, error = next(results)
                if index != expected:
                    raise RuntimeError(
                        f"pipeline ordering violated: expected sample "
                        f"{expected}, got {index}"
                    )
                stats.built += 1
                stats.retries += retries
                if sample is None:
                    stats.quarantined += 1
                    manifest.failed.append(
                        {"index": index, "error": error, "retries": retries}
                    )
                    continue
                chunk.append(sample)
                stats.cache_hits += int(hit)
                stats.cache_misses += int(not hit)
            infos.append(write_shard(out_dir, shard_index, next_start, chunk))
            next_start += len(chunk)
            stats.shards_written += 1
            # Checkpoint after every shard: a kill between shards resumes
            # cleanly from the manifest prefix written here.
            manifest.shards = list(infos)
            manifest.save(out_dir)

    manifest.failed.sort(key=lambda entry: entry["index"])
    manifest.shards = infos
    manifest.complete = True
    manifest.save(out_dir)
    stats.seconds = time.perf_counter() - start_time

    registry = get_registry()
    registry.inc("pipeline.samples_built", stats.built)
    registry.inc("pipeline.cache_hits", stats.cache_hits)
    registry.inc("pipeline.cache_misses", stats.cache_misses)
    registry.inc("pipeline.retries", stats.retries)
    registry.inc("pipeline.quarantined", stats.quarantined)
    registry.observe("pipeline.build_s", stats.seconds)
    registry.set_gauge("pipeline.points_per_second", stats.points_per_second)
    ledger = active_ledger()
    if ledger is not None:
        ledger.record("dataset_build", stats.to_dict(), out_dir=str(out_dir))
    return ShardedDataset(out_dir), stats
