"""Table-1 feature encoding.

Raw :class:`~repro.ir.graph.IRGraph` attributes become a dense float
matrix. The encoding per node:

- node type — one-hot over {operation, block, port, misc};
- bitwidth — two scaled numerics (linear/64 clipped, log2/8);
- opcode type — one-hot over the LLVM-based categories;
- opcode — one-hot over the opcode vocabulary;
- is start of path — 1 when the node has no incoming DATA edge;
- cluster group — scaled numeric plus a "misc" (-1) indicator;
- HLS directives — log2 of the explicit per-block unroll factor, a
  pipelined-loop bit and the target-clock ratio (all zero when no
  directives apply, so the base encoding is unchanged for plain
  programs).

The directive block mirrors GNN-DSE-style pragma encoding: *explicit*
design knobs (the pragmas a design-space explorer sweeps) are visible to
the model, while the flow's own small-loop unrolling heuristic stays
hidden — inferring that from constant nodes remains part of the paper's
learning problem.

Knowledge-rich runs append per-node resource *values* (DSP raw,
log1p LUT, log1p FF); knowledge-infused runs append the three binary
resource-type bits (ground truth while training, model-inferred at
inference). Edge types fold the back-edge flag into the type id so
relational layers can distinguish loop-closing control edges.
"""

from __future__ import annotations

import numpy as np

from repro.graph.data import GraphData
from repro.ir.graph import IRGraph
from repro.ir.opcodes import (
    EdgeType,
    NodeType,
    Opcode,
    OPCODE_CATEGORIES,
    opcode_category,
)

TARGET_NAMES = ("DSP", "LUT", "FF", "CP")

_OPCODES = tuple(Opcode)
_OPCODE_INDEX = {op: i for i, op in enumerate(_OPCODES)}
_CATEGORY_INDEX = {c: i for i, c in enumerate(OPCODE_CATEGORIES)}

#: 4 structural edge types x {normal, back}.
NUM_EDGE_TYPES_WITH_BACK = 2 * len(EdgeType)

#: Directive feature columns: (log2 unroll, pipelined, clock ratio).
DIRECTIVE_DIM = 3

#: Bump whenever the meaning/layout of encoded features changes. The
#: build cache and shard manifests key on the full encoder schema (see
#: :meth:`FeatureEncoder.schema_key`), so stale on-disk samples are
#: never silently reused across encoder revisions.
FEATURE_SCHEMA_VERSION = 1


def directive_features(
    function,
    graph: IRGraph,
    device=None,
    unroll_overrides: dict[str, int] | None = None,
    pipeline_overrides: dict[str, bool] | None = None,
    loops=None,
) -> np.ndarray:
    """Per-node directive columns for ``graph`` extracted from ``function``.

    Columns: ``log2(explicit unroll factor) / log2(64)`` for nodes inside
    explicitly unrolled loops, a 0/1 pipelined-loop bit, and a uniform
    target-clock column (``period / default - 1``, zero at the default
    clock). Only *explicit* directives (``function.loop_directives`` or
    the override arguments, both keyed by loop header block name) are
    encoded — heuristic unrolling stays invisible, as in the paper.

    ``loops`` may carry a precomputed ``analyze_loops(function)`` result;
    the DSE fast path re-encodes hundreds of directive configurations of
    one function and skips the repeated CFG analysis that way.
    """
    from repro.hls.loops import (
        MAX_DIRECTIVE_FACTOR,
        analyze_loops,
        loop_unroll_factor,
    )
    from repro.hls.resource_library import DEFAULT_DEVICE

    device = device or DEFAULT_DEVICE
    directives = getattr(function, "loop_directives", {})
    unroll_overrides = unroll_overrides or {}

    if loops is None:
        loops = analyze_loops(function)
    # A block is owned by its *innermost* enclosing loop (smallest block
    # set containing it); the pipeline bit marks exactly the owner's
    # flag, so "outer pipelined" and "outer + inner pipelined" encode
    # differently. The unroll column stays multiplicative over the whole
    # nest, mirroring the datapath replication the flow applies.
    owner: dict[str, str] = {}
    for loop in sorted(loops, key=lambda lp: len(lp.blocks)):
        for name in loop.blocks:
            owner.setdefault(name, loop.header)

    block_factor: dict[str, int] = {}
    pipelined_loops: set[str] = set()
    for loop in loops:
        explicit = loop.header in unroll_overrides or (
            loop.header in directives
            and directives[loop.header].unroll is not None
        )
        if pipeline_overrides is not None and loop.header in pipeline_overrides:
            pipelined = bool(pipeline_overrides[loop.header])
        else:
            directive = directives.get(loop.header)
            pipelined = directive.pipeline if directive is not None else False
        if pipelined:
            pipelined_loops.add(loop.header)
        factor = (
            loop_unroll_factor(loop, directives, unroll_overrides)
            if explicit
            else 1
        )
        if factor > 1:
            for name in loop.blocks:
                block_factor[name] = min(
                    MAX_DIRECTIVE_FACTOR, block_factor.get(name, 1) * factor
                )
    block_pipelined = {
        name for name, header in owner.items() if header in pipelined_loops
    }

    block_of: dict[int, str] = {
        inst.id: inst.block for inst in function.instructions()
    }
    features = np.zeros((graph.num_nodes, DIRECTIVE_DIM))
    features[:, 2] = device.clock_period_ns / DEFAULT_DEVICE.clock_period_ns - 1.0
    if not block_factor and not block_pipelined:
        return features
    log_cap = np.log2(MAX_DIRECTIVE_FACTOR)
    for node in graph.nodes:
        name = block_of.get(node.instruction_id)
        if name is None and node.kind == NodeType.BLOCK:
            name = node.label
        if name is None:
            continue
        factor = block_factor.get(name, 1)
        if factor > 1:
            features[node.index, 0] = np.log2(factor) / log_cap
        if name in block_pipelined:
            features[node.index, 1] = 1.0
    return features


class FeatureEncoder:
    """Encodes :class:`IRGraph` into :class:`GraphData`.

    ``with_resource_values`` / ``with_resource_types`` select the
    knowledge-rich / knowledge-infused feature extensions.
    """

    def __init__(
        self,
        with_resource_values: bool = False,
        with_resource_types: bool = False,
    ):
        self.with_resource_values = with_resource_values
        self.with_resource_types = with_resource_types

    @property
    def base_dim(self) -> int:
        return (
            len(NodeType)
            + 2
            + len(OPCODE_CATEGORIES)
            + len(_OPCODES)
            + 1
            + 2
            + DIRECTIVE_DIM
        )

    @property
    def feature_dim(self) -> int:
        dim = self.base_dim
        if self.with_resource_values:
            dim += 3
        if self.with_resource_types:
            dim += 3
        return dim

    def schema_key(self) -> str:
        """Stable identity of the encoding this encoder produces.

        Folds in the schema version, the derived feature width (which
        itself depends on the opcode/category vocabularies) and the
        knowledge flags — everything that decides whether two encoded
        samples are interchangeable on disk.
        """
        return (
            f"features-v{FEATURE_SCHEMA_VERSION}"
            f":dim{self.feature_dim}"
            f":rich{int(self.with_resource_values)}"
            f":infused{int(self.with_resource_types)}"
        )

    @property
    def directive_slice(self) -> slice:
        """Column range of the directive block (last three base columns).

        The DSE fast path re-encodes only these columns per design point
        instead of rebuilding the whole feature matrix.
        """
        return slice(self.base_dim - DIRECTIVE_DIM, self.base_dim)

    def encode_nodes(
        self,
        graph: IRGraph,
        node_resources: np.ndarray | None = None,
        node_types: np.ndarray | None = None,
        directives: np.ndarray | None = None,
    ) -> np.ndarray:
        n = graph.num_nodes
        features = np.zeros((n, self.feature_dim))
        data_preds = graph.data_predecessor_counts()
        col_ntype = 0
        col_bw = col_ntype + len(NodeType)
        col_cat = col_bw + 2
        col_op = col_cat + len(OPCODE_CATEGORIES)
        col_start = col_op + len(_OPCODES)
        col_cluster = col_start + 1
        col_directive = col_cluster + 2
        col_extra = col_directive + DIRECTIVE_DIM
        for node in graph.nodes:
            i = node.index
            features[i, col_ntype + int(node.kind)] = 1.0
            features[i, col_bw] = min(node.bitwidth, 256) / 64.0
            features[i, col_bw + 1] = np.log2(node.bitwidth + 1.0) / 8.0
            features[i, col_cat + _CATEGORY_INDEX[opcode_category(node.opcode)]] = 1.0
            features[i, col_op + _OPCODE_INDEX[node.opcode]] = 1.0
            features[i, col_start] = 1.0 if data_preds[i] == 0 else 0.0
            if node.cluster < 0:
                features[i, col_cluster + 1] = 1.0
            else:
                features[i, col_cluster] = min(node.cluster, 256) / 16.0
        if directives is not None:
            if directives.shape != (n, DIRECTIVE_DIM):
                raise ValueError(
                    f"directive features must be [{n}, {DIRECTIVE_DIM}], "
                    f"got {tuple(directives.shape)}"
                )
            features[:, col_directive : col_directive + DIRECTIVE_DIM] = directives
        cursor = col_extra
        if self.with_resource_values:
            if node_resources is None:
                raise ValueError("knowledge-rich encoding requires node_resources")
            features[:, cursor] = node_resources[:, 0]
            features[:, cursor + 1] = np.log1p(node_resources[:, 1])
            features[:, cursor + 2] = np.log1p(node_resources[:, 2])
            cursor += 3
        if self.with_resource_types:
            if node_types is None:
                raise ValueError("knowledge-infused encoding requires node_types")
            features[:, cursor : cursor + 3] = node_types
        return features

    def encode_edges(self, graph: IRGraph) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (edge_index, merged edge-type ids, back flags)."""
        edge_index, edge_type, edge_back = graph.edge_arrays()
        merged = edge_type + len(EdgeType) * edge_back
        return edge_index, merged, edge_back

    def encode(
        self,
        graph: IRGraph,
        y: np.ndarray | None = None,
        node_labels: np.ndarray | None = None,
        node_resources: np.ndarray | None = None,
        directives: np.ndarray | None = None,
        meta: dict | None = None,
    ) -> GraphData:
        """Full encoding of one sample (features, edges, labels)."""
        node_features = self.encode_nodes(
            graph,
            node_resources=node_resources,
            node_types=node_labels if self.with_resource_types else None,
            directives=directives,
        )
        edge_index, edge_type, edge_back = self.encode_edges(graph)
        return GraphData(
            node_features=node_features,
            edge_index=edge_index,
            edge_type=edge_type,
            edge_back=edge_back,
            y=y,
            node_labels=node_labels,
            node_resources=node_resources,
            meta=meta or {"name": graph.name, "kind": graph.kind},
        )
