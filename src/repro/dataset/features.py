"""Table-1 feature encoding.

Raw :class:`~repro.ir.graph.IRGraph` attributes become a dense float
matrix. The encoding per node:

- node type — one-hot over {operation, block, port, misc};
- bitwidth — two scaled numerics (linear/64 clipped, log2/8);
- opcode type — one-hot over the LLVM-based categories;
- opcode — one-hot over the opcode vocabulary;
- is start of path — 1 when the node has no incoming DATA edge;
- cluster group — scaled numeric plus a "misc" (-1) indicator.

Knowledge-rich runs append per-node resource *values* (DSP raw,
log1p LUT, log1p FF); knowledge-infused runs append the three binary
resource-type bits (ground truth while training, model-inferred at
inference). Edge types fold the back-edge flag into the type id so
relational layers can distinguish loop-closing control edges.
"""

from __future__ import annotations

import numpy as np

from repro.graph.data import GraphData
from repro.ir.graph import IRGraph
from repro.ir.opcodes import (
    EdgeType,
    NodeType,
    Opcode,
    OPCODE_CATEGORIES,
    opcode_category,
)

TARGET_NAMES = ("DSP", "LUT", "FF", "CP")

_OPCODES = tuple(Opcode)
_OPCODE_INDEX = {op: i for i, op in enumerate(_OPCODES)}
_CATEGORY_INDEX = {c: i for i, c in enumerate(OPCODE_CATEGORIES)}

#: 4 structural edge types x {normal, back}.
NUM_EDGE_TYPES_WITH_BACK = 2 * len(EdgeType)


class FeatureEncoder:
    """Encodes :class:`IRGraph` into :class:`GraphData`.

    ``with_resource_values`` / ``with_resource_types`` select the
    knowledge-rich / knowledge-infused feature extensions.
    """

    def __init__(
        self,
        with_resource_values: bool = False,
        with_resource_types: bool = False,
    ):
        self.with_resource_values = with_resource_values
        self.with_resource_types = with_resource_types

    @property
    def base_dim(self) -> int:
        return (
            len(NodeType)
            + 2
            + len(OPCODE_CATEGORIES)
            + len(_OPCODES)
            + 1
            + 2
        )

    @property
    def feature_dim(self) -> int:
        dim = self.base_dim
        if self.with_resource_values:
            dim += 3
        if self.with_resource_types:
            dim += 3
        return dim

    def encode_nodes(
        self,
        graph: IRGraph,
        node_resources: np.ndarray | None = None,
        node_types: np.ndarray | None = None,
    ) -> np.ndarray:
        n = graph.num_nodes
        features = np.zeros((n, self.feature_dim))
        data_preds = graph.data_predecessor_counts()
        col_ntype = 0
        col_bw = col_ntype + len(NodeType)
        col_cat = col_bw + 2
        col_op = col_cat + len(OPCODE_CATEGORIES)
        col_start = col_op + len(_OPCODES)
        col_cluster = col_start + 1
        col_extra = col_cluster + 2
        for node in graph.nodes:
            i = node.index
            features[i, col_ntype + int(node.kind)] = 1.0
            features[i, col_bw] = min(node.bitwidth, 256) / 64.0
            features[i, col_bw + 1] = np.log2(node.bitwidth + 1.0) / 8.0
            features[i, col_cat + _CATEGORY_INDEX[opcode_category(node.opcode)]] = 1.0
            features[i, col_op + _OPCODE_INDEX[node.opcode]] = 1.0
            features[i, col_start] = 1.0 if data_preds[i] == 0 else 0.0
            if node.cluster < 0:
                features[i, col_cluster + 1] = 1.0
            else:
                features[i, col_cluster] = min(node.cluster, 256) / 16.0
        cursor = col_extra
        if self.with_resource_values:
            if node_resources is None:
                raise ValueError("knowledge-rich encoding requires node_resources")
            features[:, cursor] = node_resources[:, 0]
            features[:, cursor + 1] = np.log1p(node_resources[:, 1])
            features[:, cursor + 2] = np.log1p(node_resources[:, 2])
            cursor += 3
        if self.with_resource_types:
            if node_types is None:
                raise ValueError("knowledge-infused encoding requires node_types")
            features[:, cursor : cursor + 3] = node_types
        return features

    def encode_edges(self, graph: IRGraph) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (edge_index, merged edge-type ids, back flags)."""
        edge_index, edge_type, edge_back = graph.edge_arrays()
        merged = edge_type + len(EdgeType) * edge_back
        return edge_index, merged, edge_back

    def encode(
        self,
        graph: IRGraph,
        y: np.ndarray | None = None,
        node_labels: np.ndarray | None = None,
        node_resources: np.ndarray | None = None,
        meta: dict | None = None,
    ) -> GraphData:
        """Full encoding of one sample (features, edges, labels)."""
        node_features = self.encode_nodes(
            graph,
            node_resources=node_resources,
            node_types=node_labels if self.with_resource_types else None,
        )
        edge_index, edge_type, edge_back = self.encode_edges(graph)
        return GraphData(
            node_features=node_features,
            edge_index=edge_index,
            edge_type=edge_type,
            edge_back=edge_back,
            y=y,
            node_labels=node_labels,
            node_resources=node_resources,
            meta=meta or {"name": graph.name, "kind": graph.kind},
        )
