"""Dataset statistics: the numbers a benchmark paper reports about its
own data (graph sizes, edge-type mix, label distributions, class balance).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataset.features import TARGET_NAMES
from repro.graph.data import GraphData
from repro.utils.tables import format_table


@dataclass(frozen=True)
class DatasetStats:
    num_graphs: int
    num_nodes: int
    num_edges: int
    nodes_per_graph: tuple[float, float, float]  # min / median / max
    edge_type_fractions: dict[int, float]
    back_edge_fraction: float
    label_ranges: dict[str, tuple[float, float, float]]  # min / median / max
    node_label_positive_rates: tuple[float, float, float]  # DSP/LUT/FF


def compute_stats(samples: list[GraphData]) -> DatasetStats:
    """Aggregate statistics over a dataset."""
    if not samples:
        raise ValueError("empty dataset")
    node_counts = np.array([s.num_nodes for s in samples])
    edge_types = np.concatenate([s.edge_type for s in samples])
    backs = np.concatenate([s.edge_back for s in samples])
    targets = np.stack([s.y for s in samples]) if samples[0].y is not None else None
    label_ranges = {}
    if targets is not None:
        for i, name in enumerate(TARGET_NAMES):
            column = targets[:, i]
            label_ranges[name] = (
                float(column.min()),
                float(np.median(column)),
                float(column.max()),
            )
    if samples[0].node_labels is not None:
        node_labels = np.concatenate([s.node_labels for s in samples])
        positive = tuple(float(v) for v in node_labels.mean(axis=0))
    else:
        positive = (0.0, 0.0, 0.0)
    type_ids, counts = np.unique(edge_types, return_counts=True)
    return DatasetStats(
        num_graphs=len(samples),
        num_nodes=int(node_counts.sum()),
        num_edges=int(len(edge_types)),
        nodes_per_graph=(
            float(node_counts.min()),
            float(np.median(node_counts)),
            float(node_counts.max()),
        ),
        edge_type_fractions={
            int(t): float(c) / len(edge_types) for t, c in zip(type_ids, counts)
        },
        back_edge_fraction=float(backs.mean()) if len(backs) else 0.0,
        label_ranges=label_ranges,
        node_label_positive_rates=positive,
    )


def render_stats(stats: DatasetStats, title: str = "Dataset statistics") -> str:
    rows = [
        ["graphs", stats.num_graphs],
        ["nodes (total)", stats.num_nodes],
        ["edges (total)", stats.num_edges],
        ["nodes/graph min/med/max",
         "/".join(f"{v:.0f}" for v in stats.nodes_per_graph)],
        ["back-edge fraction", f"{100 * stats.back_edge_fraction:.2f}%"],
        ["node-label positive rate (DSP/LUT/FF)",
         "/".join(f"{100 * v:.1f}%" for v in stats.node_label_positive_rates)],
    ]
    rows.extend(
        [f"label {name} min/med/max", f"{lo:.1f}/{mid:.1f}/{hi:.1f}"]
        for name, (lo, mid, hi) in stats.label_ranges.items()
    )
    return format_table(["statistic", "value"], rows, title=title)
