"""Sharded on-disk dataset layout and lazy readers.

Layout of a sharded dataset rooted at ``<root>/``::

    <root>/manifest.json     # schema version, build provenance, shard table
    <root>/shard-00000.npz   # packed columnar archive (repro.dataset.io)
    <root>/shard-00001.npz
    ...

The manifest is rewritten (atomically, tmp + rename) after every shard
the builder completes, with ``complete: false`` until the final shard
lands — a killed build leaves a valid prefix that
:func:`repro.dataset.pipeline.build_pipeline` resumes from by skipping
every shard already on disk.

Readers are lazy: :class:`ShardedDataset` decodes shards on demand and
keeps only a small LRU of decoded shards in memory, so training can
stream datasets far larger than RAM. :class:`DatasetView` is an
index-selected view over any such source (what
:func:`repro.dataset.splits.split_dataset` returns for streaming
inputs), preserving laziness through train/val/test splitting.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from repro.dataset.io import pack_samples, unpack_samples
from repro.graph.data import GraphData
from repro.integrity import IntegrityError, digest_file, load_npz_verified

#: Bump on any incompatible change to the manifest/shard layout.
SHARD_SCHEMA_VERSION = 1

MANIFEST_NAME = "manifest.json"


def shard_filename(index: int) -> str:
    return f"shard-{index:05d}.npz"


@dataclass
class ShardInfo:
    """One shard's entry in the manifest."""

    file: str
    start: int  # global index of the shard's first sample
    num_samples: int
    #: Content digest of the shard file (``"sha256:<hex>"``), verified on
    #: every read. Empty for shards written before digests existed —
    #: those load unverified (schema unchanged, so old manifests parse).
    digest: str = ""


@dataclass
class Manifest:
    """Self-describing header of a sharded dataset."""

    schema_version: int = SHARD_SCHEMA_VERSION
    complete: bool = False
    num_samples: int = 0
    shard_size: int = 0
    encoder_schema: str = ""
    #: Free-form build provenance (mode, count, seed, device, ...) used
    #: by resumable builds to refuse mixing incompatible configurations.
    build: dict = field(default_factory=dict)
    #: Quarantined samples: ``{"index", "error", "retries"}`` per sample
    #: that kept failing after the pipeline's retries. Their indices are
    #: *build* indices (the deterministic (config, seed, index) space);
    #: the dataset itself stays dense — shards skip quarantined samples
    #: and ``num_samples`` still counts the planned build, so a complete
    #: manifest satisfies ``covered + len(failed) == num_samples``.
    failed: list[dict] = field(default_factory=list)
    shards: list[ShardInfo] = field(default_factory=list)

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Manifest":
        raw = json.loads(text)
        version = raw.get("schema_version")
        if version != SHARD_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported shard schema {version!r} "
                f"(supported: {SHARD_SCHEMA_VERSION})"
            )
        shards = [ShardInfo(**entry) for entry in raw.pop("shards", [])]
        return cls(**{**raw, "shards": shards})

    def save(self, root: str | Path) -> Path:
        """Atomic write (tmp + rename) so a crash mid-write can never
        leave a torn manifest behind."""
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        path = root / MANIFEST_NAME
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(self.to_json())
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, root: str | Path) -> "Manifest":
        root = Path(root)
        path = root if root.name == MANIFEST_NAME else root / MANIFEST_NAME
        return cls.from_json(path.read_text())


def is_sharded(path: str | Path) -> bool:
    """True when ``path`` is a sharded dataset root (or its manifest)."""
    path = Path(path)
    if path.name == MANIFEST_NAME:
        return path.exists()
    return path.is_dir() and (path / MANIFEST_NAME).exists()


def write_shard(
    root: str | Path, index: int, start: int, samples: Sequence[GraphData]
) -> ShardInfo:
    """Persist one shard atomically and return its manifest entry."""
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    name = shard_filename(index)
    tmp = root / (name + ".tmp")
    with open(tmp, "wb") as handle:
        np.savez_compressed(handle, **pack_samples(samples))
    # Hash before the rename: the digest lands in the manifest entry, so
    # the (shard, manifest) pair is sealed together.
    digest = digest_file(tmp)
    os.replace(tmp, root / name)
    return ShardInfo(
        file=name, start=start, num_samples=len(samples), digest=digest
    )


def read_shard(root: str | Path, info: ShardInfo) -> list[GraphData]:
    """Decode one shard, digest-verified against its manifest entry.

    Bytes pass through the ``io.read`` fault seam keyed by the shard
    file name; corruption (real or injected) raises
    :class:`repro.integrity.DigestMismatch` instead of yielding
    plausible-but-wrong samples. Legacy entries without a digest load
    unverified.
    """
    arrays = load_npz_verified(
        Path(root) / info.file,
        expected=info.digest or None,
        label=f"shard {info.file}",
        key=info.file,
    )
    samples = unpack_samples(arrays)
    if len(samples) != info.num_samples:
        raise IntegrityError(
            f"shard {info.file} holds {len(samples)} samples, manifest "
            f"says {info.num_samples}"
        )
    return samples


class ShardedDataset(Sequence[GraphData]):
    """Lazy random-access reader over a sharded dataset.

    Implements the :class:`~typing.Sequence` protocol, so it drops in
    wherever a sample list is expected (splitting, batching, training);
    the ``streaming`` marker tells the trainer to rebuild batches lazily
    per epoch instead of materialising everything up front. At most
    ``cache_shards`` decoded shards are held in memory.
    """

    #: Consumers (trainer, splits) key memory behaviour off this flag.
    streaming = True

    def __init__(
        self,
        root: str | Path,
        cache_shards: int = 2,
        require_complete: bool = True,
    ):
        root = Path(root)
        if root.name == MANIFEST_NAME:
            root = root.parent
        self.root = root
        self.manifest = Manifest.load(root)
        if require_complete and not self.manifest.complete:
            raise ValueError(
                f"sharded dataset at {root} is incomplete (interrupted "
                "build?); finish it with build_pipeline(..., resume=True) "
                "or pass require_complete=False"
            )
        if cache_shards < 1:
            raise ValueError("cache_shards must be >= 1")
        self.cache_shards = cache_shards
        self._cache: OrderedDict[int, list[GraphData]] = OrderedDict()
        self._starts = np.array(
            [info.start for info in self.manifest.shards], dtype=np.int64
        )
        covered = sum(info.num_samples for info in self.manifest.shards)
        self._length = covered
        expected = self.manifest.num_samples - len(self.manifest.failed)
        if self.manifest.complete and covered != expected:
            raise ValueError(
                f"manifest covers {covered} samples but declares "
                f"{self.manifest.num_samples} with {len(self.manifest.failed)} "
                "quarantined"
            )

    def __len__(self) -> int:
        return self._length

    def _shard(self, shard_index: int) -> list[GraphData]:
        cached = self._cache.get(shard_index)
        if cached is not None:
            self._cache.move_to_end(shard_index)
            return cached
        samples = read_shard(self.root, self.manifest.shards[shard_index])
        self._cache[shard_index] = samples
        while len(self._cache) > self.cache_shards:
            self._cache.popitem(last=False)
        return samples

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self._length))]
        index = int(index)
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError(f"index {index} out of range for {self._length} samples")
        shard_index = int(np.searchsorted(self._starts, index, side="right")) - 1
        info = self.manifest.shards[shard_index]
        return self._shard(shard_index)[index - info.start]

    def gather(self, indices) -> list[GraphData]:
        """Samples at ``indices`` (original order), grouped by shard.

        A shuffled batch scatters across shards, so per-sample
        ``__getitem__`` against the small LRU would decode the same
        shard repeatedly; grouping decodes each distinct shard exactly
        once per call. :class:`~repro.training.trainer.BatchStream`
        routes streaming batch construction through here.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self._length):
            raise IndexError(f"gather indices out of range for {self._length} samples")
        shard_of = np.searchsorted(self._starts, indices, side="right") - 1
        out: list[GraphData | None] = [None] * len(indices)
        for position in np.argsort(shard_of, kind="stable"):
            shard_index = int(shard_of[position])
            samples = self._shard(shard_index)
            offset = self.manifest.shards[shard_index].start
            out[int(position)] = samples[int(indices[position]) - offset]
        return out

    def __iter__(self) -> Iterator[GraphData]:
        # Shard-sequential iteration: one decode per shard regardless of
        # the LRU size.
        for shard_index in range(len(self.manifest.shards)):
            yield from self._shard(shard_index)

    def iter_shards(self) -> Iterator[list[GraphData]]:
        for shard_index in range(len(self.manifest.shards)):
            yield self._shard(shard_index)

    def materialize(self) -> list[GraphData]:
        """Decode everything into one in-memory list (legacy behaviour)."""
        return list(self)

    def __repr__(self) -> str:
        return (
            f"ShardedDataset(root={str(self.root)!r}, samples={self._length}, "
            f"shards={len(self.manifest.shards)})"
        )


class DatasetView(Sequence[GraphData]):
    """Index-selected view over a sample sequence, itself lazy.

    Splitting a :class:`ShardedDataset` yields these instead of
    materialised lists so train/val/test partitions keep streaming.
    """

    streaming = True

    def __init__(self, base: Sequence[GraphData], indices):
        self.base = base
        self.indices = np.asarray(indices, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return DatasetView(self.base, self.indices[index])
        return self.base[int(self.indices[int(index)])]

    def gather(self, indices) -> list[GraphData]:
        base_indices = self.indices[np.asarray(indices, dtype=np.int64)]
        gather = getattr(self.base, "gather", None)
        if gather is not None:
            return gather(base_indices)
        return [self.base[int(i)] for i in base_indices]

    def __repr__(self) -> str:
        return f"DatasetView(samples={len(self.indices)}, base={self.base!r})"


class ConcatDataset(Sequence[GraphData]):
    """Concatenation view over several sample sequences.

    ``Sequence`` readers do not support ``+``; this keeps concatenation
    (e.g. the joint DFG+CDFG training set of Table 5) lazy instead of
    materialising both sides. Streaming propagates: the view streams iff
    any part does, so plain-list concatenations still split into lists.
    """

    def __init__(self, *parts: Sequence[GraphData]):
        if not parts:
            raise ValueError("need at least one dataset to concatenate")
        self.parts = list(parts)
        self._offsets = np.cumsum([0] + [len(p) for p in self.parts])
        self.streaming = any(getattr(p, "streaming", False) for p in self.parts)

    def __len__(self) -> int:
        return int(self._offsets[-1])

    def _locate(self, index: int) -> tuple[int, int]:
        index = int(index)
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(f"index {index} out of range for {len(self)} samples")
        part = int(np.searchsorted(self._offsets, index, side="right")) - 1
        return part, index - int(self._offsets[part])

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        part, local = self._locate(index)
        return self.parts[part][local]

    def __iter__(self) -> Iterator[GraphData]:
        for part in self.parts:
            yield from part

    def gather(self, indices) -> list[GraphData]:
        located = [self._locate(int(i)) for i in indices]
        out: list[GraphData | None] = [None] * len(located)
        for part_index, part in enumerate(self.parts):
            wanted = [
                (position, local)
                for position, (p, local) in enumerate(located)
                if p == part_index
            ]
            if not wanted:
                continue
            gather = getattr(part, "gather", None)
            if gather is not None:
                samples = gather([local for _, local in wanted])
            else:
                samples = [part[local] for _, local in wanted]
            for (position, _), sample in zip(wanted, samples):
                out[position] = sample
        return out

    def __repr__(self) -> str:
        return f"ConcatDataset(parts={len(self.parts)}, samples={len(self)})"


def migrate_dataset(
    src: str | Path, out_dir: str | Path, shard_size: int = 256
) -> "ShardedDataset":
    """Convert a legacy single-``.npz`` archive to a sharded manifest."""
    from repro.dataset.features import FeatureEncoder
    from repro.dataset.io import load_dataset

    if shard_size <= 0:
        raise ValueError("shard_size must be positive")
    samples = load_dataset(src)
    manifest = Manifest(
        complete=False,
        num_samples=len(samples),
        shard_size=shard_size,
        encoder_schema=FeatureEncoder().schema_key(),
        build={"source": "migrate", "origin": str(src)},
    )
    out_dir = Path(out_dir)
    for shard_index, start in enumerate(range(0, len(samples), shard_size)):
        chunk = samples[start : start + shard_size]
        manifest.shards.append(write_shard(out_dir, shard_index, start, chunk))
        manifest.save(out_dir)
    manifest.complete = True
    manifest.save(out_dir)
    return ShardedDataset(out_dir)
