"""Dataset (de)serialisation.

Two on-disk layouts share one packed columnar representation
(concatenated arrays + offsets, metadata as a JSON byte blob):

- the legacy single ``.npz`` archive written by :func:`save_dataset`;
- the sharded ``manifest.json`` + ``shard-*.npz`` layout of
  :mod:`repro.dataset.shards`, whose shards are each one packed archive.

:func:`load_dataset` auto-detects the layout, so consumers written
against the legacy format transparently read sharded builds (and
``python -m repro.dataset migrate`` converts old archives forward).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from repro.graph.data import GraphData


def pack_samples(samples: Sequence[GraphData]) -> dict[str, np.ndarray]:
    """Columnar payload for a sample list (the shared archive format)."""
    samples = list(samples)
    if not samples:
        raise ValueError(
            "cannot serialise an empty sample list; datasets must contain "
            "at least one graph"
        )
    node_ptr = np.cumsum([0] + [s.num_nodes for s in samples])
    edge_ptr = np.cumsum([0] + [s.num_edges for s in samples])
    return {
        "node_ptr": node_ptr,
        "edge_ptr": edge_ptr,
        "node_features": np.concatenate([s.node_features for s in samples], axis=0),
        "edge_index": np.concatenate([s.edge_index for s in samples], axis=1),
        "edge_type": np.concatenate([s.edge_type for s in samples]),
        "edge_back": np.concatenate([s.edge_back for s in samples]),
        "y": np.stack([s.y for s in samples]),
        "node_labels": np.concatenate([s.node_labels for s in samples], axis=0),
        "node_resources": np.concatenate([s.node_resources for s in samples], axis=0),
        "meta_json": np.frombuffer(
            json.dumps([s.meta for s in samples]).encode(), dtype=np.uint8
        ),
    }


def unpack_samples(payload: Mapping[str, np.ndarray]) -> list[GraphData]:
    """Inverse of :func:`pack_samples`.

    ``payload`` may be a live ``np.load`` archive: every key is read
    exactly once up front (``NpzFile`` decompresses per access, so
    indexing inside the per-sample loop would decompress each column
    once per sample).
    """
    node_ptr = np.asarray(payload["node_ptr"])
    edge_ptr = np.asarray(payload["edge_ptr"])
    node_features = np.asarray(payload["node_features"])
    edge_index = np.asarray(payload["edge_index"])
    edge_type = np.asarray(payload["edge_type"])
    edge_back = np.asarray(payload["edge_back"])
    y = np.asarray(payload["y"])
    node_labels = np.asarray(payload["node_labels"])
    node_resources = np.asarray(payload["node_resources"])
    metas = json.loads(bytes(np.asarray(payload["meta_json"])).decode())
    samples = []
    for k in range(len(node_ptr) - 1):
        n0, n1 = int(node_ptr[k]), int(node_ptr[k + 1])
        e0, e1 = int(edge_ptr[k]), int(edge_ptr[k + 1])
        samples.append(
            GraphData(
                node_features=node_features[n0:n1],
                edge_index=edge_index[:, e0:e1],
                edge_type=edge_type[e0:e1],
                edge_back=edge_back[e0:e1],
                y=y[k],
                node_labels=node_labels[n0:n1],
                node_resources=node_resources[n0:n1],
                meta=metas[k],
            )
        )
    return samples


def save_dataset(samples: Sequence[GraphData], path: str | Path) -> None:
    """Store a dataset compactly as one ``.npz`` (the legacy layout).

    Raises :class:`ValueError` on an empty sample list instead of
    crashing inside ``np.concatenate``.
    """
    np.savez_compressed(Path(path), **pack_samples(samples))


def load_dataset(path: str | Path) -> list[GraphData]:
    """Load a dataset from either layout into a materialised list.

    Accepts a legacy ``.npz`` archive, a sharded dataset directory or
    its ``manifest.json``. For lazy, memory-bounded access to sharded
    builds use :class:`repro.dataset.shards.ShardedDataset` directly.
    """
    from repro.dataset.shards import ShardedDataset, is_sharded

    path = Path(path)
    if is_sharded(path):
        return ShardedDataset(path).materialize()
    with np.load(path, allow_pickle=False) as archive:
        return unpack_samples(archive)
