"""Dataset (de)serialisation to a single ``.npz`` archive + JSON metadata."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.graph.data import GraphData


def save_dataset(samples: list[GraphData], path: str | Path) -> None:
    """Store a dataset compactly: concatenated arrays with offsets."""
    path = Path(path)
    node_ptr = np.cumsum([0] + [s.num_nodes for s in samples])
    edge_ptr = np.cumsum([0] + [s.num_edges for s in samples])
    payload = {
        "node_ptr": node_ptr,
        "edge_ptr": edge_ptr,
        "node_features": np.concatenate([s.node_features for s in samples], axis=0),
        "edge_index": np.concatenate([s.edge_index for s in samples], axis=1),
        "edge_type": np.concatenate([s.edge_type for s in samples]),
        "edge_back": np.concatenate([s.edge_back for s in samples]),
        "y": np.stack([s.y for s in samples]),
        "node_labels": np.concatenate([s.node_labels for s in samples], axis=0),
        "node_resources": np.concatenate([s.node_resources for s in samples], axis=0),
        "meta_json": np.frombuffer(
            json.dumps([s.meta for s in samples]).encode(), dtype=np.uint8
        ),
    }
    np.savez_compressed(path, **payload)


def load_dataset(path: str | Path) -> list[GraphData]:
    """Inverse of :func:`save_dataset`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        node_ptr = archive["node_ptr"]
        edge_ptr = archive["edge_ptr"]
        metas = json.loads(bytes(archive["meta_json"]).decode())
        samples = []
        for k in range(len(node_ptr) - 1):
            n0, n1 = int(node_ptr[k]), int(node_ptr[k + 1])
            e0, e1 = int(edge_ptr[k]), int(edge_ptr[k + 1])
            samples.append(
                GraphData(
                    node_features=archive["node_features"][n0:n1],
                    edge_index=archive["edge_index"][:, e0:e1] - 0,
                    edge_type=archive["edge_type"][e0:e1],
                    edge_back=archive["edge_back"][e0:e1],
                    y=archive["y"][k],
                    node_labels=archive["node_labels"][n0:n1],
                    node_resources=archive["node_resources"][n0:n1],
                    meta=metas[k],
                )
            )
    return samples
