"""Dataset CLI: ``python -m repro.dataset``.

Verbs::

    # Parallel, cached, resumable sharded build (the production path)
    python -m repro.dataset build --mode cdfg --count 40000 \\
        --out data/cdfg-40k --workers 8 --shard-size 512 \\
        --cache-dir data/cache --resume

    # Convert a legacy single-.npz archive to the sharded layout
    python -m repro.dataset migrate old.npz --out data/old-sharded

Invoking without a verb keeps the original single-archive behaviour::

    python -m repro.dataset --mode dfg --count 500 --seed 0 --out dfg.npz
"""

from __future__ import annotations

import argparse
from typing import Sequence

import numpy as np

from repro.dataset.builder import build_realcase_dataset, build_synthetic_dataset
from repro.dataset.io import save_dataset
from repro.dataset.pipeline import (
    DEFAULT_MAX_RETRIES,
    DEFAULT_SHARD_SIZE,
    DEFAULT_WORKER_TIMEOUT_S,
    build_pipeline,
)
from repro.dataset.shards import migrate_dataset

VERBS = ("build", "migrate")


def _print_summary(samples: Sequence, destination: str) -> None:
    # Single pass: ``samples`` may be a lazy ShardedDataset, where every
    # traversal re-decompresses the shards.
    nodes = edges = 0
    ys = []
    for sample in samples:
        nodes += sample.num_nodes
        edges += sample.num_edges
        ys.append(sample.y)
    targets = np.stack(ys)
    print(f"wrote {len(ys)} graphs ({nodes} nodes, {edges} edges) to {destination}")
    for i, name in enumerate(("DSP", "LUT", "FF", "CP")):
        print(
            f"  {name:3s}: min={targets[:, i].min():9.1f} "
            f"median={np.median(targets[:, i]):9.1f} "
            f"max={targets[:, i].max():9.1f}"
        )


def _run_legacy(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.dataset",
        description="Generate labelled HLS benchmark datasets (single .npz).",
    )
    parser.add_argument("--mode", choices=["dfg", "cdfg", "real"], required=True)
    parser.add_argument("--count", type=int, default=100,
                        help="number of synthetic programs (ignored for real)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", required=True, help="output .npz path")
    args = parser.parse_args(argv)

    if args.mode == "real":
        samples = build_realcase_dataset()
    else:
        samples = build_synthetic_dataset(args.mode, args.count, seed=args.seed)
    save_dataset(samples, args.out)
    _print_summary(samples, args.out)
    return 0


def _run_build(args: argparse.Namespace) -> int:
    import contextlib

    scope = contextlib.nullcontext()
    if args.obs:
        from repro.obs import RunLedger

        scope = RunLedger(
            "dataset-build",
            meta={"mode": args.mode, "workers": args.workers},
            config={"mode": args.mode, "count": args.count, "seed": args.seed},
        )
    faults = None
    if args.inject:
        from repro.faults import load_fault_plan

        faults = load_fault_plan(args.inject)
    with scope:
        dataset, stats = build_pipeline(
            args.out,
            args.mode,
            None if args.mode == "real" else args.count,
            seed=args.seed,
            workers=args.workers,
            shard_size=args.shard_size,
            cache_dir=args.cache_dir,
            resume=args.resume,
            max_retries=args.max_retries,
            worker_timeout_s=args.worker_timeout,
            faults=faults,
        )
    print(
        f"built {stats.built}/{stats.total} samples in {stats.seconds:.2f}s "
        f"({stats.points_per_second:.1f} pts/s, workers={stats.workers}): "
        f"{stats.shards_written} shards written, "
        f"{stats.shards_skipped} resumed, "
        f"cache {stats.cache_hits} hits / {stats.cache_misses} misses, "
        f"{stats.retries} retries, {stats.quarantined} quarantined"
    )
    _print_summary(dataset, str(args.out))
    return 0


def _run_migrate(args: argparse.Namespace) -> int:
    dataset = migrate_dataset(args.src, args.out, shard_size=args.shard_size)
    print(
        f"migrated {args.src} -> {args.out}: {len(dataset)} samples in "
        f"{len(dataset.manifest.shards)} shards"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    import sys

    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if not argv or argv[0] not in VERBS:
        return _run_legacy(argv)

    parser = argparse.ArgumentParser(
        prog="python -m repro.dataset",
        description="Generate labelled HLS benchmark datasets.",
    )
    verbs = parser.add_subparsers(dest="verb", required=True)

    build = verbs.add_parser(
        "build", help="parallel, cached, resumable sharded build"
    )
    build.add_argument("--mode", choices=["dfg", "cdfg", "real"], required=True)
    build.add_argument("--count", type=int, default=100,
                       help="number of synthetic programs (ignored for real)")
    build.add_argument("--seed", type=int, default=0)
    build.add_argument("--out", required=True, help="output dataset directory")
    build.add_argument("--workers", type=int, default=1,
                       help="worker processes (output is identical for any N)")
    build.add_argument("--shard-size", type=int, default=DEFAULT_SHARD_SIZE)
    build.add_argument("--cache-dir", default=None,
                       help="content-addressed build cache directory")
    build.add_argument("--resume", action="store_true",
                       help="skip shards an interrupted build already wrote")
    build.add_argument("--obs", action="store_true",
                       help="record the build (stats + spans) under REPRO_OBS_DIR")
    build.add_argument("--max-retries", type=int, default=DEFAULT_MAX_RETRIES,
                       help="rebuild attempts before quarantining a sample")
    build.add_argument("--worker-timeout", type=float,
                       default=DEFAULT_WORKER_TIMEOUT_S,
                       help="seconds before a hung pool chunk is reclaimed")
    build.add_argument("--inject", default=None, metavar="FAULTS_JSON",
                       help="fault plan (repro.faults JSON) for chaos builds")
    build.set_defaults(run=_run_build)

    migrate = verbs.add_parser(
        "migrate", help="convert a legacy single-.npz archive to shards"
    )
    migrate.add_argument("src", help="legacy .npz archive")
    migrate.add_argument("--out", required=True, help="output dataset directory")
    migrate.add_argument("--shard-size", type=int, default=DEFAULT_SHARD_SIZE)
    migrate.set_defaults(run=_run_migrate)

    args = parser.parse_args(argv)
    return args.run(args)


if __name__ == "__main__":
    raise SystemExit(main())
