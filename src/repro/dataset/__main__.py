"""Dataset-generation CLI: ``python -m repro.dataset``.

Examples::

    python -m repro.dataset --mode dfg --count 500 --seed 0 --out dfg.npz
    python -m repro.dataset --mode cdfg --count 300 --out cdfg.npz
    python -m repro.dataset --mode real --out real.npz
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.dataset.builder import build_realcase_dataset, build_synthetic_dataset
from repro.dataset.io import save_dataset


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.dataset",
        description="Generate labelled HLS benchmark datasets.",
    )
    parser.add_argument("--mode", choices=["dfg", "cdfg", "real"], required=True)
    parser.add_argument("--count", type=int, default=100,
                        help="number of synthetic programs (ignored for real)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", required=True, help="output .npz path")
    args = parser.parse_args(argv)

    if args.mode == "real":
        samples = build_realcase_dataset()
    else:
        samples = build_synthetic_dataset(args.mode, args.count, seed=args.seed)
    save_dataset(samples, args.out)

    nodes = sum(s.num_nodes for s in samples)
    edges = sum(s.num_edges for s in samples)
    targets = np.stack([s.y for s in samples])
    print(f"wrote {len(samples)} graphs ({nodes} nodes, {edges} edges) to {args.out}")
    for i, name in enumerate(("DSP", "LUT", "FF", "CP")):
        print(
            f"  {name:3s}: min={targets[:, i].min():9.1f} "
            f"median={np.median(targets[:, i]):9.1f} "
            f"max={targets[:, i].max():9.1f}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
