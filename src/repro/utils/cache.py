"""Small bounded caches.

Long streaming sessions touch many graphs and many partition blocks; the
plan/context caches they populate must not grow with the stream length.
:class:`LRUCache` is the one eviction policy used across the repo — a
plain ``OrderedDict`` with move-to-front on hit and drop-oldest on
overflow, no threads, no TTLs.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Iterator
from typing import TypeVar

K = TypeVar("K")
V = TypeVar("V")

_MISSING = object()


class LRUCache:
    """Least-recently-used mapping bounded to ``maxsize`` entries."""

    def __init__(self, maxsize: int):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._data: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator:
        return iter(self._data)

    def __getitem__(self, key):
        """Dict-style read (counts as a use for eviction ordering)."""
        value = self._data[key]
        self.hits += 1
        self._data.move_to_end(key)
        return value

    def keys(self):
        return self._data.keys()

    def items(self):
        return self._data.items()

    def get(self, key, default=None):
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        self._data.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def get_or_create(self, key, factory: Callable[[], V]) -> V:
        """Return the cached value for ``key``, building it on a miss."""
        value = self._data.get(key, _MISSING)
        if value is not _MISSING:
            self.hits += 1
            self._data.move_to_end(key)
            return value
        self.misses += 1
        value = factory()
        self.put(key, value)
        return value

    def clear(self) -> None:
        self._data.clear()
