"""Deterministic randomness.

Everything stochastic in the repository (parameter init, dropout, program
generation, dataset splits) draws from ``numpy.random.Generator`` objects
obtained here, so a single ``seed_all`` call makes a whole experiment
bit-reproducible.
"""

from __future__ import annotations

import numpy as np

_DEFAULT_SEED = 0
_default_generator = np.random.default_rng(_DEFAULT_SEED)


def seed_all(seed: int) -> None:
    """Reset the process-wide default generator."""
    global _default_generator
    _default_generator = np.random.default_rng(seed)


def default_rng() -> np.random.Generator:
    """Return the process-wide default generator."""
    return _default_generator


def fork_rng(rng: np.random.Generator | None = None) -> np.random.Generator:
    """Spawn an independent child generator (stable, collision-free)."""
    source = rng if rng is not None else _default_generator
    return np.random.default_rng(source.integers(0, 2**63 - 1))
