"""Plain-text table rendering for experiment reports.

Every experiment runner prints its result in the layout of the paper table
it reproduces; this module holds the one formatting helper they share.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        for row in text_rows
    )
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
