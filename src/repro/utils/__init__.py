"""Shared utilities: seeded randomness, table rendering, serialisation."""

from repro.utils.cache import LRUCache
from repro.utils.rng import default_rng, fork_rng, seed_all
from repro.utils.tables import format_table

__all__ = ["LRUCache", "default_rng", "fork_rng", "seed_all", "format_table"]
