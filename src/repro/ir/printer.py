"""Textual IR dump (LLVM-``.ll`` flavoured) for debugging and docs.

``print(function_to_text(fn))`` shows the SSA form a program lowered to —
the fastest way to understand what the graph extractors and the HLS
simulator actually see.
"""

from __future__ import annotations

from repro.ir.function import IRFunction
from repro.ir.opcodes import Opcode
from repro.ir.values import Argument, Constant, Instruction, Value


def _value_ref(value: Value) -> str:
    if isinstance(value, Constant):
        return f"i{value.type.width} {value.value}"
    if isinstance(value, Argument):
        return f"%{value.name}"
    if isinstance(value, Instruction):
        return value.name
    raise TypeError(f"cannot print {type(value).__name__}")


def instruction_to_text(inst: Instruction) -> str:
    operands = ", ".join(_value_ref(v) for v in inst.operands)
    if inst.opcode == Opcode.BR:
        if len(inst.targets) == 2:
            return (
                f"br {operands}, label %{inst.targets[0]}, "
                f"label %{inst.targets[1]}"
            )
        return f"br label %{inst.targets[0]}"
    if inst.opcode == Opcode.RET:
        return f"ret {operands}"
    if inst.opcode == Opcode.PHI:
        pairs = ", ".join(
            f"[ {_value_ref(v)}, %{b} ]"
            for v, b in zip(inst.operands, inst.incoming_blocks)
        )
        return f"{inst.name} = phi i{inst.bitwidth} {pairs}"
    if inst.opcode == Opcode.ALLOCA:
        return f"{inst.name} = alloca i{inst.bitwidth}"
    suffix = ""
    if inst.memory is not None:
        base = (
            f"%{inst.memory.name}"
            if isinstance(inst.memory, Argument)
            else inst.memory.name
        )
        suffix = f" ; memory {base}"
    return f"{inst.name} = {inst.opcode} i{inst.bitwidth} {operands}{suffix}"


def function_to_text(function: IRFunction) -> str:
    """Render the whole function as readable SSA text."""
    params = ", ".join(
        f"{a.type} %{a.name}" for a in function.args
    )
    lines = [f"define i{function.ret_type.width} @{function.name}({params}) {{"]
    for block in function.blocks:
        lines.append(f"{block.name}:")
        lines.extend(f"  {instruction_to_text(inst)}" for inst in block.instructions)
    lines.append("}")
    return "\n".join(lines)
