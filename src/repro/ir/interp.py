"""Reference interpreter for the SSA IR.

Executes an :class:`~repro.ir.function.IRFunction` with the same C
fixed-width semantics as :mod:`repro.frontend.interp`. The two
interpreters differentially test the lowering: for every program,
``run_ast(program, args) == run_ir(lower_program(program), args)``.

Phi nodes are evaluated with the standard simultaneous-assignment rule:
on entry to a block from predecessor P, every phi reads the operand
associated with P using the *pre-entry* register file.
"""

from __future__ import annotations

from repro.frontend.interp import InterpreterError, _trunc_div, _trunc_rem, wrap
from repro.ir.function import IRFunction
from repro.ir.opcodes import Opcode
from repro.ir.values import Argument, Constant, Instruction, Value
from repro.typesys import CInt

#: Execution-step budget: generated loops are bounded, so exceeding this
#: indicates an interpreter or lowering bug rather than a long program.
MAX_STEPS = 2_000_000


class IRInterpreter:
    def __init__(self, function: IRFunction, arguments: dict):
        self.function = function
        self.registers: dict[int, int] = {}
        self.memories: dict[int, list[int]] = {}
        self.scalar_args: dict[int, int] = {}
        for arg in function.args:
            if arg.is_array:
                self.memories[id(arg)] = arguments[arg.name]
            else:
                self.scalar_args[id(arg)] = wrap(
                    int(arguments[arg.name]), arg.type
                )

    # -- value resolution ---------------------------------------------------
    def value_of(self, value: Value) -> int:
        if isinstance(value, Constant):
            return wrap(value.value, value.type)
        if isinstance(value, Argument):
            return self.scalar_args[id(value)]
        if isinstance(value, Instruction):
            return self.registers[value.id]
        raise InterpreterError(f"cannot resolve {type(value).__name__}")

    def _memory_of(self, inst: Instruction) -> list[int]:
        base = inst.memory
        if base is None:
            raise InterpreterError(f"{inst.name} has no memory base")
        if id(base) not in self.memories:
            raise InterpreterError(f"unknown memory object for {inst.name}")
        return self.memories[id(base)]

    # -- execution -----------------------------------------------------------
    def run(self) -> int:
        block = self.function.entry
        previous_block: str | None = None
        steps = 0
        while True:
            # Simultaneous phi evaluation.
            phi_updates: dict[int, int] = {}
            for phi in block.phis:
                if previous_block is None:
                    raise InterpreterError("phi in entry block")
                position = phi.incoming_blocks.index(previous_block)
                phi_updates[phi.id] = wrap(
                    self.value_of(phi.operands[position]), phi.type
                )
            self.registers.update(phi_updates)
            for inst in block.instructions:
                steps += 1
                if steps > MAX_STEPS:
                    raise InterpreterError("step budget exceeded")
                if inst.opcode == Opcode.PHI:
                    continue
                if inst.opcode == Opcode.RET:
                    return wrap(
                        self.value_of(inst.operands[0]), self.function.ret_type
                    )
                if inst.opcode == Opcode.BR:
                    if len(inst.targets) == 1:
                        target = inst.targets[0]
                    else:
                        taken = self.value_of(inst.operands[0]) != 0
                        target = inst.targets[0] if taken else inst.targets[1]
                    previous_block = block.name
                    block = self.function.block(target)
                    break
                self.registers[inst.id] = self._execute(inst)
            else:
                raise InterpreterError(
                    f"block {block.name} fell through without a terminator"
                )

    def _execute(self, inst: Instruction) -> int:
        op = inst.opcode
        ctype = inst.type
        if op == Opcode.ALLOCA:
            # Size is not tracked on the instruction; allocate lazily on
            # first access instead (gep/load/store index modulo below).
            self.memories.setdefault(id(inst), [0] * 1024)
            return 0
        operands = [self.value_of(v) for v in inst.operands]
        if op in (Opcode.ADD, Opcode.SUB, Opcode.MUL):
            a, b = operands
            value = {Opcode.ADD: a + b, Opcode.SUB: a - b, Opcode.MUL: a * b}[op]
            return wrap(value, ctype)
        if op in (Opcode.SDIV, Opcode.UDIV):
            a, b = operands
            if b == 0:
                raise InterpreterError("division by zero")
            return wrap(_trunc_div(a, b), ctype)
        if op in (Opcode.SREM, Opcode.UREM):
            a, b = operands
            if b == 0:
                raise InterpreterError("remainder by zero")
            return wrap(_trunc_rem(a, b), ctype)
        if op in (Opcode.AND, Opcode.OR, Opcode.XOR):
            a, b = operands
            value = {Opcode.AND: a & b, Opcode.OR: a | b, Opcode.XOR: a ^ b}[op]
            return wrap(value, ctype)
        if op in (Opcode.SHL, Opcode.LSHR, Opcode.ASHR):
            a, b = operands
            shift = b % ctype.width
            if op == Opcode.SHL:
                return wrap(a << shift, ctype)
            if op == Opcode.ASHR:
                return wrap(a >> shift, ctype)
            unsigned = wrap(a, CInt(ctype.width, signed=False))
            return wrap(unsigned >> shift, ctype)
        if op == Opcode.ICMP:
            a, b = operands
            predicate = inst.name.rsplit(".", 1)[-1]
            return int({
                "lt": a < b, "le": a <= b, "gt": a > b,
                "ge": a >= b, "eq": a == b, "ne": a != b,
            }[predicate])
        if op == Opcode.SELECT:
            cond, a, b = operands
            return wrap(a if cond != 0 else b, ctype)
        if op == Opcode.GEP:
            return operands[0]
        if op == Opcode.LOAD:
            memory = self._memory_of(inst)
            index = operands[0] % len(memory)
            return wrap(memory[index], ctype)
        if op == Opcode.STORE:
            memory = self._memory_of(inst)
            value, address = operands
            memory[address % len(memory)] = wrap(value, ctype)
            return 0
        if op in (Opcode.TRUNC, Opcode.ZEXT):
            source = inst.operands[0]
            if op == Opcode.ZEXT:
                unsigned = wrap(
                    operands[0], CInt(source.type.width, signed=False)
                )
                return wrap(unsigned, ctype)
            return wrap(operands[0], ctype)
        if op == Opcode.SEXT:
            return wrap(operands[0], ctype)
        raise InterpreterError(f"cannot execute opcode {op}")


def run_ir(function: IRFunction, arguments: dict) -> int:
    """Execute ``function`` on concrete arguments, returning the result."""
    return IRInterpreter(function, arguments).run()
