"""IR functions: an argument list plus an ordered list of basic blocks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.typesys import CInt
from repro.ir.basic_block import BasicBlock
from repro.ir.values import Argument, Instruction


@dataclass(frozen=True)
class LoopDirective:
    """HLS directives attached to one natural loop (by header block).

    ``unroll`` is an explicit datapath replication factor that overrides
    the flow's small-loop heuristic; ``pipeline`` requests II=1 loop
    pipelining. Directives are metadata: they steer the HLS cost models
    (:mod:`repro.hls.loops`, :mod:`repro.hls.latency`) and the directive
    feature columns, never the emitted instructions.
    """

    unroll: int | None = None
    pipeline: bool = False

    def __post_init__(self) -> None:
        if self.unroll is not None and self.unroll < 1:
            raise ValueError("unroll directive must be >= 1")

    @property
    def is_default(self) -> bool:
        return self.unroll is None and not self.pipeline


class IRFunction:
    def __init__(self, name: str, args: list[Argument], ret_type: CInt):
        self.name = name
        self.args = list(args)
        self.ret_type = ret_type
        self.blocks: list[BasicBlock] = []
        self._block_index: dict[str, BasicBlock] = {}
        #: loop header block name -> directive (attached during lowering).
        self.loop_directives: dict[str, LoopDirective] = {}
        #: loop header block names in source (pre-)order — the stable
        #: mapping between AST loop positions and IR loops that the DSE
        #: layer uses to thread per-loop overrides without re-lowering.
        self.loop_headers: list[str] = []

    def add_block(self, name: str) -> BasicBlock:
        if name in self._block_index:
            raise ValueError(f"duplicate block name {name!r}")
        block = BasicBlock(name)
        self.blocks.append(block)
        self._block_index[name] = block
        return block

    def block(self, name: str) -> BasicBlock:
        return self._block_index[name]

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name!r} has no blocks")
        return self.blocks[0]

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    @property
    def num_instructions(self) -> int:
        return sum(len(b) for b in self.blocks)

    @property
    def is_single_block(self) -> bool:
        return len(self.blocks) == 1

    def __repr__(self) -> str:
        return (
            f"IRFunction({self.name}, blocks={len(self.blocks)}, "
            f"instructions={self.num_instructions})"
        )
