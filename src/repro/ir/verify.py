"""IR well-formedness checks run on every lowered function."""

from __future__ import annotations

from repro.ir.cfg import predecessors, successors
from repro.ir.function import IRFunction
from repro.ir.opcodes import Opcode
from repro.ir.values import Argument, Constant, Instruction


class IRVerificationError(ValueError):
    """Raised when an IR function violates a structural invariant."""


def verify_function(function: IRFunction) -> None:
    """Check termination, branch targets, def-before-use and phi shape."""
    if not function.blocks:
        raise IRVerificationError(f"{function.name}: no basic blocks")
    block_names = {b.name for b in function.blocks}
    for block in function.blocks:
        if not block.is_terminated:
            raise IRVerificationError(
                f"{function.name}:{block.name}: block lacks a terminator"
            )
        for instruction in block.instructions[:-1]:
            if instruction.is_terminator:
                raise IRVerificationError(
                    f"{function.name}:{block.name}: terminator "
                    f"{instruction.name} not at block end"
                )
        terminator = block.terminator
        for target in terminator.targets:
            if target not in block_names:
                raise IRVerificationError(
                    f"{function.name}:{block.name}: branch to unknown block "
                    f"{target!r}"
                )
    _verify_defs(function)
    _verify_phis(function)


def _verify_defs(function: IRFunction) -> None:
    """Every instruction operand must be an argument, constant or an
    instruction belonging to this function."""
    defined = {id(i) for i in function.instructions()}
    arg_ids = {id(a) for a in function.args}
    for instruction in function.instructions():
        for operand in instruction.operands:
            if isinstance(operand, Constant):
                continue
            if isinstance(operand, Argument):
                if id(operand) not in arg_ids:
                    raise IRVerificationError(
                        f"{function.name}: {instruction.name} uses a foreign "
                        f"argument {operand.name!r}"
                    )
                continue
            if isinstance(operand, Instruction):
                if id(operand) not in defined:
                    raise IRVerificationError(
                        f"{function.name}: {instruction.name} uses an "
                        f"instruction outside this function"
                    )
                continue
            raise IRVerificationError(
                f"{function.name}: {instruction.name} has operand of type "
                f"{type(operand).__name__}"
            )


def _verify_phis(function: IRFunction) -> None:
    preds = predecessors(function)
    for block in function.blocks:
        for phi in block.phis:
            if len(phi.operands) != len(phi.incoming_blocks):
                raise IRVerificationError(
                    f"{function.name}:{block.name}: phi {phi.name} has "
                    f"{len(phi.operands)} operands but "
                    f"{len(phi.incoming_blocks)} incoming blocks"
                )
            expected = set(preds[block.name])
            actual = set(phi.incoming_blocks)
            if actual != expected:
                raise IRVerificationError(
                    f"{function.name}:{block.name}: phi {phi.name} incoming "
                    f"{sorted(actual)} != predecessors {sorted(expected)}"
                )
        # Phis must be at the top of the block.
        seen_non_phi = False
        for instruction in block:
            if instruction.opcode == Opcode.PHI:
                if seen_non_phi:
                    raise IRVerificationError(
                        f"{function.name}:{block.name}: phi {instruction.name}"
                        f" after non-phi instruction"
                    )
            else:
                seen_non_phi = True


def reachable_blocks(function: IRFunction) -> set[str]:
    succ = successors(function)
    seen = {function.entry.name}
    frontier = [function.entry.name]
    while frontier:
        current = frontier.pop()
        for child in succ[current]:
            if child not in seen:
                seen.add(child)
                frontier.append(child)
    return seen
