"""The raw IR graph: the common output of DFG and CDFG extraction.

An :class:`IRGraph` is a typed property graph — exactly the "IR graph
extracted by compiler front-ends" of the paper's Fig. 1(c). Feature
*encoding* (one-hots, numeric scaling, Table 1) happens later in
:mod:`repro.dataset.features`; this structure keeps semantic values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ir.opcodes import EdgeType, NodeType, Opcode


@dataclass
class IRNode:
    """One graph node with Table-1 raw attributes."""

    index: int
    kind: NodeType
    opcode: Opcode
    bitwidth: int
    label: str = ""
    instruction_id: int | None = None  # link back to the IR instruction
    cluster: int = -1  # Table 1 "cluster group"


@dataclass
class IRGraph:
    """Property graph over :class:`IRNode` with typed edges."""

    name: str
    kind: str  # "dfg" or "cdfg"
    nodes: list[IRNode] = field(default_factory=list)
    edges: list[tuple[int, int, EdgeType, bool]] = field(default_factory=list)

    def add_node(
        self,
        kind: NodeType,
        opcode: Opcode,
        bitwidth: int,
        label: str = "",
        instruction_id: int | None = None,
        cluster: int = -1,
    ) -> int:
        index = len(self.nodes)
        self.nodes.append(
            IRNode(index, kind, opcode, bitwidth, label, instruction_id, cluster)
        )
        return index

    def add_edge(
        self, src: int, dst: int, etype: EdgeType, is_back: bool = False
    ) -> None:
        if not (0 <= src < len(self.nodes) and 0 <= dst < len(self.nodes)):
            raise IndexError(f"edge ({src}, {dst}) out of range")
        self.edges.append((src, dst, etype, is_back))

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (edge_index [2, E], edge_type [E], edge_back [E])."""
        if not self.edges:
            return (
                np.zeros((2, 0), dtype=np.int64),
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
            )
        src, dst, etype, back = zip(*self.edges)
        return (
            np.array([src, dst], dtype=np.int64),
            np.array([int(t) for t in etype], dtype=np.int64),
            np.array([int(b) for b in back], dtype=np.int64),
        )

    def data_predecessor_counts(self) -> np.ndarray:
        """Number of incoming DATA edges per node ("is start of path")."""
        counts = np.zeros(self.num_nodes, dtype=np.int64)
        for _, dst, etype, _ in self.edges:
            if etype == EdgeType.DATA:
                counts[dst] += 1
        return counts

    def has_cycle(self) -> bool:
        """True when the directed graph has a cycle (CDFGs do, DFGs must not)."""
        indegree = np.zeros(self.num_nodes, dtype=np.int64)
        adjacency: list[list[int]] = [[] for _ in range(self.num_nodes)]
        for src, dst, _, _ in self.edges:
            adjacency[src].append(dst)
            indegree[dst] += 1
        frontier = [i for i in range(self.num_nodes) if indegree[i] == 0]
        seen = 0
        while frontier:
            node = frontier.pop()
            seen += 1
            for child in adjacency[node]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    frontier.append(child)
        return seen != self.num_nodes

    def to_networkx(self):
        """Export to a networkx MultiDiGraph (analysis/visualisation)."""
        import networkx as nx

        graph = nx.MultiDiGraph(name=self.name, kind=self.kind)
        for node in self.nodes:
            graph.add_node(
                node.index,
                kind=node.kind.name,
                opcode=str(node.opcode),
                bitwidth=node.bitwidth,
                label=node.label,
                cluster=node.cluster,
            )
        for src, dst, etype, back in self.edges:
            graph.add_edge(src, dst, etype=etype.name, back=back)
        return graph
