"""Data-flow-graph extraction from single-basic-block functions.

DFG nodes are operations plus the constants (misc) and arguments (ports)
they consume; edges are data dependencies plus store->load memory
dependencies. The result is a DAG — guaranteed by SSA def-before-use and
asserted at the end.
"""

from __future__ import annotations

from repro.ir.function import IRFunction
from repro.ir.graph import IRGraph
from repro.ir.opcodes import EdgeType, NodeType, Opcode
from repro.ir.values import Argument, Constant, Instruction


class _NodeMapper:
    """Shared node-creation logic between DFG and CDFG extraction."""

    def __init__(self, graph: IRGraph):
        self.graph = graph
        self.instruction_nodes: dict[int, int] = {}
        self.argument_nodes: dict[int, int] = {}
        self.constant_nodes: dict[tuple[int, int], int] = {}

    def instruction(self, instruction: Instruction, cluster: int) -> int:
        key = instruction.id
        if key not in self.instruction_nodes:
            self.instruction_nodes[key] = self.graph.add_node(
                kind=NodeType.OPERATION,
                opcode=instruction.opcode,
                bitwidth=instruction.bitwidth,
                label=instruction.name,
                instruction_id=instruction.id,
                cluster=cluster,
            )
        return self.instruction_nodes[key]

    def operand(self, value, cluster: int) -> int:
        if isinstance(value, Instruction):
            return self.instruction(value, cluster)
        if isinstance(value, Argument):
            key = id(value)
            if key not in self.argument_nodes:
                self.argument_nodes[key] = self.graph.add_node(
                    kind=NodeType.PORT,
                    opcode=Opcode.PORT,
                    bitwidth=value.bitwidth,
                    label=value.name,
                    cluster=-1,
                )
            return self.argument_nodes[key]
        if isinstance(value, Constant):
            key = (value.value, value.bitwidth)
            if key not in self.constant_nodes:
                self.constant_nodes[key] = self.graph.add_node(
                    kind=NodeType.MISC,
                    opcode=Opcode.CONST,
                    bitwidth=value.bitwidth,
                    label=str(value.value),
                    cluster=-1,
                )
            return self.constant_nodes[key]
        raise TypeError(f"unknown operand type {type(value).__name__}")


def _add_data_edges(mapper: _NodeMapper, function: IRFunction, clusters) -> None:
    graph = mapper.graph
    for instruction in function.instructions():
        dst = mapper.instruction(instruction, clusters(instruction))
        for operand in instruction.operands:
            src = mapper.operand(operand, clusters(instruction))
            graph.add_edge(src, dst, EdgeType.DATA)
        # Memory base attachment: the array object feeding a gep/load/store.
        if instruction.memory is not None:
            base = mapper.operand(instruction.memory, clusters(instruction))
            graph.add_edge(base, dst, EdgeType.MEMORY)


def _add_store_load_edges(mapper: _NodeMapper, function: IRFunction) -> None:
    """Program-order store->(load|store) dependencies on the same array."""
    graph = mapper.graph
    last_store: dict[int, Instruction] = {}
    for instruction in function.instructions():
        if instruction.memory is None:
            continue
        if instruction.opcode not in (Opcode.LOAD, Opcode.STORE):
            continue
        key = id(instruction.memory)
        previous = last_store.get(key)
        if previous is not None:
            graph.add_edge(
                mapper.instruction_nodes[previous.id],
                mapper.instruction_nodes[instruction.id],
                EdgeType.MEMORY,
            )
        if instruction.opcode == Opcode.STORE:
            last_store[key] = instruction


def _asap_depths(graph: IRGraph) -> dict[int, int]:
    """Topological depth over DATA edges — the DFG "cluster group"."""
    indegree = [0] * graph.num_nodes
    adjacency: list[list[int]] = [[] for _ in range(graph.num_nodes)]
    for src, dst, etype, _ in graph.edges:
        if etype == EdgeType.DATA:
            adjacency[src].append(dst)
            indegree[dst] += 1
    depth = {i: 0 for i in range(graph.num_nodes)}
    frontier = [i for i in range(graph.num_nodes) if indegree[i] == 0]
    while frontier:
        node = frontier.pop()
        for child in adjacency[node]:
            depth[child] = max(depth[child], depth[node] + 1)
            indegree[child] -= 1
            if indegree[child] == 0:
                frontier.append(child)
    return depth


def extract_dfg(function: IRFunction, name: str | None = None) -> IRGraph:
    """Extract the data-flow graph of a single-basic-block function."""
    if not function.is_single_block:
        raise ValueError(
            f"{function.name}: DFG extraction needs a single basic block "
            f"(got {len(function.blocks)}); use extract_cdfg"
        )
    graph = IRGraph(name=name or function.name, kind="dfg")
    mapper = _NodeMapper(graph)
    _add_data_edges(mapper, function, clusters=lambda _: -1)
    _add_store_load_edges(mapper, function)
    # Cluster group for DFGs: ASAP topological level (available right after
    # the front-end, before any HLS execution).
    for index, depth in _asap_depths(graph).items():
        graph.nodes[index].cluster = depth
    if graph.has_cycle():
        raise AssertionError(f"{function.name}: extracted DFG is cyclic")
    return graph
