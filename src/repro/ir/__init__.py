"""LLVM-flavoured intermediate representation.

The HLS front-end substitute: typed instructions in basic blocks with
explicit control flow. :mod:`repro.ir.dfg` and :mod:`repro.ir.cdfg`
extract the graphs the GNNs consume; :mod:`repro.hls` schedules and binds
the same IR to produce ground-truth labels.
"""

from repro.ir.opcodes import (
    EdgeType,
    NodeType,
    Opcode,
    OPCODE_CATEGORY,
    opcode_category,
)
from repro.ir.values import Argument, Constant, Instruction, Value
from repro.ir.basic_block import BasicBlock
from repro.ir.function import IRFunction, LoopDirective
from repro.ir.cfg import back_edges, predecessors, reverse_post_order, successors
from repro.ir.verify import IRVerificationError, verify_function
from repro.ir.graph import IRGraph, IRNode
from repro.ir.dfg import extract_dfg
from repro.ir.cdfg import extract_cdfg
from repro.ir.interp import IRInterpreter, run_ir
from repro.ir.printer import function_to_text

__all__ = [
    "EdgeType",
    "NodeType",
    "Opcode",
    "OPCODE_CATEGORY",
    "opcode_category",
    "Argument",
    "Constant",
    "Instruction",
    "Value",
    "BasicBlock",
    "IRFunction",
    "LoopDirective",
    "back_edges",
    "predecessors",
    "reverse_post_order",
    "successors",
    "IRVerificationError",
    "verify_function",
    "IRGraph",
    "IRNode",
    "extract_dfg",
    "extract_cdfg",
    "IRInterpreter",
    "run_ir",
    "function_to_text",
]
