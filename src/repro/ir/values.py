"""IR value hierarchy: constants, function arguments and instructions."""

from __future__ import annotations

import itertools
from typing import Union

from repro.typesys import CArray, CInt
from repro.ir.opcodes import Opcode

_instruction_ids = itertools.count()


class Constant:
    """An integer literal appearing as an operand (a graph ``misc`` node)."""

    __slots__ = ("value", "type")

    def __init__(self, value: int, ctype: CInt):
        self.value = int(value)
        self.type = ctype

    @property
    def bitwidth(self) -> int:
        return self.type.width

    def __repr__(self) -> str:
        return f"Constant({self.value}: i{self.type.width})"


class Argument:
    """A function parameter — a ``port`` node in the IR graph."""

    __slots__ = ("name", "type")

    def __init__(self, name: str, ctype: CInt | CArray):
        self.name = name
        self.type = ctype

    @property
    def is_array(self) -> bool:
        return isinstance(self.type, CArray)

    @property
    def bitwidth(self) -> int:
        return self.type.element.width if self.is_array else self.type.width

    def __repr__(self) -> str:
        return f"Argument({self.name}: {self.type})"


class Instruction:
    """A single IR operation.

    ``operands`` holds SSA inputs (other instructions, constants or
    arguments). Extra control payload lives in dedicated attributes:
    ``targets`` for branches, ``incoming`` block names for phis and
    ``memory`` for the array object a load/store touches.
    """

    __slots__ = (
        "id",
        "opcode",
        "operands",
        "type",
        "name",
        "targets",
        "incoming_blocks",
        "memory",
        "block",
    )

    def __init__(
        self,
        opcode: Opcode,
        operands: list["Value"],
        ctype: CInt,
        name: str = "",
    ):
        self.id = next(_instruction_ids)
        self.opcode = opcode
        self.operands = list(operands)
        self.type = ctype
        self.name = name or f"%{self.id}"
        self.targets: list[str] = []  # successor block names (br)
        self.incoming_blocks: list[str] = []  # phi predecessor block names
        self.memory: Argument | Instruction | None = None  # load/store base
        self.block: str = ""  # owning basic-block name (set on insertion)

    @property
    def bitwidth(self) -> int:
        return self.type.width

    @property
    def is_terminator(self) -> bool:
        return self.opcode in (Opcode.BR, Opcode.RET)

    def __repr__(self) -> str:
        ops = ", ".join(
            o.name if isinstance(o, (Instruction, Argument)) else repr(o)
            for o in self.operands
        )
        return f"{self.name} = {self.opcode}({ops}): i{self.bitwidth}"


Value = Union[Constant, Argument, Instruction]
