"""Control-data-flow-graph extraction from multi-block functions.

On top of the DFG content, a CDFG adds one ``block`` node per basic block
and control edges: block -> member instructions (control state feeding its
operations), branch -> target block (marked as a back edge when the CFG
edge closes a loop) and predecessor block -> phi (the control input that
selects the phi operand).
"""

from __future__ import annotations

from repro.ir.cfg import back_edges
from repro.ir.dfg import _add_data_edges, _add_store_load_edges, _NodeMapper
from repro.ir.function import IRFunction
from repro.ir.graph import IRGraph
from repro.ir.opcodes import EdgeType, NodeType, Opcode


def extract_cdfg(function: IRFunction, name: str | None = None) -> IRGraph:
    """Extract the CDFG of any function (single-block functions allowed,
    though they produce no loops)."""
    graph = IRGraph(name=name or function.name, kind="cdfg")
    mapper = _NodeMapper(graph)
    block_order = {block.name: i for i, block in enumerate(function.blocks)}

    def cluster_of(instruction) -> int:
        # Cluster group for CDFGs: index of the owning basic block.
        return block_order.get(instruction.block, -1)

    _add_data_edges(mapper, function, clusters=cluster_of)
    _add_store_load_edges(mapper, function)

    block_nodes: dict[str, int] = {}
    for block in function.blocks:
        block_nodes[block.name] = graph.add_node(
            kind=NodeType.BLOCK,
            opcode=Opcode.BLOCK,
            bitwidth=0,
            label=block.name,
            cluster=block_order[block.name],
        )
    loop_edges = back_edges(function)
    for block in function.blocks:
        bnode = block_nodes[block.name]
        for instruction in block.instructions:
            graph.add_edge(
                bnode, mapper.instruction_nodes[instruction.id], EdgeType.CONTROL
            )
        terminator = block.terminator
        if terminator is not None:
            tnode = mapper.instruction_nodes[terminator.id]
            for target in terminator.targets:
                graph.add_edge(
                    tnode,
                    block_nodes[target],
                    EdgeType.CONTROL,
                    is_back=(block.name, target) in loop_edges,
                )
        for phi in block.phis:
            for incoming in phi.incoming_blocks:
                graph.add_edge(
                    block_nodes[incoming],
                    mapper.instruction_nodes[phi.id],
                    EdgeType.CONTROL,
                )
    return graph
