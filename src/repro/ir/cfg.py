"""Control-flow-graph queries: successors, predecessors, traversal order
and back-edge detection (back edges mark CDFG loop edges in Table 1)."""

from __future__ import annotations

from repro.ir.function import IRFunction


def successors(function: IRFunction) -> dict[str, list[str]]:
    """Map each block name to the names of its CFG successors."""
    result: dict[str, list[str]] = {}
    for block in function.blocks:
        terminator = block.terminator
        result[block.name] = list(terminator.targets) if terminator else []
    return result


def predecessors(function: IRFunction) -> dict[str, list[str]]:
    result: dict[str, list[str]] = {block.name: [] for block in function.blocks}
    for source, targets in successors(function).items():
        for target in targets:
            result[target].append(source)
    return result


def reverse_post_order(function: IRFunction) -> list[str]:
    """Block names in reverse post-order from the entry (a topological
    order ignoring back edges)."""
    succ = successors(function)
    visited: set[str] = set()
    order: list[str] = []

    def visit(name: str) -> None:
        stack = [(name, iter(succ[name]))]
        visited.add(name)
        while stack:
            current, children = stack[-1]
            advanced = False
            for child in children:
                if child not in visited:
                    visited.add(child)
                    stack.append((child, iter(succ[child])))
                    advanced = True
                    break
            if not advanced:
                order.append(current)
                stack.pop()

    visit(function.entry.name)
    return list(reversed(order))


def back_edges(function: IRFunction) -> set[tuple[str, str]]:
    """CFG edges (source, target) that close a loop (DFS back edges)."""
    succ = successors(function)
    colour: dict[str, int] = {}  # 0 absent, 1 on stack, 2 done
    result: set[tuple[str, str]] = set()

    def visit(name: str) -> None:
        stack: list[tuple[str, iter]] = [(name, iter(succ[name]))]
        colour[name] = 1
        while stack:
            current, children = stack[-1]
            advanced = False
            for child in children:
                if colour.get(child, 0) == 1:
                    result.add((current, child))
                elif colour.get(child, 0) == 0:
                    colour[child] = 1
                    stack.append((child, iter(succ[child])))
                    advanced = True
                    break
            if not advanced:
                colour[current] = 2
                stack.pop()

    visit(function.entry.name)
    return result
