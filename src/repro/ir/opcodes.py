"""Opcode vocabulary, opcode categories (Table 1's "opcode type"), node and
edge taxonomies of the IR graphs."""

from __future__ import annotations

from enum import Enum, IntEnum


class Opcode(str, Enum):
    """LLVM-flavoured operation set produced by the mini-C lowering."""

    # integer arithmetic
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    SDIV = "sdiv"
    UDIV = "udiv"
    SREM = "srem"
    UREM = "urem"
    # bitwise
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    LSHR = "lshr"
    ASHR = "ashr"
    # comparison / selection
    ICMP = "icmp"
    SELECT = "select"
    PHI = "phi"
    # memory
    ALLOCA = "alloca"
    LOAD = "load"
    STORE = "store"
    GEP = "getelementptr"
    # casts
    TRUNC = "trunc"
    ZEXT = "zext"
    SEXT = "sext"
    # control
    BR = "br"
    RET = "ret"
    # graph-only pseudo nodes
    CONST = "const"
    PORT = "port"
    BLOCK = "bb"

    def __str__(self) -> str:
        return self.value


#: Table 1 "opcode type" — category vocabulary based on LLVM groupings.
OPCODE_CATEGORY: dict[Opcode, str] = {
    Opcode.ADD: "binary_unary",
    Opcode.SUB: "binary_unary",
    Opcode.MUL: "binary_unary",
    Opcode.SDIV: "binary_unary",
    Opcode.UDIV: "binary_unary",
    Opcode.SREM: "binary_unary",
    Opcode.UREM: "binary_unary",
    Opcode.AND: "bitwise",
    Opcode.OR: "bitwise",
    Opcode.XOR: "bitwise",
    Opcode.SHL: "bitwise",
    Opcode.LSHR: "bitwise",
    Opcode.ASHR: "bitwise",
    Opcode.ICMP: "compare",
    Opcode.SELECT: "select",
    Opcode.PHI: "select",
    Opcode.ALLOCA: "memory",
    Opcode.LOAD: "memory",
    Opcode.STORE: "memory",
    Opcode.GEP: "memory",
    Opcode.TRUNC: "cast",
    Opcode.ZEXT: "cast",
    Opcode.SEXT: "cast",
    Opcode.BR: "control",
    Opcode.RET: "control",
    Opcode.CONST: "constant",
    Opcode.PORT: "port",
    Opcode.BLOCK: "control",
}

OPCODE_CATEGORIES = tuple(sorted(set(OPCODE_CATEGORY.values()) | {"misc"}))


def opcode_category(opcode: Opcode) -> str:
    return OPCODE_CATEGORY.get(opcode, "misc")


class NodeType(IntEnum):
    """Table 1 "node type": general class of a graph node."""

    OPERATION = 0
    BLOCK = 1
    PORT = 2
    MISC = 3  # constants and anything else


class EdgeType(IntEnum):
    """Discrete edge types of the IR graph."""

    DATA = 0
    CONTROL = 1
    MEMORY = 2
    PSEUDO = 3  # e.g. const/port attachment in degenerate cases


NUM_EDGE_TYPES = len(EdgeType)
