"""Basic blocks: straight-line instruction sequences with one terminator."""

from __future__ import annotations

from repro.ir.values import Instruction


class BasicBlock:
    def __init__(self, name: str):
        self.name = name
        self.instructions: list[Instruction] = []

    def append(self, instruction: Instruction) -> Instruction:
        if self.instructions and self.instructions[-1].is_terminator:
            raise ValueError(
                f"block {self.name!r} already terminated; cannot append "
                f"{instruction.opcode}"
            )
        instruction.block = self.name
        self.instructions.append(instruction)
        return instruction

    @property
    def terminator(self) -> Instruction | None:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    @property
    def phis(self) -> list[Instruction]:
        from repro.ir.opcodes import Opcode

        return [i for i in self.instructions if i.opcode == Opcode.PHI]

    def __iter__(self):
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"BasicBlock({self.name}, {len(self.instructions)} instructions)"
