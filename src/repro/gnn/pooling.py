"""Graph-level readout (pooling) functions."""

from __future__ import annotations

from repro.gnn.message_passing import GraphContext
from repro.tensor import Tensor, scatter_max, scatter_mean, scatter_sum

_POOLERS = {}


def register_pooling(name: str):
    def decorator(fn):
        _POOLERS[name] = fn
        return fn

    return decorator


@register_pooling("sum")
def sum_pool(x: Tensor, ctx: GraphContext) -> Tensor:
    """Sum node embeddings per graph — the natural readout for additive
    quantities such as resource usage."""
    return scatter_sum(x, ctx.batch, ctx.num_graphs, plan=ctx.pool_plan)


@register_pooling("mean")
def mean_pool(x: Tensor, ctx: GraphContext) -> Tensor:
    return scatter_mean(x, ctx.batch, ctx.num_graphs, plan=ctx.pool_plan)


@register_pooling("max")
def max_pool(x: Tensor, ctx: GraphContext) -> Tensor:
    return scatter_max(x, ctx.batch, ctx.num_graphs, plan=ctx.pool_plan)


def get_pooling(name: str):
    try:
        return _POOLERS[name]
    except KeyError:
        raise KeyError(
            f"unknown pooling '{name}', available: {sorted(_POOLERS)}"
        ) from None
