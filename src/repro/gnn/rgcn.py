"""Relational GCN layer (Schlichtkrull et al., 2018).

One weight matrix per direction-aware relation; per-relation mean
normalisation (``1/c_{v,r}``) as in the original paper.
"""

from __future__ import annotations

import numpy as np

from repro.gnn.message_passing import GraphContext
from repro.nn import Linear, Module, ModuleList
from repro.tensor import Tensor, gather_rows, scatter_mean


class RGCNLayer(Module):
    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        num_relations: int,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if num_relations < 1:
            raise ValueError("num_relations must be >= 1")
        self.num_relations = num_relations
        self.self_loop = Linear(in_dim, out_dim, rng=rng)
        self.relation_linears = ModuleList(
            Linear(in_dim, out_dim, bias=False, rng=rng) for _ in range(num_relations)
        )

    def forward(self, x: Tensor, ctx: GraphContext) -> Tensor:
        if ctx.num_relations != self.num_relations:
            raise ValueError(
                f"layer built for {self.num_relations} relations, "
                f"context has {ctx.num_relations}"
            )
        out = self.self_loop(x)
        for relation in range(self.num_relations):
            src, dst = ctx.relation_edges(relation)
            if len(src) == 0:
                continue
            src_plan, dst_plan = ctx.relation_plans(relation)
            transformed = self.relation_linears[relation](x)
            messages = gather_rows(transformed, src, plan=src_plan)
            out = out + scatter_mean(messages, dst, ctx.num_nodes, plan=dst_plan)
        return out
