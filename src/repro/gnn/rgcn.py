"""Relational GCN layer (Schlichtkrull et al., 2018).

One weight matrix per direction-aware relation; per-relation mean
normalisation (``1/c_{v,r}``) as in the original paper.

The relation transforms run through one :class:`~repro.nn.RelationLinear`
(stacked ``[R, D, D]`` weight). On the fused path the per-relation
gather → transform → ``scatter_mean`` loop collapses into: one batched
relation transform producing every edge message (block or stacked
kernel, whichever transforms fewer rows), one multiply by the
precomputed ``1/c_{v,r}`` column, and ONE ``scatter_sum`` over all
relations' edges. ``use_fused_relations(False)`` restores the
per-relation loop — the differential baseline.
"""

from __future__ import annotations

import numpy as np

from repro.gnn.message_passing import GraphContext
from repro.nn import Linear, Module, RelationLinear
from repro.tensor import (
    Tensor,
    fused_relations_enabled,
    gather_rows,
    scatter_mean,
)


class RGCNLayer(Module):
    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        num_relations: int,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if num_relations < 1:
            raise ValueError("num_relations must be >= 1")
        self.num_relations = num_relations
        self.self_loop = Linear(in_dim, out_dim, rng=rng)
        self.relation_linear = RelationLinear(
            in_dim, out_dim, num_relations, bias=False, rng=rng
        )

    def forward(self, x: Tensor, ctx: GraphContext) -> Tensor:
        if ctx.num_relations != self.num_relations:
            raise ValueError(
                f"layer built for {self.num_relations} relations, "
                f"context has {ctx.num_relations}"
            )
        out = self.self_loop(x)
        if fused_relations_enabled():
            fusion = ctx.relation_fusion(self.num_relations)
            if fusion.num_edges:
                if fusion.prefer_block(len(x)):
                    messages = self.relation_linear.edge_messages(
                        x, fusion, path="block"
                    )
                    out = out + fusion.weighted_scatter(messages)
                else:
                    out = out + fusion.collect(
                        self.relation_linear(x), weighted=True
                    )
            return out
        for relation in range(self.num_relations):
            src, dst = ctx.relation_edges(relation)
            if len(src) == 0:
                continue
            src_plan, dst_plan = ctx.relation_plans(relation)
            transformed = self.relation_linear.single(x, relation)
            messages = gather_rows(transformed, src, plan=src_plan)
            out = out + scatter_mean(messages, dst, ctx.num_nodes, plan=dst_plan)
        return out
