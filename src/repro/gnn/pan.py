"""Path-integral based graph convolution, PAN (Ma et al., 2020).

PAN replaces the single-hop adjacency with the maximal-entropy-transition
matrix ``M = sum_l w_l A^l``: every path of length ``l`` contributes with a
trainable weight. We normalise the hop weights with a softmax so the
operator stays a convex combination of powers of the normalised adjacency.
"""

from __future__ import annotations

import numpy as np

from repro.gnn.message_passing import GraphContext
from repro.nn import Linear, Module, Parameter
from repro.tensor import Tensor, softmax, stack


class PANLayer(Module):
    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        max_path_len: int = 3,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if max_path_len < 1:
            raise ValueError("max_path_len must be >= 1")
        self.max_path_len = max_path_len
        self.hop_logits = Parameter(np.zeros(max_path_len + 1))
        self.linear = Linear(in_dim, out_dim, rng=rng)

    def forward(self, x: Tensor, ctx: GraphContext) -> Tensor:
        weights = softmax(self.hop_logits, axis=0)
        powers = [x]
        for _ in range(self.max_path_len):
            powers.append(ctx.propagate_gcn(powers[-1]))
        # Weighted sum over path lengths: [L+1, N, D] contracted with [L+1].
        stacked = stack(powers, axis=0)
        mixed = (stacked * weights.reshape(-1, 1, 1)).sum(axis=0)
        return self.linear(mixed)
