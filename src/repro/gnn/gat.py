"""Graph attention network layer (Velickovic et al., 2018)."""

from __future__ import annotations

import numpy as np

from repro.gnn.message_passing import GraphContext
from repro.nn import Linear, Module, Parameter, init
from repro.tensor import (
    Tensor,
    concat,
    gather_rows,
    leaky_relu,
    scatter_softmax,
    scatter_sum,
)


class GATLayer(Module):
    """Multi-head additive attention over incoming (symmetrised) edges.

    Self-loops are added so every node attends at least to itself; head
    outputs are concatenated, so ``out_dim`` must be divisible by ``heads``.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        heads: int = 4,
        negative_slope: float = 0.2,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if out_dim % heads:
            raise ValueError(f"out_dim {out_dim} not divisible by heads {heads}")
        self.heads = heads
        self.head_dim = out_dim // heads
        self.negative_slope = negative_slope
        self.linear = Linear(in_dim, out_dim, bias=False, rng=rng)
        self.att_src = Parameter(init.xavier_uniform((heads, self.head_dim), rng))
        self.att_dst = Parameter(init.xavier_uniform((heads, self.head_dim), rng))
        self.bias = Parameter(init.zeros((out_dim,)))

    def forward(self, x: Tensor, ctx: GraphContext) -> Tensor:
        n = ctx.num_nodes
        # The GCN edge set is exactly symmetric edges + self loops, so its
        # precomputed scatter plans serve attention too.
        src, dst = ctx.gcn_src, ctx.gcn_dst
        src_plan, dst_plan = ctx.gcn_src_plan, ctx.gcn_dst_plan

        h = self.linear(x).reshape(n, self.heads, self.head_dim)
        # Per-node attention contributions, [N, H].
        alpha_src = (h * self.att_src).sum(axis=2)
        alpha_dst = (h * self.att_dst).sum(axis=2)
        scores = leaky_relu(
            gather_rows(alpha_src, src, plan=src_plan)
            + gather_rows(alpha_dst, dst, plan=dst_plan),
            self.negative_slope,
        )
        attention = scatter_softmax(scores, dst, n, plan=dst_plan)  # [E, H]
        messages = gather_rows(h.reshape(n, -1), src, plan=src_plan)
        messages = messages.reshape(-1, self.heads, self.head_dim)
        weighted = messages * attention.reshape(-1, self.heads, 1)
        out = scatter_sum(
            weighted.reshape(-1, self.heads * self.head_dim), dst, n, plan=dst_plan
        )
        return out + self.bias
