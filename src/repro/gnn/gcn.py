"""Graph convolutional network layer (Kipf & Welling, 2017) and SGC."""

from __future__ import annotations

import numpy as np

from repro.gnn.message_passing import GraphContext
from repro.nn import Linear, Module
from repro.tensor import Tensor


class GCNLayer(Module):
    """``x' = D^-1/2 (A + I) D^-1/2 x W`` on the symmetrised edge set."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator | None = None):
        super().__init__()
        self.linear = Linear(in_dim, out_dim, rng=rng)

    def forward(self, x: Tensor, ctx: GraphContext) -> Tensor:
        return self.linear(ctx.propagate_gcn(x))


class SGCLayer(Module):
    """Simplified GCN (Wu et al., 2019): ``x' = Â^K x W``.

    All nonlinearity between propagation steps is removed; the network
    builder instantiates a single SGC layer with ``K`` equal to the model
    depth, matching the reference model.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        hops: int = 2,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if hops < 1:
            raise ValueError("hops must be >= 1")
        self.hops = hops
        self.linear = Linear(in_dim, out_dim, rng=rng)

    def forward(self, x: Tensor, ctx: GraphContext) -> Tensor:
        for _ in range(self.hops):
            x = ctx.propagate_gcn(x)
        return self.linear(x)
