"""GNN-FiLM layer (Brockschmidt, 2020).

Messages along relation ``r`` are modulated feature-wise by the *target*
node: ``gamma, beta = g_r(x_target)`` and the message becomes
``sigma(gamma * W_r x_source + beta)``. A self-loop relation is always
present so isolated nodes still update.

Both per-relation weight stacks (message transform and FiLM generator)
are :class:`~repro.nn.RelationLinear` modules. The fused path computes
per-edge message values (gathered at ``src``) and per-edge FiLM
parameters (gathered at ``dst``) with the batched relation kernels,
modulates edge-wise, multiplies by the ``1/c_{v,r}`` column and lands
everything with ONE ``scatter_sum`` — the per-relation
``scatter_mean`` loop is kept behind ``use_fused_relations(False)``.
"""

from __future__ import annotations

import numpy as np

from repro.gnn.message_passing import GraphContext
from repro.nn import Linear, Module, RelationLinear
from repro.tensor import (
    Tensor,
    fused_relations_enabled,
    gather_rows,
    relu,
    scatter_mean,
)


class FiLMLayer(Module):
    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        num_relations: int,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        self.num_relations = num_relations
        self.message_linear = RelationLinear(
            in_dim, out_dim, num_relations, bias=False, rng=rng
        )
        # gamma and beta jointly predicted: [N, 2 * out_dim].
        self.film_generator = RelationLinear(
            in_dim, 2 * out_dim, num_relations, bias=True, rng=rng
        )
        self.self_linear = Linear(in_dim, out_dim, bias=False, rng=rng)
        self.self_film = Linear(in_dim, 2 * out_dim, rng=rng)
        self.out_dim = out_dim

    def _modulate(self, film: Tensor, value: Tensor) -> Tensor:
        gamma = film[:, : self.out_dim]
        beta = film[:, self.out_dim :]
        return relu(gamma * value + beta)

    def forward(self, x: Tensor, ctx: GraphContext) -> Tensor:
        out = self._modulate(self.self_film(x), self.self_linear(x))
        if fused_relations_enabled():
            fusion = ctx.relation_fusion(self.num_relations)
            if fusion.num_edges:
                value = self.message_linear.edge_messages(x, fusion, endpoint="src")
                film = self.film_generator.edge_messages(x, fusion, endpoint="dst")
                modulated = self._modulate(film, value)
                out = out + fusion.weighted_scatter(modulated)
            return out
        for relation in range(min(self.num_relations, ctx.num_relations)):
            src, dst = ctx.relation_edges(relation)
            if len(src) == 0:
                continue
            src_plan, dst_plan = ctx.relation_plans(relation)
            transformed = self.message_linear.single(x, relation)
            value = gather_rows(transformed, src, plan=src_plan)
            film = gather_rows(
                self.film_generator.single(x, relation), dst, plan=dst_plan
            )
            out = out + scatter_mean(
                self._modulate(film, value), dst, ctx.num_nodes, plan=dst_plan
            )
        return out
