"""GNN-FiLM layer (Brockschmidt, 2020).

Messages along relation ``r`` are modulated feature-wise by the *target*
node: ``gamma, beta = g_r(x_target)`` and the message becomes
``sigma(gamma * W_r x_source + beta)``. A self-loop relation is always
present so isolated nodes still update.
"""

from __future__ import annotations

import numpy as np

from repro.gnn.message_passing import GraphContext
from repro.nn import Linear, Module, ModuleList
from repro.tensor import Tensor, gather_rows, relu, scatter_mean


class FiLMLayer(Module):
    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        num_relations: int,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        self.num_relations = num_relations
        self.message_linears = ModuleList(
            Linear(in_dim, out_dim, bias=False, rng=rng) for _ in range(num_relations)
        )
        # gamma and beta jointly predicted: [N, 2 * out_dim].
        self.film_generators = ModuleList(
            Linear(in_dim, 2 * out_dim, rng=rng) for _ in range(num_relations)
        )
        self.self_linear = Linear(in_dim, out_dim, bias=False, rng=rng)
        self.self_film = Linear(in_dim, 2 * out_dim, rng=rng)
        self.out_dim = out_dim

    def _modulate(self, film: Tensor, value: Tensor) -> Tensor:
        gamma = film[:, : self.out_dim]
        beta = film[:, self.out_dim :]
        return relu(gamma * value + beta)

    def forward(self, x: Tensor, ctx: GraphContext) -> Tensor:
        out = self._modulate(self.self_film(x), self.self_linear(x))
        for relation in range(min(self.num_relations, ctx.num_relations)):
            src, dst = ctx.relation_edges(relation)
            if len(src) == 0:
                continue
            src_plan, dst_plan = ctx.relation_plans(relation)
            value = gather_rows(self.message_linears[relation](x), src, plan=src_plan)
            film = gather_rows(self.film_generators[relation](x), dst, plan=dst_plan)
            out = out + scatter_mean(
                self._modulate(film, value), dst, ctx.num_nodes, plan=dst_plan
            )
        return out
