"""Shared message-passing machinery.

IR graphs are directed. Convolution-style layers (GCN, SAGE, GIN, ...)
operate on the *symmetrised* edge set so information flows both along and
against data dependencies — the standard transform for program graphs.
Relational layers (RGCN, GGNN, FiLM) keep directionality by doubling the
relation vocabulary: relation ``r`` for forward edges and ``r + R`` for
their reverses.

:class:`GraphContext` precomputes and caches everything layers need once
per batch topology: symmetric edges, GCN normalisation, degrees, and —
the numpy-backend hot path — :class:`~repro.tensor.SegmentPlan` objects
turning every scatter/gather in the layer stack into sorted
``reduceat`` kernels. The relation partition is one lexsort by
(relation, dst); per-relation edge lists are slices of the sorted edge
array, already dst-contiguous, so their scatter plans skip the argsort
too. Plans are built once per context and shared by every layer of
every forward over it; contexts are additionally cached on the
:class:`~repro.graph.batch.Batch` they came from (per
``num_edge_types``), so a *reused* batch — the trainer's epoch loops
over pinned train/val batches — never rebuilds topology. (Serving
builds a fresh union batch per flush, so it gains the per-forward plan
sharing and fast kernels, not cross-flush reuse.)

Indices are validated once at context construction; every plan and
kernel downstream trusts them (``validate=False`` / ``validated=True``).
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

try:
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - container always ships scipy
    _sparse = None

from repro.graph.batch import Batch
from repro.tensor import SegmentPlan, Tensor, gather_rows, plans_enabled, scatter_sum


class GraphContext:
    """Immutable per-batch topology bundle handed to every layer."""

    def __init__(
        self,
        edge_index: np.ndarray,
        edge_type: np.ndarray,
        num_nodes: int,
        batch: np.ndarray,
        num_graphs: int,
        num_edge_types: int,
    ):
        self.edge_index = np.asarray(edge_index, dtype=np.int64).reshape(2, -1)
        self.edge_type = np.asarray(edge_type, dtype=np.int64).reshape(-1)
        self.num_nodes = int(num_nodes)
        self.batch = np.asarray(batch, dtype=np.int64)
        self.num_graphs = int(num_graphs)
        self.num_edge_types = int(num_edge_types)

        # One-time boundary validation; plans below skip their own scans.
        if self.edge_index.size and (
            self.edge_index.min() < 0 or self.edge_index.max() >= self.num_nodes
        ):
            raise ValueError("edge_index out of range for num_nodes")
        if len(self.batch) != self.num_nodes:
            raise ValueError(
                f"batch length {len(self.batch)} != num_nodes {self.num_nodes}"
            )
        if self.batch.size and (
            self.batch.min() < 0 or self.batch.max() >= self.num_graphs
        ):
            raise ValueError("batch vector out of range for num_graphs")

        src, dst = self.edge_index
        # Symmetrised edges for conv-style layers.
        self.sym_src = np.concatenate([src, dst])
        self.sym_dst = np.concatenate([dst, src])
        # Direction-aware relation ids for relational layers.
        self.sym_rel = np.concatenate(
            [self.edge_type, self.edge_type + self.num_edge_types]
        )
        self.num_relations = 2 * self.num_edge_types

        # In-degree over symmetric edges (plus self-loop) for GCN norm.
        deg = np.bincount(self.sym_dst, minlength=self.num_nodes).astype(np.float64)
        self.sym_degree = deg
        deg_loop = deg + 1.0
        inv_sqrt = 1.0 / np.sqrt(deg_loop)
        # GCN edge set = symmetric edges + self loops, with D^-1/2 A D^-1/2.
        loops = np.arange(self.num_nodes, dtype=np.int64)
        self.gcn_src = np.concatenate([self.sym_src, loops])
        self.gcn_dst = np.concatenate([self.sym_dst, loops])
        self.gcn_norm = np.concatenate(
            [
                inv_sqrt[self.sym_src] * inv_sqrt[self.sym_dst],
                inv_sqrt * inv_sqrt,
            ]
        ).reshape(-1, 1)

        self._relation_plans: dict[int, tuple[SegmentPlan, SegmentPlan]] = {}

    @classmethod
    def from_batch(cls, batch: Batch, num_edge_types: int) -> "GraphContext":
        """Context for ``batch``, cached on the batch per ``num_edge_types``.

        Repeated forwards over the same :class:`Batch` object (every
        epoch of a training run) get the same context — and with it the
        same precomputed scatter plans.
        """
        cache = getattr(batch, "_context_cache", None)
        if cache is not None:
            ctx = cache.get(int(num_edge_types))
            if ctx is not None:
                return ctx
        ctx = cls(
            edge_index=batch.edge_index,
            edge_type=batch.edge_type,
            num_nodes=batch.num_nodes,
            batch=batch.batch,
            num_graphs=batch.num_graphs,
            num_edge_types=num_edge_types,
        )
        if cache is not None:
            cache[int(num_edge_types)] = ctx
        return ctx

    # -- precomputed scatter plans (built lazily, once per context) ------
    @cached_property
    def sym_dst_plan(self) -> SegmentPlan:
        """Scatter-into-dst plan over symmetric edges (SAGE, GIN, PNA)."""
        return SegmentPlan(self.sym_dst, self.num_nodes, validate=False)

    @cached_property
    def sym_src_plan(self) -> SegmentPlan:
        """Backward plan of ``gather_rows(x, sym_src)`` over symmetric edges."""
        return SegmentPlan(self.sym_src, self.num_nodes, validate=False)

    @cached_property
    def gcn_dst_plan(self) -> SegmentPlan:
        """Scatter plan over the GCN edge set (symmetric + self loops)."""
        return SegmentPlan(self.gcn_dst, self.num_nodes, validate=False)

    @cached_property
    def gcn_src_plan(self) -> SegmentPlan:
        """Backward plan of ``gather_rows(x, gcn_src)``."""
        return SegmentPlan(self.gcn_src, self.num_nodes, validate=False)

    @cached_property
    def pool_plan(self) -> SegmentPlan:
        """Pooling plan: nodes into graphs by the ``batch`` vector."""
        return SegmentPlan(self.batch, self.num_graphs, validate=False)

    # -- cached relation partition --------------------------------------
    @cached_property
    def _relation_partition(self):
        """Symmetric edges lexsorted by (relation, dst), with run bounds.

        One sort replaces the former O(R*E) boolean-mask sweep: relation
        ``r`` is the contiguous slice ``[starts[r], ends[r])`` of the
        sorted arrays, and within it ``dst`` is already non-decreasing.
        """
        order = np.lexsort((self.sym_dst, self.sym_rel))
        counts = np.bincount(self.sym_rel, minlength=self.num_relations)
        ends = np.cumsum(counts)
        return self.sym_src[order], self.sym_dst[order], ends - counts, ends

    def relation_edges(self, relation: int) -> tuple[np.ndarray, np.ndarray]:
        """(src, dst) arrays of the direction-aware relation ``relation``."""
        src_sorted, dst_sorted, starts, ends = self._relation_partition
        run = slice(starts[relation], ends[relation])
        return src_sorted[run], dst_sorted[run]

    def relation_plans(self, relation: int) -> tuple[SegmentPlan, SegmentPlan]:
        """(src_plan, dst_plan) for relation ``relation``'s edge slice.

        ``src_plan`` accelerates the backward of gathering source rows;
        ``dst_plan`` the forward scatter into target nodes (argsort-free:
        the slice is dst-sorted by construction).
        """
        plans = self._relation_plans.get(relation)
        if plans is None:
            src, dst = self.relation_edges(relation)
            plans = (
                SegmentPlan(src, self.num_nodes, validate=False),
                SegmentPlan(dst, self.num_nodes, validate=False, assume_sorted=True),
            )
            self._relation_plans[relation] = plans
        return plans

    @cached_property
    def _gcn_operator(self):
        """``(Â, Â^T)`` as CSR matrices, or ``None`` without scipy.

        The whole GCN propagation — gather, edge-wise normalisation,
        scatter — collapses into one sparse matmul per direction;
        duplicate (dst, src) pairs sum on conversion, matching the
        scatter semantics. ``Â`` is symmetric by construction but the
        explicit transpose keeps the adjoint honest if that ever changes.
        """
        if _sparse is None:
            return None
        adjacency = _sparse.csr_matrix(
            (self.gcn_norm.reshape(-1), (self.gcn_dst, self.gcn_src)),
            shape=(self.num_nodes, self.num_nodes),
        )
        return adjacency, adjacency.T.tocsr()

    # -- aggregation helpers ---------------------------------------------
    def propagate_gcn(self, x: Tensor) -> Tensor:
        """One application of the normalised adjacency ``D^-1/2 Ã D^-1/2``."""
        operator = self._gcn_operator if plans_enabled() else None
        if operator is not None:
            adjacency, adjacency_t = operator
            data = np.asarray(adjacency @ x.data)

            def backward(grad: np.ndarray) -> None:
                if x.requires_grad:
                    x._accumulate(np.asarray(adjacency_t @ grad))

            return Tensor._make(data, (x,), backward)
        messages = gather_rows(x, self.gcn_src, plan=self.gcn_src_plan)
        messages = messages * Tensor(self.gcn_norm)
        return scatter_sum(messages, self.gcn_dst, self.num_nodes, plan=self.gcn_dst_plan)

    def subgraph(self, keep: np.ndarray) -> "GraphContext":
        """Context induced on the kept nodes (used by Graph U-Net pooling).

        ``keep`` is an array of node ids (ascending). Edges with both
        endpoints kept survive, renumbered.
        """
        keep = np.asarray(keep, dtype=np.int64)
        remap = -np.ones(self.num_nodes, dtype=np.int64)
        remap[keep] = np.arange(len(keep))
        src, dst = self.edge_index
        mask = (remap[src] >= 0) & (remap[dst] >= 0)
        return GraphContext(
            edge_index=np.stack([remap[src[mask]], remap[dst[mask]]]),
            edge_type=self.edge_type[mask],
            num_nodes=len(keep),
            batch=self.batch[keep],
            num_graphs=self.num_graphs,
            num_edge_types=self.num_edge_types,
        )
