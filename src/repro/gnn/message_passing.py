"""Shared message-passing machinery.

IR graphs are directed. Convolution-style layers (GCN, SAGE, GIN, ...)
operate on the *symmetrised* edge set so information flows both along and
against data dependencies — the standard transform for program graphs.
Relational layers (RGCN, GGNN, FiLM) keep directionality by doubling the
relation vocabulary: relation ``r`` for forward edges and ``r + R`` for
their reverses.

:class:`GraphContext` precomputes and caches everything layers need
(symmetric edges, GCN normalisation, degrees, per-relation masks) once per
batch, which dominates throughput on a numpy backend.
"""

from __future__ import annotations

import numpy as np

from repro.graph.batch import Batch
from repro.tensor import Tensor, gather_rows, scatter_sum


class GraphContext:
    """Immutable per-batch topology bundle handed to every layer."""

    def __init__(
        self,
        edge_index: np.ndarray,
        edge_type: np.ndarray,
        num_nodes: int,
        batch: np.ndarray,
        num_graphs: int,
        num_edge_types: int,
    ):
        self.edge_index = np.asarray(edge_index, dtype=np.int64).reshape(2, -1)
        self.edge_type = np.asarray(edge_type, dtype=np.int64).reshape(-1)
        self.num_nodes = int(num_nodes)
        self.batch = np.asarray(batch, dtype=np.int64)
        self.num_graphs = int(num_graphs)
        self.num_edge_types = int(num_edge_types)

        src, dst = self.edge_index
        # Symmetrised edges for conv-style layers.
        self.sym_src = np.concatenate([src, dst])
        self.sym_dst = np.concatenate([dst, src])
        # Direction-aware relation ids for relational layers.
        self.sym_rel = np.concatenate(
            [self.edge_type, self.edge_type + self.num_edge_types]
        )
        self.num_relations = 2 * self.num_edge_types

        # In-degree over symmetric edges (plus self-loop) for GCN norm.
        deg = np.bincount(self.sym_dst, minlength=self.num_nodes).astype(np.float64)
        self.sym_degree = deg
        deg_loop = deg + 1.0
        inv_sqrt = 1.0 / np.sqrt(deg_loop)
        # GCN edge set = symmetric edges + self loops, with D^-1/2 A D^-1/2.
        loops = np.arange(self.num_nodes, dtype=np.int64)
        self.gcn_src = np.concatenate([self.sym_src, loops])
        self.gcn_dst = np.concatenate([self.sym_dst, loops])
        self.gcn_norm = np.concatenate(
            [
                inv_sqrt[self.sym_src] * inv_sqrt[self.sym_dst],
                inv_sqrt * inv_sqrt,
            ]
        ).reshape(-1, 1)

        self._relation_edges: dict[int, tuple[np.ndarray, np.ndarray]] | None = None

    @classmethod
    def from_batch(cls, batch: Batch, num_edge_types: int) -> "GraphContext":
        return cls(
            edge_index=batch.edge_index,
            edge_type=batch.edge_type,
            num_nodes=batch.num_nodes,
            batch=batch.batch,
            num_graphs=batch.num_graphs,
            num_edge_types=num_edge_types,
        )

    # -- cached relation partition --------------------------------------
    def relation_edges(self, relation: int) -> tuple[np.ndarray, np.ndarray]:
        """(src, dst) arrays of the direction-aware relation ``relation``."""
        if self._relation_edges is None:
            self._relation_edges = {}
            for r in range(self.num_relations):
                mask = self.sym_rel == r
                self._relation_edges[r] = (self.sym_src[mask], self.sym_dst[mask])
        return self._relation_edges[relation]

    # -- aggregation helpers ---------------------------------------------
    def propagate_gcn(self, x: Tensor) -> Tensor:
        """One application of the normalised adjacency ``D^-1/2 Ã D^-1/2``."""
        messages = gather_rows(x, self.gcn_src) * Tensor(self.gcn_norm)
        return scatter_sum(messages, self.gcn_dst, self.num_nodes)

    def subgraph(self, keep: np.ndarray) -> "GraphContext":
        """Context induced on the kept nodes (used by Graph U-Net pooling).

        ``keep`` is an array of node ids (ascending). Edges with both
        endpoints kept survive, renumbered.
        """
        keep = np.asarray(keep, dtype=np.int64)
        remap = -np.ones(self.num_nodes, dtype=np.int64)
        remap[keep] = np.arange(len(keep))
        src, dst = self.edge_index
        mask = (remap[src] >= 0) & (remap[dst] >= 0)
        return GraphContext(
            edge_index=np.stack([remap[src[mask]], remap[dst[mask]]]),
            edge_type=self.edge_type[mask],
            num_nodes=len(keep),
            batch=self.batch[keep],
            num_graphs=self.num_graphs,
            num_edge_types=self.num_edge_types,
        )
