"""Shared message-passing machinery.

IR graphs are directed. Convolution-style layers (GCN, SAGE, GIN, ...)
operate on the *symmetrised* edge set so information flows both along and
against data dependencies — the standard transform for program graphs.
Relational layers (RGCN, GGNN, FiLM) keep directionality by doubling the
relation vocabulary: relation ``r`` for forward edges and ``r + R`` for
their reverses.

:class:`GraphContext` precomputes and caches everything layers need once
per batch topology: symmetric edges, GCN normalisation, degrees, and —
the numpy-backend hot path — :class:`~repro.tensor.SegmentPlan` objects
turning every scatter/gather in the layer stack into planned kernels.
Plans and fused SpMM operators are built by the *active scatter
backend* (:mod:`repro.tensor.backends`: ``csr``, ``numpy-reduceat``,
``bucketed``, ...) and cached **per backend name**, so a session that
switches backends mid-stream — a benchmark sweep, a serving tier pinned
to ``bucketed`` next to a trainer on ``csr`` — never executes one
backend's kernels through another's cached plans. The relation
partition is one lexsort by (relation, dst); per-relation edge lists
are slices of the sorted edge array, already dst-contiguous, so their
scatter plans skip the argsort too. Plans are built once per context
and shared by every layer of every forward over it; contexts are
additionally cached on the :class:`~repro.graph.batch.Batch` they came
from (per ``num_edge_types``), so a *reused* batch — the trainer's
epoch loops over pinned train/val batches — never rebuilds topology.
(Serving builds a fresh union batch per flush, so it gains the
per-forward plan sharing and fast kernels, not cross-flush reuse.)

Indices are validated once at context construction; every plan and
kernel downstream trusts them (``validate=False`` / ``validated=True``).
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.graph.batch import Batch
from repro.tensor import (
    SegmentPlan,
    Tensor,
    active_backend,
    gather_rows,
    get_default_dtype,
    plans_enabled,
    scatter_sum,
)
from repro.utils.cache import LRUCache

#: Bounds on the per-context plan/operator caches. A context serves a
#: fixed topology, so the key space is small (5 named plans x backends,
#: one GCN operator per backend, one fusion per stacked-weight depth) —
#: the LRU is a leak guard for long mixed-backend streams, not a tuning
#: knob.
PLAN_CACHE_SIZE = 32
GCN_OPERATOR_CACHE_SIZE = 4
RELATION_PLAN_CACHE_SIZE = 64
RELATION_FUSION_CACHE_SIZE = 4


class GraphContext:
    """Immutable per-batch topology bundle handed to every layer."""

    def __init__(
        self,
        edge_index: np.ndarray,
        edge_type: np.ndarray,
        num_nodes: int,
        batch: np.ndarray,
        num_graphs: int,
        num_edge_types: int,
        sym_degree: np.ndarray | None = None,
    ):
        self.edge_index = np.asarray(edge_index, dtype=np.int64).reshape(2, -1)
        self.edge_type = np.asarray(edge_type, dtype=np.int64).reshape(-1)
        self.num_nodes = int(num_nodes)
        self.batch = np.asarray(batch, dtype=np.int64)
        self.num_graphs = int(num_graphs)
        self.num_edge_types = int(num_edge_types)

        # One-time boundary validation; plans below skip their own scans.
        if self.edge_index.size and (
            self.edge_index.min() < 0 or self.edge_index.max() >= self.num_nodes
        ):
            raise ValueError("edge_index out of range for num_nodes")
        if len(self.batch) != self.num_nodes:
            raise ValueError(
                f"batch length {len(self.batch)} != num_nodes {self.num_nodes}"
            )
        if self.batch.size and (
            self.batch.min() < 0 or self.batch.max() >= self.num_graphs
        ):
            raise ValueError("batch vector out of range for num_graphs")

        src, dst = self.edge_index
        # Symmetrised edges for conv-style layers.
        self.sym_src = np.concatenate([src, dst])
        self.sym_dst = np.concatenate([dst, src])
        # Direction-aware relation ids for relational layers.
        self.sym_rel = np.concatenate(
            [self.edge_type, self.edge_type + self.num_edge_types]
        )
        self.num_relations = 2 * self.num_edge_types

        # In-degree over symmetric edges (plus self-loop) for GCN norm.
        # ``sym_degree`` may be overridden by the caller: a block context
        # cut out of a partitioned graph passes the *global* symmetric
        # degrees of its local nodes, so GCN normalisation (and PNA's
        # degree scalers) match full-graph execution exactly on the
        # block's core rows even though only the induced edges are here.
        if sym_degree is not None:
            deg = np.asarray(sym_degree, dtype=np.float64).reshape(-1)
            if len(deg) != self.num_nodes:
                raise ValueError(
                    f"sym_degree length {len(deg)} != num_nodes {self.num_nodes}"
                )
        else:
            deg = np.bincount(self.sym_dst, minlength=self.num_nodes).astype(np.float64)
        self.sym_degree = deg
        deg_loop = deg + 1.0
        inv_sqrt = 1.0 / np.sqrt(deg_loop)
        # GCN edge set = symmetric edges + self loops, with D^-1/2 A D^-1/2.
        loops = np.arange(self.num_nodes, dtype=np.int64)
        self.gcn_src = np.concatenate([self.sym_src, loops])
        self.gcn_dst = np.concatenate([self.sym_dst, loops])
        # Norm table in the active precision policy (computed in float64
        # for accuracy, stored once in the dtype the layers compute in so
        # float32 forwards are not silently promoted).
        self.gcn_norm = (
            np.concatenate(
                [
                    inv_sqrt[self.sym_src] * inv_sqrt[self.sym_dst],
                    inv_sqrt * inv_sqrt,
                ]
            )
            .astype(get_default_dtype())
            .reshape(-1, 1)
        )

        # Every cache below keys by the active scatter backend's name, so
        # plans/operators built by one backend are never executed by
        # another (mixed-backend sessions stay isolated). All are
        # LRU-bounded: a stream that cycles through many backends or
        # stacked-weight depths must not grow them without limit.
        self._plan_cache = LRUCache(PLAN_CACHE_SIZE)
        self._gcn_operators = LRUCache(GCN_OPERATOR_CACHE_SIZE)
        self._relation_plans = LRUCache(RELATION_PLAN_CACHE_SIZE)
        self._relation_fusions = LRUCache(RELATION_FUSION_CACHE_SIZE)

    @classmethod
    def from_batch(cls, batch: Batch, num_edge_types: int) -> "GraphContext":
        """Context for ``batch``, cached on the batch per ``num_edge_types``.

        Repeated forwards over the same :class:`Batch` object (every
        epoch of a training run) get the same context — and with it the
        same precomputed scatter plans.
        """
        cache = getattr(batch, "_context_cache", None)
        if cache is not None:
            ctx = cache.get(int(num_edge_types))
            if ctx is not None:
                return ctx
        ctx = cls(
            edge_index=batch.edge_index,
            edge_type=batch.edge_type,
            num_nodes=batch.num_nodes,
            batch=batch.batch,
            num_graphs=batch.num_graphs,
            num_edge_types=num_edge_types,
        )
        if cache is not None:
            cache.put(int(num_edge_types), ctx)
        return ctx

    # -- precomputed scatter plans (lazy, once per context per backend) --
    def _plan(
        self, key: str, index: np.ndarray, dim_size: int, assume_sorted: bool = False
    ) -> SegmentPlan:
        backend = active_backend()
        plan = self._plan_cache.get((backend.name, key))
        if plan is None:
            plan = backend.build_plan(
                index, dim_size, validate=False, assume_sorted=assume_sorted
            )
            self._plan_cache.put((backend.name, key), plan)
        return plan

    @property
    def sym_dst_plan(self) -> SegmentPlan:
        """Scatter-into-dst plan over symmetric edges (SAGE, GIN, PNA)."""
        return self._plan("sym_dst", self.sym_dst, self.num_nodes)

    @property
    def sym_src_plan(self) -> SegmentPlan:
        """Backward plan of ``gather_rows(x, sym_src)`` over symmetric edges."""
        return self._plan("sym_src", self.sym_src, self.num_nodes)

    @property
    def gcn_dst_plan(self) -> SegmentPlan:
        """Scatter plan over the GCN edge set (symmetric + self loops)."""
        return self._plan("gcn_dst", self.gcn_dst, self.num_nodes)

    @property
    def gcn_src_plan(self) -> SegmentPlan:
        """Backward plan of ``gather_rows(x, gcn_src)``."""
        return self._plan("gcn_src", self.gcn_src, self.num_nodes)

    @property
    def pool_plan(self) -> SegmentPlan:
        """Pooling plan: nodes into graphs by the ``batch`` vector."""
        return self._plan("pool", self.batch, self.num_graphs)

    @cached_property
    def mean_log_degree(self) -> float:
        """Batch-average ``log1p`` symmetric degree — PNA's scaler anchor.

        A plain cached property so a block context cut from a
        :class:`~repro.graph.partition.PartitionedGraph` can overwrite it
        with the *full-graph* average, keeping PNA's degree scalers
        identical under layer-wise streaming.
        """
        if self.num_nodes == 0:
            return 1e-6
        return max(float(np.log1p(self.sym_degree).mean()), 1e-6)

    # -- cached relation partition --------------------------------------
    @cached_property
    def _relation_partition(self):
        """Symmetric edges lexsorted by (relation, dst), with run bounds.

        One sort replaces the former O(R*E) boolean-mask sweep: relation
        ``r`` is the contiguous slice ``[starts[r], ends[r])`` of the
        sorted arrays, and within it ``dst`` is already non-decreasing.
        """
        order = np.lexsort((self.sym_dst, self.sym_rel))
        counts = np.bincount(self.sym_rel, minlength=self.num_relations)
        ends = np.cumsum(counts)
        return self.sym_src[order], self.sym_dst[order], ends - counts, ends

    def relation_edges(self, relation: int) -> tuple[np.ndarray, np.ndarray]:
        """(src, dst) arrays of the direction-aware relation ``relation``."""
        src_sorted, dst_sorted, starts, ends = self._relation_partition
        run = slice(starts[relation], ends[relation])
        return src_sorted[run], dst_sorted[run]

    def relation_fusion(self, num_relations: int) -> "RelationFusion":
        """Flattened relation partition for the fused relation kernels.

        ``num_relations`` is the *layer's* stacked-weight depth (it may
        exceed the context's direction-aware relation count, in which
        case only the context's relations carry edges). Cached per depth;
        all layers of a network share one fusion per context.
        """
        fusion = self._relation_fusions.get(int(num_relations))
        if fusion is None:
            fusion = RelationFusion(self, int(num_relations))
            self._relation_fusions.put(int(num_relations), fusion)
        return fusion

    def relation_plans(self, relation: int) -> tuple[SegmentPlan, SegmentPlan]:
        """(src_plan, dst_plan) for relation ``relation``'s edge slice.

        ``src_plan`` accelerates the backward of gathering source rows;
        ``dst_plan`` the forward scatter into target nodes (argsort-free:
        the slice is dst-sorted by construction).
        """
        backend = active_backend()
        plans = self._relation_plans.get((backend.name, relation))
        if plans is None:
            src, dst = self.relation_edges(relation)
            plans = (
                backend.build_plan(src, self.num_nodes, validate=False),
                backend.build_plan(
                    dst, self.num_nodes, validate=False, assume_sorted=True
                ),
            )
            self._relation_plans.put((backend.name, relation), plans)
        return plans

    def _gcn_operator(self):
        """The ``Â`` SpMM operator of the active backend, or ``None``.

        The whole GCN propagation — gather, edge-wise normalisation,
        scatter — collapses into one sparse matvec per direction (the
        adjoint serves the backward); duplicate (dst, src) pairs sum on
        conversion, matching the scatter semantics. Cached per backend
        name so mixed-backend sessions never share kernels.
        """
        backend = active_backend()
        return self._gcn_operators.get_or_create(
            backend.name,
            lambda: backend.sparse_operator(
                self.gcn_dst,
                self.gcn_src,
                self.gcn_norm.reshape(-1),
                (self.num_nodes, self.num_nodes),
            ),
        )

    # -- aggregation helpers ---------------------------------------------
    def propagate_gcn(self, x: Tensor) -> Tensor:
        """One application of the normalised adjacency ``D^-1/2 Ã D^-1/2``."""
        operator = self._gcn_operator() if plans_enabled() else None
        if operator is not None:
            data = np.asarray(operator.apply(x.data))

            def backward(grad: np.ndarray) -> None:
                if x.requires_grad:
                    x._accumulate(np.asarray(operator.apply_t(grad)))

            return Tensor._make(data, (x,), backward)
        messages = gather_rows(x, self.gcn_src, plan=self.gcn_src_plan)
        messages = messages * Tensor(self.gcn_norm)
        return scatter_sum(messages, self.gcn_dst, self.num_nodes, plan=self.gcn_dst_plan)

    def subgraph(self, keep: np.ndarray) -> "GraphContext":
        """Context induced on the kept nodes (used by Graph U-Net pooling).

        ``keep`` is an array of node ids (ascending). Edges with both
        endpoints kept survive, renumbered.
        """
        keep = np.asarray(keep, dtype=np.int64)
        remap = -np.ones(self.num_nodes, dtype=np.int64)
        remap[keep] = np.arange(len(keep))
        src, dst = self.edge_index
        mask = (remap[src] >= 0) & (remap[dst] >= 0)
        return GraphContext(
            edge_index=np.stack([remap[src[mask]], remap[dst[mask]]]),
            edge_type=self.edge_type[mask],
            num_nodes=len(keep),
            batch=self.batch[keep],
            num_graphs=self.num_graphs,
            num_edge_types=self.num_edge_types,
        )


class RelationFusion:
    """One flat view of the relation partition for fused relation kernels.

    Where the per-relation loop hands layers R separate (src, dst, plan)
    triples, this hands them ONE relation-partitioned edge array: the
    context's lexsorted-by-(relation, dst) edges restricted to the
    relations the layer covers, with run bounds ``[starts[r], ends[r])``
    per relation. On top of it live, all built lazily and cached:

    - ``plan(endpoint)`` — scatter plans over the full partitioned src /
      dst vectors (one scatter for ALL relations instead of R);
    - ``flat_index``/``flat_plan`` — gather indices into the
      ``[R * N, D]`` flattening of a stacked all-relations transform;
    - ``norm_for(dtype)`` — the per-edge ``1 / c_{v, r}`` column that
      turns the single fused ``scatter_sum`` into the per-relation
      ``scatter_mean`` RGCN and FiLM are defined with;
    - ``collect``/``weighted_scatter`` — fused SpMM operators built by
      the active scatter backend (the relational analogue of the GCN
      ``Â`` matmul), fusing gather + normalise + scatter into one sparse
      matvec per direction: ``collect`` maps a stacked ``[R, N, O]``
      transform straight to ``[N, O]`` aggregated messages,
      ``weighted_scatter`` lands per-edge messages with their
      ``1/c_{v,r}`` weights applied. Both fall back to the plan-threaded
      gather/mul/scatter composition when the backend has no fused
      operator or under ``use_plans(False)``.
    """

    def __init__(self, ctx: GraphContext, num_relations: int):
        self.num_nodes = ctx.num_nodes
        #: Stacked-weight depth of the layers served (>= relations with edges).
        self.num_relations = num_relations
        active = min(num_relations, ctx.num_relations)
        src_sorted, dst_sorted, starts, ends = ctx._relation_partition
        stop = int(ends[active - 1]) if active else 0
        self.src = src_sorted[:stop]
        self.dst = dst_sorted[:stop]
        self.starts = starts[:active]
        self.ends = ends[:active]
        self.num_edges = stop
        # Plan/operator caches key by the active backend's name so each
        # backend executes only kernels it built itself. LRU-bounded like
        # the context caches (backends x endpoints x dtypes is small, but
        # streaming sessions must not leak even across odd mixes).
        self._plans = LRUCache(RELATION_PLAN_CACHE_SIZE)
        self._flat = LRUCache(RELATION_PLAN_CACHE_SIZE)
        self._norms = LRUCache(GCN_OPERATOR_CACHE_SIZE)
        self._collect_ops = LRUCache(RELATION_PLAN_CACHE_SIZE)
        self._edge_ops = LRUCache(GCN_OPERATOR_CACHE_SIZE)

    def prefer_block(self, num_nodes: int) -> bool:
        """Whether the gather-by-relation block kernel transforms fewer
        rows than a stacked all-nodes transform."""
        return self.num_edges < self.num_relations * num_nodes

    def index(self, endpoint: str) -> np.ndarray:
        """Partitioned node ids of edge ``endpoint`` (``"src"``/``"dst"``)."""
        if endpoint == "src":
            return self.src
        if endpoint == "dst":
            return self.dst
        raise ValueError(f"endpoint must be 'src' or 'dst', got '{endpoint}'")

    def plan(self, endpoint: str) -> SegmentPlan:
        """Scatter plan of ``index(endpoint)`` into the node table."""
        backend = active_backend()
        plan = self._plans.get((backend.name, endpoint))
        if plan is None:
            plan = backend.build_plan(
                self.index(endpoint), self.num_nodes, validate=False
            )
            self._plans.put((backend.name, endpoint), plan)
        return plan

    @cached_property
    def _relation_ids(self) -> np.ndarray:
        """Per-edge relation id (the partition makes it a repeat pattern)."""
        return np.repeat(
            np.arange(len(self.starts), dtype=np.int64), self.ends - self.starts
        )

    def flat_index(self, endpoint: str) -> np.ndarray:
        """Row ids into the ``[num_relations * N, D]`` stacked transform."""
        return self._flat_entry(endpoint)[0]

    def flat_plan(self, endpoint: str) -> SegmentPlan:
        """Backward plan of gathering ``flat_index`` from the stacked rows."""
        return self._flat_entry(endpoint)[1]

    def _flat_entry(self, endpoint: str) -> tuple[np.ndarray, SegmentPlan]:
        backend = active_backend()
        entry = self._flat.get((backend.name, endpoint))
        if entry is None:
            index = self._relation_ids * self.num_nodes + self.index(endpoint)
            plan = backend.build_plan(
                index, self.num_relations * self.num_nodes, validate=False
            )
            entry = (index, plan)
            self._flat.put((backend.name, endpoint), entry)
        return entry

    def norm_for(self, dtype) -> np.ndarray:
        """``[E, 1]`` column of ``1 / c_{v, r}`` (dst in-count per relation).

        Multiplying messages by it and scatter-summing over ``dst``
        reproduces the per-relation ``scatter_mean`` semantics in one
        fused scatter. Cached per dtype so mixed float32/float64 runs
        over one context stay in their own precision.
        """
        dtype = np.dtype(dtype)
        norm = self._norms.get(dtype)
        if norm is None:
            # One flat bincount over the (relation, dst) key — no
            # per-relation loop.
            key = self._relation_ids * self.num_nodes + self.dst
            counts = np.bincount(key)
            inv = 1.0 / counts[key] if self.num_edges else np.empty(0)
            norm = inv.astype(dtype).reshape(-1, 1)
            self._norms.put(dtype, norm)
        return norm

    # -- fused SpMM operators (gather + normalise + scatter in one matvec) --
    def _collect_operator(self, dtype, weighted: bool):
        """``[N, R * N]`` SpMM operator summing a flattened stacked
        transform into per-node messages (optionally
        ``1/c_{v,r}``-weighted); the adjoint serves the backward.
        ``None`` when the active backend has no fused operator."""
        backend = active_backend()
        key = (backend.name, np.dtype(dtype), weighted)

        def build():
            data = (
                self.norm_for(dtype).reshape(-1)
                if weighted
                else np.ones(self.num_edges, dtype=dtype)
            )
            return backend.sparse_operator(
                self.dst,
                self.flat_index("src"),
                data,
                (self.num_nodes, self.num_relations * self.num_nodes),
            )

        return self._collect_ops.get_or_create(key, build)

    def _edge_operator(self, dtype):
        """``[N, E]`` SpMM operator landing per-edge messages on their dst
        rows with the ``1/c_{v,r}`` weight applied. ``None`` when the
        active backend has no fused operator."""
        backend = active_backend()
        key = (backend.name, np.dtype(dtype))
        return self._edge_ops.get_or_create(
            key,
            lambda: backend.sparse_operator(
                self.dst,
                np.arange(self.num_edges),
                self.norm_for(dtype).reshape(-1),
                (self.num_nodes, self.num_edges),
            ),
        )

    def collect(self, stacked: Tensor, weighted: bool = False) -> Tensor:
        """Aggregate a stacked ``[R, N, O]`` transform into ``[N, O]``.

        Row ``v`` of the result is ``sum_e w_e * stacked[r_e, src_e]``
        over edges into ``v`` (``w_e = 1/c_{v,r}`` when ``weighted`` —
        the per-relation mean — else 1). With scipy this is ONE sparse
        matvec per direction; otherwise it decomposes into the
        plan-threaded gather (+ norm multiply) + scatter.
        """
        rows = self.num_relations * self.num_nodes
        operator = self._collect_operator(stacked.dtype, weighted) if plans_enabled() else None
        if operator is not None:
            flat = stacked.data.reshape(rows, -1)
            data = np.asarray(operator.apply(flat))

            def backward(grad: np.ndarray) -> None:
                if stacked.requires_grad:
                    stacked._accumulate(
                        np.asarray(operator.apply_t(grad)).reshape(stacked.shape)
                    )

            return Tensor._make(data, (stacked,), backward)
        flat = stacked.reshape(rows, stacked.shape[-1])
        messages = gather_rows(flat, self.flat_index("src"), plan=self.flat_plan("src"))
        if weighted:
            messages = messages * Tensor(self.norm_for(messages.dtype))
        return scatter_sum(messages, None, self.num_nodes, plan=self.plan("dst"))

    def weighted_scatter(self, messages: Tensor) -> Tensor:
        """Land per-edge ``messages`` on dst rows, ``1/c_{v,r}``-weighted.

        The fused equivalent of ``messages * norm`` + ``scatter_sum`` —
        one sparse matvec per direction with scipy, the plan-threaded
        composition otherwise.
        """
        operator = self._edge_operator(messages.dtype) if plans_enabled() else None
        if operator is not None:
            data = np.asarray(operator.apply(messages.data))

            def backward(grad: np.ndarray) -> None:
                if messages.requires_grad:
                    messages._accumulate(np.asarray(operator.apply_t(grad)))

            return Tensor._make(data, (messages,), backward)
        weighted = messages * Tensor(self.norm_for(messages.dtype))
        return scatter_sum(weighted, None, self.num_nodes, plan=self.plan("dst"))
