"""Virtual-node augmentation (Gilmer et al., 2017).

A per-graph latent node exchanges information with every real node
between message-passing layers, giving distant nodes a two-hop channel.
Used for the GCN-V and GIN-V zoo entries.
"""

from __future__ import annotations

import numpy as np

from repro.gnn.message_passing import GraphContext
from repro.nn import MLP, Module
from repro.tensor import Tensor, gather_rows, get_default_dtype, scatter_sum


class VirtualNodeState:
    """Holds the per-graph virtual embedding across layers of one pass."""

    def __init__(self, num_graphs: int, dim: int):
        self.embedding = Tensor(np.zeros((num_graphs, dim), dtype=get_default_dtype()))


class VirtualNodeExchange(Module):
    """One exchange step: update the virtual node, broadcast back."""

    def __init__(self, dim: int, rng: np.random.Generator | None = None):
        super().__init__()
        self.update = MLP([dim, dim, dim], rng=rng)

    def forward(
        self, x: Tensor, state: VirtualNodeState, ctx: GraphContext
    ) -> tuple[Tensor, VirtualNodeState]:
        pooled = scatter_sum(x, ctx.batch, ctx.num_graphs, plan=ctx.pool_plan)
        new_embedding = self.update(pooled + state.embedding)
        state.embedding = new_embedding
        return x + gather_rows(new_embedding, ctx.batch, plan=ctx.pool_plan), state
