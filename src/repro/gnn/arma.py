"""ARMA graph convolution (Bianchi et al., 2021).

Each of ``K`` parallel stacks runs ``T`` recursive steps

    x_k^(t+1) = sigma(L_hat x_k^(t) W_k + x^(0) V_k)

and the stack outputs are averaged — an auto-regressive moving-average
filter on the graph spectrum approximated with message passing.
"""

from __future__ import annotations

import numpy as np

from repro.gnn.message_passing import GraphContext
from repro.nn import Linear, Module, ModuleList
from repro.tensor import Tensor


class ARMALayer(Module):
    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        stacks: int = 2,
        steps: int = 2,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if stacks < 1 or steps < 1:
            raise ValueError("stacks and steps must be >= 1")
        self.stacks = stacks
        self.steps = steps
        self.input_proj = ModuleList(
            Linear(in_dim, out_dim, rng=rng) for _ in range(stacks)
        )
        self.recurrent = ModuleList(
            Linear(out_dim, out_dim, rng=rng) for _ in range(stacks)
        )
        self.skip = ModuleList(
            Linear(in_dim, out_dim, bias=False, rng=rng) for _ in range(stacks)
        )

    def forward(self, x: Tensor, ctx: GraphContext) -> Tensor:
        output: Tensor | None = None
        for k in range(self.stacks):
            h = self.input_proj[k](x)
            root = self.skip[k](x)
            for _ in range(self.steps):
                h = (self.recurrent[k](ctx.propagate_gcn(h)) + root).relu()
            output = h if output is None else output + h
        return output / float(self.stacks)
