"""The 14-model zoo screened in Table 2 of the paper.

Names follow the paper's rows: GCN, GCN-V, SGC, SAGE, ARMA, PAN, GIN,
GIN-V, PNA, GAT, GGNN, RGCN, UNet, FiLM. ``build_layer`` creates one
message-passing layer; virtual-node and whole-architecture variants are
resolved by :class:`repro.gnn.network.GNNEncoder`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gnn.arma import ARMALayer
from repro.gnn.film import FiLMLayer
from repro.gnn.gat import GATLayer
from repro.gnn.gcn import GCNLayer, SGCLayer
from repro.gnn.ggnn import GGNNLayer
from repro.gnn.gin import GINLayer
from repro.gnn.pan import PANLayer
from repro.gnn.pna import PNALayer
from repro.gnn.rgcn import RGCNLayer
from repro.gnn.sage import SAGELayer


@dataclass(frozen=True)
class ModelSpec:
    """Static description of one zoo entry."""

    name: str
    paper_row: str
    relational: bool  # consumes direction-aware edge types
    virtual_node: bool = False
    whole_architecture: bool = False  # e.g. Graph U-Net


MODEL_SPECS: dict[str, ModelSpec] = {
    "gcn": ModelSpec("gcn", "GCN", relational=False),
    "gcn-v": ModelSpec("gcn-v", "GCN-V", relational=False, virtual_node=True),
    "sgc": ModelSpec("sgc", "SGC", relational=False),
    "sage": ModelSpec("sage", "SAGE", relational=False),
    "arma": ModelSpec("arma", "ARMA", relational=False),
    "pan": ModelSpec("pan", "PAN", relational=False),
    "gin": ModelSpec("gin", "GIN", relational=False),
    "gin-v": ModelSpec("gin-v", "GIN-V", relational=False, virtual_node=True),
    "pna": ModelSpec("pna", "PNA", relational=False),
    "gat": ModelSpec("gat", "GAT", relational=False),
    "ggnn": ModelSpec("ggnn", "GGNN", relational=True),
    "rgcn": ModelSpec("rgcn", "RGCN", relational=True),
    "unet": ModelSpec("unet", "UNet", relational=False, whole_architecture=True),
    "film": ModelSpec("film", "FiLM", relational=True),
}

ALL_MODEL_NAMES = tuple(MODEL_SPECS)


def get_spec(name: str) -> ModelSpec:
    key = name.lower()
    if key not in MODEL_SPECS:
        raise KeyError(f"unknown GNN model '{name}', available: {list(MODEL_SPECS)}")
    return MODEL_SPECS[key]


def build_layer(
    name: str,
    in_dim: int,
    out_dim: int,
    num_relations: int,
    rng: np.random.Generator | None = None,
):
    """Instantiate one message-passing layer for zoo entry ``name``.

    ``num_relations`` is the direction-aware relation count
    (2 x edge types); only relational layers use it.
    """
    key = name.lower()
    base = key.removesuffix("-v")
    if base == "gcn":
        return GCNLayer(in_dim, out_dim, rng=rng)
    if base == "sgc":
        return SGCLayer(in_dim, out_dim, hops=1, rng=rng)
    if base == "sage":
        return SAGELayer(in_dim, out_dim, rng=rng)
    if base == "arma":
        return ARMALayer(in_dim, out_dim, rng=rng)
    if base == "pan":
        return PANLayer(in_dim, out_dim, rng=rng)
    if base == "gin":
        return GINLayer(in_dim, out_dim, rng=rng)
    if base == "pna":
        return PNALayer(in_dim, out_dim, rng=rng)
    if base == "gat":
        return GATLayer(in_dim, out_dim, rng=rng)
    if base == "ggnn":
        return GGNNLayer(in_dim, out_dim, num_relations, rng=rng)
    if base == "rgcn":
        return RGCNLayer(in_dim, out_dim, num_relations, rng=rng)
    if base == "film":
        return FiLMLayer(in_dim, out_dim, num_relations, rng=rng)
    raise KeyError(f"no layer builder for '{name}'")
