"""Graph U-Net encoder (Gao & Ji, 2019).

An encoder-decoder over the node set: gPool (top-k by a learned score)
coarsens the graph, gUnpool restores resolution, and skip connections add
encoder features back in. Unlike the flat stacks in the zoo this is a
whole architecture, registered as such.
"""

from __future__ import annotations

import numpy as np

from repro.gnn.gcn import GCNLayer
from repro.gnn.message_passing import GraphContext
from repro.nn import Module, ModuleList, Parameter, init
from repro.tensor import Tensor, sigmoid


class TopKPool(Module):
    """Learned top-k node selection within each graph of the batch."""

    def __init__(self, dim: int, ratio: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {ratio}")
        self.ratio = ratio
        self.score_vector = Parameter(init.xavier_uniform((dim, 1), rng))

    def select(self, x: Tensor, ctx: GraphContext) -> tuple[np.ndarray, Tensor]:
        """Return (kept node ids ascending, gate values for kept nodes)."""
        norm = float(np.linalg.norm(self.score_vector.data)) + 1e-12
        scores = (x @ self.score_vector) / norm  # [N, 1]
        raw = scores.data.reshape(-1)
        keep_ids: list[np.ndarray] = []
        for graph in range(ctx.num_graphs):
            members = np.flatnonzero(ctx.batch == graph)
            if len(members) == 0:
                continue
            k = max(1, int(np.ceil(self.ratio * len(members))))
            top = members[np.argsort(-raw[members], kind="stable")[:k]]
            keep_ids.append(np.sort(top))
        keep = np.concatenate(keep_ids) if keep_ids else np.empty(0, dtype=np.int64)
        gate = sigmoid(scores[keep])
        return keep, gate


class GraphUNet(Module):
    """Two-level U-shaped GNN producing node embeddings.

    Encoder: GCN -> pool -> GCN -> pool -> bottom GCN.
    Decoder: unpool -> GCN (+skip) -> unpool -> GCN (+skip).
    """

    def __init__(
        self,
        dim: int,
        depth: int = 2,
        ratio: float = 0.5,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.depth = depth
        self.down_convs = ModuleList(GCNLayer(dim, dim, rng=rng) for _ in range(depth + 1))
        self.pools = ModuleList(TopKPool(dim, ratio, rng=rng) for _ in range(depth))
        self.up_convs = ModuleList(GCNLayer(dim, dim, rng=rng) for _ in range(depth))

    def forward(self, x: Tensor, ctx: GraphContext) -> Tensor:
        contexts = [ctx]
        skips: list[Tensor] = []
        keeps: list[np.ndarray] = []
        h = self.down_convs[0](x, ctx).relu()
        for level in range(self.depth):
            skips.append(h)
            keep, gate = self.pools[level].select(h, contexts[-1])
            keeps.append(keep)
            sub = contexts[-1].subgraph(keep)
            contexts.append(sub)
            h = h[keep] * gate
            h = self.down_convs[level + 1](h, sub).relu()
        for level in reversed(range(self.depth)):
            # gUnpool: place coarse embeddings back at their original slots.
            parent_ctx = contexts[level]
            restored = _unpool(h, keeps[level], parent_ctx.num_nodes)
            h = self.up_convs[level](restored + skips[level], parent_ctx)
            if level != 0:
                h = h.relu()
        return h


def _unpool(h: Tensor, keep: np.ndarray, num_nodes: int) -> Tensor:
    """Scatter coarse rows back into an all-zeros fine-resolution tensor."""
    from repro.tensor import scatter_sum

    # ``keep`` is a subset of node ids produced by TopKPool, in range by
    # construction — skip the per-call index scan.
    return scatter_sum(h, keep, num_nodes, validated=True)
