"""Model assembly: encoder, regression head, node-classification head.

The paper fixes one skeleton for all zoo entries — an input projection,
five message-passing layers with hidden size 300, then sum/mean pooling
and a 300-600-300-out feed-forward head — varying only the layer type.
:class:`GNNEncoder` reproduces that skeleton (sizes are configurable so
the scaled presets can shrink them).
"""

from __future__ import annotations

import numpy as np

from repro.gnn.gcn import SGCLayer
from repro.gnn.message_passing import GraphContext
from repro.gnn.pooling import get_pooling
from repro.gnn.registry import build_layer, get_spec
from repro.gnn.unet import GraphUNet
from repro.gnn.virtual_node import VirtualNodeExchange, VirtualNodeState
from repro.graph.batch import Batch
from repro.nn import MLP, Dropout, Linear, Module, ModuleList
from repro.tensor import Tensor
from repro.utils.rng import fork_rng


class GNNEncoder(Module):
    """Input projection + a stack of message-passing layers.

    Produces node embeddings of size ``hidden_dim``. Special cases:
    SGC collapses the stack into one K-hop layer (its defining trait),
    UNet swaps the stack for the whole Graph U-Net architecture, and
    ``*-v`` entries interleave virtual-node exchanges.
    """

    def __init__(
        self,
        model_name: str,
        in_dim: int,
        hidden_dim: int,
        num_layers: int,
        num_edge_types: int,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.spec = get_spec(model_name)
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers
        self.num_edge_types = num_edge_types
        rng = rng if rng is not None else fork_rng()
        num_relations = 2 * num_edge_types
        self.input_proj = Linear(in_dim, hidden_dim, rng=rng)
        self.dropout = Dropout(dropout, rng=fork_rng(rng)) if dropout > 0 else None
        self.unet: GraphUNet | None = None
        self.layers = ModuleList()
        self.exchanges = ModuleList()
        if self.spec.whole_architecture:
            self.unet = GraphUNet(hidden_dim, depth=min(2, num_layers), rng=rng)
        elif self.spec.name == "sgc":
            self.layers.append(
                SGCLayer(hidden_dim, hidden_dim, hops=num_layers, rng=rng)
            )
        else:
            for _ in range(num_layers):
                self.layers.append(
                    build_layer(
                        self.spec.name, hidden_dim, hidden_dim, num_relations, rng
                    )
                )
                if self.spec.virtual_node:
                    self.exchanges.append(VirtualNodeExchange(hidden_dim, rng=rng))

    def forward(self, x: Tensor, ctx: GraphContext) -> Tensor:
        h = self.input_proj(x).relu()
        if self.unet is not None:
            return self.unet(h, ctx)
        if self.spec.name == "sgc":
            return self.layers[0](h, ctx)
        state = (
            VirtualNodeState(ctx.num_graphs, self.hidden_dim)
            if self.spec.virtual_node
            else None
        )
        last = len(self.layers) - 1
        for i, layer in enumerate(self.layers):
            if state is not None:
                h, state = self.exchanges[i](h, state, ctx)
            h = layer(h, ctx)
            if i != last:
                h = h.relu()
                if self.dropout is not None:
                    h = self.dropout(h)
        return h

    def context_for(self, batch: Batch) -> GraphContext:
        """Topology bundle for ``batch`` — cached on the batch, so
        repeated forwards over a reused batch (the trainer's epoch
        loops) share one context and its precomputed scatter plans
        instead of rebuilding per forward."""
        return GraphContext.from_batch(batch, self.num_edge_types)


class GraphRegressor(Module):
    """Encoder + pooling + feed-forward head: graph-level regression.

    With the paper's defaults (hidden 300) the head is 300-600-300-out,
    matching Section 5.1.
    """

    def __init__(
        self,
        model_name: str,
        in_dim: int,
        hidden_dim: int,
        num_layers: int,
        num_edge_types: int,
        out_dim: int = 4,
        pooling: str = "sum",
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else fork_rng()
        self.encoder = GNNEncoder(
            model_name, in_dim, hidden_dim, num_layers, num_edge_types, dropout, rng
        )
        self.pooling = get_pooling(pooling)
        self.head = MLP(
            [hidden_dim, 2 * hidden_dim, hidden_dim, out_dim],
            dropout=dropout,
            rng=rng,
        )
        self.out_dim = out_dim

    def forward(self, batch: Batch) -> Tensor:
        ctx = self.encoder.context_for(batch)
        nodes = self.encoder(Tensor(batch.node_features), ctx)
        pooled = self.pooling(nodes, ctx)
        return self.head(pooled)


class NodeClassifier(Module):
    """Encoder + linear head emitting 3 binary logits per node
    (uses-DSP, uses-LUT, uses-FF) — the node-level task of Table 3."""

    def __init__(
        self,
        model_name: str,
        in_dim: int,
        hidden_dim: int,
        num_layers: int,
        num_edge_types: int,
        num_tasks: int = 3,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else fork_rng()
        self.encoder = GNNEncoder(
            model_name, in_dim, hidden_dim, num_layers, num_edge_types, dropout, rng
        )
        self.head = Linear(hidden_dim, num_tasks, rng=rng)
        self.num_tasks = num_tasks

    def forward(self, batch: Batch) -> Tensor:
        ctx = self.encoder.context_for(batch)
        nodes = self.encoder(Tensor(batch.node_features), ctx)
        return self.head(nodes)
