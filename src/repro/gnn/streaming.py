"""Layer-wise block-streaming inference over a partitioned graph.

The full-graph forward materialises one batch, one topology context and
one activation set for the whole graph; on the large designs the paper
targets that is the OOM. This module runs the *same* network layer by
layer over the blocks of a :class:`~repro.graph.partition.PartitionedGraph`
instead: for every layer, each block gathers its core + 1-hop halo rows
from the previous layer's node buffer, runs the layer on the induced
block subgraph, and writes back only the core rows. Peak memory is two
``[N, hidden]`` node buffers plus one block's topology — bounded by
block size, not edge count — and the outputs are *exact* on core rows
(not an approximation):

- the halo guarantees every in-edge of a core node is present, so
  aggregations (sum, mean, max, attention softmax, per-relation means)
  see exactly the full-graph message set;
- block contexts carry the global symmetric degrees
  (:attr:`PartitionedGraph.sym_degree`), so degree-normalised layers
  (GCN's ``D^-1/2 Ã D^-1/2``, PNA's scalers) use full-graph degrees;
- multi-hop layers (SGC's ``Â^K``, ARMA's recursions, PAN's path sums)
  get a ``hops``-deep halo via :func:`layer_hops`.

Differences from full-graph execution are float reassociation only,
which is what the parity suite pins (rtol 1e-4 in float32).

Not streamable: Graph U-Net (global top-k pooling) and virtual-node
variants (global exchange every layer) — :func:`supports_streaming`
gates them and callers fall back to the full-graph path.
"""

from __future__ import annotations

import numpy as np

from repro.gnn.arma import ARMALayer
from repro.gnn.gcn import SGCLayer
from repro.gnn.network import GNNEncoder, GraphRegressor, NodeClassifier
from repro.gnn.pan import PANLayer
from repro.gnn.pooling import _POOLERS
from repro.graph.data import GraphData
from repro.graph.partition import PartitionedGraph, partition_graph
from repro.tensor import Tensor, no_grad

#: Default block size for on-the-fly partitions built by the predict
#: helpers; serving exposes it as ``stream_block_nodes``.
DEFAULT_BLOCK_NODES = 4096


def layer_hops(layer) -> int:
    """Receptive-field depth of one layer application (halo depth)."""
    if isinstance(layer, SGCLayer):
        return layer.hops
    if isinstance(layer, ARMALayer):
        return layer.steps
    if isinstance(layer, PANLayer):
        return layer.max_path_len
    return 1


def supports_streaming(encoder: GNNEncoder) -> bool:
    """Whether the encoder is exact under block streaming.

    Graph U-Net pools globally and virtual-node variants exchange a
    global state every layer — both need the whole graph at once.
    """
    return encoder.unet is None and not encoder.spec.virtual_node


def stream_node_embeddings(
    encoder: GNNEncoder,
    partition: PartitionedGraph,
    features: np.ndarray | None = None,
) -> np.ndarray:
    """Node embeddings of the partitioned graph, block by block.

    Equivalent to ``encoder(Tensor(features), full_ctx).data`` in eval
    mode, but never materialises full-graph topology: per layer, each
    block runs on its induced core + halo subgraph and contributes only
    core rows to the next node buffer.
    """
    if not supports_streaming(encoder):
        raise ValueError(
            f"model '{encoder.spec.name}' needs whole-graph state and "
            "cannot stream block-wise"
        )
    x = features if features is not None else partition.graph.node_features
    was_training = encoder.training
    encoder.eval()
    try:
        with no_grad():
            h: np.ndarray | None = None
            for block in range(partition.num_blocks):
                core = partition.blocks[block]
                rows = encoder.input_proj(Tensor(x[core])).relu().data
                if h is None:
                    h = np.empty((partition.graph.num_nodes, rows.shape[1]), rows.dtype)
                h[core] = rows
            last = len(encoder.layers) - 1
            for i, layer in enumerate(encoder.layers):
                hops = layer_hops(layer)
                out = np.empty_like(h)
                for block in range(partition.num_blocks):
                    ctx, local, core_count = partition.block_context(
                        block, encoder.num_edge_types, hops=hops
                    )
                    result = layer(Tensor(h[local]), ctx)
                    if i != last:
                        result = result.relu()
                    out[local[:core_count]] = result.data[:core_count]
                h = out
    finally:
        encoder.train(was_training)
    return h


def _pooling_name(model: GraphRegressor) -> str:
    for name, fn in _POOLERS.items():
        if fn is model.pooling:
            return name
    raise ValueError("streaming supports registered sum/mean/max pooling only")


def predict_regressor_streaming(
    model: GraphRegressor,
    graph: GraphData,
    *,
    partition: PartitionedGraph | None = None,
    max_block_nodes: int = DEFAULT_BLOCK_NODES,
    seed: int = 0,
) -> np.ndarray:
    """Raw-scale ``[out_dim]`` prediction for one (large) graph.

    Matches ``predict_regressor(model, [graph])[0]`` within float
    reassociation tolerance while holding only block-sized topology.
    """
    if partition is None:
        # Single-pass streaming visits blocks cyclically, so a context
        # cache > 1 can never hit (it would need >= num_blocks entries)
        # and would only retain dead topology against the memory bound.
        partition = partition_graph(
            graph, max_block_nodes, seed=seed, context_cache_size=1
        )
    h = stream_node_embeddings(model.encoder, partition)
    name = _pooling_name(model)
    if name == "sum":
        pooled = h.sum(axis=0)
    elif name == "mean":
        pooled = h.mean(axis=0)
    elif name == "max":
        pooled = h.max(axis=0)
    else:  # pragma: no cover - registry currently holds exactly these
        raise ValueError(f"streaming cannot pool '{name}'")
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            out = model.head(Tensor(pooled[None, :])).data[0]
    finally:
        model.train(was_training)
    return np.expm1(out)


def predict_node_logits_streaming(
    model: NodeClassifier,
    graph: GraphData,
    *,
    partition: PartitionedGraph | None = None,
    max_block_nodes: int = DEFAULT_BLOCK_NODES,
    seed: int = 0,
    head_chunk: int = 65536,
) -> np.ndarray:
    """``[num_nodes, num_tasks]`` logits for one (large) graph, streamed."""
    if partition is None:
        # See predict_regressor_streaming: cache > 1 cannot hit here.
        partition = partition_graph(
            graph, max_block_nodes, seed=seed, context_cache_size=1
        )
    h = stream_node_embeddings(model.encoder, partition)
    logits = None
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            for lo in range(0, len(h), head_chunk):
                rows = model.head(Tensor(h[lo : lo + head_chunk])).data
                if logits is None:
                    logits = np.empty((len(h), rows.shape[1]), rows.dtype)
                logits[lo : lo + head_chunk] = rows
    finally:
        model.train(was_training)
    return logits
