"""Gated graph neural network layer (Li et al., 2016).

Messages use edge-type-dependent weights; node states are updated with a
gated recurrent unit, so ``in_dim`` must equal ``out_dim`` (the network
builder guarantees this after the input encoder).
"""

from __future__ import annotations

import numpy as np

from repro.gnn.message_passing import GraphContext
from repro.nn import Linear, Module, ModuleList
from repro.tensor import Tensor, gather_rows, scatter_sum


class GGNNLayer(Module):
    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        num_relations: int,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if in_dim != out_dim:
            raise ValueError("GGNN requires in_dim == out_dim (recurrent update)")
        self.num_relations = num_relations
        self.message_linears = ModuleList(
            Linear(in_dim, out_dim, bias=False, rng=rng) for _ in range(num_relations)
        )
        # GRU gates: input is the aggregated message, hidden is the node state.
        self.w_update = Linear(out_dim, out_dim, rng=rng)
        self.u_update = Linear(out_dim, out_dim, bias=False, rng=rng)
        self.w_reset = Linear(out_dim, out_dim, rng=rng)
        self.u_reset = Linear(out_dim, out_dim, bias=False, rng=rng)
        self.w_cand = Linear(out_dim, out_dim, rng=rng)
        self.u_cand = Linear(out_dim, out_dim, bias=False, rng=rng)

    def forward(self, x: Tensor, ctx: GraphContext) -> Tensor:
        message: Tensor | None = None
        for relation in range(min(self.num_relations, ctx.num_relations)):
            src, dst = ctx.relation_edges(relation)
            if len(src) == 0:
                continue
            src_plan, dst_plan = ctx.relation_plans(relation)
            transformed = self.message_linears[relation](x)
            contribution = scatter_sum(
                gather_rows(transformed, src, plan=src_plan),
                dst,
                ctx.num_nodes,
                plan=dst_plan,
            )
            message = contribution if message is None else message + contribution
        if message is None:
            message = x * 0.0
        update = (self.w_update(message) + self.u_update(x)).sigmoid()
        reset = (self.w_reset(message) + self.u_reset(x)).sigmoid()
        candidate = (self.w_cand(message) + self.u_cand(x * reset)).tanh()
        return x * (1.0 - update) + candidate * update
