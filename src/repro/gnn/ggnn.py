"""Gated graph neural network layer (Li et al., 2016).

Messages use edge-type-dependent weights; node states are updated with a
gated recurrent unit, so ``in_dim`` must equal ``out_dim`` (the network
builder guarantees this after the input encoder).

Message weights live in one stacked :class:`~repro.nn.RelationLinear`.
Because the aggregated message is a plain sum over relations, the fused
path computes every relation's edge messages in one batched kernel and
lands them with ONE ``scatter_sum`` over the whole partitioned edge
array — no per-relation loop, no R-term tensor addition chain.
"""

from __future__ import annotations

import numpy as np

from repro.gnn.message_passing import GraphContext
from repro.nn import Linear, Module, RelationLinear
from repro.tensor import Tensor, fused_relations_enabled, gather_rows, scatter_sum


class GGNNLayer(Module):
    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        num_relations: int,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if in_dim != out_dim:
            raise ValueError("GGNN requires in_dim == out_dim (recurrent update)")
        self.num_relations = num_relations
        self.message_linear = RelationLinear(
            in_dim, out_dim, num_relations, bias=False, rng=rng
        )
        # GRU gates: input is the aggregated message, hidden is the node state.
        self.w_update = Linear(out_dim, out_dim, rng=rng)
        self.u_update = Linear(out_dim, out_dim, bias=False, rng=rng)
        self.w_reset = Linear(out_dim, out_dim, rng=rng)
        self.u_reset = Linear(out_dim, out_dim, bias=False, rng=rng)
        self.w_cand = Linear(out_dim, out_dim, rng=rng)
        self.u_cand = Linear(out_dim, out_dim, bias=False, rng=rng)

    def _aggregate_fused(self, x: Tensor, ctx: GraphContext) -> Tensor | None:
        fusion = ctx.relation_fusion(self.num_relations)
        if not fusion.num_edges:
            return None
        if fusion.prefer_block(len(x)):
            messages = self.message_linear.edge_messages(x, fusion, path="block")
            return scatter_sum(
                messages, None, ctx.num_nodes, plan=fusion.plan("dst")
            )
        return fusion.collect(self.message_linear(x))

    def _aggregate_loop(self, x: Tensor, ctx: GraphContext) -> Tensor | None:
        message: Tensor | None = None
        for relation in range(min(self.num_relations, ctx.num_relations)):
            src, dst = ctx.relation_edges(relation)
            if len(src) == 0:
                continue
            src_plan, dst_plan = ctx.relation_plans(relation)
            transformed = self.message_linear.single(x, relation)
            contribution = scatter_sum(
                gather_rows(transformed, src, plan=src_plan),
                dst,
                ctx.num_nodes,
                plan=dst_plan,
            )
            message = contribution if message is None else message + contribution
        return message

    def forward(self, x: Tensor, ctx: GraphContext) -> Tensor:
        if fused_relations_enabled():
            message = self._aggregate_fused(x, ctx)
        else:
            message = self._aggregate_loop(x, ctx)
        if message is None:
            message = x * 0.0
        update = (self.w_update(message) + self.u_update(x)).sigmoid()
        reset = (self.w_reset(message) + self.u_reset(x)).sigmoid()
        candidate = (self.w_cand(message) + self.u_cand(x * reset)).tanh()
        return x * (1.0 - update) + candidate * update
