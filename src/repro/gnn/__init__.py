"""The GNN zoo: 14 architectures from the paper's Table 2 plus assembly.

Layer catalogue (paper Section 4.1):

- GCN family: GCN, GCN-V (virtual node), SGC, GraphSAGE, ARMA, PAN;
- GIN family: GIN, GIN-V, PNA;
- multi-relational: GAT, GGNN, RGCN;
- vision-inspired: Graph U-Net, GNN-FiLM.
"""

from repro.gnn.message_passing import GraphContext, RelationFusion
from repro.gnn.registry import ALL_MODEL_NAMES, MODEL_SPECS, build_layer, get_spec
from repro.gnn.network import GNNEncoder, GraphRegressor, NodeClassifier
from repro.gnn.pooling import get_pooling, max_pool, mean_pool, sum_pool
from repro.gnn.streaming import (
    predict_node_logits_streaming,
    predict_regressor_streaming,
    stream_node_embeddings,
    supports_streaming,
)

__all__ = [
    "GraphContext",
    "RelationFusion",
    "ALL_MODEL_NAMES",
    "MODEL_SPECS",
    "build_layer",
    "get_spec",
    "GNNEncoder",
    "GraphRegressor",
    "NodeClassifier",
    "get_pooling",
    "max_pool",
    "mean_pool",
    "sum_pool",
    "predict_node_logits_streaming",
    "predict_regressor_streaming",
    "stream_node_embeddings",
    "supports_streaming",
]
