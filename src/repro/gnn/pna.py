"""Principal neighbourhood aggregation, PNA (Corso et al., 2020).

Combines four aggregators (mean, max, min, std) with three degree scalers
(identity, amplification, attenuation) and mixes the twelve resulting
views plus the root embedding with a linear tower.
"""

from __future__ import annotations

import numpy as np

from repro.gnn.message_passing import GraphContext
from repro.nn import Linear, Module
from repro.tensor import (
    Tensor,
    concat,
    gather_rows,
    scatter_max,
    scatter_mean,
    scatter_min,
    scatter_std,
)


class PNALayer(Module):
    N_AGGREGATORS = 4
    N_SCALERS = 3

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator | None = None):
        super().__init__()
        mixed_dim = in_dim * (1 + self.N_AGGREGATORS * self.N_SCALERS)
        self.linear = Linear(mixed_dim, out_dim, rng=rng)

    def forward(self, x: Tensor, ctx: GraphContext) -> Tensor:
        messages = gather_rows(x, ctx.sym_src, plan=ctx.sym_src_plan)
        plan = ctx.sym_dst_plan
        aggregated = [
            scatter_mean(messages, ctx.sym_dst, ctx.num_nodes, plan=plan),
            scatter_max(messages, ctx.sym_dst, ctx.num_nodes, plan=plan),
            scatter_min(messages, ctx.sym_dst, ctx.num_nodes, plan=plan),
            scatter_std(messages, ctx.sym_dst, ctx.num_nodes, plan=plan),
        ]
        log_deg = np.log1p(ctx.sym_degree).reshape(-1, 1)
        # Average log-degree of the batch anchors the scalers (the PNA
        # paper uses the training-set average; the batch average is the
        # streaming equivalent and keeps the layer stateless). Block
        # contexts override it with the full-graph average so streamed
        # and full execution scale identically.
        delta = ctx.mean_log_degree
        # Scalers follow the node-embedding dtype (float64 log-degree
        # columns would silently promote a float32 forward).
        amplify = Tensor((log_deg / delta).astype(x.dtype, copy=False))
        attenuate = Tensor(
            (delta / np.maximum(log_deg, 1e-6)).astype(x.dtype, copy=False)
        )
        views = [x]
        for agg in aggregated:
            views.append(agg)
            views.append(agg * amplify)
            views.append(agg * attenuate)
        return self.linear(concat(views, axis=1))
