"""Graph isomorphism network layer (Xu et al., 2019)."""

from __future__ import annotations

import numpy as np

from repro.gnn.message_passing import GraphContext
from repro.nn import MLP, Module, Parameter
from repro.tensor import Tensor, gather_rows, scatter_sum


class GINLayer(Module):
    """``x' = MLP((1 + eps) x + sum_{u in N(v)} x_u)`` with trainable eps."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator | None = None):
        super().__init__()
        self.eps = Parameter(np.zeros(1))
        self.mlp = MLP([in_dim, out_dim, out_dim], rng=rng)

    def forward(self, x: Tensor, ctx: GraphContext) -> Tensor:
        messages = gather_rows(x, ctx.sym_src, plan=ctx.sym_src_plan)
        aggregated = scatter_sum(
            messages, ctx.sym_dst, ctx.num_nodes, plan=ctx.sym_dst_plan
        )
        return self.mlp(x * (1.0 + self.eps) + aggregated)
