"""GraphSAGE layer (Hamilton et al., 2017) with mean aggregation."""

from __future__ import annotations

import numpy as np

from repro.gnn.message_passing import GraphContext
from repro.nn import Linear, Module
from repro.tensor import Tensor, gather_rows, scatter_mean


class SAGELayer(Module):
    """``x' = W_root x + W_nbr mean_{u in N(v)} x_u`` over symmetric edges."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator | None = None):
        super().__init__()
        self.lin_root = Linear(in_dim, out_dim, rng=rng)
        self.lin_neighbor = Linear(in_dim, out_dim, bias=False, rng=rng)

    def forward(self, x: Tensor, ctx: GraphContext) -> Tensor:
        messages = gather_rows(x, ctx.sym_src, plan=ctx.sym_src_plan)
        aggregated = scatter_mean(
            messages, ctx.sym_dst, ctx.num_nodes, plan=ctx.sym_dst_plan
        )
        return self.lin_root(x) + self.lin_neighbor(aggregated)
