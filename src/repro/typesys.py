"""C type model: fixed-width integers (HLS ``ap_int`` style) and arrays.

Lives outside both the frontend and IR packages because both depend on
it (keeping the import graph acyclic)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CInt:
    """A fixed-width integer type, signed or unsigned, 1..256 bits."""

    width: int
    signed: bool = True

    def __post_init__(self) -> None:
        if not 1 <= self.width <= 256:
            raise ValueError(f"integer width must be in [1, 256], got {self.width}")

    @property
    def c_name(self) -> str:
        if self.width in (8, 16, 32, 64):
            base = f"int{self.width}_t"
            return base if self.signed else f"u{base}"
        prefix = "ap_int" if self.signed else "ap_uint"
        return f"{prefix}<{self.width}>"

    def __str__(self) -> str:
        return self.c_name


@dataclass(frozen=True)
class CArray:
    """A statically sized one-dimensional array of integers."""

    element: CInt
    length: int

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError(f"array length must be positive, got {self.length}")

    @property
    def c_name(self) -> str:
        return f"{self.element.c_name}[{self.length}]"

    def __str__(self) -> str:
        return self.c_name


CType = CInt | CArray

INT8 = CInt(8)
INT16 = CInt(16)
INT32 = CInt(32)
INT64 = CInt(64)
UINT8 = CInt(8, signed=False)
UINT16 = CInt(16, signed=False)
UINT32 = CInt(32, signed=False)
UINT64 = CInt(64, signed=False)
