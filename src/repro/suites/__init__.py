"""Real-world HLS benchmark substitutes.

Mini-C re-implementations (integer/fixed-point) of the three suites the
paper uses for generalisation evaluation: MachSuite (16 kernels),
CHStone (10) and PolyBench/C (30). Problem sizes are reduced so the
simulated flow stays fast; kernel *structure* (loop nests, array access
patterns, operator mix) follows the originals, which is what makes their
graphs distributionally different from the synthetic set.
"""

from repro.suites.registry import (
    SUITE_NAMES,
    all_programs,
    suite_programs,
)
from repro.suites import chstone, machsuite, polybench

__all__ = [
    "SUITE_NAMES",
    "all_programs",
    "suite_programs",
    "chstone",
    "machsuite",
    "polybench",
]
