"""MachSuite kernel substitutes (Reagen et al., IISWC 2014) — 16 kernels.

Each function returns one :class:`~repro.frontend.ast_.Program` with the
loop/array structure of the original benchmark at a reduced problem size.
"""

from __future__ import annotations

from repro.frontend.ast_ import Call, Cond, Program
from repro.suites._dsl import (
    A,
    C,
    I8,
    I16,
    I32,
    I64,
    U8,
    U32,
    V,
    add,
    at,
    b,
    decl,
    kernel,
    loop,
    mul,
    ret,
    set_,
    sub,
    when,
)

N = 16  # canonical reduced dimension


def aes_addroundkey() -> Program:
    """AES AddRoundKey + SubBytes-style table pass over the state."""
    return kernel(
        "ms_aes",
        [("state", A(U8, 16)), ("key", A(U8, 16)), ("sbox", A(U8, 64))],
        [
            decl("parity", I32, 0),
            loop("i", 16, [
                set_(at("state", "i"), b("^", at("state", "i"), at("key", "i"))),
                set_(at("state", "i"), at("sbox", b("&", at("state", "i"), 63))),
                set_("parity", b("^", "parity", at("state", "i"))),
            ]),
            ret("parity"),
        ],
    )


def backprop() -> Program:
    """One dense layer forward + delta update (integer activations)."""
    return kernel(
        "ms_backprop",
        [("w", A(I16, 64)), ("x", A(I16, 8)), ("y", A(I16, 8)), ("delta", A(I16, 8))],
        [
            decl("err", I32, 0),
            loop("i", 8, [
                decl("acc", I32, 0),
                loop("j", 8, [
                    set_("acc", add("acc", mul(at("w", add(mul("i", 8), "j")), at("x", "j")))),
                ]),
                # Saturating-style activation: acc >> 4 clamped by select.
                decl("act", I32, b(">>", "acc", 4)),
                set_(at("delta", "i"), sub(at("y", "i"), "act")),
                set_("err", add("err", mul(at("delta", "i"), at("delta", "i")))),
            ]),
            ret("err"),
        ],
    )


def bfs_bulk() -> Program:
    """Bulk BFS level expansion over a CSR-ish edge list."""
    return kernel(
        "ms_bfs",
        [("level", A(I8, N)), ("edge_src", A(I8, 32)), ("edge_dst", A(I8, 32)),
         ("frontier", I32)],
        [
            decl("updates", I32, 0),
            loop("e", 32, [
                decl("s", I32, b("&", at("edge_src", "e"), N - 1)),
                decl("d", I32, b("&", at("edge_dst", "e"), N - 1)),
                when(b("==", at("level", "s"), "frontier"), [
                    when(b("<", at("level", "d"), 0), [
                        set_(at("level", "d"), add("frontier", 1)),
                        set_("updates", add("updates", 1)),
                    ]),
                ]),
            ]),
            ret("updates"),
        ],
    )


def fft_strided() -> Program:
    """One strided FFT butterfly stage (integer twiddles)."""
    return kernel(
        "ms_fft",
        [("real", A(I32, N)), ("img", A(I32, N)), ("tw_r", A(I16, 8)), ("tw_i", A(I16, 8))],
        [
            decl("checksum", I32, 0),
            loop("k", 8, [
                decl("even_r", I32, at("real", "k")),
                decl("even_i", I32, at("img", "k")),
                decl("odd_r", I32, at("real", add("k", 8))),
                decl("odd_i", I32, at("img", add("k", 8))),
                decl("rot_r", I32, sub(mul("odd_r", at("tw_r", "k")), mul("odd_i", at("tw_i", "k")))),
                decl("rot_i", I32, add(mul("odd_r", at("tw_i", "k")), mul("odd_i", at("tw_r", "k")))),
                set_(at("real", "k"), add("even_r", b(">>", "rot_r", 8))),
                set_(at("img", "k"), add("even_i", b(">>", "rot_i", 8))),
                set_(at("real", add("k", 8)), sub("even_r", b(">>", "rot_r", 8))),
                set_(at("img", add("k", 8)), sub("even_i", b(">>", "rot_i", 8))),
                set_("checksum", b("^", "checksum", at("real", "k"))),
            ]),
            ret("checksum"),
        ],
    )


def gemm_ncubed() -> Program:
    """Naive n^3 matrix multiply, 8x8."""
    return kernel(
        "ms_gemm",
        [("a", A(I16, 64)), ("bm", A(I16, 64)), ("cm", A(I32, 64))],
        [
            loop("i", 8, [
                loop("j", 8, [
                    decl("acc", I32, 0),
                    loop("k", 8, [
                        set_("acc", add("acc", mul(
                            at("a", add(mul("i", 8), "k")),
                            at("bm", add(mul("k", 8), "j"))))),
                    ]),
                    set_(at("cm", add(mul("i", 8), "j")), "acc"),
                ]),
            ]),
            ret(at("cm", 0)),
        ],
    )


def gemm_blocked() -> Program:
    """Blocked matrix multiply (2x2 blocks of a 8x8 product)."""
    return kernel(
        "ms_gemm_blocked",
        [("a", A(I16, 64)), ("bm", A(I16, 64)), ("cm", A(I32, 64))],
        [
            loop("jj", 4, [
                loop("kk", 4, [
                    loop("i", 8, [
                        loop("j", 2, [
                            decl("col", I32, add(mul("jj", 2), "j")),
                            decl("acc", I32, at("cm", add(mul("i", 8), "col"))),
                            loop("k", 2, [
                                decl("row", I32, add(mul("kk", 2), "k")),
                                set_("acc", add("acc", mul(
                                    at("a", add(mul("i", 8), "row")),
                                    at("bm", add(mul("row", 8), "col"))))),
                            ]),
                            set_(at("cm", add(mul("i", 8), "col")), "acc"),
                        ]),
                    ]),
                ]),
            ]),
            ret(at("cm", 0)),
        ],
    )


def kmp() -> Program:
    """Knuth-Morris-Pratt string search over byte arrays."""
    return kernel(
        "ms_kmp",
        [("pattern", A(I8, 4)), ("text", A(I8, 32)), ("kmp_next", A(I8, 4))],
        [
            decl("matches", I32, 0),
            decl("q", I32, 0),
            loop("i", 32, [
                set_("q", Cond(b(">", "q", 3), C(0), V("q"))),
                when(b("==", at("pattern", b("&", "q", 3)), at("text", "i")), [
                    set_("q", add("q", 1)),
                    when(b("==", "q", 4), [
                        set_("matches", add("matches", 1)),
                        set_("q", b("&", at("kmp_next", 3), 3)),
                    ]),
                ], [
                    set_("q", b("&", at("kmp_next", b("&", "q", 3)), 3)),
                ]),
            ]),
            ret("matches"),
        ],
    )


def md_knn() -> Program:
    """Molecular dynamics k-nearest-neighbour force kernel (fixed point)."""
    return kernel(
        "ms_md",
        [("pos_x", A(I32, N)), ("pos_y", A(I32, N)), ("pos_z", A(I32, N)),
         ("nbr", A(I8, 64)), ("force", A(I32, N))],
        [
            loop("i", N, [
                decl("fx", I32, 0),
                loop("j", 4, [
                    decl("k", I32, b("&", at("nbr", add(mul("i", 4), "j")), N - 1)),
                    decl("dx", I32, sub(at("pos_x", "i"), at("pos_x", "k"))),
                    decl("dy", I32, sub(at("pos_y", "i"), at("pos_y", "k"))),
                    decl("dz", I32, sub(at("pos_z", "i"), at("pos_z", "k"))),
                    decl("r2", I32, add(add(mul("dx", "dx"), mul("dy", "dy")), mul("dz", "dz"))),
                    decl("inv", I32, b("/", C(1 << 16), b("|", "r2", 1))),
                    set_("fx", add("fx", mul("dx", "inv"))),
                ]),
                set_(at("force", "i"), "fx"),
            ]),
            ret(at("force", 0)),
        ],
    )


def nw() -> Program:
    """Needleman-Wunsch sequence alignment DP (anti-diagonal free)."""
    return kernel(
        "ms_nw",
        [("seq_a", A(I8, 8)), ("seq_b", A(I8, 8)), ("score", A(I32, 81))],
        [
            loop("i", 8, [
                loop("j", 8, [
                    decl("m", I32, Cond(
                        b("==", at("seq_a", "i"), at("seq_b", "j")), C(1), C(-1))),
                    decl("up", I32, add(at("score", add(mul("i", 9), add("j", 1))), C(-1))),
                    decl("left", I32, add(at("score", add(mul(add("i", 1), 9), "j")), C(-1))),
                    decl("diag", I32, add(at("score", add(mul("i", 9), "j")), "m")),
                    set_(at("score", add(mul(add("i", 1), 9), add("j", 1))),
                         Call("max", (Call("max", (V("up"), V("left"))), V("diag")))),
                ]),
            ]),
            ret(at("score", 80)),
        ],
    )


def sort_merge() -> Program:
    """Bottom-up merge of two sorted halves into a scratch array."""
    return kernel(
        "ms_sort_merge",
        [("data", A(I32, N)), ("temp", A(I32, N))],
        [
            decl("i", I32, 0),
            decl("j", I32, 8),
            loop("k", N, [
                decl("take_left", I32, Cond(
                    b(">=", "j", N), C(1),
                    Cond(b(">=", "i", 8), C(0),
                         Cond(b("<=", at("data", b("&", "i", N - 1)),
                                   at("data", b("&", "j", N - 1))), C(1), C(0))))),
                when(b("!=", "take_left", 0), [
                    set_(at("temp", "k"), at("data", b("&", "i", N - 1))),
                    set_("i", add("i", 1)),
                ], [
                    set_(at("temp", "k"), at("data", b("&", "j", N - 1))),
                    set_("j", add("j", 1)),
                ]),
            ]),
            ret(at("temp", 0)),
        ],
    )


def sort_radix() -> Program:
    """One radix-4 counting pass."""
    return kernel(
        "ms_sort_radix",
        [("data", A(I32, N)), ("bucket", A(I32, 4)), ("out", A(I32, N)), ("shift", I32)],
        [
            loop("i", 4, [set_(at("bucket", "i"), 0)]),
            loop("i", N, [
                decl("d", I32, b("&", b(">>", at("data", "i"), 2), 3)),
                set_(at("bucket", "d"), add(at("bucket", "d"), 1)),
            ]),
            decl("sum", I32, 0),
            loop("i", 4, [
                decl("count", I32, at("bucket", "i")),
                set_(at("bucket", "i"), "sum"),
                set_("sum", add("sum", "count")),
            ]),
            loop("i", N, [
                decl("d", I32, b("&", b(">>", at("data", "i"), 2), 3)),
                set_(at("out", b("&", at("bucket", "d"), N - 1)), at("data", "i")),
                set_(at("bucket", "d"), add(at("bucket", "d"), 1)),
            ]),
            ret(at("out", 0)),
        ],
    )


def spmv_crs() -> Program:
    """Sparse matrix-vector multiply, CRS format."""
    return kernel(
        "ms_spmv",
        [("values", A(I32, 32)), ("cols", A(I8, 32)), ("row_ptr", A(I8, N)),
         ("vec", A(I32, N)), ("out", A(I32, N))],
        [
            loop("i", N - 1, [
                decl("acc", I32, 0),
                decl("start", I32, b("&", at("row_ptr", "i"), 31)),
                loop("k", 4, [
                    decl("idx", I32, b("&", add("start", "k"), 31)),
                    set_("acc", add("acc", mul(
                        at("values", "idx"),
                        at("vec", b("&", at("cols", "idx"), N - 1))))),
                ]),
                set_(at("out", "i"), "acc"),
            ]),
            ret(at("out", 0)),
        ],
    )


def spmv_ellpack() -> Program:
    """Sparse matrix-vector multiply, ELLPACK format."""
    return kernel(
        "ms_spmv_ellpack",
        [("nzval", A(I32, 64)), ("cols", A(I8, 64)), ("vec", A(I32, N)), ("out", A(I32, N))],
        [
            loop("i", N, [
                decl("acc", I32, 0),
                loop("j", 4, [
                    set_("acc", add("acc", mul(
                        at("nzval", add(mul("j", N), "i")),
                        at("vec", b("&", at("cols", add(mul("j", N), "i")), N - 1))))),
                ]),
                set_(at("out", "i"), "acc"),
            ]),
            ret(at("out", 0)),
        ],
    )


def stencil2d() -> Program:
    """3x3 stencil over an 8x8 grid."""
    return kernel(
        "ms_stencil2d",
        [("orig", A(I32, 64)), ("filt", A(I16, 9)), ("sol", A(I32, 64))],
        [
            loop("r", 6, [
                loop("c", 6, [
                    decl("acc", I32, 0),
                    loop("k1", 3, [
                        loop("k2", 3, [
                            set_("acc", add("acc", mul(
                                at("filt", add(mul("k1", 3), "k2")),
                                at("orig", add(mul(add("r", "k1"), 8), add("c", "k2")))))),
                        ]),
                    ]),
                    set_(at("sol", add(mul("r", 8), "c")), "acc"),
                ]),
            ]),
            ret(at("sol", 0)),
        ],
    )


def stencil3d() -> Program:
    """7-point 3D stencil over a 4x4x4 volume."""
    return kernel(
        "ms_stencil3d",
        [("orig", A(I32, 64)), ("sol", A(I32, 64)), ("c0", I16), ("c1", I16)],
        [
            loop("i", 2, [
                loop("j", 2, [
                    loop("k", 2, [
                        decl("x", I32, add(add(mul(add("i", 1), 16), mul(add("j", 1), 4)), add("k", 1))),
                        decl("sum0", I32, at("orig", "x")),
                        decl("sum1", I32, add(
                            add(at("orig", b("&", add("x", 1), 63)), at("orig", b("&", sub("x", 1), 63))),
                            add(at("orig", b("&", add("x", 4), 63)), at("orig", b("&", sub("x", 4), 63))))),
                        set_("sum1", add("sum1", add(
                            at("orig", b("&", add("x", 16), 63)),
                            at("orig", b("&", sub("x", 16), 63))))),
                        set_(at("sol", "x"), add(mul("c0", "sum0"), mul("c1", "sum1"))),
                    ]),
                ]),
            ]),
            ret(at("sol", 21)),
        ],
    )


def viterbi() -> Program:
    """Viterbi decoding DP step over a small trellis."""
    return kernel(
        "ms_viterbi",
        [("obs", A(I8, 8)), ("init", A(I32, 4)), ("transition", A(I32, 16)),
         ("emission", A(I32, 32)), ("path", A(I32, 32))],
        [
            loop("s", 4, [
                set_(at("path", "s"), add(at("init", "s"),
                                          at("emission", b("&", at("obs", 0), 31)))),
            ]),
            loop("t", 7, [
                loop("s", 4, [
                    decl("best", I32, C(1 << 20)),
                    loop("p", 4, [
                        decl("cand", I32, add(
                            at("path", add(mul("t", 4), "p")),
                            at("transition", add(mul("p", 4), "s")))),
                        set_("best", Call("min", (V("best"), V("cand")))),
                    ]),
                    set_(at("path", b("&", add(mul(add("t", 1), 4), "s"), 31)),
                         add("best", at("emission", b("&", add("t", "s"), 31)))),
                ]),
            ]),
            ret(at("path", 28)),
        ],
    )


def crc32_kernel() -> Program:
    """Bitwise CRC over a byte buffer."""
    return kernel(
        "ms_crc32",
        [("data", A(U8, N)), ("poly", I32)],
        [
            decl("crc", I32, C(-1)),
            loop("i", N, [
                set_("crc", b("^", "crc", at("data", "i"))),
                loop("k", 8, [
                    decl("lsb", I32, b("&", "crc", 1)),
                    set_("crc", b(">>", "crc", 1)),
                    when(b("!=", "lsb", 0), [
                        set_("crc", b("^", "crc", "poly")),
                    ]),
                ]),
            ]),
            ret("crc"),
        ],
    )


KERNELS = (
    aes_addroundkey,
    backprop,
    bfs_bulk,
    fft_strided,
    gemm_ncubed,
    gemm_blocked,
    kmp,
    md_knn,
    nw,
    sort_merge,
    sort_radix,
    spmv_crs,
    spmv_ellpack,
    stencil2d,
    stencil3d,
    viterbi,
)


def programs() -> list[Program]:
    """All 16 MachSuite substitute kernels."""
    return [build() for build in KERNELS]
