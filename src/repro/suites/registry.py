"""Suite registry: name -> kernel programs."""

from __future__ import annotations

from repro.frontend.ast_ import Program

SUITE_NAMES = ("machsuite", "chstone", "polybench")


def suite_programs(name: str) -> list[Program]:
    """Programs of one suite by name."""
    if name == "machsuite":
        from repro.suites import machsuite

        return machsuite.programs()
    if name == "chstone":
        from repro.suites import chstone

        return chstone.programs()
    if name == "polybench":
        from repro.suites import polybench

        return polybench.programs()
    raise KeyError(f"unknown suite {name!r}; available: {SUITE_NAMES}")


def all_programs() -> list[Program]:
    """All 56 real-case kernels across the three suites."""
    result: list[Program] = []
    for name in SUITE_NAMES:
        result.extend(suite_programs(name))
    return result
