"""Terse aliases for building suite kernels with the mini-C AST."""

from __future__ import annotations

from repro.frontend.ast_ import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Cond,
    Decl,
    For,
    Function,
    If,
    IntConst,
    Program,
    Return,
    UnOp,
    Var,
)
from repro.frontend.ctypes_ import CArray, CInt

I8, I16, I32, I64 = CInt(8), CInt(16), CInt(32), CInt(64)
U8, U16, U32 = CInt(8, signed=False), CInt(16, signed=False), CInt(32, signed=False)

V = Var
C = IntConst


def A(element: CInt, length: int) -> CArray:
    return CArray(element, length)


def at(name: str, index) -> ArrayRef:
    return ArrayRef(name, _expr(index))


def _expr(value):
    if isinstance(value, int):
        return IntConst(value)
    if isinstance(value, str):
        return Var(value)
    return value


def b(op: str, lhs, rhs) -> BinOp:
    return BinOp(op, _expr(lhs), _expr(rhs))


def add(lhs, rhs):
    return b("+", lhs, rhs)


def sub(lhs, rhs):
    return b("-", lhs, rhs)


def mul(lhs, rhs):
    return b("*", lhs, rhs)


def set_(target, value) -> Assign:
    return Assign(target if isinstance(target, ArrayRef) else Var(target), _expr(value))


def decl(name: str, ctype: CInt, init=None) -> Decl:
    return Decl(name, ctype, _expr(init) if init is not None else None)


def loop(var: str, n: int, body: list) -> For:
    return For(var, 0, n, 1, body)


def when(cond, then_body: list, else_body: list | None = None) -> If:
    return If(_expr(cond), then_body, else_body or [])


def ret(value) -> Return:
    return Return(_expr(value))


def kernel(name: str, params: list, body: list, ret_type: CInt = I32) -> Program:
    """Wrap one function into a single-kernel program."""
    return Program(name=name, functions=[Function(name, params, ret_type, body)])
