"""PolyBench/C kernel substitutes (Pouchet & Yuki) — all 30 kernels.

PolyBench is regular affine loop nests over dense arrays; the substitutes
keep each kernel's loop structure and dependence pattern at size
N=8 (matrices stored flat as 64-element arrays) with integer arithmetic.
"""

from __future__ import annotations

from repro.frontend.ast_ import Call, Cond, Program
from repro.suites._dsl import (
    A,
    C,
    I16,
    I32,
    V,
    add,
    at,
    b,
    decl,
    kernel,
    loop,
    mul,
    ret,
    set_,
    sub,
    when,
)

N = 8
NN = N * N


def _idx(i, j):
    return add(mul(i, N), j)


def _mm_body(out: str, lhs: str, rhs: str) -> list:
    """C[i][j] += A[i][k] * B[k][j] triple loop."""
    return [
        loop("i", N, [
            loop("j", N, [
                decl("acc", I32, at(out, _idx("i", "j"))),
                loop("k", N, [
                    set_("acc", add("acc", mul(at(lhs, _idx("i", "k")),
                                               at(rhs, _idx("k", "j"))))),
                ]),
                set_(at(out, _idx("i", "j")), "acc"),
            ]),
        ]),
    ]


def p_2mm() -> Program:
    return kernel(
        "pb_2mm",
        [("am", A(I16, NN)), ("bm", A(I16, NN)), ("cm", A(I32, NN)),
         ("dm", A(I16, NN)), ("em", A(I32, NN)), ("alpha", I16)],
        _mm_body("cm", "am", "bm")
        + [
            loop("i", N, [
                loop("j", N, [
                    decl("acc", I32, 0),
                    loop("k", N, [
                        set_("acc", add("acc", mul(at("cm", _idx("i", "k")),
                                                   at("dm", _idx("k", "j"))))),
                    ]),
                    set_(at("em", _idx("i", "j")), mul("alpha", "acc")),
                ]),
            ]),
            ret(at("em", 0)),
        ],
    )


def p_3mm() -> Program:
    return kernel(
        "pb_3mm",
        [("am", A(I16, NN)), ("bm", A(I16, NN)), ("cm", A(I32, NN)),
         ("dm", A(I16, NN)), ("em", A(I32, NN)), ("fm", A(I32, NN))],
        _mm_body("cm", "am", "bm")
        + _mm_body("em", "cm", "dm")
        + _mm_body("fm", "cm", "em")
        + [ret(at("fm", 0))],
    )


def p_adi() -> Program:
    """Alternating-direction-implicit time step (row/column sweeps)."""
    return kernel(
        "pb_adi",
        [("u", A(I32, NN)), ("v", A(I32, NN)), ("a", I16), ("bp", I16)],
        [
            loop("i", N, [
                loop("j", N - 2, [
                    set_(at("v", _idx("i", add("j", 1))),
                         add(mul("a", at("u", _idx("i", "j"))),
                             mul("bp", at("u", _idx("i", add("j", 2)))))),
                ]),
            ]),
            loop("j", N, [
                loop("i", N - 2, [
                    set_(at("u", _idx(add("i", 1), "j")),
                         add(mul("a", at("v", _idx("i", "j"))),
                             mul("bp", at("v", _idx(add("i", 2), "j"))))),
                ]),
            ]),
            ret(at("u", 9)),
        ],
    )


def p_atax() -> Program:
    """y = A^T (A x)."""
    return kernel(
        "pb_atax",
        [("am", A(I16, NN)), ("x", A(I32, N)), ("y", A(I32, N)), ("tmp", A(I32, N))],
        [
            loop("i", N, [
                decl("acc", I32, 0),
                loop("j", N, [
                    set_("acc", add("acc", mul(at("am", _idx("i", "j")), at("x", "j")))),
                ]),
                set_(at("tmp", "i"), "acc"),
            ]),
            loop("j", N, [
                decl("acc", I32, 0),
                loop("i", N, [
                    set_("acc", add("acc", mul(at("am", _idx("i", "j")), at("tmp", "i")))),
                ]),
                set_(at("y", "j"), "acc"),
            ]),
            ret(at("y", 0)),
        ],
    )


def p_bicg() -> Program:
    """BiCG sub-kernel: s = A^T r, q = A p."""
    return kernel(
        "pb_bicg",
        [("am", A(I16, NN)), ("r", A(I32, N)), ("p", A(I32, N)),
         ("s", A(I32, N)), ("q", A(I32, N))],
        [
            loop("i", N, [
                decl("accq", I32, 0),
                loop("j", N, [
                    set_(at("s", "j"), add(at("s", "j"),
                                           mul(at("r", "i"), at("am", _idx("i", "j"))))),
                    set_("accq", add("accq", mul(at("am", _idx("i", "j")), at("p", "j")))),
                ]),
                set_(at("q", "i"), "accq"),
            ]),
            ret(add(at("s", 0), at("q", 0))),
        ],
    )


def p_cholesky() -> Program:
    """Cholesky factorisation (integer approximation with shifts)."""
    return kernel(
        "pb_cholesky",
        [("am", A(I32, NN))],
        [
            loop("i", N, [
                loop("j", N, [
                    when(b("<", "j", "i"), [
                        decl("acc", I32, at("am", _idx("i", "j"))),
                        loop("k", N, [
                            when(b("<", "k", "j"), [
                                set_("acc", sub("acc", mul(at("am", _idx("i", "k")),
                                                           at("am", _idx("j", "k"))))),
                            ]),
                        ]),
                        set_(at("am", _idx("i", "j")),
                             b("/", "acc", b("|", at("am", _idx("j", "j")), 1))),
                    ]),
                ]),
                decl("diag", I32, at("am", _idx("i", "i"))),
                loop("k", N, [
                    when(b("<", "k", "i"), [
                        set_("diag", sub("diag", mul(at("am", _idx("i", "k")),
                                                     at("am", _idx("i", "k"))))),
                    ]),
                ]),
                set_(at("am", _idx("i", "i")), b(">>", "diag", 1)),
            ]),
            ret(at("am", 0)),
        ],
    )


def p_correlation() -> Program:
    return kernel(
        "pb_correlation",
        [("data", A(I16, NN)), ("mean", A(I32, N)), ("corr", A(I32, NN))],
        [
            loop("j", N, [
                decl("acc", I32, 0),
                loop("i", N, [set_("acc", add("acc", at("data", _idx("i", "j"))))]),
                set_(at("mean", "j"), b(">>", "acc", 3)),
            ]),
            loop("i", N, [
                loop("j", N, [
                    decl("acc", I32, 0),
                    loop("k", N, [
                        set_("acc", add("acc", mul(
                            sub(at("data", _idx("k", "i")), at("mean", "i")),
                            sub(at("data", _idx("k", "j")), at("mean", "j"))))),
                    ]),
                    set_(at("corr", _idx("i", "j")), b(">>", "acc", 3)),
                ]),
            ]),
            ret(at("corr", 0)),
        ],
    )


def p_covariance() -> Program:
    return kernel(
        "pb_covariance",
        [("data", A(I16, NN)), ("mean", A(I32, N)), ("cov", A(I32, NN))],
        [
            loop("j", N, [
                decl("acc", I32, 0),
                loop("i", N, [set_("acc", add("acc", at("data", _idx("i", "j"))))]),
                set_(at("mean", "j"), b(">>", "acc", 3)),
            ]),
            loop("i", N, [
                loop("j", N, [
                    decl("acc", I32, 0),
                    loop("k", N, [
                        set_("acc", add("acc", mul(
                            sub(at("data", _idx("k", "i")), at("mean", "i")),
                            sub(at("data", _idx("k", "j")), at("mean", "j"))))),
                    ]),
                    set_(at("cov", _idx("i", "j")), b("/", "acc", 7)),
                ]),
            ]),
            ret(at("cov", 0)),
        ],
    )


def p_deriche() -> Program:
    """Deriche recursive edge filter (causal + anticausal passes)."""
    return kernel(
        "pb_deriche",
        [("img", A(I16, NN)), ("y1", A(I32, NN)), ("y2", A(I32, NN)),
         ("a1", I16), ("b1", I16)],
        [
            loop("i", N, [
                decl("ym1", I32, 0),
                loop("j", N, [
                    decl("val", I32, add(mul("a1", at("img", _idx("i", "j"))),
                                         mul("b1", "ym1"))),
                    set_(at("y1", _idx("i", "j")), "val"),
                    set_("ym1", b(">>", "val", 4)),
                ]),
            ]),
            loop("i", N, [
                decl("yp1", I32, 0),
                loop("j", N, [
                    decl("jj", I32, sub(N - 1, "j")),
                    decl("val", I32, add(mul("a1", at("img", _idx("i", "jj"))),
                                         mul("b1", "yp1"))),
                    set_(at("y2", _idx("i", "jj")), "val"),
                    set_("yp1", b(">>", "val", 4)),
                ]),
            ]),
            decl("acc", I32, 0),
            loop("i", NN // 8, [
                set_("acc", add("acc", add(at("y1", mul("i", 8)), at("y2", mul("i", 8))))),
            ]),
            ret("acc"),
        ],
    )


def p_doitgen() -> Program:
    return kernel(
        "pb_doitgen",
        [("aq", A(I32, NN)), ("c4", A(I16, NN)), ("sum", A(I32, N))],
        [
            loop("r", N, [
                loop("p", N, [
                    decl("acc", I32, 0),
                    loop("s", N, [
                        set_("acc", add("acc", mul(at("aq", _idx("r", "s")),
                                                   at("c4", _idx("s", "p"))))),
                    ]),
                    set_(at("sum", "p"), "acc"),
                ]),
                loop("p", N, [
                    set_(at("aq", _idx("r", "p")), at("sum", "p")),
                ]),
            ]),
            ret(at("aq", 0)),
        ],
    )


def p_durbin() -> Program:
    """Durbin recursion for Toeplitz systems."""
    return kernel(
        "pb_durbin",
        [("r", A(I32, N)), ("y", A(I32, N))],
        [
            set_(at("y", 0), UnaryNeg(at("r", 0))),
            decl("beta", I32, C(1 << 8)),
            decl("alpha", I32, UnaryNeg(at("r", 0))),
            loop("k", N - 1, [
                set_("beta", b(">>", mul("beta", sub(C(1 << 8), mul("alpha", "alpha"))), 8)),
                decl("ssum", I32, 0),
                loop("i", N, [
                    when(b("<=", "i", "k"), [
                        set_("ssum", add("ssum", mul(at("r", b("&", sub("k", "i"), N - 1)),
                                                     at("y", "i")))),
                    ]),
                ]),
                set_("alpha", b("/", UnaryNeg(add(at("r", b("&", add("k", 1), N - 1)), "ssum")),
                                b("|", "beta", 1))),
                set_(at("y", b("&", add("k", 1), N - 1)), "alpha"),
            ]),
            ret(at("y", N - 1)),
        ],
    )


def UnaryNeg(expr):
    from repro.frontend.ast_ import UnOp

    return UnOp("-", expr)


def p_fdtd2d() -> Program:
    """2-D finite-difference time domain, one time step."""
    return kernel(
        "pb_fdtd2d",
        [("ex", A(I32, NN)), ("ey", A(I32, NN)), ("hz", A(I32, NN))],
        [
            loop("i", N - 1, [
                loop("j", N, [
                    set_(at("ey", _idx(add("i", 1), "j")),
                         sub(at("ey", _idx(add("i", 1), "j")),
                             b(">>", sub(at("hz", _idx(add("i", 1), "j")),
                                         at("hz", _idx("i", "j"))), 1))),
                ]),
            ]),
            loop("i", N, [
                loop("j", N - 1, [
                    set_(at("ex", _idx("i", add("j", 1))),
                         sub(at("ex", _idx("i", add("j", 1))),
                             b(">>", sub(at("hz", _idx("i", add("j", 1))),
                                         at("hz", _idx("i", "j"))), 1))),
                ]),
            ]),
            loop("i", N - 1, [
                loop("j", N - 1, [
                    set_(at("hz", _idx("i", "j")),
                         sub(at("hz", _idx("i", "j")),
                             b(">>", add(sub(at("ex", _idx("i", add("j", 1))),
                                             at("ex", _idx("i", "j"))),
                                         sub(at("ey", _idx(add("i", 1), "j")),
                                             at("ey", _idx("i", "j")))), 2))),
                ]),
            ]),
            ret(at("hz", 0)),
        ],
    )


def p_floyd_warshall() -> Program:
    return kernel(
        "pb_floyd_warshall",
        [("path", A(I32, NN))],
        [
            loop("k", N, [
                loop("i", N, [
                    loop("j", N, [
                        decl("via", I32, add(at("path", _idx("i", "k")),
                                             at("path", _idx("k", "j")))),
                        set_(at("path", _idx("i", "j")),
                             Call("min", (at("path", _idx("i", "j")), V("via")))),
                    ]),
                ]),
            ]),
            ret(at("path", NN - 1)),
        ],
    )


def p_gemm() -> Program:
    return kernel(
        "pb_gemm",
        [("cm", A(I32, NN)), ("am", A(I16, NN)), ("bm", A(I16, NN)),
         ("alpha", I16), ("beta", I16)],
        [
            loop("i", N, [
                loop("j", N, [
                    set_(at("cm", _idx("i", "j")), mul("beta", at("cm", _idx("i", "j")))),
                    decl("acc", I32, 0),
                    loop("k", N, [
                        set_("acc", add("acc", mul(at("am", _idx("i", "k")),
                                                   at("bm", _idx("k", "j"))))),
                    ]),
                    set_(at("cm", _idx("i", "j")),
                         add(at("cm", _idx("i", "j")), mul("alpha", "acc"))),
                ]),
            ]),
            ret(at("cm", 0)),
        ],
    )


def p_gemver() -> Program:
    return kernel(
        "pb_gemver",
        [("am", A(I32, NN)), ("u1", A(I32, N)), ("v1", A(I32, N)),
         ("u2", A(I32, N)), ("v2", A(I32, N)), ("w", A(I32, N)),
         ("x", A(I32, N)), ("y", A(I32, N)), ("z", A(I32, N))],
        [
            loop("i", N, [
                loop("j", N, [
                    set_(at("am", _idx("i", "j")),
                         add(at("am", _idx("i", "j")),
                             add(mul(at("u1", "i"), at("v1", "j")),
                                 mul(at("u2", "i"), at("v2", "j"))))),
                ]),
            ]),
            loop("i", N, [
                decl("acc", I32, at("x", "i")),
                loop("j", N, [
                    set_("acc", add("acc", mul(at("am", _idx("j", "i")), at("y", "j")))),
                ]),
                set_(at("x", "i"), add("acc", at("z", "i"))),
            ]),
            loop("i", N, [
                decl("acc", I32, 0),
                loop("j", N, [
                    set_("acc", add("acc", mul(at("am", _idx("i", "j")), at("x", "j")))),
                ]),
                set_(at("w", "i"), "acc"),
            ]),
            ret(at("w", 0)),
        ],
    )


def p_gesummv() -> Program:
    return kernel(
        "pb_gesummv",
        [("am", A(I16, NN)), ("bm", A(I16, NN)), ("x", A(I32, N)), ("y", A(I32, N)),
         ("alpha", I16), ("beta", I16)],
        [
            loop("i", N, [
                decl("tmp_a", I32, 0),
                decl("tmp_b", I32, 0),
                loop("j", N, [
                    set_("tmp_a", add("tmp_a", mul(at("am", _idx("i", "j")), at("x", "j")))),
                    set_("tmp_b", add("tmp_b", mul(at("bm", _idx("i", "j")), at("x", "j")))),
                ]),
                set_(at("y", "i"), add(mul("alpha", "tmp_a"), mul("beta", "tmp_b"))),
            ]),
            ret(at("y", 0)),
        ],
    )


def p_gramschmidt() -> Program:
    return kernel(
        "pb_gramschmidt",
        [("am", A(I32, NN)), ("rm", A(I32, NN)), ("qm", A(I32, NN))],
        [
            loop("k", N, [
                decl("norm", I32, 0),
                loop("i", N, [
                    set_("norm", add("norm", mul(at("am", _idx("i", "k")),
                                                 at("am", _idx("i", "k"))))),
                ]),
                set_(at("rm", _idx("k", "k")), b(">>", "norm", 4)),
                loop("i", N, [
                    set_(at("qm", _idx("i", "k")),
                         b("/", at("am", _idx("i", "k")),
                           b("|", at("rm", _idx("k", "k")), 1))),
                ]),
                loop("j", N, [
                    when(b(">", "j", "k"), [
                        decl("acc", I32, 0),
                        loop("i", N, [
                            set_("acc", add("acc", mul(at("qm", _idx("i", "k")),
                                                       at("am", _idx("i", "j"))))),
                        ]),
                        set_(at("rm", _idx("k", "j")), "acc"),
                        loop("i", N, [
                            set_(at("am", _idx("i", "j")),
                                 sub(at("am", _idx("i", "j")),
                                     mul(at("qm", _idx("i", "k")), "acc"))),
                        ]),
                    ]),
                ]),
            ]),
            ret(at("rm", 0)),
        ],
    )


def p_heat3d() -> Program:
    """3-D heat equation on a 4x4x4 grid, one step."""
    return kernel(
        "pb_heat3d",
        [("a", A(I32, 64)), ("bq", A(I32, 64))],
        [
            loop("i", 2, [
                loop("j", 2, [
                    loop("k", 2, [
                        decl("x", I32, add(add(mul(add("i", 1), 16), mul(add("j", 1), 4)), add("k", 1))),
                        decl("lap", I32, sub(
                            add(add(at("a", b("&", add("x", 16), 63)), at("a", b("&", sub("x", 16), 63))),
                                add(at("a", b("&", add("x", 4), 63)), at("a", b("&", sub("x", 4), 63)))),
                            mul(C(4), at("a", "x")))),
                        set_(at("bq", "x"), add(at("a", "x"), b(">>", "lap", 3))),
                    ]),
                ]),
            ]),
            ret(at("bq", 21)),
        ],
    )


def p_jacobi1d() -> Program:
    return kernel(
        "pb_jacobi1d",
        [("a", A(I32, 32)), ("bq", A(I32, 32))],
        [
            loop("t", 2, [
                loop("i", 30, [
                    set_(at("bq", add("i", 1)),
                         b("/", add(add(at("a", "i"), at("a", add("i", 1))),
                                    at("a", add("i", 2))), 3)),
                ]),
                loop("i", 30, [
                    set_(at("a", add("i", 1)),
                         b("/", add(add(at("bq", "i"), at("bq", add("i", 1))),
                                    at("bq", add("i", 2))), 3)),
                ]),
            ]),
            ret(at("a", 15)),
        ],
    )


def p_jacobi2d() -> Program:
    return kernel(
        "pb_jacobi2d",
        [("a", A(I32, NN)), ("bq", A(I32, NN))],
        [
            loop("i", N - 2, [
                loop("j", N - 2, [
                    decl("x", I32, _idx(add("i", 1), add("j", 1))),
                    set_(at("bq", "x"),
                         b("/", add(add(at("a", "x"), at("a", sub("x", 1))),
                                    add(at("a", add("x", 1)),
                                        add(at("a", b("&", add("x", N), NN - 1)),
                                            at("a", b("&", sub("x", N), NN - 1))))), 5)),
                ]),
            ]),
            ret(at("bq", 9)),
        ],
    )


def p_lu() -> Program:
    return kernel(
        "pb_lu",
        [("am", A(I32, NN))],
        [
            loop("k", N, [
                loop("i", N, [
                    when(b(">", "i", "k"), [
                        set_(at("am", _idx("i", "k")),
                             b("/", at("am", _idx("i", "k")),
                               b("|", at("am", _idx("k", "k")), 1))),
                        loop("j", N, [
                            when(b(">", "j", "k"), [
                                set_(at("am", _idx("i", "j")),
                                     sub(at("am", _idx("i", "j")),
                                         mul(at("am", _idx("i", "k")),
                                             at("am", _idx("k", "j"))))),
                            ]),
                        ]),
                    ]),
                ]),
            ]),
            ret(at("am", 0)),
        ],
    )


def p_ludcmp() -> Program:
    return kernel(
        "pb_ludcmp",
        [("am", A(I32, NN)), ("bv", A(I32, N)), ("x", A(I32, N)), ("y", A(I32, N))],
        [
            loop("i", N, [
                decl("acc", I32, at("bv", "i")),
                loop("j", N, [
                    when(b("<", "j", "i"), [
                        set_("acc", sub("acc", mul(at("am", _idx("i", "j")), at("y", "j")))),
                    ]),
                ]),
                set_(at("y", "i"), "acc"),
            ]),
            loop("i", N, [
                decl("ii", I32, sub(N - 1, "i")),
                decl("acc", I32, at("y", "ii")),
                loop("j", N, [
                    when(b(">", "j", "ii"), [
                        set_("acc", sub("acc", mul(at("am", _idx("ii", "j")), at("x", "j")))),
                    ]),
                ]),
                set_(at("x", "ii"), b("/", "acc", b("|", at("am", _idx("ii", "ii")), 1))),
            ]),
            ret(at("x", 0)),
        ],
    )


def p_mvt() -> Program:
    return kernel(
        "pb_mvt",
        [("am", A(I16, NN)), ("x1", A(I32, N)), ("x2", A(I32, N)),
         ("y1", A(I32, N)), ("y2", A(I32, N))],
        [
            loop("i", N, [
                decl("acc", I32, at("x1", "i")),
                loop("j", N, [
                    set_("acc", add("acc", mul(at("am", _idx("i", "j")), at("y1", "j")))),
                ]),
                set_(at("x1", "i"), "acc"),
            ]),
            loop("i", N, [
                decl("acc", I32, at("x2", "i")),
                loop("j", N, [
                    set_("acc", add("acc", mul(at("am", _idx("j", "i")), at("y2", "j")))),
                ]),
                set_(at("x2", "i"), "acc"),
            ]),
            ret(add(at("x1", 0), at("x2", 0))),
        ],
    )


def p_nussinov() -> Program:
    """Nussinov RNA folding DP (max over pairings)."""
    return kernel(
        "pb_nussinov",
        [("seq", A(I16, N)), ("table", A(I32, NN))],
        [
            loop("ii", N, [
                decl("i", I32, sub(N - 1, "ii")),
                loop("j", N, [
                    when(b(">", "j", "i"), [
                        decl("best", I32, at("table", _idx("i", sub("j", 1)))),
                        set_("best", Call("max", (V("best"),
                                                  at("table", _idx(b("&", add("i", 1), N - 1), "j"))))),
                        decl("match", I32, Cond(
                            b("==", add(at("seq", "i"), at("seq", "j")), 3), C(1), C(0))),
                        set_("best", Call("max", (V("best"),
                                                  add(at("table", _idx(b("&", add("i", 1), N - 1),
                                                                       sub("j", 1))), "match")))),
                        set_(at("table", _idx("i", "j")), "best"),
                    ]),
                ]),
            ]),
            ret(at("table", N - 1)),
        ],
    )


def p_seidel2d() -> Program:
    return kernel(
        "pb_seidel2d",
        [("a", A(I32, NN))],
        [
            loop("t", 2, [
                loop("i", N - 2, [
                    loop("j", N - 2, [
                        decl("x", I32, _idx(add("i", 1), add("j", 1))),
                        set_(at("a", "x"),
                             b("/", add(add(add(at("a", b("&", sub("x", N), NN - 1)),
                                                at("a", sub("x", 1))),
                                            add(at("a", "x"), at("a", add("x", 1)))),
                                        at("a", b("&", add("x", N), NN - 1))), 5)),
                    ]),
                ]),
            ]),
            ret(at("a", 9)),
        ],
    )


def p_symm() -> Program:
    return kernel(
        "pb_symm",
        [("cm", A(I32, NN)), ("am", A(I16, NN)), ("bm", A(I16, NN)), ("alpha", I16)],
        [
            loop("i", N, [
                loop("j", N, [
                    decl("temp", I32, 0),
                    loop("k", N, [
                        when(b("<", "k", "i"), [
                            set_(at("cm", _idx("k", "j")),
                                 add(at("cm", _idx("k", "j")),
                                     mul("alpha", mul(at("bm", _idx("i", "j")),
                                                      at("am", _idx("i", "k")))))),
                            set_("temp", add("temp", mul(at("bm", _idx("k", "j")),
                                                         at("am", _idx("i", "k"))))),
                        ]),
                    ]),
                    set_(at("cm", _idx("i", "j")),
                         add(at("cm", _idx("i", "j")),
                             mul("alpha", add(mul(at("bm", _idx("i", "j")),
                                                  at("am", _idx("i", "i"))), "temp")))),
                ]),
            ]),
            ret(at("cm", 0)),
        ],
    )


def p_syr2k() -> Program:
    return kernel(
        "pb_syr2k",
        [("cm", A(I32, NN)), ("am", A(I16, NN)), ("bm", A(I16, NN)), ("alpha", I16)],
        [
            loop("i", N, [
                loop("j", N, [
                    when(b("<=", "j", "i"), [
                        decl("acc", I32, at("cm", _idx("i", "j"))),
                        loop("k", N, [
                            set_("acc", add("acc", mul("alpha",
                                add(mul(at("am", _idx("i", "k")), at("bm", _idx("j", "k"))),
                                    mul(at("bm", _idx("i", "k")), at("am", _idx("j", "k"))))))),
                        ]),
                        set_(at("cm", _idx("i", "j")), "acc"),
                    ]),
                ]),
            ]),
            ret(at("cm", 0)),
        ],
    )


def p_syrk() -> Program:
    return kernel(
        "pb_syrk",
        [("cm", A(I32, NN)), ("am", A(I16, NN)), ("alpha", I16), ("beta", I16)],
        [
            loop("i", N, [
                loop("j", N, [
                    when(b("<=", "j", "i"), [
                        decl("acc", I32, mul("beta", at("cm", _idx("i", "j")))),
                        loop("k", N, [
                            set_("acc", add("acc", mul("alpha",
                                mul(at("am", _idx("i", "k")), at("am", _idx("j", "k")))))),
                        ]),
                        set_(at("cm", _idx("i", "j")), "acc"),
                    ]),
                ]),
            ]),
            ret(at("cm", 0)),
        ],
    )


def p_trisolv() -> Program:
    return kernel(
        "pb_trisolv",
        [("lm", A(I32, NN)), ("x", A(I32, N)), ("bv", A(I32, N))],
        [
            loop("i", N, [
                decl("acc", I32, at("bv", "i")),
                loop("j", N, [
                    when(b("<", "j", "i"), [
                        set_("acc", sub("acc", mul(at("lm", _idx("i", "j")), at("x", "j")))),
                    ]),
                ]),
                set_(at("x", "i"), b("/", "acc", b("|", at("lm", _idx("i", "i")), 1))),
            ]),
            ret(at("x", N - 1)),
        ],
    )


def p_trmm() -> Program:
    return kernel(
        "pb_trmm",
        [("am", A(I16, NN)), ("bm", A(I32, NN)), ("alpha", I16)],
        [
            loop("i", N, [
                loop("j", N, [
                    decl("acc", I32, at("bm", _idx("i", "j"))),
                    loop("k", N, [
                        when(b(">", "k", "i"), [
                            set_("acc", add("acc", mul(at("am", _idx("k", "i")),
                                                       at("bm", _idx("k", "j"))))),
                        ]),
                    ]),
                    set_(at("bm", _idx("i", "j")), mul("alpha", "acc")),
                ]),
            ]),
            ret(at("bm", 0)),
        ],
    )


KERNELS = (
    p_2mm,
    p_3mm,
    p_adi,
    p_atax,
    p_bicg,
    p_cholesky,
    p_correlation,
    p_covariance,
    p_deriche,
    p_doitgen,
    p_durbin,
    p_fdtd2d,
    p_floyd_warshall,
    p_gemm,
    p_gemver,
    p_gesummv,
    p_gramschmidt,
    p_heat3d,
    p_jacobi1d,
    p_jacobi2d,
    p_lu,
    p_ludcmp,
    p_mvt,
    p_nussinov,
    p_seidel2d,
    p_symm,
    p_syr2k,
    p_syrk,
    p_trisolv,
    p_trmm,
)


def programs() -> list[Program]:
    """All 30 PolyBench substitute kernels."""
    return [build() for build in KERNELS]
