"""CHStone kernel substitutes (Hara et al., 2009) — 10 kernels.

CHStone is control-heavy C (codecs, soft processors, floating-point
emulation). The floating-point kernels are re-expressed as the integer
mantissa/exponent manipulations they actually perform, which preserves
their graph character (wide bitwise ops, shifts, deep branching).
"""

from __future__ import annotations

from repro.frontend.ast_ import Call, Cond, Program
from repro.suites._dsl import (
    A,
    C,
    I8,
    I16,
    I32,
    I64,
    U8,
    U32,
    V,
    add,
    at,
    b,
    decl,
    kernel,
    loop,
    mul,
    ret,
    set_,
    sub,
    when,
)


def adpcm() -> Program:
    """ADPCM encode step: predictor update with step-size table."""
    return kernel(
        "ch_adpcm",
        [("samples", A(I16, 16)), ("step_table", A(I16, 16))],
        [
            decl("pred", I32, 0),
            decl("index", I32, 0),
            decl("out", I32, 0),
            loop("i", 16, [
                decl("diff", I32, sub(at("samples", "i"), "pred")),
                decl("sign", I32, Cond(b("<", "diff", 0), C(8), C(0))),
                decl("mag", I32, Call("abs", (V("diff"),))),
                decl("step", I32, at("step_table", b("&", "index", 15))),
                decl("code", I32, b("/", mul("mag", 4), b("|", "step", 1))),
                set_("code", Call("min", (V("code"), C(7)))),
                set_("pred", add("pred", mul(Cond(b("!=", "sign", 0), C(-1), C(1)),
                                             b(">>", mul("code", "step"), 2)))),
                set_("index", Call("min", (Call("max", (add("index", sub("code", 3)), C(0))), C(15)))),
                set_("out", b("^", "out", b("|", "code", "sign"))),
            ]),
            ret("out"),
        ],
    )


def aes_cipher() -> Program:
    """AES round: SubBytes + ShiftRows-style permutation + MixColumns."""
    return kernel(
        "ch_aes",
        [("state", A(U8, 16)), ("sbox", A(U8, 64)), ("rkey", A(U8, 16))],
        [
            loop("i", 16, [
                set_(at("state", "i"), at("sbox", b("&", at("state", "i"), 63))),
            ]),
            loop("c", 4, [
                decl("s0", I32, at("state", mul("c", 4))),
                decl("s1", I32, at("state", add(mul("c", 4), 1))),
                decl("s2", I32, at("state", add(mul("c", 4), 2))),
                decl("s3", I32, at("state", add(mul("c", 4), 3))),
                decl("x0", I32, b("^", mul("s0", 2), mul("s1", 3))),
                decl("x1", I32, b("^", mul("s1", 2), mul("s2", 3))),
                set_(at("state", mul("c", 4)), b("&", b("^", "x0", b("^", "s2", "s3")), 255)),
                set_(at("state", add(mul("c", 4), 1)), b("&", b("^", "x1", b("^", "s3", "s0")), 255)),
            ]),
            decl("acc", I32, 0),
            loop("i", 16, [
                set_(at("state", "i"), b("^", at("state", "i"), at("rkey", "i"))),
                set_("acc", b("^", "acc", at("state", "i"))),
            ]),
            ret("acc"),
        ],
    )


def blowfish() -> Program:
    """Blowfish Feistel rounds with S-box substitution."""
    return kernel(
        "ch_blowfish",
        [("p_box", A(U32, 16)), ("sbox", A(U32, 64)), ("left", I32), ("right", I32)],
        [
            decl("xl", I32, V("left")),
            decl("xr", I32, V("right")),
            loop("r", 16, [
                set_("xl", b("^", "xl", at("p_box", "r"))),
                decl("a", I32, b("&", b(">>", "xl", 6), 63)),
                decl("bq", I32, b("&", "xl", 63)),
                decl("f", I32, add(at("sbox", "a"), at("sbox", "bq"))),
                set_("xr", b("^", "xr", "f")),
                decl("swap", I32, V("xl")),
                set_("xl", V("xr")),
                set_("xr", V("swap")),
            ]),
            ret(b("^", "xl", "xr")),
        ],
    )


def dfadd() -> Program:
    """Soft-float double add: unpack, align mantissas, add, renormalise."""
    return kernel(
        "ch_dfadd",
        [("a", I64), ("bv", I64)],
        [
            decl("exp_a", I32, b("&", b(">>", "a", 5), 255)),
            decl("exp_b", I32, b("&", b(">>", "bv", 5), 255)),
            decl("man_a", I64, b("|", b("&", "a", 31), 32)),
            decl("man_b", I64, b("|", b("&", "bv", 31), 32)),
            decl("shift", I32, Call("abs", (sub("exp_a", "exp_b"),))),
            set_("shift", Call("min", (V("shift"), C(6)))),
            decl("man_sum", I64, 0),
            when(b(">=", "exp_a", "exp_b"), [
                set_("man_sum", add("man_a", b(">>", "man_b", 2))),
            ], [
                set_("man_sum", add(b(">>", "man_a", 2), "man_b")),
            ]),
            decl("exp_r", I32, Call("max", (V("exp_a"), V("exp_b")))),
            when(b(">", "man_sum", 63), [
                set_("man_sum", b(">>", "man_sum", 1)),
                set_("exp_r", add("exp_r", 1)),
            ]),
            ret(b("|", b("<<", "exp_r", 5), b("&", "man_sum", 31))),
        ],
    )


def dfdiv() -> Program:
    """Soft-float divide: exponent subtract + iterative mantissa divide."""
    return kernel(
        "ch_dfdiv",
        [("a", I64), ("bv", I64)],
        [
            decl("exp_a", I32, b("&", b(">>", "a", 5), 255)),
            decl("exp_b", I32, b("&", b(">>", "bv", 5), 255)),
            decl("man_a", I64, b("|", b("&", "a", 31), 32)),
            decl("man_b", I64, b("|", b("&", "bv", 31), 32)),
            decl("quotient", I64, 0),
            decl("rem", I64, V("man_a")),
            loop("i", 8, [
                set_("quotient", b("<<", "quotient", 1)),
                when(b(">=", "rem", "man_b"), [
                    set_("rem", sub("rem", "man_b")),
                    set_("quotient", b("|", "quotient", 1)),
                ]),
                set_("rem", b("<<", "rem", 1)),
            ]),
            decl("exp_r", I32, add(sub("exp_a", "exp_b"), 127)),
            ret(b("|", b("<<", "exp_r", 5), b("&", "quotient", 31))),
        ],
    )


def dfmul() -> Program:
    """Soft-float multiply: mantissa product + exponent add."""
    return kernel(
        "ch_dfmul",
        [("a", I64), ("bv", I64)],
        [
            decl("exp_a", I32, b("&", b(">>", "a", 5), 255)),
            decl("exp_b", I32, b("&", b(">>", "bv", 5), 255)),
            decl("man_a", I64, b("|", b("&", "a", 31), 32)),
            decl("man_b", I64, b("|", b("&", "bv", 31), 32)),
            decl("product", I64, mul("man_a", "man_b")),
            decl("exp_r", I32, sub(add("exp_a", "exp_b"), 127)),
            when(b(">", "product", C(2047)), [
                set_("product", b(">>", "product", 1)),
                set_("exp_r", add("exp_r", 1)),
            ]),
            ret(b("|", b("<<", "exp_r", 5), b("&", b(">>", "product", 5), 31))),
        ],
    )


def dfsin() -> Program:
    """Soft-float sine via 4-term Taylor series in fixed point."""
    return kernel(
        "ch_dfsin",
        [("x", I32)],
        [
            decl("x2", I64, b(">>", mul("x", "x"), 12)),
            decl("term", I64, V("x")),
            decl("acc", I64, V("x")),
            decl("sign", I32, C(-1)),
            loop("k", 4, [
                decl("denom", I32, add(mul(mul(add("k", 1), 2), add(mul(add("k", 1), 2), 1)), 0)),
                set_("term", b("/", b(">>", mul("term", "x2"), 12), b("|", "denom", 1))),
                set_("acc", add("acc", mul("sign", "term"))),
                set_("sign", mul("sign", C(-1))),
            ]),
            ret(V("acc")),
        ],
        ret_type=I32,
    )


def gsm() -> Program:
    """GSM LPC analysis: autocorrelation + reflection coefficients."""
    return kernel(
        "ch_gsm",
        [("samples", A(I16, 32)), ("lar", A(I16, 8))],
        [
            decl("energy", I32, 0),
            loop("i", 32, [
                set_("energy", add("energy", b(">>", mul(at("samples", "i"), at("samples", "i")), 4))),
            ]),
            loop("k", 8, [
                decl("corr", I32, 0),
                loop("i", 24, [
                    set_("corr", add("corr", b(">>", mul(
                        at("samples", "i"),
                        at("samples", b("&", add("i", add("k", 1)), 31))), 4))),
                ]),
                set_(at("lar", "k"), b("/", "corr", b("|", b(">>", "energy", 6), 1))),
            ]),
            ret(at("lar", 0)),
        ],
    )


def mips() -> Program:
    """Single-cycle MIPS interpreter step over a tiny instruction memory."""
    return kernel(
        "ch_mips",
        [("imem", A(U32, 16)), ("regs", A(I32, 8))],
        [
            decl("pc", I32, 0),
            decl("steps", I32, 0),
            loop("cycle", 16, [
                decl("inst", I32, at("imem", b("&", "pc", 15))),
                decl("op", I32, b("&", b(">>", "inst", 12), 7)),
                decl("rs", I32, b("&", b(">>", "inst", 9), 7)),
                decl("rt", I32, b("&", b(">>", "inst", 6), 7)),
                decl("rd", I32, b("&", b(">>", "inst", 3), 7)),
                decl("va", I32, at("regs", "rs")),
                decl("vb", I32, at("regs", "rt")),
                when(b("==", "op", 0), [set_(at("regs", "rd"), add("va", "vb"))],
                     [when(b("==", "op", 1), [set_(at("regs", "rd"), sub("va", "vb"))],
                           [when(b("==", "op", 2), [set_(at("regs", "rd"), b("&", "va", "vb"))],
                                 [when(b("==", "op", 3), [set_(at("regs", "rd"), b("|", "va", "vb"))],
                                       [set_(at("regs", "rd"), Cond(b("<", "va", "vb"), C(1), C(0)))])])])]),
                set_("pc", add("pc", 1)),
                set_("steps", add("steps", 1)),
            ]),
            ret(add("steps", at("regs", 2))),
        ],
    )


def motion() -> Program:
    """MPEG motion vector decoding: sum of absolute differences search."""
    return kernel(
        "ch_motion",
        [("ref", A(U8, 64)), ("cur", A(U8, 16)), ("best_out", A(I32, 2))],
        [
            decl("best", I32, C(1 << 20)),
            decl("best_dx", I32, 0),
            loop("dx", 4, [
                decl("sad", I32, 0),
                loop("i", 4, [
                    loop("j", 4, [
                        decl("diff", I32, sub(
                            at("cur", add(mul("i", 4), "j")),
                            at("ref", b("&", add(add(mul("i", 8), "j"), "dx"), 63)))),
                        set_("sad", add("sad", Call("abs", (V("diff"),)))),
                    ]),
                ]),
                when(b("<", "sad", "best"), [
                    set_("best", V("sad")),
                    set_("best_dx", V("dx")),
                ]),
            ]),
            set_(at("best_out", 0), "best"),
            set_(at("best_out", 1), "best_dx"),
            ret("best"),
        ],
    )


KERNELS = (
    adpcm,
    aes_cipher,
    blowfish,
    dfadd,
    dfdiv,
    dfmul,
    dfsin,
    gsm,
    mips,
    motion,
)


def programs() -> list[Program]:
    """All 10 CHStone substitute kernels."""
    return [build() for build in KERNELS]
