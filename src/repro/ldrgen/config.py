"""Generator configuration."""

from __future__ import annotations

from dataclasses import dataclass, field


def _default_op_weights() -> dict[str, float]:
    return {
        "+": 0.22,
        "-": 0.14,
        "*": 0.16,
        "/": 0.03,
        "%": 0.02,
        "&": 0.09,
        "|": 0.08,
        "^": 0.08,
        "<<": 0.05,
        ">>": 0.05,
        "<": 0.02,
        ">": 0.02,
        "==": 0.02,
        "min": 0.01,
        "max": 0.01,
    }


@dataclass
class GeneratorConfig:
    """Knobs of the synthetic program generator.

    The defaults produce graphs in the 10-120 node range, matching the
    per-graph scale of the paper's 40k-program benchmark (>660k nodes
    over ~37k graphs).
    """

    mode: str = "dfg"  # "dfg" (straight-line) or "cdfg" (loops/branches)
    min_statements: int = 3
    max_statements: int = 10
    max_expr_depth: int = 3
    scalar_params: tuple[int, int] = (2, 5)
    array_params: tuple[int, int] = (0, 2)
    array_length_choices: tuple[int, ...] = (8, 16, 32, 64, 128)
    width_choices: tuple[int, ...] = (8, 16, 32, 64)
    width_weights: tuple[float, ...] = (0.15, 0.25, 0.45, 0.15)
    op_weights: dict[str, float] = field(default_factory=_default_op_weights)
    p_unary: float = 0.08
    p_ternary: float = 0.05
    p_array_load: float = 0.25
    p_array_store: float = 0.15
    # CDFG-only knobs
    max_loops: int = 2
    max_loop_nest: int = 2
    trip_count_choices: tuple[int, ...] = (4, 8, 16, 32, 64)
    p_if: float = 0.35
    p_else: float = 0.6
    loop_body_statements: tuple[int, int] = (2, 4)
    # HLS directive sampling (per generated loop). Non-zero defaults keep
    # the directive feature columns populated in the training
    # distribution so predictors can steer directive-based DSE.
    p_unroll_directive: float = 0.25
    p_pipeline_directive: float = 0.15
    unroll_directive_choices: tuple[int, ...] = (2, 4, 8, 16)

    def __post_init__(self) -> None:
        if self.mode not in ("dfg", "cdfg"):
            raise ValueError(f"mode must be 'dfg' or 'cdfg', got {self.mode!r}")
        if self.min_statements < 1 or self.max_statements < self.min_statements:
            raise ValueError("invalid statement-count range")
        if self.max_expr_depth < 1:
            raise ValueError("max_expr_depth must be >= 1")
        if len(self.width_choices) != len(self.width_weights):
            raise ValueError("width_choices and width_weights must align")

    @classmethod
    def dfg(cls, **overrides) -> "GeneratorConfig":
        return cls(mode="dfg", **overrides)

    @classmethod
    def cdfg(cls, **overrides) -> "GeneratorConfig":
        return cls(mode="cdfg", **overrides)

    @classmethod
    def cdfg_scaled(cls, target_nodes: int, **overrides) -> "GeneratorConfig":
        """A CDFG config sized to yield roughly ``target_nodes`` graph nodes.

        The scale knob for large-graph benchmarks (partitioned inference,
        memory bounds): one generated program carries the whole node
        budget instead of the default 10-120-node range. Empirically the
        CDFG extraction yields ~1.2 nodes per statement, so the
        statement range is pinned at ``target_nodes / 1.2`` and the loop
        count scales along to keep control flow proportionate. Generated
        size is stochastic — callers needing a hard floor should
        overshoot ``target_nodes`` by ~10%.
        """
        if target_nodes < 1:
            raise ValueError("target_nodes must be >= 1")
        statements = max(int(target_nodes / 1.2), 1)
        overrides.setdefault("min_statements", statements)
        overrides.setdefault("max_statements", statements)
        overrides.setdefault("max_loops", max(statements // 26, 1))
        return cls(mode="cdfg", **overrides)
