"""Synthetic C program generation (the ldrgen substitute).

Generates random-yet-synthesizable mini-C kernels in two families,
mirroring the paper's benchmark split:

- **DFG mode** — straight-line basic blocks (no control flow), lowering
  to acyclic data-flow graphs;
- **CDFG mode** — programs with counted loops and branches, lowering to
  control-data-flow graphs with back edges.

Generation is liveness-driven in spirit: every computed value is folded
into the return expression, so dead-code elimination cannot shrink the
program and node counts stay faithful to the source.
"""

from repro.ldrgen.config import GeneratorConfig
from repro.ldrgen.generator import (
    ProgramGenerator,
    generate_program,
    generate_sample,
    sample_seed,
)

__all__ = [
    "GeneratorConfig",
    "ProgramGenerator",
    "generate_program",
    "generate_sample",
    "sample_seed",
]
