"""The program generator driver."""

from __future__ import annotations

import numpy as np

from repro.frontend.ast_ import (
    ArrayRef,
    Assign,
    BinOp,
    Decl,
    For,
    Function,
    If,
    IntConst,
    Program,
    Return,
    Stmt,
    Var,
)
from repro.frontend.ctypes_ import CArray, CInt
from repro.ldrgen.config import GeneratorConfig
from repro.ldrgen.expressions import ExpressionSampler


def sample_seed(base_seed: int, index: int) -> np.random.SeedSequence:
    """Independent deterministic rng stream for sample ``index`` of a
    dataset keyed by ``base_seed``.

    ``SeedSequence`` spawn keys guarantee stream independence, so sample
    ``i`` comes out bitwise-identical whether it is generated alone, in
    order, or on any worker of a multiprocessing pool — the seeding
    contract :mod:`repro.dataset.pipeline` builds on.
    """
    if index < 0:
        raise ValueError(f"sample index must be non-negative, got {index}")
    return np.random.SeedSequence(entropy=base_seed, spawn_key=(index,))


class ProgramGenerator:
    """Seeded generator producing one :class:`Program` per call."""

    def __init__(self, config: GeneratorConfig, seed: int = 0):
        self.config = config
        self.rng = np.random.default_rng(seed)
        self._program_counter = 0

    @classmethod
    def at_index(
        cls, config: GeneratorConfig, base_seed: int, index: int
    ) -> "ProgramGenerator":
        """Generator positioned to emit exactly sample ``index`` of the
        per-sample-seeded stream (0-based; program names stay 1-based)."""
        generator = cls(config, seed=0)
        generator.rng = np.random.default_rng(sample_seed(base_seed, index))
        generator._program_counter = index
        return generator

    # -- public API --------------------------------------------------------
    def generate(self) -> Program:
        self._program_counter += 1
        name = f"{self.config.mode}_prog_{self._program_counter:06d}"
        function = (
            self._generate_dfg_function(name)
            if self.config.mode == "dfg"
            else self._generate_cdfg_function(name)
        )
        return Program(name=name, functions=[function])

    # -- shared pieces -------------------------------------------------------
    def _sample_signature(
        self,
    ) -> tuple[list[tuple[str, CInt | CArray]], dict[str, CInt], dict[str, tuple[CInt, int]]]:
        config, rng = self.config, self.rng
        params: list[tuple[str, CInt | CArray]] = []
        scalars: dict[str, CInt] = {}
        arrays: dict[str, tuple[CInt, int]] = {}
        n_scalars = int(rng.integers(config.scalar_params[0], config.scalar_params[1] + 1))
        for i in range(n_scalars):
            width = int(rng.choice(config.width_choices, p=config.width_weights))
            ctype = CInt(width)
            name = f"p{i}"
            params.append((name, ctype))
            scalars[name] = ctype
        n_arrays = int(rng.integers(config.array_params[0], config.array_params[1] + 1))
        for i in range(n_arrays):
            width = int(rng.choice(config.width_choices, p=config.width_weights))
            length = int(rng.choice(config.array_length_choices))
            name = f"arr{i}"
            params.append((name, CArray(CInt(width), length)))
            arrays[name] = (CInt(width), length)
        return params, scalars, arrays

    def _result_width(self, scalars: dict[str, CInt]) -> CInt:
        widths = [t.width for t in scalars.values()] or [32]
        return CInt(max(32, max(widths)))

    def _liveness_return(self, locals_: list[str]) -> Return:
        """Fold every computed local into the return value so nothing is
        dead — the ldrgen liveness guarantee."""
        if not locals_:
            return Return(IntConst(0))
        expr = Var(locals_[0])
        for name in locals_[1:]:
            expr = BinOp("^", expr, Var(name))
        return Return(expr)

    # -- DFG mode -------------------------------------------------------------
    def _generate_dfg_function(self, name: str) -> Function:
        config, rng = self.config, self.rng
        params, scalars, arrays = self._sample_signature()
        sampler = ExpressionSampler(config, rng, scalars, arrays)
        body: list[Stmt] = []
        locals_: list[str] = []
        n_statements = int(
            rng.integers(config.min_statements, config.max_statements + 1)
        )
        for i in range(n_statements):
            roll = rng.random()
            if arrays and roll < config.p_array_store and locals_:
                array = str(rng.choice(sorted(arrays)))
                _, length = arrays[array]
                body.append(
                    Assign(
                        ArrayRef(array, sampler._index_expr(length, [])),
                        sampler.expression(config.max_expr_depth, []),
                    )
                )
                continue
            width = int(rng.choice(config.width_choices, p=config.width_weights))
            var = f"v{i}"
            body.append(
                Decl(var, CInt(width), sampler.expression(config.max_expr_depth, []))
            )
            scalars[var] = CInt(width)
            locals_.append(var)
        body.append(self._liveness_return(locals_))
        return Function(
            name=name,
            params=params,
            ret_type=self._result_width(scalars),
            body=body,
        )

    # -- CDFG mode --------------------------------------------------------------
    def _generate_cdfg_function(self, name: str) -> Function:
        config, rng = self.config, self.rng
        params, scalars, arrays = self._sample_signature()
        sampler = ExpressionSampler(config, rng, scalars, arrays)
        body: list[Stmt] = []
        locals_: list[str] = []
        # Accumulator variables that loops will update.
        n_accumulators = int(rng.integers(1, 4))
        for i in range(n_accumulators):
            width = int(rng.choice(config.width_choices, p=config.width_weights))
            var = f"acc{i}"
            body.append(Decl(var, CInt(width), IntConst(0, CInt(width))))
            scalars[var] = CInt(width)
            locals_.append(var)

        n_loops = int(rng.integers(1, config.max_loops + 1))
        loop_counter = [0]
        body.extend(
            self._generate_loop(sampler, scalars, arrays, locals_, 1, loop_counter)
            for _ in range(n_loops)
        )
        # A little straight-line tail keeps DFG content in the mix.
        n_tail = int(rng.integers(0, 3))
        for i in range(n_tail):
            width = int(rng.choice(config.width_choices, p=config.width_weights))
            var = f"t{i}"
            body.append(
                Decl(var, CInt(width), sampler.expression(config.max_expr_depth, []))
            )
            scalars[var] = CInt(width)
            locals_.append(var)
        body.append(self._liveness_return(locals_))
        return Function(
            name=name,
            params=params,
            ret_type=self._result_width(scalars),
            body=body,
        )

    def _generate_loop(
        self,
        sampler: ExpressionSampler,
        scalars: dict[str, CInt],
        arrays: dict[str, tuple[CInt, int]],
        locals_: list[str],
        nest: int,
        loop_counter: list[int],
    ) -> For:
        config, rng = self.config, self.rng
        loop_counter[0] += 1
        loop_var = f"i{loop_counter[0]}"
        trip = int(rng.choice(config.trip_count_choices))
        body: list[Stmt] = []
        index_pool = [loop_var]
        # Loop variable participates in expressions inside the body.
        scalars_in_loop = dict(scalars)
        scalars_in_loop[loop_var] = CInt(32)
        inner_sampler = ExpressionSampler(config, rng, scalars_in_loop, arrays)
        lo, hi = config.loop_body_statements
        n_statements = int(rng.integers(lo, hi + 1))
        for _ in range(n_statements):
            roll = rng.random()
            if nest < config.max_loop_nest and roll < 0.2:
                body.append(
                    self._generate_loop(
                        inner_sampler, scalars_in_loop, arrays, locals_, nest + 1,
                        loop_counter,
                    )
                )
            elif roll < 0.2 + config.p_if:
                target = str(rng.choice(locals_))
                then_body: list[Stmt] = [
                    Assign(
                        Var(target),
                        inner_sampler.expression(config.max_expr_depth - 1, index_pool),
                    )
                ]
                else_body: list[Stmt] = []
                if rng.random() < config.p_else:
                    else_body = [
                        Assign(
                            Var(target),
                            inner_sampler.expression(
                                config.max_expr_depth - 1, index_pool
                            ),
                        )
                    ]
                body.append(
                    If(
                        inner_sampler.comparison(config.max_expr_depth - 1, index_pool),
                        then_body,
                        else_body,
                    )
                )
            elif arrays and roll < 0.2 + config.p_if + config.p_array_store:
                array = str(rng.choice(sorted(arrays)))
                _, length = arrays[array]
                body.append(
                    Assign(
                        ArrayRef(array, inner_sampler._index_expr(length, index_pool)),
                        inner_sampler.expression(config.max_expr_depth - 1, index_pool),
                    )
                )
            else:
                target = str(rng.choice(locals_))
                update = inner_sampler.expression(
                    config.max_expr_depth - 1, index_pool
                )
                body.append(
                    Assign(Var(target), BinOp("+", Var(target), update))
                )
        unroll, pipeline = self._sample_directives(trip)
        return For(loop_var, 0, trip, 1, body, unroll=unroll, pipeline=pipeline)

    def _sample_directives(self, trip: int) -> tuple[int | None, bool]:
        """Random HLS directives so the training distribution exercises
        the directive feature columns the DSE predictor relies on."""
        config, rng = self.config, self.rng
        unroll: int | None = None
        if config.p_unroll_directive > 0 and rng.random() < config.p_unroll_directive:
            options = [f for f in config.unroll_directive_choices if f <= trip]
            if options:
                unroll = int(rng.choice(options))
        pipeline = bool(
            config.p_pipeline_directive > 0
            and rng.random() < config.p_pipeline_directive
        )
        return unroll, pipeline


def generate_program(config: GeneratorConfig, seed: int) -> Program:
    """One-shot convenience wrapper."""
    return ProgramGenerator(config, seed=seed).generate()


def generate_sample(config: GeneratorConfig, base_seed: int, index: int) -> Program:
    """Sample ``index`` of the dataset keyed by ``base_seed``.

    Order- and worker-independent: the dataset builders and the parallel
    pipeline both call this, which is what makes ``workers=N`` output
    bitwise-identical to a serial build.
    """
    return ProgramGenerator.at_index(config, base_seed, index).generate()
