"""Random expression trees over the variables currently in scope."""

from __future__ import annotations

import numpy as np

from repro.frontend.ast_ import ArrayRef, BinOp, Call, Cond, Expr, IntConst, UnOp, Var
from repro.frontend.ctypes_ import CInt
from repro.ldrgen.config import GeneratorConfig

_COMPARISONS = ("<", "<=", ">", ">=", "==", "!=")


class ExpressionSampler:
    """Draws well-formed expressions; guards divisions against zero.

    ``scalars`` maps in-scope scalar names to their types, ``arrays``
    maps array names to (element type, length).
    """

    def __init__(
        self,
        config: GeneratorConfig,
        rng: np.random.Generator,
        scalars: dict[str, CInt],
        arrays: dict[str, tuple[CInt, int]],
    ):
        self.config = config
        self.rng = rng
        self.scalars = scalars
        self.arrays = arrays
        ops = [(k, v) for k, v in config.op_weights.items() if v > 0]
        self._op_names = [k for k, _ in ops]
        weights = np.array([v for _, v in ops])
        self._op_probs = weights / weights.sum()

    # -- leaves -----------------------------------------------------------
    def _constant(self) -> IntConst:
        width = int(
            self.rng.choice(self.config.width_choices, p=self.config.width_weights)
        )
        value = int(self.rng.integers(1, min(2 ** (width - 1), 2**15)))
        return IntConst(value, CInt(width))

    def _variable(self) -> Expr:
        names = sorted(self.scalars)
        return Var(str(self.rng.choice(names)))

    def _array_load(self, index_pool: list[str]) -> Expr:
        names = sorted(self.arrays)
        name = str(self.rng.choice(names))
        _, length = self.arrays[name]
        return ArrayRef(name, self._index_expr(length, index_pool))

    def _index_expr(self, length: int, index_pool: list[str]) -> Expr:
        """An index guaranteed in-bounds: ``(expr) & (length - 1)`` for
        power-of-two lengths, else a plain constant."""
        if index_pool and self.rng.random() < 0.7:
            base: Expr = Var(str(self.rng.choice(index_pool)))
            if self.rng.random() < 0.3:
                base = BinOp("+", base, IntConst(int(self.rng.integers(0, 4))))
        else:
            base = IntConst(int(self.rng.integers(0, length)))
        if length & (length - 1) == 0:  # power of two: cheap masking guard
            return BinOp("&", base, IntConst(length - 1))
        return BinOp("%", base, IntConst(length))

    def leaf(self, index_pool: list[str]) -> Expr:
        roll = self.rng.random()
        if self.arrays and roll < self.config.p_array_load:
            return self._array_load(index_pool)
        if self.scalars and roll < 0.85:
            return self._variable()
        return self._constant()

    # -- interior ----------------------------------------------------------
    def expression(self, depth: int, index_pool: list[str]) -> Expr:
        """A random expression of at most ``depth`` operator levels."""
        if depth <= 0 or (depth < self.config.max_expr_depth and self.rng.random() < 0.3):
            return self.leaf(index_pool)
        roll = self.rng.random()
        if roll < self.config.p_unary:
            op = str(self.rng.choice(["-", "~"]))
            return UnOp(op, self.expression(depth - 1, index_pool))
        if roll < self.config.p_unary + self.config.p_ternary:
            return Cond(
                self.comparison(depth - 1, index_pool),
                self.expression(depth - 1, index_pool),
                self.expression(depth - 1, index_pool),
            )
        op = str(self.rng.choice(self._op_names, p=self._op_probs))
        if op in ("min", "max"):
            return Call(
                op,
                (
                    self.expression(depth - 1, index_pool),
                    self.expression(depth - 1, index_pool),
                ),
            )
        lhs = self.expression(depth - 1, index_pool)
        rhs = self.expression(depth - 1, index_pool)
        if op in ("/", "%"):
            # Guard against division by zero: force the low bit on.
            rhs = BinOp("|", rhs, IntConst(1))
        if op in ("<<", ">>"):
            # Bounded shift amount keeps results meaningful.
            rhs = IntConst(int(self.rng.integers(1, 8)))
        return BinOp(op, lhs, rhs)

    def comparison(self, depth: int, index_pool: list[str]) -> Expr:
        op = str(self.rng.choice(_COMPARISONS))
        return BinOp(
            op,
            self.expression(depth, index_pool),
            self.expression(depth, index_pool),
        )
