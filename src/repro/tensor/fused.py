"""Fused dense kernels for the matmul-bound hot path.

PR 2 made message passing scatter-lean; what remains on the relational
stack is dense-transform cost: every relation, every layer, every step
used to pay a separate ``Linear`` call (and a separate autograd node for
the matmul, the bias add and the activation). The kernels here collapse
those chains:

- :func:`addmm` — ``x @ W + b`` as ONE tape node with one backward
  closure (adopted by :class:`repro.nn.Linear`);
- :func:`linear_act` — linear + activation fused, saving the
  pre-activation tensor and a closure (the MLP hot path);
- :func:`relation_matmul` — a stacked ``[R, D_in, D_out]`` relation
  weight applied to all nodes in one batched matmul, ``[R, N, D_out]``
  out, single-einsum forward/backward;
- :func:`relation_gather_matmul` — the gather-by-relation "block" path:
  each relation transforms only its gathered edge rows, so the cost
  scales with the edge count instead of ``R * N``.

:class:`repro.nn.relation_linear.RelationLinear` picks between the two
relation kernels from ``(R, E, N)``; ``use_fused_relations(False)``
forces the relational GNN layers back onto the per-relation loop — the
differential-testing and benchmarking baseline.
"""

from __future__ import annotations

import contextlib

import numpy as np

from repro.tensor.profiling import profiled
from repro.tensor.scatter import SegmentPlan, plans_enabled
from repro.tensor.tensor import Tensor, stable_sigmoid

_FUSED_RELATIONS_ENABLED = True

#: The per-relation GEMM of the block path, kept as a module attribute so
#: regression tests can spy on exactly which row blocks get transformed.
_block_gemm = np.matmul


def fused_relations_enabled() -> bool:
    """Whether relational layers run the batched/fused relation kernels."""
    return _FUSED_RELATIONS_ENABLED


@contextlib.contextmanager
def use_fused_relations(enabled: bool = True):
    """Force the fused relation path on/off inside the block.

    ``use_fused_relations(False)`` restores the per-relation ``Linear``
    loop inside RGCN/GGNN/FiLM — the baseline that parity tests and
    ``benchmarks/bench_relations.py`` measure against.
    """
    global _FUSED_RELATIONS_ENABLED
    previous = _FUSED_RELATIONS_ENABLED
    _FUSED_RELATIONS_ENABLED = bool(enabled)
    try:
        yield
    finally:
        _FUSED_RELATIONS_ENABLED = previous


@profiled("addmm")
def addmm(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """``x @ weight (+ bias)`` as a single autograd node.

    ``weight`` is ``[D_in, D_out]`` (the :class:`repro.nn.Linear`
    layout); ``x`` is ``[..., D_in]``. One output buffer (the bias is
    added in place) and one backward closure replace the two-node
    matmul-then-add chain.
    """
    data = np.matmul(x.data, weight.data)
    if bias is not None:
        data += bias.data
    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(np.matmul(grad, weight.data.T))
        if weight.requires_grad:
            a = x.data.reshape(-1, x.data.shape[-1])
            g = grad.reshape(-1, grad.shape[-1])
            weight._accumulate(a.T @ g)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.reshape(-1, grad.shape[-1]).sum(axis=0))

    return Tensor._make(data, parents, backward)


@profiled("linear_act")
def linear_act(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    activation: str = "relu",
) -> Tensor:
    """Fused ``activation(x @ weight + bias)`` — one node, one closure.

    Supports ``relu``, ``tanh`` and ``sigmoid`` (activations whose local
    derivative is recoverable from the output or a boolean mask, so the
    pre-activation buffer can be dropped after the forward).
    """
    if activation not in ("relu", "tanh", "sigmoid"):
        raise ValueError(f"unsupported fused activation '{activation}'")
    pre = np.matmul(x.data, weight.data)
    if bias is not None:
        pre += bias.data
    if activation == "relu":
        out = np.maximum(pre, 0.0)
        local = pre > 0
    elif activation == "tanh":
        out = np.tanh(pre)
        local = None
    else:
        out = stable_sigmoid(pre)
        local = None
    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        if activation == "relu":
            g = grad * local
        elif activation == "tanh":
            g = grad * (1.0 - out * out)
        else:
            g = grad * out * (1.0 - out)
        if x.requires_grad:
            x._accumulate(np.matmul(g, weight.data.T))
        if weight.requires_grad:
            a = x.data.reshape(-1, x.data.shape[-1])
            weight._accumulate(a.T @ g.reshape(-1, g.shape[-1]))
        if bias is not None and bias.requires_grad:
            bias._accumulate(g.reshape(-1, g.shape[-1]).sum(axis=0))

    return Tensor._make(out, parents, backward)


@profiled("relation_matmul")
def relation_matmul(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """All-relations transform ``[N, D] x [R, D, O] -> [R, N, O]``.

    One batched matmul replaces R separate ``Linear`` calls; the backward
    is likewise two batched contractions (a tensordot for ``dx``, a
    broadcast matmul for ``dW``).
    """
    if x.data.ndim != 2 or weight.data.ndim != 3:
        raise ValueError(
            f"relation_matmul expects [N, D] x [R, D, O], "
            f"got {x.shape} x {weight.shape}"
        )
    data = np.matmul(x.data, weight.data)
    if bias is not None:
        data += bias.data[:, None, :]
    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(np.tensordot(grad, weight.data, axes=((0, 2), (0, 2))))
        if weight.requires_grad:
            weight._accumulate(np.matmul(x.data.T, grad))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=1))

    return Tensor._make(data, parents, backward)


@profiled("relation_gather_matmul")
def relation_gather_matmul(
    x: Tensor,
    weight: Tensor,
    index: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    plan: SegmentPlan | None = None,
    bias: Tensor | None = None,
) -> Tensor:
    """Per-relation transform of *gathered* rows only (the block path).

    ``index`` is a relation-partitioned row-id vector (relation ``r``
    occupies ``index[starts[r]:ends[r]]``); the output row ``e`` is
    ``x[index[e]] @ weight[r_e] (+ bias[r_e])``. Only gathered source
    rows are transformed — a relation touching 10 edges costs a
    ``[10, D] @ [D, O]`` GEMM, never ``[N, D] @ [D, O]`` — so the total
    dense cost is ``E * D * O`` instead of ``R * N * D * O``.

    ``plan`` (a :class:`SegmentPlan` over ``index``) accelerates the
    scatter-add of the input gradient, exactly like ``gather_rows``.
    """
    xd, wd = x.data, weight.data
    num_rows = len(index)
    dtype = np.result_type(xd.dtype, wd.dtype)
    out = np.empty((num_rows, wd.shape[2]), dtype=dtype)
    blocks = [
        (r, slice(int(s), int(e)))
        for r, (s, e) in enumerate(zip(starts, ends))
        if e > s
    ]
    for r, run in blocks:
        out[run] = _block_gemm(xd[index[run]], wd[r])
        if bias is not None:
            out[run] += bias.data[r]
    parents = (x, weight) if bias is None else (x, weight, bias)
    planned = plan is not None and plans_enabled()

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            gw = np.zeros_like(wd)
            for r, run in blocks:
                gw[r] = xd[index[run]].T @ grad[run]
            weight._accumulate(gw)
        if bias is not None and bias.requires_grad:
            gb = np.zeros_like(bias.data)
            for r, run in blocks:
                gb[r] = grad[run].sum(axis=0)
            bias._accumulate(gb)
        if x.requires_grad:
            gathered = np.empty((num_rows, xd.shape[1]), dtype=grad.dtype)
            for r, run in blocks:
                gathered[run] = grad[run] @ wd[r].T
            if planned:
                x._accumulate(plan.segment_sum(gathered))
            else:
                gx = np.zeros_like(xd)
                np.add.at(gx, index, gathered)
                x._accumulate(gx)

    return Tensor._make(out, parents, backward)
