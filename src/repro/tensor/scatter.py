"""Scatter/gather primitives — the substrate of message passing.

All GNN aggregation in :mod:`repro.gnn` reduces to these operations on a
flat ``[num_edges, dim]`` message matrix and an integer target-index
vector. Gradients flow through every primitive, so layers composed from
them need no hand-written backward passes.

Two kernel families back every operation:

- the **fallback** path uses unbuffered ``np.add.at`` / ``ufunc.at``
  calls, which accept any index vector but process one element at a
  time;
- the **planned** path takes a :class:`SegmentPlan` — one stable argsort
  of the index vector plus the segment boundaries of the sorted copy —
  and reduces each contiguous run with ``np.add.reduceat`` /
  ``np.maximum.reduceat``, which is typically an order of magnitude
  faster on the wide message matrices message passing produces.

A plan is profitable exactly when the same index vector is reduced many
times (every layer of every forward/backward over a batch), which is why
:class:`~repro.gnn.message_passing.GraphContext` builds plans once per
batch topology and threads them through the layers. Both paths produce
the same values and gradients; ``use_plans(False)`` forces the fallback
kernels for benchmarking and differential testing.

Backend selection
-----------------
*How* a planned kernel executes is pluggable. The registry in
:mod:`repro.tensor.backends` maps names to :class:`ScatterBackend`
implementations; each backend builds :class:`SegmentPlan` (sub)classes
whose ``segment_sum`` / ``segment_reduce`` run its kernels, so every
scatter op below and the ``gather_rows`` backward execute through the
selected backend without further dispatch. Registered today:

- ``"csr"`` (default) — one scipy CSR scatter matrix per plan, segment
  max/min via sorted ``reduceat`` (the PR 2 engine, this module's
  :class:`SegmentPlan`);
- ``"numpy-reduceat"`` — portable sorted-``reduceat`` kernels only, no
  scipy required;
- ``"bucketed"`` — degree-bucketed rows cut into nonzero-balanced
  shards executed on a thread pool; the backend for skew-heavy graphs
  on multi-core hosts.

Select with ``repro.tensor.use_backend("bucketed")`` (scoped),
``set_backend`` (process-wide) or the ``REPRO_SCATTER_BACKEND``
environment variable; unknown names fail fast with the valid set.
Plans are cached per backend on ``GraphContext``/``Batch``, so
switching backends mid-session never reuses another backend's kernels.
``use_plans(False)`` still forces the unbuffered fallback regardless of
the selected backend — the common differential baseline.

Index validation happens once per plan (at construction). The planless
path validates per call unless the caller passes ``validated=True``
(e.g. a serving boundary that already ran
:func:`repro.graph.validation.validate_inference_graph`).
"""

from __future__ import annotations

import contextlib

import numpy as np

try:  # pragma: no cover - exercised implicitly by every planned kernel
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - container always ships scipy
    _sparse = None

from repro.tensor.profiling import profiled
from repro.tensor.tensor import Tensor

_PLAN_KERNELS_ENABLED = True


def plans_enabled() -> bool:
    """Whether planned (sorted ``reduceat``) kernels are currently in use."""
    return _PLAN_KERNELS_ENABLED


@contextlib.contextmanager
def use_plans(enabled: bool = True):
    """Force planned kernels on/off inside the block (benchmarks, tests)."""
    global _PLAN_KERNELS_ENABLED
    previous = _PLAN_KERNELS_ENABLED
    _PLAN_KERNELS_ENABLED = bool(enabled)
    try:
        yield
    finally:
        _PLAN_KERNELS_ENABLED = previous


def _check_index(
    index: np.ndarray, size: int, dim_size: int, validated: bool = False
) -> np.ndarray:
    index = np.asarray(index)
    if index.ndim != 1:
        raise ValueError(f"index must be 1-D, got shape {index.shape}")
    if len(index) != size:
        raise ValueError(f"index length {len(index)} != source rows {size}")
    if not validated and len(index) and (index.min() < 0 or index.max() >= dim_size):
        raise ValueError("index out of range for dim_size")
    return index.astype(np.int64)


class SegmentPlan:
    """Precomputed sorted-segment layout for one (index, dim_size) pair.

    Pays one stable argsort + one ``bincount`` up front. Segment *sums*
    (the dominant reduction: scatter_sum/mean/softmax and every gather
    backward) then run as one CSR sparse-matrix product ``S @ values``
    where ``S[seg, row] = 1`` — the CSR structure is assembled directly
    from the argsort, with no COO conversion. Segment max/min (no matmul
    form) gather into sorted order and run a single ``ufunc.reduceat``
    over contiguous runs; the same path backs sums when scipy is absent.
    Empty segments are handled by reducing only the non-empty runs and
    leaving the fill value in place.

    ``assume_sorted=True`` skips the argsort for index vectors that are
    already non-decreasing (e.g. per-relation slices of an edge array
    lexsorted by (relation, dst)).
    """

    __slots__ = (
        "index",
        "dim_size",
        "size",
        "order",
        "starts",
        "nonempty",
        "counts",
        "_indptr",
        "_csr",
    )

    def __init__(
        self,
        index: np.ndarray,
        dim_size: int,
        *,
        validate: bool = True,
        assume_sorted: bool = False,
    ):
        index = np.asarray(index, dtype=np.int64).reshape(-1)
        dim_size = int(dim_size)
        if validate and len(index) and (index.min() < 0 or index.max() >= dim_size):
            raise ValueError("index out of range for dim_size")
        self.index = index
        self.dim_size = dim_size
        self.size = len(index)
        #: Permutation into sorted order; ``None`` when already sorted.
        self.order = None if assume_sorted else np.argsort(index, kind="stable")
        #: Rows per segment, cached once so scatter_mean/std and degree
        #: scalers stop recomputing ``np.bincount`` every layer every step.
        self.counts = np.bincount(index, minlength=dim_size).astype(np.float64)
        int_counts = self.counts.astype(np.int64)
        ends = np.cumsum(int_counts)
        self.nonempty = np.flatnonzero(int_counts)
        self.starts = (ends - int_counts)[self.nonempty]
        self._indptr = np.concatenate([[0], ends])
        self._csr = None

    def sort(self, values: np.ndarray) -> np.ndarray:
        """Rows of ``values`` permuted so equal-index rows are contiguous."""
        return values if self.order is None else values[self.order]

    def _scatter_matrix(self):
        """Lazily built ``[dim_size, size]`` CSR summing rows per segment.

        Row ``seg`` has ones in the source positions mapping to ``seg`` —
        exactly the sorted order already computed, so the CSR arrays are
        assembled without any further sorting.
        """
        if self._csr is None and _sparse is not None:
            cols = self.order if self.order is not None else np.arange(self.size)
            # float32 ones: exact for both float32 and float64 operands, and
            # keeps float32 values from being silently promoted to float64.
            self._csr = _sparse.csr_matrix(
                (np.ones(self.size, dtype=np.float32), cols, self._indptr),
                shape=(self.dim_size, self.size),
            )
        return self._csr

    def segment_reduce(self, values: np.ndarray, ufunc, fill: float) -> np.ndarray:
        """``ufunc``-reduce rows of ``values`` per segment over sorted runs."""
        out = np.full((self.dim_size,) + values.shape[1:], fill, dtype=values.dtype)
        if self.size:
            out[self.nonempty] = ufunc.reduceat(self.sort(values), self.starts, axis=0)
        return out

    def segment_sum(self, values: np.ndarray) -> np.ndarray:
        if values.ndim <= 2:
            matrix = self._scatter_matrix()
            if matrix is not None:
                return np.asarray(matrix @ values)
        return self.segment_reduce(values, np.add, 0.0)

    def __repr__(self) -> str:
        return f"SegmentPlan(size={self.size}, dim_size={self.dim_size})"


def _resolve_index(
    index: np.ndarray | None,
    plan: SegmentPlan | None,
    size: int,
    dim_size: int,
    validated: bool,
) -> np.ndarray:
    """Index vector to use, validated exactly once across both paths."""
    if plan is None:
        if index is None:
            raise ValueError("either index or plan must be provided")
        return _check_index(index, size, dim_size, validated)
    if plan.size != size:
        raise ValueError(f"plan covers {plan.size} rows, source has {size}")
    if plan.dim_size != dim_size:
        raise ValueError(f"plan dim_size {plan.dim_size} != requested {dim_size}")
    _spot_check_plan_index(index, plan)
    return plan.index


def _spot_check_plan_index(index, plan: SegmentPlan) -> None:
    """O(1) guard that a caller-supplied index belongs to ``plan``.

    A full comparison would cost the O(E) scan plans exist to avoid, so
    only the endpoints are checked — enough to catch the realistic
    mistake of pairing an op with the wrong precomputed plan.
    """
    if index is None or index is plan.index or not len(plan.index):
        return
    index = np.asarray(index)
    if index[0] != plan.index[0] or index[-1] != plan.index[-1]:
        raise ValueError("plan was built for a different index vector")


def segment_counts(index: np.ndarray, dim_size: int) -> np.ndarray:
    """Number of source rows mapping to each of ``dim_size`` segments."""
    index = np.asarray(index, dtype=np.int64)
    return np.bincount(index, minlength=dim_size).astype(np.float64)


@profiled("gather_rows")
def gather_rows(
    x: Tensor, index: np.ndarray, plan: SegmentPlan | None = None
) -> Tensor:
    """Select rows ``x[index]`` with gradient scatter-added back.

    ``plan`` must segment ``index`` into ``len(x)`` rows; it accelerates
    the backward scatter-add (the forward is a plain fancy index).
    """
    index = np.asarray(index, dtype=np.int64)
    if plan is not None:
        if plan.size != len(index) or plan.dim_size != len(x.data):
            raise ValueError(
                f"plan ({plan.size} rows into {plan.dim_size}) does not match "
                f"gather of {len(index)} rows from {len(x.data)}"
            )
        _spot_check_plan_index(index, plan)
    data = x.data[index]
    # The kernel family is pinned at forward time so a backward() running
    # after a use_plans() block still matches its forward.
    planned = plan is not None and _PLAN_KERNELS_ENABLED

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        if planned:
            x._accumulate(plan.segment_sum(grad))
        else:
            out = np.zeros_like(x.data)
            np.add.at(out, index, grad)
            x._accumulate(out)

    return Tensor._make(data, (x,), backward)


@profiled("scatter_sum")
def scatter_sum(
    src: Tensor,
    index: np.ndarray | None,
    dim_size: int,
    plan: SegmentPlan | None = None,
    validated: bool = False,
) -> Tensor:
    """Sum rows of ``src`` into ``dim_size`` output rows keyed by ``index``."""
    index = _resolve_index(index, plan, len(src.data), dim_size, validated)
    if plan is not None and _PLAN_KERNELS_ENABLED:
        data = plan.segment_sum(src.data)
    else:
        data = np.zeros((dim_size,) + src.shape[1:], dtype=src.data.dtype)
        np.add.at(data, index, src.data)

    def backward(grad: np.ndarray) -> None:
        if src.requires_grad:
            src._accumulate(grad[index])

    return Tensor._make(data, (src,), backward)


def scatter_mean(
    src: Tensor,
    index: np.ndarray | None,
    dim_size: int,
    plan: SegmentPlan | None = None,
    validated: bool = False,
) -> Tensor:
    """Mean-aggregate rows of ``src`` per segment (empty segments give 0)."""
    total = scatter_sum(src, index, dim_size, plan=plan, validated=validated)
    raw = plan.counts if plan is not None else segment_counts(index, dim_size)
    counts = np.maximum(raw, 1.0).reshape((dim_size,) + (1,) * (src.ndim - 1))
    # Divide in the source dtype so float32 inputs stay float32.
    return total / Tensor(counts.astype(src.data.dtype, copy=False))


@profiled("scatter_extremum")
def _scatter_extremum(
    src: Tensor,
    index: np.ndarray | None,
    dim_size: int,
    mode: str,
    plan: SegmentPlan | None = None,
    validated: bool = False,
) -> Tensor:
    index = _resolve_index(index, plan, len(src.data), dim_size, validated)
    ufunc = np.maximum if mode == "max" else np.minimum
    planned = plan is not None and _PLAN_KERNELS_ENABLED
    if planned:
        # Empty segments never appear in plan.nonempty, so the 0 fill
        # survives — the same PyG convention as the fallback below.
        data = plan.segment_reduce(src.data, ufunc, 0.0)
    else:
        fill = -np.inf if mode == "max" else np.inf
        data = np.full((dim_size,) + src.shape[1:], fill, dtype=src.data.dtype)
        ufunc.at(data, index, src.data)
        # Empty segments stay at +-inf which would poison downstream maths;
        # PyG uses 0 for them, and so do we.
        empty = segment_counts(index, dim_size) == 0
        data[empty] = 0.0

    def backward(grad: np.ndarray) -> None:
        if not src.requires_grad:
            return
        winners = (src.data == data[index]).astype(src.data.dtype)
        if planned:
            ties = plan.segment_sum(winners)
        else:
            ties = np.zeros_like(data)
            np.add.at(ties, index, winners)
        ties = np.maximum(ties, 1.0)
        src._accumulate(grad[index] * winners / ties[index])

    return Tensor._make(data, (src,), backward)


def scatter_max(
    src: Tensor,
    index: np.ndarray | None,
    dim_size: int,
    plan: SegmentPlan | None = None,
    validated: bool = False,
) -> Tensor:
    """Per-segment elementwise max (0 for empty segments)."""
    return _scatter_extremum(src, index, dim_size, "max", plan, validated)


def scatter_min(
    src: Tensor,
    index: np.ndarray | None,
    dim_size: int,
    plan: SegmentPlan | None = None,
    validated: bool = False,
) -> Tensor:
    """Per-segment elementwise min (0 for empty segments)."""
    return _scatter_extremum(src, index, dim_size, "min", plan, validated)


def scatter_std(
    src: Tensor,
    index: np.ndarray | None,
    dim_size: int,
    eps: float = 1e-5,
    plan: SegmentPlan | None = None,
    validated: bool = False,
) -> Tensor:
    """Per-segment standard deviation, composed from differentiable parts.

    Uses ``sqrt(relu(E[x^2] - E[x]^2) + eps)`` which matches the PNA
    reference implementation and stays differentiable at zero variance.
    """
    mean = scatter_mean(src, index, dim_size, plan=plan, validated=validated)
    mean_sq = scatter_mean(src * src, index, dim_size, plan=plan, validated=validated)
    var = (mean_sq - mean * mean).relu()
    return (var + eps).sqrt()


def scatter_softmax(
    src: Tensor,
    index: np.ndarray | None,
    dim_size: int,
    plan: SegmentPlan | None = None,
    validated: bool = False,
) -> Tensor:
    """Segment-wise softmax over rows of ``src`` (used by GAT attention).

    The per-segment max is detached before subtraction — a standard
    stabilisation that leaves gradients identical because softmax is
    shift-invariant.
    """
    if plan is None:
        index = _check_index(index, len(src.data), dim_size, validated)
    else:
        index = _resolve_index(index, plan, len(src.data), dim_size, validated)
    seg_max = _scatter_extremum(
        src.detach(), index, dim_size, "max", plan, validated=True
    )
    shifted = src - gather_rows(seg_max, index, plan=plan)
    numer = shifted.exp()
    denom = gather_rows(
        scatter_sum(numer, index, dim_size, plan=plan, validated=True),
        index,
        plan=plan,
    )
    return numer / (denom + 1e-16)
