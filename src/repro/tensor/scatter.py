"""Scatter/gather primitives — the substrate of message passing.

All GNN aggregation in :mod:`repro.gnn` reduces to these five operations on
a flat ``[num_edges, dim]`` message matrix and an integer target-index
vector. Gradients flow through every primitive, so layers composed from
them need no hand-written backward passes.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.tensor import Tensor


def _check_index(index: np.ndarray, size: int, dim_size: int) -> np.ndarray:
    index = np.asarray(index)
    if index.ndim != 1:
        raise ValueError(f"index must be 1-D, got shape {index.shape}")
    if len(index) != size:
        raise ValueError(f"index length {len(index)} != source rows {size}")
    if len(index) and (index.min() < 0 or index.max() >= dim_size):
        raise ValueError("index out of range for dim_size")
    return index.astype(np.int64)


def segment_counts(index: np.ndarray, dim_size: int) -> np.ndarray:
    """Number of source rows mapping to each of ``dim_size`` segments."""
    index = np.asarray(index, dtype=np.int64)
    return np.bincount(index, minlength=dim_size).astype(np.float64)


def gather_rows(x: Tensor, index: np.ndarray) -> Tensor:
    """Select rows ``x[index]`` with gradient scatter-added back."""
    index = np.asarray(index, dtype=np.int64)
    data = x.data[index]

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            out = np.zeros_like(x.data)
            np.add.at(out, index, grad)
            x._accumulate(out)

    return Tensor._make(data, (x,), backward)


def scatter_sum(src: Tensor, index: np.ndarray, dim_size: int) -> Tensor:
    """Sum rows of ``src`` into ``dim_size`` output rows keyed by ``index``."""
    index = _check_index(index, len(src.data), dim_size)
    data = np.zeros((dim_size,) + src.shape[1:], dtype=src.data.dtype)
    np.add.at(data, index, src.data)

    def backward(grad: np.ndarray) -> None:
        if src.requires_grad:
            src._accumulate(grad[index])

    return Tensor._make(data, (src,), backward)


def scatter_mean(src: Tensor, index: np.ndarray, dim_size: int) -> Tensor:
    """Mean-aggregate rows of ``src`` per segment (empty segments give 0)."""
    total = scatter_sum(src, index, dim_size)
    counts = np.maximum(segment_counts(index, dim_size), 1.0)
    counts = counts.reshape((dim_size,) + (1,) * (src.ndim - 1))
    return total / Tensor(counts)


def _scatter_extremum(
    src: Tensor, index: np.ndarray, dim_size: int, mode: str
) -> Tensor:
    index = _check_index(index, len(src.data), dim_size)
    fill = -np.inf if mode == "max" else np.inf
    data = np.full((dim_size,) + src.shape[1:], fill, dtype=src.data.dtype)
    ufunc = np.maximum if mode == "max" else np.minimum
    ufunc.at(data, index, src.data)
    # Empty segments stay at +-inf which would poison downstream maths;
    # PyG uses 0 for them, and so do we.
    empty = segment_counts(index, dim_size) == 0
    data[empty] = 0.0

    def backward(grad: np.ndarray) -> None:
        if not src.requires_grad:
            return
        winners = (src.data == data[index]).astype(src.data.dtype)
        ties = np.zeros_like(data)
        np.add.at(ties, index, winners)
        ties = np.maximum(ties, 1.0)
        src._accumulate(grad[index] * winners / ties[index])

    return Tensor._make(data, (src,), backward)


def scatter_max(src: Tensor, index: np.ndarray, dim_size: int) -> Tensor:
    """Per-segment elementwise max (0 for empty segments)."""
    return _scatter_extremum(src, index, dim_size, "max")


def scatter_min(src: Tensor, index: np.ndarray, dim_size: int) -> Tensor:
    """Per-segment elementwise min (0 for empty segments)."""
    return _scatter_extremum(src, index, dim_size, "min")


def scatter_std(
    src: Tensor, index: np.ndarray, dim_size: int, eps: float = 1e-5
) -> Tensor:
    """Per-segment standard deviation, composed from differentiable parts.

    Uses ``sqrt(relu(E[x^2] - E[x]^2) + eps)`` which matches the PNA
    reference implementation and stays differentiable at zero variance.
    """
    mean = scatter_mean(src, index, dim_size)
    mean_sq = scatter_mean(src * src, index, dim_size)
    var = (mean_sq - mean * mean).relu()
    return (var + eps).sqrt()


def scatter_softmax(src: Tensor, index: np.ndarray, dim_size: int) -> Tensor:
    """Segment-wise softmax over rows of ``src`` (used by GAT attention).

    The per-segment max is detached before subtraction — a standard
    stabilisation that leaves gradients identical because softmax is
    shift-invariant.
    """
    index = np.asarray(index, dtype=np.int64)
    seg_max = _scatter_extremum(src.detach(), index, dim_size, "max")
    shifted = src - gather_rows(seg_max, index)
    numer = shifted.exp()
    denom = gather_rows(scatter_sum(numer, index, dim_size), index)
    return numer / (denom + 1e-16)
