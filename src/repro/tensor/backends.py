"""Pluggable scatter/SpMM kernel backends.

:mod:`repro.tensor.scatter` defines *what* the message-passing
primitives compute; this module owns *how* the planned kernels execute.
A :class:`ScatterBackend` supplies two things:

- :meth:`ScatterBackend.build_plan` — the factory behind every
  :class:`~repro.tensor.scatter.SegmentPlan`; a backend may return a
  plan subclass whose ``segment_sum`` / ``segment_reduce`` run its own
  kernels (all six scatter ops and the ``gather_rows`` backward execute
  through the plan, so one override covers the whole op surface);
- :meth:`ScatterBackend.sparse_operator` — the fused
  gather+weight+scatter SpMM operator (``out = S @ X`` with its adjoint)
  that :meth:`~repro.gnn.message_passing.GraphContext.propagate_gcn` and
  :class:`~repro.gnn.message_passing.RelationFusion` build their cached
  propagation operators from. ``None`` means "no fused operator" and the
  caller composes gather / multiply / scatter through plans instead.

Three backends are registered out of the box:

``"csr"`` (default)
    The PR 2 engine: one scipy CSR scatter matrix per plan, segment
    max/min via sorted ``ufunc.reduceat``. Fast, single-threaded.

``"numpy-reduceat"``
    Portable fallback: every reduction runs the sorted-``reduceat``
    kernels, no scipy anywhere. The baseline the other backends are
    differentially tested against (alongside ``use_plans(False)``).

``"bucketed"``
    Degree-bucketed execution per the ``spmm_accel.cu`` row-binning
    strategy: CSR rows are binned by power-of-two degree so equal-shape
    rows are adjacent, then the binned matrix is cut into
    **nonzero-balanced** shards (a skew-heavy graph's hub rows land in
    their own shards instead of serialising a whole block) that execute
    concurrently on a thread pool — scipy's CSR product releases the
    GIL, so shards scale with cores. Without scipy each bucket executes
    as a padded dense reshaped segment reduction. Results are
    bitwise-deterministic in the worker count: shard cuts snap to row
    boundaries, so every output row is reduced in the same nonzero
    order regardless of scheduling.

Selection flows through :func:`use_backend` (scoped),
:func:`set_backend` (process-wide) or the ``REPRO_SCATTER_BACKEND``
environment variable (read at import, unknown names fail fast with the
valid set). ``REPRO_SCATTER_WORKERS`` caps the bucketed thread pool
(default: CPU count, capped at 8). The registry is the seam future
numba/Cython/GPU backends plug into: subclass :class:`ScatterBackend`,
call :func:`register_backend`.
"""

from __future__ import annotations

import contextlib
import os
from concurrent.futures import ThreadPoolExecutor

import numpy as np

try:  # pragma: no cover - exercised implicitly by every planned kernel
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - container always ships scipy
    _sparse = None

from repro.tensor.profiling import profiled
from repro.tensor.scatter import SegmentPlan

__all__ = [
    "BucketedBackend",
    "BucketedPlan",
    "BucketedSpMM",
    "CsrBackend",
    "ReduceatBackend",
    "ReduceatPlan",
    "ScatterBackend",
    "active_backend",
    "available_backends",
    "build_plan",
    "get_backend",
    "register_backend",
    "scatter_workers",
    "set_backend",
    "use_backend",
]


def _parse_workers(raw: str | None) -> int:
    if raw is None:
        return max(1, min(os.cpu_count() or 1, 8))
    try:
        workers = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_SCATTER_WORKERS must be a positive integer, got {raw!r}"
        ) from None
    if workers < 1:
        raise ValueError(f"REPRO_SCATTER_WORKERS must be >= 1, got {workers}")
    return workers


#: Worker threads available to sharded backends (import-time policy).
_WORKERS = _parse_workers(os.environ.get("REPRO_SCATTER_WORKERS"))
_POOL: ThreadPoolExecutor | None = None


def scatter_workers() -> int:
    """Worker threads sharded backends may use (``REPRO_SCATTER_WORKERS``)."""
    return _WORKERS


def _pool() -> ThreadPoolExecutor:
    """The shared kernel thread pool, created on first parallel apply."""
    global _POOL
    if _POOL is None:
        _POOL = ThreadPoolExecutor(
            max_workers=_WORKERS, thread_name_prefix="repro-scatter"
        )
    return _POOL


# --------------------------------------------------------------------------
# The bucketed SpMM kernel
# --------------------------------------------------------------------------


class BucketedSpMM:
    """``out = S @ X`` for a fixed sparse ``S``, degree-bucketed and sharded.

    ``S`` is given in row-sorted layout (``indptr`` over ``shape[0]``
    rows, ``indices`` into ``X``'s rows, optional per-entry ``weights``).
    Construction bins the rows by power-of-two degree (so same-shape rows
    sit adjacent in one permuted CSR matrix) and cuts the binned nonzero
    stream into up to ``workers`` nonzero-balanced shards at row
    boundaries — a hub row heavier than the per-shard budget gets a
    shard of its own instead of serialising a whole block, which is the
    balance skew-heavy graphs need.

    :meth:`apply` runs the shards concurrently when more than one worker
    is configured (scipy's CSR kernels drop the GIL). Every output row
    reduces in one sequential pass inside exactly one shard, so the
    result is bitwise-identical for any worker count. Without scipy,
    each bucket executes as a padded dense gather + reshaped segment
    reduction.
    """

    __slots__ = (
        "shape",
        "perm",
        "indptr",
        "indices",
        "data",
        "shards",
        "bucket_widths",
        "_dense_buckets",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray | None,
        shape: tuple[int, int],
        *,
        workers: int | None = None,
    ):
        num_rows, _ = shape
        self.shape = (int(shape[0]), int(shape[1]))
        counts = np.diff(indptr)
        nnz = int(indptr[-1])
        if data is None:
            # float32 ones: exact for float32 and float64 operands alike.
            data = np.ones(nnz, dtype=np.float32)

        # -- degree binning: rows ordered by ceil-pow2 bucket ------------
        nonempty = np.flatnonzero(counts)
        degree = counts[nonempty]
        exponent = np.zeros(len(nonempty), dtype=np.int64)
        if len(nonempty):
            exponent = np.ceil(np.log2(degree)).astype(np.int64)
        bucket_order = np.argsort(exponent, kind="stable")
        self.perm = nonempty[bucket_order]
        self.bucket_widths = (1 << exponent[bucket_order]).astype(np.int64)

        # Permuted CSR assembled with one vectorised run-gather.
        lengths = counts[self.perm]
        ends = np.cumsum(lengths)
        row_starts = indptr[:-1][self.perm]
        flat = np.arange(nnz, dtype=np.int64)
        if nnz:
            flat += np.repeat(row_starts - (ends - lengths), lengths)
        self.indptr = np.concatenate([[0], ends]).astype(np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)[flat]
        self.data = np.asarray(data)[flat]

        # -- nonzero-balanced shard boundaries (may split heavy rows) ----
        workers = _WORKERS if workers is None else max(1, int(workers))
        self.shards = self._cut_shards(min(workers, max(1, nnz)))
        self._dense_buckets = None

    def _cut_shards(self, num_shards: int) -> list:
        """[(row_lo, row_hi, csr_block)] with ~equal nonzeros per shard.

        Boundaries snap to the row boundary nearest each nonzero-count
        target, so no row is ever split: every output row reduces in one
        sequential pass and the result is bitwise-identical for any
        worker count. A hub row heavier than the target simply becomes
        its own shard — the nonzero-balanced split skew-heavy graphs
        need.
        """
        nnz = int(self.indptr[-1])
        num_rows = len(self.perm)
        targets = np.linspace(0, nnz, num_shards + 1)[1:-1]
        above = np.searchsorted(self.indptr, targets, side="left")
        below = np.maximum(above - 1, 0)
        snap_down = targets - self.indptr[below] <= self.indptr[above] - targets
        boundary_rows = np.where(snap_down, below, above)
        rows = np.unique(np.concatenate([[0], boundary_rows, [num_rows]]))
        shards = []
        for row_lo, row_hi in zip(rows[:-1], rows[1:]):
            row_lo, row_hi = int(row_lo), int(row_hi)
            lo, hi = int(self.indptr[row_lo]), int(self.indptr[row_hi])
            block = None
            if _sparse is not None:
                block = _sparse.csr_matrix(
                    (
                        self.data[lo:hi],
                        self.indices[lo:hi],
                        self.indptr[row_lo : row_hi + 1] - lo,
                    ),
                    shape=(row_hi - row_lo, self.shape[1]),
                )
            shards.append((row_lo, row_hi, block))
        return shards

    # -- dense fallback (no scipy): padded reshaped segment reduction ----
    def _dense_plan(self) -> list:
        if self._dense_buckets is None:
            buckets = []
            boundaries = np.flatnonzero(np.diff(self.bucket_widths)) + 1
            pad_col, num_rows = self.shape[1], len(self.perm)
            for lo, hi in zip(
                np.concatenate([[0], boundaries]),
                np.concatenate([boundaries, [num_rows]]),
            ):
                if hi <= lo:
                    continue
                width = int(self.bucket_widths[lo])
                offsets = self.indptr[lo:hi, None] + np.arange(width)[None, :]
                valid = offsets < self.indptr[lo + 1 : hi + 1, None]
                safe = np.minimum(offsets, max(int(self.indptr[-1]) - 1, 0))
                cols = np.where(valid, self.indices[safe], pad_col)
                weights = np.where(valid, self.data[safe], 0.0)
                buckets.append((int(lo), int(hi), cols, weights))
            self._dense_buckets = buckets
        return self._dense_buckets

    @profiled("spmm.bucketed")
    def apply(self, values: np.ndarray) -> np.ndarray:
        """``S @ values`` (``values`` is ``[shape[1], ...]``, 1- or 2-D)."""
        dtype = np.result_type(self.data.dtype, values.dtype)
        out = np.zeros((self.shape[0],) + values.shape[1:], dtype=dtype)
        if not len(self.perm):
            return out
        if _sparse is None:
            return self._apply_dense(values, out)
        shards = self.shards
        if len(shards) > 1:
            buffers = list(
                _pool().map(lambda shard: shard[2] @ values, shards)
            )
        else:
            buffers = [shards[0][2] @ values]
        if len(shards) == 1:
            out[self.perm] = buffers[0]
            return out
        gathered = np.empty((len(self.perm),) + values.shape[1:], dtype=dtype)
        for (row_lo, row_hi, _), buffer in zip(shards, buffers):
            gathered[row_lo:row_hi] = buffer
        out[self.perm] = gathered
        return out

    @profiled("spmm.bucketed_dense")
    def _apply_dense(self, values: np.ndarray, out: np.ndarray) -> np.ndarray:
        padded = np.concatenate(
            [values, np.zeros((1,) + values.shape[1:], dtype=values.dtype)]
        )
        for lo, hi, cols, weights in self._dense_plan():
            block = padded[cols] * (weights[..., None] if values.ndim == 2 else weights)
            out[self.perm[lo:hi]] = block.sum(axis=1)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BucketedSpMM(shape={self.shape}, nnz={int(self.indptr[-1])}, "
            f"shards={len(self.shards)})"
        )


def _sorted_csr_from_coo(
    rows: np.ndarray, cols: np.ndarray, weights: np.ndarray | None, num_rows: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """(indptr, indices, data) of the COO triplets in row-sorted layout."""
    rows = np.asarray(rows, dtype=np.int64).reshape(-1)
    cols = np.asarray(cols, dtype=np.int64).reshape(-1)
    order = np.argsort(rows, kind="stable")
    counts = np.bincount(rows, minlength=num_rows)
    indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    data = None if weights is None else np.asarray(weights).reshape(-1)[order]
    return indptr, cols[order], data


class _SparseOperator:
    """A fused SpMM operator with a lazily built adjoint.

    ``apply`` computes ``S @ X``; ``apply_t`` computes ``S.T @ G`` (the
    backward of ``apply``). The adjoint kernel is built on first use so
    inference-only paths never pay for it.
    """

    __slots__ = ("_forward", "_adjoint", "_build_adjoint")

    def __init__(self, forward, build_adjoint):
        self._forward = forward
        self._adjoint = None
        self._build_adjoint = build_adjoint

    def apply(self, values: np.ndarray) -> np.ndarray:
        return self._forward(values)

    def apply_t(self, grad: np.ndarray) -> np.ndarray:
        if self._adjoint is None:
            self._adjoint = self._build_adjoint()
        return self._adjoint(grad)


# --------------------------------------------------------------------------
# Backend-specific plan classes
# --------------------------------------------------------------------------


class ReduceatPlan(SegmentPlan):
    """Plan whose segment sums always run sorted ``np.add.reduceat``.

    The portable engine: no scipy anywhere, every reduction is a sorted
    gather plus one ``ufunc.reduceat`` over contiguous runs.
    """

    __slots__ = ()

    def segment_sum(self, values: np.ndarray) -> np.ndarray:
        return self.segment_reduce(values, np.add, 0.0)


class BucketedPlan(SegmentPlan):
    """Plan whose segment sums run the :class:`BucketedSpMM` kernel.

    Segment max/min keep the sorted-``reduceat`` kernels (no matmul
    form); sums — the dominant reduction — execute degree-bucketed and
    sharded. ``>2``-dimensional values fall back to ``reduceat`` exactly
    like the base plan's no-scipy path.
    """

    __slots__ = ("_bucketed", "_workers")

    def __init__(self, *args, workers: int | None = None, **kwargs):
        super().__init__(*args, **kwargs)
        self._bucketed = None
        self._workers = workers

    @property
    def spmm(self) -> BucketedSpMM:
        """The plan's bucketed scatter operator, built once."""
        if self._bucketed is None:
            cols = self.order if self.order is not None else np.arange(self.size)
            self._bucketed = BucketedSpMM(
                self._indptr, cols, None, (self.dim_size, self.size),
                workers=self._workers,
            )
        return self._bucketed

    def segment_sum(self, values: np.ndarray) -> np.ndarray:
        if values.ndim <= 2:
            return self.spmm.apply(values)
        return self.segment_reduce(values, np.add, 0.0)


# --------------------------------------------------------------------------
# Backends and the registry
# --------------------------------------------------------------------------


class ScatterBackend:
    """One named implementation of the planned scatter/SpMM kernels.

    Subclasses override :meth:`build_plan` (return a
    :class:`~repro.tensor.scatter.SegmentPlan` subclass routing the six
    scatter ops and the gather backward onto their kernels) and
    :meth:`sparse_operator` (return a fused SpMM operator, or ``None``
    to make callers compose gather/multiply/scatter through plans).
    """

    #: Registry key; also what ``REPRO_SCATTER_BACKEND`` matches against.
    name = "abstract"

    def build_plan(
        self,
        index: np.ndarray,
        dim_size: int,
        *,
        validate: bool = True,
        assume_sorted: bool = False,
    ) -> SegmentPlan:
        raise NotImplementedError

    def sparse_operator(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        weights: np.ndarray | None,
        shape: tuple[int, int],
    ) -> _SparseOperator | None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class CsrBackend(ScatterBackend):
    """The PR 2 scipy-CSR engine (default)."""

    name = "csr"

    def build_plan(self, index, dim_size, *, validate=True, assume_sorted=False):
        return SegmentPlan(
            index, dim_size, validate=validate, assume_sorted=assume_sorted
        )

    def sparse_operator(self, rows, cols, weights, shape):
        if _sparse is None:
            return None
        matrix = _sparse.csr_matrix((weights, (rows, cols)), shape=shape)

        def build_adjoint():
            transpose = matrix.T.tocsr()
            return lambda grad: np.asarray(transpose @ grad)

        return _SparseOperator(
            lambda values: np.asarray(matrix @ values), build_adjoint
        )


class ReduceatBackend(ScatterBackend):
    """Portable sorted-``reduceat`` engine; no scipy, no fused operators."""

    name = "numpy-reduceat"

    def build_plan(self, index, dim_size, *, validate=True, assume_sorted=False):
        return ReduceatPlan(
            index, dim_size, validate=validate, assume_sorted=assume_sorted
        )


class BucketedBackend(ScatterBackend):
    """Degree-bucketed, nonzero-balanced, thread-sharded engine."""

    name = "bucketed"

    def __init__(self, workers: int | None = None):
        #: ``None`` follows the process-wide ``REPRO_SCATTER_WORKERS``.
        self.workers = workers

    def build_plan(self, index, dim_size, *, validate=True, assume_sorted=False):
        return BucketedPlan(
            index,
            dim_size,
            validate=validate,
            assume_sorted=assume_sorted,
            workers=self.workers,
        )

    def sparse_operator(self, rows, cols, weights, shape):
        rows = np.asarray(rows, dtype=np.int64).reshape(-1)
        cols = np.asarray(cols, dtype=np.int64).reshape(-1)
        forward = BucketedSpMM(
            *_sorted_csr_from_coo(rows, cols, weights, shape[0]),
            shape,
            workers=self.workers,
        )

        def build_adjoint():
            adjoint = BucketedSpMM(
                *_sorted_csr_from_coo(cols, rows, weights, shape[1]),
                (shape[1], shape[0]),
                workers=self.workers,
            )
            return adjoint.apply

        return _SparseOperator(forward.apply, build_adjoint)


_REGISTRY: dict[str, ScatterBackend] = {}
_ACTIVE: ScatterBackend


def register_backend(backend: ScatterBackend, *, replace: bool = False) -> None:
    """Add ``backend`` to the registry (``replace=True`` to overwrite)."""
    if not replace and backend.name in _REGISTRY:
        raise ValueError(f"backend {backend.name!r} is already registered")
    _REGISTRY[backend.name] = backend


def available_backends() -> tuple[str, ...]:
    """Registered backend names, registration order."""
    return tuple(_REGISTRY)


def get_backend(name: str) -> ScatterBackend:
    """The registered backend called ``name`` (unknown names fail fast)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scatter backend {name!r}; "
            f"valid backends: {', '.join(sorted(_REGISTRY))}"
        ) from None


def active_backend() -> ScatterBackend:
    """The backend new plans and operators are built with."""
    return _ACTIVE


def set_backend(name: str) -> ScatterBackend:
    """Select the process-wide scatter backend; returns it."""
    global _ACTIVE
    _ACTIVE = get_backend(name)
    return _ACTIVE


@contextlib.contextmanager
def use_backend(name: str):
    """Run the block under backend ``name``; restores the previous one.

    Plans already built (and cached on contexts/batches) by other
    backends are untouched — caches key by backend name, so switching
    mid-session never cross-contaminates.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = get_backend(name)
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous


def build_plan(
    index: np.ndarray,
    dim_size: int,
    *,
    validate: bool = True,
    assume_sorted: bool = False,
) -> SegmentPlan:
    """A scatter plan for ``(index, dim_size)`` from the active backend."""
    return _ACTIVE.build_plan(
        index, dim_size, validate=validate, assume_sorted=assume_sorted
    )


register_backend(CsrBackend())
register_backend(ReduceatBackend())
register_backend(BucketedBackend())
_ACTIVE = _REGISTRY["csr"]

#: ``REPRO_SCATTER_BACKEND`` selects the starting backend; unknown names
#: fail fast at import with the valid set (the CI matrix relies on this).
_env_backend = os.environ.get("REPRO_SCATTER_BACKEND")
if _env_backend:
    set_backend(_env_backend)
