"""Functional operations on :class:`~repro.tensor.Tensor`.

These complement the methods on ``Tensor`` with multi-input ops
(``concat``, ``stack``, ``where``, ``maximum``) and the stable softmax
family that attention layers rely on.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.tensor.tensor import Tensor, _unbroadcast


def exp(x: Tensor) -> Tensor:
    return x.exp()


def log(x: Tensor) -> Tensor:
    return x.log()


def sqrt(x: Tensor) -> Tensor:
    return x.sqrt()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def relu(x: Tensor) -> Tensor:
    return x.relu()


def abs_(x: Tensor) -> Tensor:
    return x.abs()


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    data = np.where(x.data > 0, x.data, negative_slope * x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * np.where(x.data > 0, 1.0, negative_slope))

    return Tensor._make(data, (x,), backward)


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    exp_part = alpha * (np.exp(np.minimum(x.data, 0.0)) - 1.0)
    data = np.where(x.data > 0, x.data, exp_part)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            local = np.where(x.data > 0, 1.0, exp_part + alpha)
            x._accumulate(grad * local)

    return Tensor._make(data, (x,), backward)


def maximum(a: Tensor, b: Tensor) -> Tensor:
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    data = np.maximum(a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        a_wins = (a.data >= b.data).astype(data.dtype)
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad * a_wins, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad * (1.0 - a_wins), b.shape))

    return Tensor._make(data, (a, b), backward)


def minimum(a: Tensor, b: Tensor) -> Tensor:
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    data = np.minimum(a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        a_wins = (a.data <= b.data).astype(data.dtype)
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad * a_wins, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad * (1.0 - a_wins), b.shape))

    return Tensor._make(data, (a, b), backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select; ``condition`` is a plain boolean array."""
    condition = np.asarray(condition, dtype=bool)
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    data = np.where(condition, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad * condition, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad * ~condition, b.shape))

    return Tensor._make(data, (a, b), backward)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

    return Tensor._make(data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slices = np.moveaxis(grad, axis, 0)
        for tensor, piece in zip(tensors, slices):
            if tensor.requires_grad:
                tensor._accumulate(piece)

    return Tensor._make(data, tuple(tensors), backward)


def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Numerically stable ``log(sum(exp(x)))`` built from primitives."""
    shift = Tensor(np.max(x.data, axis=axis, keepdims=True))
    result = (x - shift).exp().sum(axis=axis, keepdims=True).log() + shift
    if not keepdims:
        result = result.squeeze(axis if axis >= 0 else x.ndim + axis)
    return result


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - Tensor(np.max(x.data, axis=axis, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    return x - logsumexp(x, axis=axis, keepdims=True)


def dropout(
    x: Tensor, p: float, training: bool, rng: np.random.Generator
) -> Tensor:
    """Inverted dropout: identity in eval mode, rescaled mask in training."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    mask = (rng.random(x.shape) >= p).astype(x.data.dtype) / (1.0 - p)
    return x * Tensor(mask)
