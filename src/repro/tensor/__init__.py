"""A small reverse-mode automatic-differentiation engine on numpy.

This package substitutes for PyTorch in the original paper's stack. It
provides a :class:`Tensor` wrapping a ``numpy.ndarray`` together with a
dynamically built computation graph, a functional namespace mirroring the
subset of ``torch`` that the GNN zoo needs, the scatter/gather
primitives that message passing is built from, and fused dense kernels
(:mod:`repro.tensor.fused`) for the matmul-bound relational hot path.

Precision policy
----------------
The engine computes in **float32 by default**: tensors built from python
scalars, lists or integer data, every parameter initialiser, dataset
feature encodings and the per-batch topology tables all adopt
:func:`get_default_dtype` (float32 unless changed). Numpy arrays carrying
an explicit floating dtype are respected, so float64 gradchecks keep
working untouched. To opt a whole code path back into float64::

    from repro.tensor import default_dtype
    with default_dtype(np.float64):
        model = GraphRegressor(...)   # float64 parameters
        ...                           # contexts/targets built here are f64

or call :func:`set_default_dtype` once at process start. Mixed-precision
interactions follow numpy promotion: float64 inputs flowing into a
float32 model compute in float64 from that op onward, so pin the policy
*before* building data and parameters.
"""

from repro.tensor.tensor import (
    Tensor,
    default_dtype,
    get_default_dtype,
    is_grad_enabled,
    no_grad,
    set_default_dtype,
)
from repro.tensor.ops import (
    abs_,
    concat,
    dropout,
    elu,
    exp,
    leaky_relu,
    log,
    log_softmax,
    logsumexp,
    maximum,
    minimum,
    relu,
    sigmoid,
    softmax,
    sqrt,
    stack,
    tanh,
    where,
)
from repro.tensor.scatter import (
    SegmentPlan,
    gather_rows,
    plans_enabled,
    scatter_max,
    scatter_mean,
    scatter_min,
    scatter_softmax,
    scatter_std,
    scatter_sum,
    segment_counts,
    use_plans,
)
from repro.tensor.backends import (
    ScatterBackend,
    active_backend,
    available_backends,
    build_plan,
    get_backend,
    register_backend,
    scatter_workers,
    set_backend,
    use_backend,
)
from repro.tensor.fused import (
    addmm,
    fused_relations_enabled,
    linear_act,
    relation_gather_matmul,
    relation_matmul,
    use_fused_relations,
)
from repro.tensor.profiling import (
    OpProfile,
    profiling_enabled,
    use_profiling,
)
from repro.tensor.gradcheck import gradcheck

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "default_dtype",
    "get_default_dtype",
    "set_default_dtype",
    "addmm",
    "linear_act",
    "relation_matmul",
    "relation_gather_matmul",
    "fused_relations_enabled",
    "use_fused_relations",
    "abs_",
    "concat",
    "dropout",
    "elu",
    "exp",
    "leaky_relu",
    "log",
    "log_softmax",
    "logsumexp",
    "maximum",
    "minimum",
    "relu",
    "sigmoid",
    "softmax",
    "sqrt",
    "stack",
    "tanh",
    "where",
    "SegmentPlan",
    "ScatterBackend",
    "active_backend",
    "available_backends",
    "build_plan",
    "get_backend",
    "register_backend",
    "scatter_workers",
    "set_backend",
    "use_backend",
    "gather_rows",
    "plans_enabled",
    "use_plans",
    "scatter_max",
    "scatter_mean",
    "scatter_min",
    "scatter_softmax",
    "scatter_std",
    "scatter_sum",
    "segment_counts",
    "OpProfile",
    "profiling_enabled",
    "use_profiling",
    "gradcheck",
]
