"""A small reverse-mode automatic-differentiation engine on numpy.

This package substitutes for PyTorch in the original paper's stack. It
provides a :class:`Tensor` wrapping a ``numpy.ndarray`` together with a
dynamically built computation graph, a functional namespace mirroring the
subset of ``torch`` that the GNN zoo needs, and the scatter/gather
primitives that message passing is built from.
"""

from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor.ops import (
    abs_,
    concat,
    dropout,
    elu,
    exp,
    leaky_relu,
    log,
    log_softmax,
    logsumexp,
    maximum,
    minimum,
    relu,
    sigmoid,
    softmax,
    sqrt,
    stack,
    tanh,
    where,
)
from repro.tensor.scatter import (
    SegmentPlan,
    gather_rows,
    plans_enabled,
    scatter_max,
    scatter_mean,
    scatter_min,
    scatter_softmax,
    scatter_std,
    scatter_sum,
    segment_counts,
    use_plans,
)
from repro.tensor.gradcheck import gradcheck

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "abs_",
    "concat",
    "dropout",
    "elu",
    "exp",
    "leaky_relu",
    "log",
    "log_softmax",
    "logsumexp",
    "maximum",
    "minimum",
    "relu",
    "sigmoid",
    "softmax",
    "sqrt",
    "stack",
    "tanh",
    "where",
    "SegmentPlan",
    "gather_rows",
    "plans_enabled",
    "use_plans",
    "scatter_max",
    "scatter_mean",
    "scatter_min",
    "scatter_softmax",
    "scatter_std",
    "scatter_sum",
    "segment_counts",
    "gradcheck",
]
