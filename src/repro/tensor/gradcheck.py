"""Numerical gradient checking used throughout the test suite."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.tensor import Tensor

#: Central-difference step and comparison tolerances per input precision.
#: float64 supports a 1e-6 probe; float32 arithmetic drowns that step in
#: rounding noise, so the probe and the acceptance band both widen.
_DTYPE_DEFAULTS = {
    np.dtype(np.float64): {"eps": 1e-6, "atol": 1e-4, "rtol": 1e-4},
    np.dtype(np.float32): {"eps": 1e-2, "atol": 1e-2, "rtol": 1e-2},
}


def _defaults_for(inputs: Sequence[Tensor]) -> dict:
    """Tolerance preset for the lowest-precision input."""
    dtypes = [np.dtype(t.dtype) for t in inputs]
    key = min(dtypes, key=lambda d: np.finfo(d).precision, default=np.dtype(np.float64))
    return _DTYPE_DEFAULTS.get(key, _DTYPE_DEFAULTS[np.dtype(np.float32)])


def numerical_grad(
    fn: Callable[[], Tensor], tensor: Tensor, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn())`` w.r.t. ``tensor``."""
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = float(fn().data.sum())
        flat[i] = original - eps
        lower = float(fn().data.sum())
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2.0 * eps)
    return grad


def gradcheck(
    fn: Callable[[], Tensor],
    inputs: Sequence[Tensor],
    eps: float | None = None,
    atol: float | None = None,
    rtol: float | None = None,
) -> bool:
    """Verify autograd gradients of ``sum(fn())`` against finite differences.

    ``fn`` must be a thunk re-running the computation from ``inputs`` (so
    the numerical probe sees perturbed values). ``eps``/``atol``/``rtol``
    default to a preset keyed on the lowest input precision: float64 gets
    the tight classic 1e-6/1e-4 check, float32 a coarser probe and band
    (finite differences in float32 carry ~1e-3 relative noise). Raises
    ``AssertionError`` with a diagnostic on mismatch; returns ``True``
    otherwise.
    """
    defaults = _defaults_for(inputs)
    eps = defaults["eps"] if eps is None else eps
    atol = defaults["atol"] if atol is None else atol
    rtol = defaults["rtol"] if rtol is None else rtol
    for tensor in inputs:
        tensor.zero_grad()
    out = fn()
    out.backward(np.ones_like(out.data))
    for position, tensor in enumerate(inputs):
        expected = numerical_grad(fn, tensor, eps=eps)
        actual = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        if not np.allclose(actual, expected, atol=atol, rtol=rtol):
            worst = float(np.max(np.abs(actual - expected)))
            raise AssertionError(
                f"gradcheck failed for input {position}: max abs error {worst:.3e}\n"
                f"analytic:\n{actual}\nnumeric:\n{expected}"
            )
    return True
