"""Numerical gradient checking used throughout the test suite."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.tensor import Tensor


def numerical_grad(
    fn: Callable[[], Tensor], tensor: Tensor, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn())`` w.r.t. ``tensor``."""
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = float(fn().data.sum())
        flat[i] = original - eps
        lower = float(fn().data.sum())
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2.0 * eps)
    return grad


def gradcheck(
    fn: Callable[[], Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-6,
    atol: float = 1e-4,
    rtol: float = 1e-4,
) -> bool:
    """Verify autograd gradients of ``sum(fn())`` against finite differences.

    ``fn`` must be a thunk re-running the computation from ``inputs`` (so
    the numerical probe sees perturbed values). Raises ``AssertionError``
    with a diagnostic on mismatch; returns ``True`` otherwise.
    """
    for tensor in inputs:
        tensor.zero_grad()
    out = fn()
    out.backward(np.ones_like(out.data))
    for position, tensor in enumerate(inputs):
        expected = numerical_grad(fn, tensor, eps=eps)
        actual = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        if not np.allclose(actual, expected, atol=atol, rtol=rtol):
            worst = float(np.max(np.abs(actual - expected)))
            raise AssertionError(
                f"gradcheck failed for input {position}: max abs error {worst:.3e}\n"
                f"analytic:\n{actual}\nnumeric:\n{expected}"
            )
    return True
