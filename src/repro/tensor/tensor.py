"""Core :class:`Tensor` type with reverse-mode automatic differentiation.

The design follows the classic tape-free "micrograd" pattern generalised to
numpy arrays: every operation returns a new :class:`Tensor` holding a closure
that, given the output gradient, accumulates gradients into its parents.
``Tensor.backward`` topologically sorts the graph and runs the closures.

Only floating-point data lives in tensors. Integer index arrays (edge
indices, batch vectors, ...) are passed around as plain ``numpy`` arrays.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so its shape matches ``shape`` after broadcasting.

    Numpy broadcasting may have expanded the operand either by prepending
    dimensions or by stretching size-1 dimensions; the adjoint of a
    broadcast is a sum over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] > 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value) -> np.ndarray:
    if isinstance(value, Tensor):
        raise TypeError("expected raw data, got a Tensor")
    arr = np.asarray(value)
    if not np.issubdtype(arr.dtype, np.floating):
        arr = arr.astype(np.float64)
    return arr


class Tensor:
    """A numpy array with an autograd tape.

    Parameters
    ----------
    data:
        Anything ``numpy.asarray`` accepts; non-floating input is converted
        to ``float64``.
    requires_grad:
        Whether gradients should be accumulated into ``self.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    def __init__(self, data, requires_grad: bool = False, name: str = ""):
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._parents: tuple[Tensor, ...] = ()
        self._backward: Callable[[np.ndarray], None] | None = None
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_note})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Build an op output, recording the tape only when needed."""
        out = Tensor.__new__(Tensor)
        out.data = data
        out.grad = None
        out.name = ""
        needs = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out.requires_grad = needs
        if needs:
            out._parents = tuple(parents)
            out._backward = backward
        else:
            out._parents = ()
            out._backward = None
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        ``grad`` defaults to ones, which is the usual convention for scalar
        losses (and a deliberate choice for non-scalars).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited and parent.requires_grad:
                    stack.append((parent, False))
        if grad is None:
            grad = np.ones_like(self.data)
        self._accumulate(np.asarray(grad, dtype=self.data.dtype))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(-grad, other.shape))

        return Tensor._make(data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data**2), other.shape)
                )

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                g = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                g = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(_unbroadcast(g, other.shape))

        return Tensor._make(data, (self, other), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = 1
            for ax in axes:
                count *= self.shape[ax]
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def _extremum(self, axis, keepdims: bool, mode: str) -> "Tensor":
        reducer = np.max if mode == "max" else np.min
        data = reducer(self.data, axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            full = reducer(self.data, axis=axis, keepdims=True)
            mask = (self.data == full).astype(self.data.dtype)
            # Split gradient equally among ties so the adjoint stays a
            # partition of unity even on plateaus.
            ties = mask.sum(axis=axis, keepdims=True)
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(mask / ties * g)

        return Tensor._make(data, (self,), backward)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        return self._extremum(axis, keepdims, "max")

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return self._extremum(axis, keepdims, "min")

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def squeeze(self, axis: int) -> "Tensor":
        shape = list(self.shape)
        if shape[axis] != 1:
            raise ValueError(f"cannot squeeze axis {axis} of shape {self.shape}")
        shape.pop(axis)
        return self.reshape(tuple(shape))

    def unsqueeze(self, axis: int) -> "Tensor":
        shape = list(self.shape)
        if axis < 0:
            axis += self.ndim + 1
        shape.insert(axis, 1)
        return self.reshape(tuple(shape))

    # ------------------------------------------------------------------
    # Indexing (basic slices plus integer-array row selection)
    # ------------------------------------------------------------------
    def __getitem__(self, key) -> "Tensor":
        if isinstance(key, Tensor):
            raise TypeError("index with numpy arrays, not Tensors")
        data = self.data[key]

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            out = np.zeros_like(self.data)
            np.add.at(out, key, grad)
            self._accumulate(out)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise transcendental methods (thin wrappers used by ops.py)
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * 0.5 / data)

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - data**2))

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic.
        data = np.where(
            self.data >= 0,
            1.0 / (1.0 + np.exp(-np.clip(self.data, -60, 60))),
            np.exp(np.clip(self.data, -60, 60))
            / (1.0 + np.exp(np.clip(self.data, -60, 60))),
        )

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data * (1.0 - data))

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (self.data > 0))

        return Tensor._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return Tensor._make(data, (self,), backward)

    def clip(self, low: float | None, high: float | None) -> "Tensor":
        data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            mask = np.ones_like(self.data)
            if low is not None:
                mask = mask * (self.data >= low)
            if high is not None:
                mask = mask * (self.data <= high)
            self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward)


def parameters_of(tensors: Iterable[Tensor]) -> list[Tensor]:
    """Filter an iterable down to tensors that require gradients."""
    return [t for t in tensors if isinstance(t, Tensor) and t.requires_grad]
